//! Wire-protocol hardening battery for `psi-net`: property-based round
//! trips for every opcode in both coordinate types, plus adversarial
//! decoding (truncations, oversized prefixes, unknown opcodes, random
//! bytes) that must reject cleanly — never panic, never over-allocate.

use proptest::prelude::*;
use proptest::ProptestConfig;
use psi::{Point, Rect};
use psi_net::wire::{
    decode_reply, decode_request, encode_reply, encode_request, frame_size, Reply, Request,
    WireCoord, WireError, LEN_PREFIX, MAX_FRAME, OP_APPLY_BATCH, OP_EPOCH_BOUNDS, OP_ERROR,
    OP_HELLO, OP_KNN, OP_RANGE_COUNT, OP_RANGE_LIST, OP_STATS, REPLY_BIT,
};

/// Encode → decode → re-encode must reproduce the bytes exactly (byte-level
/// identity also covers NaN and negative-zero float payloads, where value
/// equality would lie).
fn assert_request_round_trip<T: WireCoord, const D: usize>(req: &Request<T, D>, id: u64) {
    let mut wire = Vec::new();
    encode_request(req, id, &mut wire).expect("round-trip frames fit one frame");
    let total = frame_size(&wire)
        .expect("self-encoded frames are in bounds")
        .expect("self-encoded frames are complete");
    assert_eq!(total, wire.len(), "one frame, nothing trailing");
    let (got_id, decoded) =
        decode_request::<T, D>(&wire[LEN_PREFIX..]).expect("self-encoded frames decode");
    assert_eq!(got_id, id);
    let mut rewire = Vec::new();
    encode_request(&decoded, id, &mut rewire).expect("round-trip frames fit one frame");
    assert_eq!(wire, rewire, "decode must preserve every payload bit");
}

fn assert_reply_round_trip<T: WireCoord, const D: usize>(reply: &Reply<T, D>, to: u8, id: u64) {
    let mut wire = Vec::new();
    encode_reply(reply, to, id, &mut wire).expect("round-trip frames fit one frame");
    let total = frame_size(&wire)
        .expect("self-encoded frames are in bounds")
        .expect("self-encoded frames are complete");
    assert_eq!(total, wire.len());
    let (got_id, decoded) =
        decode_reply::<T, D>(&wire[LEN_PREFIX..]).expect("self-encoded replies decode");
    assert_eq!(got_id, id);
    let mut rewire = Vec::new();
    encode_reply(&decoded, to, id, &mut rewire).expect("round-trip frames fit one frame");
    assert_eq!(wire, rewire);
}

/// Points whose coordinates cover the full bit domain: for f64 the raw bits
/// are drawn from u64, so infinities, NaNs and subnormals all appear.
fn ipoint(bits: &[u64]) -> Point<i64, 2> {
    Point::new([bits[0] as i64, bits[1] as i64])
}

fn fpoint(bits: &[u64]) -> Point<f64, 2> {
    Point::new([f64::from_bits(bits[0]), f64::from_bits(bits[1])])
}

fn irect(bits: &[u64]) -> Rect<i64, 2> {
    Rect::from_corners(ipoint(&bits[0..2]), ipoint(&bits[2..4]))
}

fn frect(bits: &[u64]) -> Rect<f64, 2> {
    Rect::from_corners(fpoint(&bits[0..2]), fpoint(&bits[2..4]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn knn_round_trips_both_coordinate_types(
        bits in proptest::collection::vec(any::<u64>(), 2),
        k in any::<u32>(),
        id in any::<u64>(),
    ) {
        // Half the cases pin an epoch; the tag value reuses the id bits so
        // the full u64 domain is covered without another generator.
        let at = if id % 2 == 0 { None } else { Some(id) };
        assert_request_round_trip(&Request::Knn { q: ipoint(&bits), k, at }, id);
        assert_request_round_trip(&Request::Knn { q: fpoint(&bits), k, at }, id);
    }

    #[test]
    fn range_ops_round_trip_both_coordinate_types(
        bits in proptest::collection::vec(any::<u64>(), 4),
        id in any::<u64>(),
    ) {
        let at = if id % 2 == 0 { None } else { Some(id) };
        assert_request_round_trip(&Request::RangeCount { rect: irect(&bits), at }, id);
        assert_request_round_trip(&Request::RangeList { rect: irect(&bits), at }, id);
        assert_request_round_trip(&Request::RangeCount { rect: frect(&bits), at }, id);
        assert_request_round_trip(&Request::RangeList { rect: frect(&bits), at }, id);
    }

    #[test]
    fn apply_batch_round_trips_both_coordinate_types(
        del in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 2), 0..20),
        ins in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 2), 0..20),
        id in any::<u64>(),
    ) {
        assert_request_round_trip(
            &Request::ApplyBatch {
                delete: del.iter().map(|b| ipoint(b)).collect(),
                insert: ins.iter().map(|b| ipoint(b)).collect(),
            },
            id,
        );
        assert_request_round_trip(
            &Request::ApplyBatch {
                delete: del.iter().map(|b| fpoint(b)).collect(),
                insert: ins.iter().map(|b| fpoint(b)).collect(),
            },
            id,
        );
    }

    #[test]
    fn hello_and_replies_round_trip(
        pts in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 2), 0..20),
        count in any::<u64>(),
        code in any::<u16>(),
        id in any::<u64>(),
    ) {
        assert_request_round_trip(&Request::<i64, 2>::hello(), id);
        assert_request_round_trip(&Request::<f64, 2>::hello(), id);
        let ipts: Vec<Point<i64, 2>> = pts.iter().map(|b| ipoint(b)).collect();
        let fpts: Vec<Point<f64, 2>> = pts.iter().map(|b| fpoint(b)).collect();
        assert_reply_round_trip(&Reply::Points(ipts), OP_KNN, id);
        assert_reply_round_trip(&Reply::Points(fpts), OP_RANGE_LIST, id);
        assert_reply_round_trip(&Reply::<i64, 2>::Count(count), OP_RANGE_COUNT, id);
        assert_reply_round_trip(&Reply::<f64, 2>::BatchOk, OP_APPLY_BATCH, id);
        assert_reply_round_trip(
            &Reply::<i64, 2>::HelloOk {
                version: 1,
                coord: 0,
                dims: 2,
                shards: count as u32,
            },
            OP_HELLO,
            id,
        );
        assert_reply_round_trip(
            &Reply::<i64, 2>::Error { code, message: "proptest".to_string() },
            OP_KNN,
            id,
        );
        // Epoch-bounds: a bodyless request, and replies in both presence
        // states (the bounds reuse already-generated u64s).
        assert_request_round_trip(&Request::<i64, 2>::EpochBounds, id);
        assert_request_round_trip(&Request::<f64, 2>::EpochBounds, id);
        assert_reply_round_trip(
            &Reply::<i64, 2>::EpochBounds(Some((count.min(id), count.max(id)))),
            OP_EPOCH_BOUNDS,
            id,
        );
        assert_reply_round_trip(&Reply::<f64, 2>::EpochBounds(None), OP_EPOCH_BOUNDS, id);
        // Stats: a bodyless request; the reply carries a version word plus
        // free text (reuse already-generated values for both).
        assert_request_round_trip(&Request::<i64, 2>::Stats, id);
        assert_request_round_trip(&Request::<f64, 2>::Stats, id);
        assert_reply_round_trip(
            &Reply::<i64, 2>::Stats {
                version: code as u32,
                text: format!("metric_total {count}\n"),
            },
            OP_STATS,
            id,
        );
    }

    /// Any proper prefix of a valid payload must reject (the length prefix
    /// is rewritten to match the truncation, so this exercises body parsing,
    /// not framing).
    #[test]
    fn truncated_payloads_reject(
        bits in proptest::collection::vec(any::<u64>(), 4),
        pts in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 2), 0..6),
        pick in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let at = if cut_seed % 2 == 0 { None } else { Some(cut_seed) };
        let reqs: Vec<Request<i64, 2>> = vec![
            Request::hello(),
            Request::Knn { q: ipoint(&bits), k: bits[2] as u32, at },
            Request::RangeCount { rect: irect(&bits), at },
            Request::RangeList { rect: irect(&bits), at },
            Request::ApplyBatch {
                delete: pts.iter().map(|b| ipoint(b)).collect(),
                insert: pts.iter().map(|b| ipoint(b)).collect(),
            },
        ];
        let req = &reqs[(pick % reqs.len() as u64) as usize];
        let mut wire = Vec::new();
        encode_request(req, 7, &mut wire).expect("round-trip frames fit one frame");
        let payload = &wire[LEN_PREFIX..];
        // Cut anywhere in [1, len): decoding the prefix must error, never
        // panic. (Cut 0 would drop the opcode byte, same path.)
        let cut = 1 + (cut_seed % (payload.len() as u64 - 1)) as usize;
        prop_assert!(decode_request::<i64, 2>(&payload[..cut]).is_err());
    }

    /// Arbitrary bytes never panic the decoders, and the frame splitter
    /// never admits a length outside its bounds.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_request::<i64, 2>(&bytes);
        let _ = decode_request::<f64, 2>(&bytes);
        let _ = decode_reply::<i64, 2>(&bytes);
        if let Ok(Some(total)) = frame_size(&bytes) {
            prop_assert!(total <= LEN_PREFIX + MAX_FRAME);
            prop_assert!(total <= bytes.len());
        }
    }
}

#[test]
fn oversized_length_prefix_rejects_before_buffering() {
    // 4 GiB-1 declared length: must reject from the 4-byte prefix alone.
    let prefix = u32::MAX.to_le_bytes();
    assert_eq!(
        frame_size(&prefix),
        Err(WireError::BadLength(u32::MAX as usize))
    );
    // The largest admissible frame is fine; one past it is not.
    let mut ok = ((MAX_FRAME) as u32).to_le_bytes().to_vec();
    ok.push(OP_KNN);
    assert_eq!(frame_size(&ok), Ok(None)); // in bounds, just incomplete
    assert_eq!(
        frame_size(&((MAX_FRAME as u32 + 1).to_le_bytes())),
        Err(WireError::BadLength(MAX_FRAME + 1))
    );
}

#[test]
fn unknown_opcodes_reject_in_both_directions() {
    for op in [0x00u8, 0x02, 0x15, 0x21, 0x7f, OP_KNN | REPLY_BIT, OP_ERROR] {
        let mut payload = vec![op];
        payload.extend_from_slice(&3u64.to_le_bytes());
        // Requests never use reply opcodes (and OP_ERROR is reply-only)...
        let decoded = decode_request::<i64, 2>(&payload);
        assert!(decoded.is_err(), "request opcode {op:#04x} must reject");
    }
    for op in [0x00u8, OP_HELLO, OP_KNN, OP_APPLY_BATCH, 0x93] {
        let mut payload = vec![op];
        payload.extend_from_slice(&3u64.to_le_bytes());
        let decoded = decode_reply::<i64, 2>(&payload);
        assert!(decoded.is_err(), "reply opcode {op:#04x} must reject");
    }
}

#[test]
fn epoch_bounds_presence_byte_is_strict() {
    // Only 0 (absent) and 1 (present) are legal; anything else must reject
    // rather than guess.
    for (presence, tail, ok) in [
        (0u8, 0usize, true),
        (1, 16, true),
        (2, 16, false),
        (0xff, 16, false),
        (1, 8, false), // present but missing one bound
    ] {
        let mut payload = vec![OP_EPOCH_BOUNDS | REPLY_BIT];
        payload.extend_from_slice(&5u64.to_le_bytes());
        payload.push(presence);
        payload.extend_from_slice(&vec![0u8; tail]);
        assert_eq!(
            decode_reply::<i64, 2>(&payload).is_ok(),
            ok,
            "presence {presence} tail {tail}"
        );
    }
}

#[test]
fn hostile_batch_counts_fail_without_allocating() {
    // A batch frame claiming u32::MAX points in a 17-byte payload: the
    // decoder must reject it from the byte budget, not attempt a 64 GiB
    // Vec reservation first.
    let mut payload = vec![OP_APPLY_BATCH];
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_request::<i64, 2>(&payload),
        Err(WireError::Malformed(_))
    ));
    // Same for a points reply.
    let mut payload = vec![OP_RANGE_LIST | REPLY_BIT];
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_reply::<f64, 2>(&payload),
        Err(WireError::Malformed(_))
    ));
}
