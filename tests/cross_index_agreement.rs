//! Workspace-level integration test: every index in Ψ-Lib-rs must give
//! identical answers to the brute-force oracle on the same dynamic workload —
//! in 2-D and 3-D, across all three synthetic distributions.

use psi::{
    BruteForce, CpamHTree, CpamZTree, POrthTree, PkdTree, RTree, SpacHTree, SpacZTree,
    SpatialIndex, ZdTree,
};
use psi_geometry::{Point, PointI};
use psi_workloads::{self as workloads, Distribution};

/// Run a build → insert → delete → query scenario and compare with the oracle.
fn scenario<I: SpatialIndex<i64, D>, const D: usize>(
    dist: Distribution,
    max_coord: i64,
    seed: u64,
) {
    let n = 3_000;
    let data = dist.generate::<D>(n, max_coord, seed);
    let extra = dist.generate::<D>(n / 2, max_coord, seed ^ 0xF00D);
    let universe = workloads::universe::<D>(max_coord);

    let mut index = I::build(&data, &universe);
    let mut oracle = BruteForce::<i64, D>::build(&data, &universe);
    assert_eq!(index.len(), oracle.len(), "{}: build size", I::NAME);

    index.batch_insert(&extra);
    oracle.batch_insert(&extra);
    index.check_invariants();

    let victims: Vec<PointI<D>> = data.iter().step_by(3).copied().collect();
    let removed_index = index.batch_delete(&victims);
    let removed_oracle = oracle.batch_delete(&victims);
    assert_eq!(removed_index, removed_oracle, "{}: delete count", I::NAME);
    assert_eq!(index.len(), oracle.len(), "{}: size after delete", I::NAME);
    index.check_invariants();

    // kNN and range queries at InD and OOD locations.
    let ind = workloads::ind_queries(&data, 20, seed ^ 1);
    let ood = workloads::ood_queries::<D>(max_coord, 20, seed ^ 2);
    for q in ind.iter().chain(ood.iter()) {
        let got: Vec<_> = index.knn(q, 10).iter().map(|p| q.dist_sq(p)).collect();
        let want: Vec<_> = oracle.knn(q, 10).iter().map(|p| q.dist_sq(p)).collect();
        assert_eq!(got, want, "{}: kNN distances disagree", I::NAME);
    }
    for rect in workloads::range_queries(&data, max_coord, 50, 20, seed ^ 3) {
        assert_eq!(
            index.range_count(&rect),
            oracle.range_count(&rect),
            "{}: range_count disagrees",
            I::NAME
        );
        let mut got = index.range_list(&rect);
        let mut want = oracle.range_list(&rect);
        got.sort();
        want.sort();
        assert_eq!(got, want, "{}: range_list disagrees", I::NAME);
    }
}

fn all_indexes_2d(dist: Distribution, seed: u64) {
    let max = 1_000_000_000;
    scenario::<POrthTree<2>, 2>(dist, max, seed);
    scenario::<SpacHTree<2>, 2>(dist, max, seed);
    scenario::<SpacZTree<2>, 2>(dist, max, seed);
    scenario::<CpamHTree<2>, 2>(dist, max, seed);
    scenario::<CpamZTree<2>, 2>(dist, max, seed);
    scenario::<PkdTree<2>, 2>(dist, max, seed);
    scenario::<ZdTree<2>, 2>(dist, max, seed);
    scenario::<RTree<2>, 2>(dist, max, seed);
}

#[test]
fn uniform_2d_all_indexes_agree() {
    all_indexes_2d(Distribution::Uniform, 1);
}

#[test]
fn sweepline_2d_all_indexes_agree() {
    all_indexes_2d(Distribution::Sweepline, 2);
}

#[test]
fn varden_2d_all_indexes_agree() {
    all_indexes_2d(Distribution::Varden, 3);
}

#[test]
fn uniform_3d_all_indexes_agree() {
    let max = 1_000_000;
    scenario::<POrthTree<3>, 3>(Distribution::Uniform, max, 4);
    scenario::<SpacHTree<3>, 3>(Distribution::Uniform, max, 4);
    scenario::<SpacZTree<3>, 3>(Distribution::Uniform, max, 4);
    scenario::<PkdTree<3>, 3>(Distribution::Uniform, max, 4);
    scenario::<ZdTree<3>, 3>(Distribution::Uniform, max, 4);
    scenario::<RTree<3>, 3>(Distribution::Uniform, max, 4);
}

#[test]
fn varden_3d_clustered_agree() {
    let max = 1_000_000;
    scenario::<POrthTree<3>, 3>(Distribution::Varden, max, 5);
    scenario::<SpacHTree<3>, 3>(Distribution::Varden, max, 5);
    scenario::<PkdTree<3>, 3>(Distribution::Varden, max, 5);
}

#[test]
fn real_world_standins_agree() {
    // cosmo_like (3-D) and osm_like (2-D) through two representative indexes.
    let cosmo = workloads::cosmo_like(3_000, 1_000_000, 6);
    let uni3 = workloads::universe::<3>(1_000_000);
    let spac = SpacHTree::<3>::build(&cosmo);
    let oracle = BruteForce::<i64, 3>::build(&cosmo, &uni3);
    for q in workloads::ind_queries(&cosmo, 20, 7) {
        assert_eq!(
            spac.knn(&q, 5)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>(),
            oracle
                .knn(&q, 5)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>()
        );
    }

    let osm = workloads::osm_like(4_000, 1_000_000_000, 8);
    let uni2 = workloads::universe::<2>(1_000_000_000);
    let porth = <POrthTree<2> as SpatialIndex<i64, 2>>::build(&osm, &uni2);
    let oracle = BruteForce::<i64, 2>::build(&osm, &uni2);
    for rect in workloads::range_queries(&osm, 1_000_000_000, 100, 20, 9) {
        assert_eq!(porth.range_count(&rect), oracle.range_count(&rect));
    }
}

#[test]
fn degenerate_inputs_all_indexes() {
    // All-duplicate and collinear data must not break any index.
    let max = 1_000_000_000;
    let universe = workloads::universe::<2>(max);
    let dup = vec![Point::new([123, 456]); 500];
    let collinear: Vec<PointI<2>> = (0..500).map(|i| Point::new([i * 1000, 777])).collect();

    macro_rules! check {
        ($ty:ty) => {
            for data in [&dup, &collinear] {
                let mut idx = <$ty as SpatialIndex<i64, 2>>::build(data, &universe);
                idx.check_invariants();
                assert_eq!(idx.len(), data.len());
                assert_eq!(idx.batch_delete(&data[..100]), 100);
                idx.check_invariants();
                assert_eq!(idx.len(), data.len() - 100);
                let q = Point::new([0, 0]);
                assert_eq!(idx.knn(&q, 3).len(), 3);
            }
        };
    }
    check!(POrthTree<2>);
    check!(SpacHTree<2>);
    check!(SpacZTree<2>);
    check!(CpamHTree<2>);
    check!(PkdTree<2>);
    check!(ZdTree<2>);
    check!(RTree<2>);
}
