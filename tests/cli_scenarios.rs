//! End-to-end golden-file suite for the `psi-scenario` harness.
//!
//! Every scenario in `scenarios/*.psi` is executed in-process and its
//! deterministic report (per-probe result checksums, final index state) is
//! compared byte-for-byte against the committed golden file in
//! `tests/golden/`. The same run is then repeated pinned to a single worker
//! thread and must produce bit-identical golden text — and CI re-runs this
//! whole suite under `RAYON_NUM_THREADS=1`, covering the env-var path too.
//!
//! To (re)pin a scenario after an intentional change:
//! `cargo run -p psi-cli --bin psi-scenario -- golden scenarios/<name>.psi > tests/golden/<name>.golden`

use psi_cli::{compare, exec, report, scenario};
use std::path::PathBuf;

fn repo_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(sub)
}

fn scenario_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(repo_dir("scenarios"))
        .expect("scenarios/ directory must exist")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "psi"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 8,
        "the checked-in scenario library must not shrink (found {})",
        files.len()
    );
    files
}

/// Every scenario matches its committed golden file, with identical bytes
/// whether the worker pool has the default width or exactly one thread.
#[test]
fn golden_files_match_across_thread_counts() {
    for file in scenario_files() {
        let stem = file.file_stem().unwrap().to_string_lossy().to_string();
        let sc = scenario::parse_file(&file).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(
            sc.name,
            stem,
            "{}: scenario name must match the file stem",
            file.display()
        );

        let golden_path = repo_dir("tests/golden").join(format!("{stem}.golden"));
        let want = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "{}: missing golden file {} ({e}); regenerate with \
                 `psi-scenario golden {}`",
                stem,
                golden_path.display(),
                file.display()
            )
        });

        let run_default = exec::run(&sc, None).unwrap_or_else(|e| panic!("{stem}: {e}"));
        let got = report::golden_string(&run_default);
        assert_eq!(
            got,
            want,
            "{stem}: run disagrees with committed golden file {}",
            golden_path.display()
        );

        let run_single = exec::run(&sc, Some(1)).unwrap_or_else(|e| panic!("{stem}: {e}"));
        assert_eq!(
            report::golden_string(&run_single),
            got,
            "{stem}: single-thread run must be bit-identical to the default pool"
        );
    }
}

/// No orphaned golden files: each one corresponds to a checked-in scenario.
#[test]
fn golden_files_correspond_to_scenarios() {
    let scenario_stems: Vec<String> = scenario_files()
        .iter()
        .map(|p| p.file_stem().unwrap().to_string_lossy().to_string())
        .collect();
    for entry in std::fs::read_dir(repo_dir("tests/golden")).expect("tests/golden must exist") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|x| x == "golden") {
            let stem = path.file_stem().unwrap().to_string_lossy().to_string();
            assert!(
                scenario_stems.contains(&stem),
                "golden file {} has no scenario; delete it or add scenarios/{stem}.psi",
                path.display()
            );
        }
    }
}

/// The scenario library must keep covering the matrix the harness exists
/// for: both coordinate types, both dimensionalities, and deletion churn.
#[test]
fn scenario_library_spans_the_matrix() {
    let scenarios: Vec<scenario::Scenario> = scenario_files()
        .iter()
        .map(|f| scenario::parse_file(f).unwrap())
        .collect();
    assert!(scenarios
        .iter()
        .any(|s| s.coords == scenario::CoordKind::I64));
    assert!(scenarios
        .iter()
        .any(|s| s.coords == scenario::CoordKind::F64));
    assert!(scenarios.iter().any(|s| s.dims == 2));
    assert!(scenarios.iter().any(|s| s.dims == 3));
    assert!(scenarios.iter().any(|s| s
        .schedule
        .iter()
        .any(|st| matches!(st, scenario::Step::Delete(_)))));
    // At least one scenario interleaves inserts and deletes (churn).
    assert!(scenarios.iter().any(|s| {
        s.schedule
            .iter()
            .any(|st| matches!(st, scenario::Step::Insert(_)))
            && s.schedule
                .iter()
                .any(|st| matches!(st, scenario::Step::Delete(_)))
    }));
}

/// Differential replay of a churn scenario: every index family must agree
/// with the brute-force oracle *exactly* — every kNN distance list, every
/// range count, every (sorted) range list, at every probe, plus the final
/// index contents.
#[test]
fn churn_scenario_agrees_with_oracle_for_every_family() {
    let sc = scenario::parse_file(&repo_dir("scenarios/churn-sweepline-2d.psi")).unwrap();
    for family in psi::registry::names() {
        let report = exec::run_differential(&sc, family)
            .unwrap_or_else(|e| panic!("oracle differential failed: {e}"));
        assert_eq!(report.probes, 3, "{family}: all probes must be compared");
        assert!(
            report.answers > 0,
            "{family}: the differential must compare real answers"
        );
    }
}

/// The float families replay the float churn scenario against the oracle.
#[test]
fn float_scenario_agrees_with_oracle() {
    let sc = scenario::parse_file(&repo_dir("scenarios/float-churn-2d.psi")).unwrap();
    for family in psi::registry::float_names() {
        exec::run_differential(&sc, family).unwrap_or_else(|e| panic!("{e}"));
    }
}

/// The checked-in perf-gate baseline stays honest: a fresh run of the gate
/// scenario must agree with `tests/baselines/perf-gate-2d.json` on every
/// checksum. This test pins *answers* only (effectively infinite timing
/// tolerance); CI applies the real timing tolerance on top with
/// `psi-scenario compare --tolerance`.
#[test]
fn perf_gate_baseline_matches_current_answers() {
    let baseline_path = repo_dir("tests/baselines/perf-gate-2d.json");
    let baseline_text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        panic!(
            "missing baseline {} ({e}); regenerate with `psi-scenario run \
             scenarios/perf-gate-2d.psi --out tests/baselines/perf-gate-2d.json`",
            baseline_path.display()
        )
    });
    let baseline = compare::parse_json(&baseline_text).unwrap_or_else(|e| panic!("{e}"));
    let sc = scenario::parse_file(&repo_dir("scenarios/perf-gate-2d.psi")).unwrap();
    let run = exec::run(&sc, None).unwrap_or_else(|e| panic!("{e}"));
    let fresh = compare::parse_json(&report::json_string(&run)).unwrap();
    let cmp = compare::compare_reports(&baseline, &fresh, f64::INFINITY, compare::NOISE_FLOOR_SECS)
        .unwrap_or_else(|e| panic!("baseline is not comparable: {e}"));
    assert!(
        cmp.mismatches.is_empty(),
        "perf-gate baseline answers diverged; re-pin the baseline:\n{}",
        cmp.mismatches.join("\n")
    );
}
