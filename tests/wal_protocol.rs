//! WAL record-codec hardening battery for `psi-server`: property-based
//! round trips in both coordinate types (the raw-bits f64 generator covers
//! NaN payloads, infinities and negative zero), plus adversarial decoding —
//! truncated records, corrupted CRCs, oversized length prefixes, hostile
//! point counts — that must reject with a typed error, never panic and
//! never over-allocate.

use proptest::prelude::*;
use proptest::ProptestConfig;
use psi::Point;
use psi_geometry::WireCoord;
use psi_server::wal::{
    crc32, decode_record, encode_record, FsyncPolicy, WalError, WalRecord, MAX_RECORD,
};

fn ipoint(bits: &[u64]) -> Point<i64, 2> {
    Point::new([bits[0] as i64, bits[1] as i64])
}

/// Raw-bits floats: NaNs, infinities, subnormals and -0.0 all appear, and
/// byte-level round-trip identity is exactly what the WAL must preserve.
fn fpoint(bits: &[u64]) -> Point<f64, 2> {
    Point::new([f64::from_bits(bits[0]), f64::from_bits(bits[1])])
}

/// Encode → decode → re-encode must reproduce the bytes exactly, and the
/// decoded record must report the consumed byte count precisely.
fn assert_record_round_trip<T: WireCoord, const D: usize>(
    epoch: u64,
    delete: &[Point<T, D>],
    insert: &[Point<T, D>],
) {
    let mut wire = Vec::new();
    encode_record(epoch, delete, insert, &mut wire);
    let (rec, used): (WalRecord<T, D>, usize) =
        decode_record(&wire).expect("self-encoded records decode");
    assert_eq!(used, wire.len(), "one record, nothing trailing");
    assert_eq!(rec.epoch, epoch);
    let mut rewire = Vec::new();
    encode_record(rec.epoch, &rec.delete, &rec.insert, &mut rewire);
    assert_eq!(wire, rewire, "decode must preserve every payload bit");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn records_round_trip_both_coordinate_types(
        del in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 2), 0..20),
        ins in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 2), 0..20),
        epoch in any::<u64>(),
    ) {
        let idel: Vec<Point<i64, 2>> = del.iter().map(|b| ipoint(b)).collect();
        let iins: Vec<Point<i64, 2>> = ins.iter().map(|b| ipoint(b)).collect();
        assert_record_round_trip(epoch, &idel, &iins);
        let fdel: Vec<Point<f64, 2>> = del.iter().map(|b| fpoint(b)).collect();
        let fins: Vec<Point<f64, 2>> = ins.iter().map(|b| fpoint(b)).collect();
        assert_record_round_trip(epoch, &fdel, &fins);
    }

    /// Any proper prefix of a valid record must report `Truncated` (cut
    /// inside the length prefix) or fail the structural checks — and a cut
    /// record with a rewritten (matching) length prefix must fail its CRC.
    #[test]
    fn truncated_records_reject(
        pts in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 2), 1..8),
        epoch in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let ins: Vec<Point<i64, 2>> = pts.iter().map(|b| ipoint(b)).collect();
        let mut wire = Vec::new();
        encode_record(epoch, &[], &ins, &mut wire);
        let cut = (cut_seed % (wire.len() as u64 - 1)) as usize;
        prop_assert!(decode_record::<i64, 2>(&wire[..cut]).is_err());
    }

    /// Flipping any single byte of a record must be caught: the CRC covers
    /// the epoch and body, and the structural checks cover the prefix.
    #[test]
    fn corrupted_bytes_reject(
        pts in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 2), 1..8),
        epoch in any::<u64>(),
        pick in any::<u64>(),
    ) {
        let ins: Vec<Point<f64, 2>> = pts.iter().map(|b| fpoint(b)).collect();
        let mut wire = Vec::new();
        encode_record(epoch, &ins[..1], &ins, &mut wire);
        let at = (pick % wire.len() as u64) as usize;
        wire[at] ^= 0x40;
        match decode_record::<f64, 2>(&wire) {
            Ok((_, used)) => {
                // The only undetectable flip would be inside the length
                // prefix producing a shorter-but-valid record — impossible,
                // because the CRC is recomputed over the shortened body.
                prop_assert!(false, "corrupted record decoded ({used} bytes)");
            }
            Err(e) => {
                prop_assert!(
                    matches!(
                        e,
                        WalError::BadCrc { .. }
                            | WalError::BadLength(_)
                            | WalError::Truncated
                            | WalError::Malformed(_)
                    ),
                    "unexpected error class {e:?}"
                );
            }
        }
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_record::<i64, 2>(&bytes);
        let _ = decode_record::<f64, 2>(&bytes);
        let _ = decode_record::<i64, 3>(&bytes);
    }
}

#[test]
fn oversized_length_prefix_rejects_before_buffering() {
    // A corrupt prefix declaring a 4 GiB record must reject from the four
    // prefix bytes alone — recovery reads real files, and a giant
    // allocation on hostile input would turn a torn log into an OOM.
    let mut wire = u32::MAX.to_le_bytes().to_vec();
    wire.extend_from_slice(&[0u8; 64]);
    assert_eq!(
        decode_record::<i64, 2>(&wire),
        Err(WalError::BadLength(u32::MAX as usize))
    );
    assert_eq!(
        decode_record::<i64, 2>(&((MAX_RECORD as u32 + 1).to_le_bytes())),
        Err(WalError::BadLength(MAX_RECORD + 1))
    );
    // Undershooting the fixed fields is just as malformed.
    assert_eq!(
        decode_record::<i64, 2>(&3u32.to_le_bytes()),
        Err(WalError::BadLength(3))
    );
}

#[test]
fn hostile_point_counts_fail_without_allocating() {
    // A record claiming u32::MAX deletions in a tiny body: the counts must
    // be validated against the bytes that actually arrived, not reserved.
    let mut body = Vec::new();
    body.extend_from_slice(&7u64.to_le_bytes()); // epoch
    body.extend_from_slice(&u32::MAX.to_le_bytes()); // n_del
    body.extend_from_slice(&u32::MAX.to_le_bytes()); // n_ins
                                                     // Splice a correct CRC so the count check, not the CRC, must fire.
    let crc = crc32(&body);
    let mut with_crc = Vec::new();
    with_crc.extend_from_slice(&body[..8]);
    with_crc.extend_from_slice(&crc.to_le_bytes());
    with_crc.extend_from_slice(&body[8..]);
    let mut wire = ((with_crc.len()) as u32).to_le_bytes().to_vec();
    wire.extend_from_slice(&with_crc);
    assert!(matches!(
        decode_record::<i64, 2>(&wire),
        Err(WalError::Malformed(_))
    ));
}

#[test]
fn fsync_policy_spellings_round_trip() {
    for (s, p) in [
        ("every-batch", FsyncPolicy::EveryBatch),
        ("every-16", FsyncPolicy::EveryN(16)),
        ("os", FsyncPolicy::Os),
    ] {
        assert_eq!(FsyncPolicy::parse(s), Some(p));
        assert_eq!(p.name(), s);
    }
    for bad in ["every-0", "every-x", "always", ""] {
        assert_eq!(FsyncPolicy::parse(bad), None);
    }
}
