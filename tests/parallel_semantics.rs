//! Semantics battery for the real parallel executor behind the rayon shim
//! (PR 2): for every prelude combinator the workspace uses, parallel
//! execution must (a) produce results identical to sequential execution,
//! (b) actually place work on more than one thread when more than one is
//! allowed, (c) propagate worker panics to the caller, and (d) degrade to
//! pure sequential execution under `ThreadPool::install(1)`.
//!
//! The fork-join section at the bottom stresses the task-deque executor
//! behind `join`/`scope` (PR 4): recursion depth far beyond the thread
//! count, join-inside-`par_iter`-inside-join nesting, panics in stolen
//! tasks, strict sequentiality under `install(1)`, and — the headline
//! contract — zero OS threads spawned per `join` once the pool is warm.
//!
//! The thread-count override is process-global (as upstream rayon's global
//! pool is), so every test that installs one serialises on [`override_lock`].

use psi::registry::{self, BuildOptions};
use psi::{PointI, SpatialIndex, ZdTree};
use psi_parutils::{exclusive_scan, hybrid_sort_keys, par_chunks, par_sort_by_key, sieve_by};
use psi_workloads as workloads;
use rayon::prelude::*;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn override_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn with_threads<R>(t: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(t)
        .build()
        .unwrap()
        .install(f)
}

// ---------------------------------------------------------------------------
// (a) Parallel results are identical to sequential results.
// ---------------------------------------------------------------------------

/// Run the same combinator workload under 1 and 4 threads and require equal
/// outputs; returns the sequential output for further checks.
fn assert_thread_invariant<R: PartialEq + std::fmt::Debug + Send>(
    workload: impl Fn() -> R + Send + Sync,
) -> R {
    let _g = override_lock();
    let seq = with_threads(1, &workload);
    let par = with_threads(4, &workload);
    assert_eq!(seq, par, "parallel result differs from sequential");
    seq
}

#[test]
fn map_collect_matches_sequential() {
    let v: Vec<u64> = (0..100_000).map(|i| i * 37 % 1_000).collect();
    let out = assert_thread_invariant(|| v.par_iter().map(|x| x * 3 + 1).collect::<Vec<u64>>());
    assert_eq!(out.len(), v.len());
    assert_eq!(out[17], v[17] * 3 + 1);
}

#[test]
fn sum_matches_sequential() {
    let v: Vec<u64> = (0..123_457).collect();
    let s = assert_thread_invariant(|| v.par_iter().map(|&x| x).sum::<u64>());
    assert_eq!(s, 123_456 * 123_457 / 2);
}

#[test]
fn zip_enumerate_for_each_matches_sequential() {
    let n = 54_321;
    let a: Vec<u32> = (0..n as u32).collect();
    let out = assert_thread_invariant(|| {
        let mut b = vec![0u64; n];
        a.par_chunks(1000)
            .zip(b.par_chunks_mut(1000))
            .enumerate()
            .for_each(|(ci, (src, dst))| {
                for (s, d) in src.iter().zip(dst.iter_mut()) {
                    *d = *s as u64 + ci as u64;
                }
            });
        b
    });
    assert_eq!(out[1000], 1001); // chunk 1, value 1000 + 1
}

#[test]
fn map_init_results_do_not_depend_on_worker_assignment() {
    let out = assert_thread_invariant(|| {
        (0..40_000usize)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                // A correct map_init user resets its scratch per item;
                // the result must not observe other items' history.
                scratch.clear();
                scratch.extend([i, i + 1]);
                scratch.iter().sum::<usize>()
            })
            .collect::<Vec<usize>>()
    });
    assert!(out.iter().enumerate().all(|(i, &x)| x == 2 * i + 1));
}

#[test]
fn flat_map_iter_matches_sequential() {
    let out = assert_thread_invariant(|| {
        (0..5_000usize)
            .into_par_iter()
            .flat_map_iter(|i| (0..i % 4).map(move |j| i * 10 + j))
            .collect::<Vec<usize>>()
    });
    let expect: Vec<usize> = (0..5_000)
        .flat_map(|i| (0..i % 4).map(move |j| i * 10 + j))
        .collect();
    assert_eq!(out, expect);
}

#[test]
fn par_sort_matches_sequential_and_is_stable() {
    let v: Vec<(u32, u32)> = (0..150_000u32).map(|i| (i % 97, i)).collect();
    let sorted = assert_thread_invariant(|| {
        let mut w = v.clone();
        w.par_sort_by_key(|e| e.0);
        w
    });
    let mut expect = v.clone();
    expect.sort_by_key(|e| e.0);
    // Stable: ties keep input order, so the full tuples match.
    assert_eq!(sorted, expect);
}

#[test]
fn parutils_primitives_match_sequential() {
    let v: Vec<u64> = (0..80_000).map(|i| (i * 2654435761u64) % 10_007).collect();
    // par_sort_by_key (sample sort over pool + join).
    let sorted = assert_thread_invariant(|| {
        let mut w = v.clone();
        par_sort_by_key(&mut w, |&x| x);
        w
    });
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    // hybrid_sort_keys.
    let hybrid = assert_thread_invariant(|| hybrid_sort_keys(&v, |&p| p.rotate_left(9)));
    assert_eq!(hybrid.len(), v.len());
    // exclusive_scan.
    let counts: Vec<usize> = (0..30_000).map(|i| i % 7).collect();
    let scanned = assert_thread_invariant(|| exclusive_scan(&counts));
    assert_eq!(scanned.0[1], counts[0]);
    // sieve_by (stable bucket distribution).
    let sieved = assert_thread_invariant(|| {
        let mut w = v.clone();
        let offsets = sieve_by(&mut w, 13, |x| (*x % 13) as usize);
        (w, offsets)
    });
    assert_eq!(sieved.1.len(), 14);
    // par_chunks covers every index exactly once.
    let _g = override_lock();
    with_threads(4, || {
        let n = 100_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_chunks(n, 1024, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    });
}

#[test]
fn batch_queries_identical_across_thread_counts_for_registry_families() {
    let data = workloads::uniform::<2>(20_000, 100_000, 11);
    let queries = workloads::ind_queries(&data, 500, 12);
    let ranges = workloads::range_queries(&data, 100_000, 200, 100, 13);
    let opts = BuildOptions::<i64, 2>::with_universe(workloads::universe::<2>(100_000));
    for name in registry::names() {
        let index = registry::create::<2>(name, &data, &opts).unwrap();
        let workload = || {
            (
                index.knn_batch(&queries, 7),
                index.range_count_batch(&ranges),
                index.range_list_batch(&ranges),
            )
        };
        let (knn, counts, lists) = assert_thread_invariant(workload);
        assert_eq!(knn.len(), queries.len(), "{name}");
        assert_eq!(counts.len(), ranges.len(), "{name}");
        // range_list and range_count must agree with each other.
        for (c, l) in counts.iter().zip(lists.iter()) {
            assert_eq!(*c, l.len(), "{name}");
        }
    }
}

#[test]
fn index_construction_identical_across_thread_counts() {
    // Builds exercise par_sort / sieve / nested par_iter recursions; the
    // resulting structures must answer queries identically.
    let data = workloads::uniform::<2>(30_000, 50_000, 21);
    let queries = workloads::ind_queries(&data, 200, 22);
    let build_and_probe = || {
        let universe = workloads::universe::<2>(50_000);
        let index = ZdTree::<2>::build_with(&data, Some(&universe), Default::default());
        index.check_invariants();
        index.knn_batch(&queries, 5)
    };
    assert_thread_invariant(build_and_probe);
}

// ---------------------------------------------------------------------------
// (b) Work really lands on more than one thread.
// ---------------------------------------------------------------------------

#[test]
fn work_spreads_across_threads_when_allowed() {
    let _g = override_lock();
    with_threads(4, || {
        for _attempt in 0..5 {
            let ids = Mutex::new(HashSet::new());
            (0..128usize).into_par_iter().with_min_len(1).for_each(|_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                ids.lock().unwrap().insert(std::thread::current().id());
            });
            if ids.into_inner().unwrap().len() > 1 {
                return;
            }
        }
        panic!("no pool worker ever participated across 5 attempts");
    });
}

#[test]
fn map_init_creates_at_most_one_state_per_worker() {
    let _g = override_lock();
    with_threads(4, || {
        let inits = AtomicUsize::new(0);
        let out: Vec<usize> = (0..20_000usize)
            .into_par_iter()
            .map_init(|| inits.fetch_add(1, Ordering::Relaxed), |_, i| i)
            .collect();
        assert_eq!(out.len(), 20_000);
        let done = inits.load(Ordering::Relaxed);
        assert!(
            (1..=4).contains(&done),
            "expected 1..=4 init calls (one per participating worker), got {done}"
        );
    });
}

// ---------------------------------------------------------------------------
// (c) Panics in worker closures propagate to the caller.
// ---------------------------------------------------------------------------

#[test]
fn for_each_panic_propagates() {
    let _g = override_lock();
    for threads in [1, 4] {
        with_threads(threads, || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                (0..10_000usize).into_par_iter().for_each(|i| {
                    if i == 7_431 {
                        panic!("deliberate worker panic");
                    }
                });
            }));
            assert!(result.is_err(), "panic swallowed at {threads} threads");
        });
    }
}

#[test]
fn map_init_and_collect_panics_propagate_and_pool_survives() {
    let _g = override_lock();
    with_threads(4, || {
        let result = catch_unwind(AssertUnwindSafe(|| {
            (0..10_000usize)
                .into_par_iter()
                .map_init(
                    || (),
                    |_, i| {
                        if i == 2_222 {
                            panic!("map_init body panic");
                        }
                        i
                    },
                )
                .collect::<Vec<usize>>()
        }));
        assert!(result.is_err());
        // The executor must remain usable after an unwound job.
        let s: usize = (0..1_000usize).into_par_iter().sum();
        assert_eq!(s, 999 * 1_000 / 2);
    });
}

// ---------------------------------------------------------------------------
// (d) install(1) forces sequential execution on the calling thread.
// ---------------------------------------------------------------------------

#[test]
fn install_one_forces_sequential() {
    let _g = override_lock();
    with_threads(1, || {
        assert_eq!(rayon::current_num_threads(), 1);
        let caller = std::thread::current().id();
        let ids = Mutex::new(HashSet::new());
        (0..10_000usize).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        let ids = ids.into_inner().unwrap();
        assert_eq!(ids.len(), 1, "install(1) must not fan out");
        assert!(ids.contains(&caller), "work must stay on the caller");
    });
}

// ---------------------------------------------------------------------------
// Nested join under the pool (parutils recursions run inside pool workers).
// ---------------------------------------------------------------------------

#[test]
fn nested_join_under_pool_completes_correctly() {
    fn join_sum(lo: u64, hi: u64) -> u64 {
        if hi - lo < 1_000 {
            (lo..hi).sum()
        } else {
            let mid = lo + (hi - lo) / 2;
            let (a, b) = rayon::join(|| join_sum(lo, mid), || join_sum(mid, hi));
            a + b
        }
    }
    let _g = override_lock();
    with_threads(4, || {
        let sums: Vec<u64> = (0..16usize)
            .into_par_iter()
            .map(|_| join_sum(0, 50_000))
            .collect();
        assert!(sums.iter().all(|&s| s == 49_999 * 50_000 / 2));
    });
}

// ---------------------------------------------------------------------------
// The task-deque fork-join executor (PR 4): join/scope as pool citizens.
// ---------------------------------------------------------------------------

/// Binary fork-join sum over `lo..hi`, splitting down to `grain`-sized
/// leaves — the shape of every tree-build recursion in the workspace.
fn join_tree_sum(lo: u64, hi: u64, grain: u64) -> u64 {
    if hi - lo <= grain {
        (lo..hi).sum()
    } else {
        let mid = lo + (hi - lo) / 2;
        let (a, b) = rayon::join(
            || join_tree_sum(lo, mid, grain),
            || join_tree_sum(mid, hi, grain),
        );
        a + b
    }
}

#[test]
fn deep_join_recursion_far_exceeds_thread_count() {
    let _g = override_lock();
    with_threads(4, || {
        // A linear chain 1 500 forks deep: every level queues a task while
        // only 4 threads exist. The old scoped-thread join either spawned a
        // thread per level or degraded to sequential once its helper budget
        // saturated; the deques must simply absorb the tasks.
        fn chain(depth: usize) -> u64 {
            if depth == 0 {
                return 0;
            }
            let (a, b) = rayon::join(|| chain(depth - 1), || 1u64);
            a + b
        }
        assert_eq!(chain(1_500), 1_500);
        // A wide tree: ~12k forks over a 4-thread budget.
        assert_eq!(join_tree_sum(0, 100_000, 8), 100_000 * 99_999 / 2);
    });
}

#[test]
fn join_inside_par_iter_inside_join_composes() {
    // Three alternating layers of fork-join and data parallelism; the
    // result must be bit-identical across thread counts.
    let expect: u64 = (0..32u64)
        .map(|i| {
            let f = |n: u64| n * (n - 1) / 2;
            f(1_000 + i) + f(2_000 + i)
        })
        .sum();
    let got = assert_thread_invariant(|| {
        let (a, b) = rayon::join(
            || {
                (0..32usize)
                    .into_par_iter()
                    .map(|i| join_tree_sum(0, 1_000 + i as u64, 64))
                    .sum::<u64>()
            },
            || {
                (0..32usize)
                    .into_par_iter()
                    .map(|i| join_tree_sum(0, 2_000 + i as u64, 64))
                    .sum::<u64>()
            },
        );
        a + b
    });
    assert_eq!(got, expect);
}

#[test]
fn panic_in_stolen_join_task_propagates() {
    let _g = override_lock();
    with_threads(4, || {
        // The forked half panics; the slow inline half gives workers every
        // chance to steal it first. Whichever thread ends up running the
        // fork, the payload must re-raise on the caller and the executor
        // must stay usable.
        for _ in 0..10 {
            let result = catch_unwind(AssertUnwindSafe(|| {
                rayon::join(
                    || panic!("boom in forked task"),
                    || std::thread::sleep(std::time::Duration::from_millis(2)),
                );
            }));
            assert!(result.is_err(), "panic in forked half was swallowed");
        }
        assert_eq!(join_tree_sum(0, 10_000, 64), 10_000 * 9_999 / 2);
    });
}

#[test]
fn install_one_forces_sequential_join() {
    let _g = override_lock();
    with_threads(1, || {
        fn rec(lo: u64, hi: u64, ids: &Mutex<HashSet<std::thread::ThreadId>>) -> u64 {
            ids.lock().unwrap().insert(std::thread::current().id());
            if hi - lo <= 32 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = rayon::join(|| rec(lo, mid, ids), || rec(mid, hi, ids));
                a + b
            }
        }
        let caller = std::thread::current().id();
        let ids = Mutex::new(HashSet::new());
        assert_eq!(rec(0, 10_000, &ids), 10_000 * 9_999 / 2);
        let ids = ids.into_inner().unwrap();
        assert_eq!(ids.len(), 1, "install(1) joins must not leave the caller");
        assert!(ids.contains(&caller));
    });
}

/// Count this process's live pool worker threads by name (the pool names
/// them `psi-par-<id>`). Returns `None` where /proc is unavailable.
fn pool_worker_threads() -> Option<usize> {
    let tasks = std::fs::read_dir("/proc/self/task").ok()?;
    let mut count = 0;
    for entry in tasks.flatten() {
        if let Ok(comm) = std::fs::read_to_string(entry.path().join("comm")) {
            if comm.trim_start().starts_with("psi-par") {
                count += 1;
            }
        }
    }
    Some(count)
}

#[test]
fn join_spawns_no_os_threads_after_warmup() {
    let _g = override_lock();
    // Warm the pool to the largest thread budget this test binary ever
    // installs (other tests use at most 4; the ambient default covers CI
    // matrix runs), so no concurrent test can grow it between our samples.
    let warm = rayon::current_num_threads().max(4);
    with_threads(warm, || {
        (0..1_024usize).into_par_iter().for_each(|_| {});
        let _ = rayon::join(|| 1, || 2);
    });
    let Some(before) = pool_worker_threads() else {
        return; // no /proc: the zero-spawn contract is covered by shim tests
    };
    assert!(before >= 1, "warm-up must have spawned pool workers");
    with_threads(4, || {
        // ~12k joins; under the old executor each fork that won a helper
        // token was one scoped OS thread spawn + teardown.
        assert_eq!(join_tree_sum(0, 100_000, 8), 100_000 * 99_999 / 2);
    });
    let after = pool_worker_threads().expect("/proc disappeared mid-test");
    assert_eq!(
        before, after,
        "join must not spawn or tear down OS threads after pool warm-up"
    );
}

#[test]
fn scope_spawn_rides_the_pool() {
    let _g = override_lock();
    with_threads(4, || {
        let total = AtomicUsize::new(0);
        let tally = &total;
        rayon::scope(|s| {
            for i in 0..64usize {
                s.spawn(move |s| {
                    // Nested spawn from inside a task.
                    s.spawn(move |_| {
                        tally.fetch_add(i, Ordering::Relaxed);
                    });
                    tally.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64 + (0..64).sum::<usize>());
    });
}

// ---------------------------------------------------------------------------
// Chase-Lev deque hammer (PR 7): drive the lock-free push/pop/steal paths
// through the public fork-join API hard enough that every racy transition —
// single-element pop-vs-steal, ring growth under live tasks, index
// wraparound, ABA-prone slot reuse — happens many times per run. The
// low-level seeded hammers with direct deque access live in the rayon shim's
// unit tests; these end-to-end storms make the same interleavings happen in
// the real pool at every CI thread count.
// ---------------------------------------------------------------------------

/// Deterministic splitmix-style generator for seeded storm shapes.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

#[test]
fn deque_hammer_scope_storm_forces_ring_growth_and_wraparound() {
    let _g = override_lock();
    with_threads(4, || {
        // Each round pushes 4 096 spawns onto the submitter's deque before
        // any meaningful draining starts: the 64-slot initial ring must grow
        // several times while thieves hold live references to the old
        // buffers. Across rounds the top/bottom indices keep advancing, so
        // later rounds exercise the wrapped (idx & mask) slot mapping of the
        // grown rings.
        for round in 0..8u64 {
            let total = AtomicUsize::new(0);
            let tally = &total;
            rayon::scope(|s| {
                for i in 0..4_096usize {
                    s.spawn(move |_| {
                        tally.fetch_add(i ^ (round as usize), Ordering::Relaxed);
                    });
                }
            });
            let expect: usize = (0..4_096).map(|i| i ^ (round as usize)).sum();
            assert_eq!(total.load(Ordering::Relaxed), expect, "round {round}");
        }
    });
}

#[test]
fn deque_hammer_seeded_random_fork_trees_match_across_thread_counts() {
    // Irregular fork trees whose split points and leaf weights come from a
    // fixed seed: uneven subtree sizes maximise steal/pop contention and the
    // empty-deque races, while the seed keeps the expected sum exact.
    fn storm(rng_state: u64, depth: usize) -> u64 {
        let mut rng = Lcg(rng_state);
        if depth == 0 {
            // A tiny, deterministic leaf workload.
            return (0..(rng.next() % 64)).map(|x| x ^ rng_state).sum();
        }
        let (l, r) = (rng.next(), rng.next());
        let (a, b) = rayon::join(|| storm(l, depth - 1), || storm(r, depth - 1));
        a.wrapping_add(b)
    }
    let out = assert_thread_invariant(|| {
        (0..16u64)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|&seed| storm(0x9E37_79B9_7F4A_7C15 ^ seed, 7))
            .collect::<Vec<u64>>()
    });
    assert_eq!(out.len(), 16);
}

#[test]
fn deque_hammer_rapid_tiny_joins_stress_single_element_races() {
    let _g = override_lock();
    with_threads(4, || {
        // Thousands of joins whose forked half is a single trivial task: the
        // owner's pop and a thief's steal race for the same lone element
        // (the CAS-certified bottom==top case) over and over. Running four
        // such streams concurrently keeps the thieves hungry.
        let total: u64 = (0..4usize)
            .into_par_iter()
            .with_min_len(1)
            .map(|lane| {
                let mut acc = 0u64;
                for i in 0..20_000u64 {
                    let (a, b) = rayon::join(|| i ^ lane as u64, || i.wrapping_mul(3));
                    acc = acc.wrapping_add(a ^ b);
                }
                acc
            })
            .sum();
        let expect: u64 = (0..4u64)
            .map(|lane| {
                let mut acc = 0u64;
                for i in 0..20_000u64 {
                    acc = acc.wrapping_add((i ^ lane) ^ i.wrapping_mul(3));
                }
                acc
            })
            .sum();
        assert_eq!(total, expect);
    });
}

// ---------------------------------------------------------------------------
// The caller-owned range_list arena (PR 2 satellite).
// ---------------------------------------------------------------------------

#[test]
fn range_list_into_reuses_the_arena_and_matches_range_list() {
    let data = workloads::uniform::<2>(10_000, 10_000, 31);
    let universe = workloads::universe::<2>(10_000);
    let index = <psi::POrthTree2 as SpatialIndex<i64, 2>>::build(&data, &universe);
    let ranges = workloads::range_queries(&data, 10_000, 500, 50, 32);

    let mut arena: Vec<PointI<2>> = Vec::new();
    let mut max_cap = 0;
    for r in &ranges {
        index.range_list_into(r, &mut arena);
        assert_eq!(arena, index.range_list(r));
        assert_eq!(arena.len(), index.range_count(r));
        // The arena only ever grows: allocations are amortised across queries.
        assert!(arena.capacity() >= max_cap);
        max_cap = max_cap.max(arena.capacity());
    }
}
