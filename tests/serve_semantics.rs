//! Snapshot-consistency battery for the `psi-server` subsystem: concurrent
//! readers must only ever observe **whole published epochs**.
//!
//! The scheme: build a shard (or a sharded router) and precompute, offline,
//! the exact answer checksum of a fixed query mix for *every* epoch — the
//! initial build plus each update batch applied in order (the offline
//! replica replays the same op sequence the shard applies to both of its
//! copies, so answers match bit-for-bit, ties included). Then a writer
//! thread publishes those same batches while reader threads continuously
//! pin snapshots and recompute the checksum: every observed answer set must
//! equal the golden checksum of the *snapshot's own epoch* — a torn batch,
//! a lost update, or a half-swapped pointer produces a checksum matching no
//! epoch and fails immediately. Readers also assert epoch monotonicity.
//!
//! The battery runs for three-plus registry families in both `i64` and
//! `f64` (the f64 set includes an SFC family served through the quantising
//! adapter), and the whole suite repeats under default, 1-thread and
//! 4-thread worker pools (CI additionally re-runs it under
//! `RAYON_NUM_THREADS=1` and `=4`).

use psi::registry::{self, BuildOptions, DynIndex};
use psi::{Point, PointI, Rect};
use psi_server::{IndexFactory, Router, ServeCoord, Shard};
use psi_workloads as workloads;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(FNV_PRIME)
}

/// Coordinates the battery can checksum exactly. (`Point` is totally
/// ordered for every `Coord`, so the range lists sort deterministically for
/// `f64` too.)
trait CheckCoord: ServeCoord {
    fn bits(self) -> u64;
}
impl CheckCoord for i64 {
    fn bits(self) -> u64 {
        self as u64
    }
}
impl CheckCoord for f64 {
    fn bits(self) -> u64 {
        self.to_bits()
    }
}

/// Deterministic checksum of a fixed query mix against one index state.
fn answers_checksum<T: CheckCoord, const D: usize>(
    index: &dyn DynIndex<T, D>,
    queries: &[Point<T, D>],
    rects: &[Rect<T, D>],
    k: usize,
) -> u64 {
    let mut h = FNV_OFFSET;
    for ans in index.knn_batch(queries, k) {
        h = fold(h, ans.len() as u64);
        for p in &ans {
            for c in p.coords {
                h = fold(h, c.bits());
            }
        }
    }
    for c in index.range_count_batch(rects) {
        h = fold(h, c as u64);
    }
    for mut list in index.range_list_batch(rects) {
        list.sort_unstable();
        h = fold(h, list.len() as u64);
        for p in &list {
            for c in p.coords {
                h = fold(h, c.bits());
            }
        }
    }
    h
}

/// One update batch: deletions, then insertions.
type Batch<T, const D: usize> = (Vec<Point<T, D>>, Vec<Point<T, D>>);

/// Offline golden checksums: epoch 0 (initial build) plus one per batch.
fn golden_epochs<T: CheckCoord, const D: usize>(
    factory: &IndexFactory<T, D>,
    initial: &[Point<T, D>],
    batches: &[Batch<T, D>],
    queries: &[Point<T, D>],
    rects: &[Rect<T, D>],
    k: usize,
) -> Vec<u64> {
    let mut replica = factory(initial);
    let mut goldens = vec![answers_checksum(&*replica, queries, rects, k)];
    for (del, ins) in batches {
        replica.batch_delete(del);
        replica.batch_insert(ins);
        goldens.push(answers_checksum(&*replica, queries, rects, k));
    }
    goldens
}

/// The core battery: writer publishes `batches` through the shard while
/// `READERS` threads pin snapshots and verify every observed answer
/// checksum against the golden of the snapshot's own epoch.
#[allow(clippy::too_many_arguments)]
fn shard_atomicity<T: CheckCoord, const D: usize>(
    label: &str,
    factory: IndexFactory<T, D>,
    region: Rect<T, D>,
    initial: Vec<Point<T, D>>,
    batches: Vec<Batch<T, D>>,
    queries: Vec<Point<T, D>>,
    rects: Vec<Rect<T, D>>,
    k: usize,
) {
    const READERS: usize = 3;
    let goldens = Arc::new(golden_epochs(
        &factory, &initial, &batches, &queries, &rects, k,
    ));
    let shard = Arc::new(Shard::new(region, &factory, &initial));
    let done = Arc::new(AtomicBool::new(false));

    let queries = Arc::new(queries);
    let rects = Arc::new(rects);
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let shard = Arc::clone(&shard);
            let goldens = Arc::clone(&goldens);
            let done = Arc::clone(&done);
            let queries = Arc::clone(&queries);
            let rects = Arc::clone(&rects);
            let label = label.to_string();
            std::thread::spawn(move || {
                let mut observations = 0usize;
                let mut last_epoch = 0u64;
                let mut distinct = std::collections::BTreeSet::new();
                loop {
                    let finishing = done.load(Ordering::Acquire);
                    let pin = shard.pin();
                    let epoch = pin.epoch();
                    assert!(
                        epoch >= last_epoch,
                        "{label}: reader saw epoch {epoch} after {last_epoch}"
                    );
                    last_epoch = epoch;
                    let got = answers_checksum(pin.index(), &queries, &rects, k);
                    assert_eq!(
                        got, goldens[epoch as usize],
                        "{label}: reader observed a torn epoch {epoch} \
                         (answer checksum matches no published state)"
                    );
                    observations += 1;
                    distinct.insert(epoch);
                    if finishing {
                        break;
                    }
                }
                (observations, distinct)
            })
        })
        .collect();

    for (del, ins) in &batches {
        shard.publish(del, ins);
        // Give readers a window to pin this epoch before the next publish.
        std::thread::sleep(std::time::Duration::from_micros(300));
    }
    done.store(true, Ordering::Release);
    for r in readers {
        let (observations, distinct) = r.join().expect("reader thread");
        assert!(observations > 0, "{label}: reader made no observations");
        // The final pin (after `done`) must see the last epoch published.
        assert!(
            distinct.contains(&(batches.len() as u64)),
            "{label}: final epoch never observed"
        );
    }
    assert_eq!(shard.epoch(), batches.len() as u64, "{label}");
}

/// Build the move-style batch list: each batch deletes a slice of the live
/// set and inserts replacement points, so every epoch has distinct answers.
fn i64_batches<const D: usize>(
    data: &[PointI<D>],
    rounds: usize,
    per: usize,
    max: i64,
) -> Vec<Batch<i64, D>> {
    (0..rounds)
        .map(|r| {
            let lo = (r * per) % (data.len() - per);
            let del = data[lo..lo + per].to_vec();
            let ins = workloads::uniform::<D>(per, max, 9_000 + r as u64);
            (del, ins)
        })
        .collect()
}

fn i64_factory(family: &'static str, leaf: Option<usize>) -> IndexFactory<i64, 2> {
    let opts = BuildOptions {
        leaf_size: leaf,
        ..Default::default()
    };
    Arc::new(move |pts: &[PointI<2>]| {
        registry::create::<2>(family, pts, &opts).expect("registry family builds")
    })
}

fn f64_factory(family: &'static str) -> IndexFactory<f64, 2> {
    Arc::new(move |pts: &[Point<f64, 2>]| {
        registry::create_f64::<2>(family, pts, &BuildOptions::default())
            .expect("float registry family builds")
    })
}

fn to_f64_point<const D: usize>(p: &PointI<D>) -> Point<f64, D> {
    Point::new(p.coords.map(|c| c as f64))
}

/// One full battery pass: ≥3 families in i64 and in f64.
fn battery() {
    let max = 1_000_000i64;
    let data = workloads::varden::<2>(1_400, max, 77);
    let queries = workloads::ind_queries(&data, 12, 78);
    let rects = workloads::range_queries(&data, max, 40, 6, 79);
    let batches = i64_batches(&data, 10, 120, max);
    let region = workloads::universe::<2>(max);
    let k = 6;

    for family in ["p-orth", "spac-h", "zd"] {
        shard_atomicity(
            &format!("i64/{family}"),
            i64_factory(family, Some(32)),
            region,
            data.clone(),
            batches.clone(),
            queries.clone(),
            rects.clone(),
            k,
        );
    }

    // f64: the natively-float families plus an SFC family through the
    // quantising adapter (integer-valued floats → exact).
    let fdata: Vec<Point<f64, 2>> = data.iter().map(to_f64_point).collect();
    let fqueries: Vec<Point<f64, 2>> = queries.iter().map(to_f64_point).collect();
    let frects: Vec<Rect<f64, 2>> = rects
        .iter()
        .map(|r| Rect::from_corners(to_f64_point(&r.lo), to_f64_point(&r.hi)))
        .collect();
    let fbatches: Vec<Batch<f64, 2>> = batches
        .iter()
        .map(|(d, i)| {
            (
                d.iter().map(to_f64_point).collect(),
                i.iter().map(to_f64_point).collect(),
            )
        })
        .collect();
    let fregion = Rect::from_corners(Point::new([0.0, 0.0]), Point::new([max as f64, max as f64]));
    for family in ["p-orth", "pkd", "spac-h"] {
        shard_atomicity(
            &format!("f64/{family}"),
            f64_factory(family),
            fregion,
            fdata.clone(),
            fbatches.clone(),
            fqueries.clone(),
            frects.clone(),
            k,
        );
    }
}

#[test]
fn epoch_atomicity_default_pool() {
    battery();
}

#[test]
fn epoch_atomicity_one_thread_pool() {
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(battery);
}

#[test]
fn epoch_atomicity_four_thread_pool() {
    rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap()
        .install(battery);
}

/// Sharded variant: two stripes, batches and queries confined to one stripe
/// each, so a per-shard snapshot's answers must match that shard's own
/// epoch golden — across shards, views are per-shard consistent.
#[test]
fn router_stripe_epochs_are_atomic() {
    let max = 1_000_000i64;
    let half = max / 2;
    let universe = workloads::universe::<2>(max);
    let data = workloads::uniform::<2>(2_000, max, 5);
    let factory = i64_factory("spac-h", None);
    let router = Arc::new(Router::new(&factory, &data, &universe, 2));

    // Stripe-confined query mixes and batch streams.
    let stripe_pts = |lo: i64, hi: i64, n: usize, seed: u64| -> Vec<PointI<2>> {
        workloads::uniform::<2>(n, hi - lo - 1, seed)
            .into_iter()
            .map(|p| Point::new([p.coords[0] + lo, p.coords[1]]))
            .collect()
    };
    let mixes: Vec<(Vec<PointI<2>>, Vec<Rect<i64, 2>>)> = [(0i64, half), (half, max)]
        .iter()
        .map(|&(lo, hi)| {
            let qs = stripe_pts(lo, hi, 10, 31 + lo as u64);
            let rects: Vec<Rect<i64, 2>> = stripe_pts(lo, hi, 8, 47 + lo as u64)
                .into_iter()
                .map(|p| {
                    let side = 60_000;
                    Rect::from_corners(
                        Point::new([p.coords[0].clamp(lo, hi - 1), (p.coords[1] - side).max(0)]),
                        Point::new([
                            (p.coords[0] + side).clamp(lo, hi - 1),
                            (p.coords[1] + side).min(max),
                        ]),
                    )
                })
                .collect();
            (qs, rects)
        })
        .collect();
    let batches: Vec<(usize, Vec<PointI<2>>)> = (0..12)
        .map(|r| {
            let stripe = r % 2;
            let (lo, hi) = if stripe == 0 { (0, half) } else { (half, max) };
            (stripe, stripe_pts(lo, hi, 50, 100 + r as u64))
        })
        .collect();

    // Offline per-shard goldens: shard s sees only stripe-s batches.
    let k = 5;
    let mut goldens: Vec<Vec<u64>> = Vec::new();
    for (stripe, (qs, rects)) in mixes.iter().enumerate() {
        let initial: Vec<PointI<2>> = data
            .iter()
            .copied()
            .filter(|p| (router.shard_of(p)) == stripe)
            .collect();
        let mut replica = factory(&initial);
        let mut g = vec![answers_checksum(&*replica, qs, rects, k)];
        for (s, ins) in &batches {
            if *s == stripe {
                replica.batch_insert(ins);
                g.push(answers_checksum(&*replica, qs, rects, k));
            }
        }
        goldens.push(g);
    }

    let done = Arc::new(AtomicBool::new(false));
    let mixes = Arc::new(mixes);
    let goldens = Arc::new(goldens);
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let router = Arc::clone(&router);
            let done = Arc::clone(&done);
            let mixes = Arc::clone(&mixes);
            let goldens = Arc::clone(&goldens);
            std::thread::spawn(move || loop {
                let finishing = done.load(Ordering::Acquire);
                let view = router.pin();
                for (stripe, (qs, rects)) in mixes.iter().enumerate() {
                    let got = answers_checksum(view.snapshot(stripe).index(), qs, rects, k);
                    let epoch = view.snapshot(stripe).epoch() as usize;
                    assert_eq!(
                        got, goldens[stripe][epoch],
                        "stripe {stripe} epoch {epoch} torn"
                    );
                }
                if finishing {
                    break;
                }
            })
        })
        .collect();

    for (_, ins) in &batches {
        router.publish(&[], ins);
        std::thread::sleep(std::time::Duration::from_micros(300));
    }
    done.store(true, Ordering::Release);
    for r in readers {
        r.join().expect("reader thread");
    }
    assert_eq!(router.pin().epochs(), vec![6, 6]);
    assert_eq!(router.len(), data.len() + 12 * 50);
}

/// Time-travel goldens: a persistent (CPAM) router retains a bounded window
/// of global epochs, and "query as of epoch N" must answer **bit-identical**
/// to the offline replica of epoch N — the same golden-checksum oracle the
/// live battery uses — while everything outside the window is gone.
#[test]
fn persistent_time_travel_matches_per_epoch_goldens() {
    let max = 1_000_000i64;
    let data = workloads::varden::<2>(1_400, max, 81);
    let queries = workloads::ind_queries(&data, 12, 82);
    let rects = workloads::range_queries(&data, max, 40, 6, 83);
    let batches = i64_batches(&data, 12, 120, max);
    let universe = workloads::universe::<2>(max);
    let k = 6;

    let factory = i64_factory("cpam-h", Some(32));
    let goldens = golden_epochs(&factory, &data, &batches, &queries, &rects, k);
    let router = Router::with_history(&factory, &data, &universe, 1, 8);
    assert!(router.is_persistent(), "cpam-h serves persistent snapshots");
    for (del, ins) in &batches {
        router.publish(del, ins);
    }

    // 13 states (epoch 0 + 12 publishes), window of 8: epochs 5..=12 stay.
    assert_eq!(router.epoch_bounds(), Some((5, 12)), "eviction bound");
    for e in 0..5u64 {
        assert!(router.pin_at(e).is_none(), "epoch {e} must be evicted");
    }
    assert!(router.pin_at(13).is_none(), "future epoch");
    for e in 5..=12u64 {
        let view = router.pin_at(e).expect("epoch inside the window");
        let got = answers_checksum(view.snapshot(0).index(), &queries, &rects, k);
        assert_eq!(
            got, goldens[e as usize],
            "time-travel answers for epoch {e} drifted from the golden"
        );
    }
}

/// The same epoch answers through ψ-net: a wire client's `*_at` calls must
/// return byte-for-byte what an in-process view of that epoch returns, on
/// both socket transports; an evicted epoch is a typed per-request failure
/// that leaves the connection usable.
#[test]
fn time_travel_over_the_socket_matches_in_process() {
    use psi_net::client::WireClient;
    use psi_net::{loopback, NetConfig, NetServer, Transport};
    use psi_server::{PsiServer, ServeConfig};

    let max = 1_000_000i64;
    let data = workloads::uniform::<2>(1_500, max, 91);
    let universe = workloads::universe::<2>(max);
    let server = Arc::new(PsiServer::new(
        &data,
        &universe,
        ServeConfig {
            shards: 2,
            epoch_history: 4,
            ..Default::default()
        },
        i64_factory("cpam-h", None),
    ));
    for r in 0..6usize {
        let del = data[r * 40..r * 40 + 40].to_vec();
        let ins = workloads::uniform::<2>(40, max, 300 + r as u64);
        server.submit(del, ins);
    }
    server.quiesce();
    assert_eq!(server.epoch(), 6);

    let queries = workloads::ind_queries(&data, 8, 92);
    let rects = workloads::range_queries(&data, max, 40, 5, 93);
    let k = 6;
    for transport in [Transport::Threaded, Transport::Evented] {
        let net = NetServer::spawn(
            Arc::clone(&server),
            loopback(),
            NetConfig {
                transport,
                coalesce: true,
            },
        )
        .expect("bind loopback");
        let mut client: WireClient<i64, 2> = WireClient::connect(net.addr()).expect("connect");
        for e in 3..=6u64 {
            let view = server.view_at(e).expect("epoch inside the window");
            let want_knn = view.knn_batch(&queries, k);
            for (q, want) in queries.iter().zip(&want_knn) {
                let got = client
                    .knn_at(q, k, e)
                    .expect("I/O")
                    .expect("epoch inside the window");
                assert_eq!(&got, want, "socket knn@{e} differs from in-process");
            }
            for rect in &rects {
                assert_eq!(
                    client.range_count_at(rect, e).expect("I/O"),
                    Some(view.range_count(rect)),
                    "socket range_count@{e}"
                );
                let mut got = client
                    .range_list_at(rect, e)
                    .expect("I/O")
                    .expect("epoch inside the window");
                let mut want = view.range_list(rect);
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "socket range_list@{e}");
            }
        }
        // Evicted / future epochs: ERR_EPOCH is per-request, not fatal.
        assert_eq!(client.knn_at(&queries[0], 3, 0).expect("I/O"), None);
        assert_eq!(client.range_count_at(&rects[0], 99).expect("I/O"), None);
        let alive = client.knn(&queries[0], 3).expect("connection stays open");
        assert_eq!(alive.len(), 3);
        net.shutdown();
    }
}
