//! Property-based integration tests: random *sequences* of batch operations
//! applied to the paper's two contributed indexes (P-Orth tree and SPaC-tree)
//! must always leave them consistent with the brute-force oracle and their own
//! structural invariants.

use proptest::prelude::*;
use psi::{BruteForce, POrthTree, SpacHTree, SpatialIndex};
use psi_geometry::{Point, PointI, Rect};
use psi_workloads as workloads;

const MAX: i64 = 1 << 20;

/// One step of a dynamic workload.
#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<(i64, i64)>),
    /// Delete a slice of previously inserted points, identified by fractions
    /// of the current content (start, len).
    DeleteExisting(u8, u8),
    /// Delete points that were never inserted.
    DeleteAbsent(Vec<(i64, i64)>),
}

fn point_strategy() -> impl Strategy<Value = (i64, i64)> {
    (0..MAX, 0..MAX)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(point_strategy(), 1..80).prop_map(Op::Insert),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::DeleteExisting(a, b)),
        proptest::collection::vec(point_strategy(), 1..20).prop_map(Op::DeleteAbsent),
    ]
}

fn to_points(v: &[(i64, i64)]) -> Vec<PointI<2>> {
    v.iter().map(|&(x, y)| Point::new([x, y])).collect()
}

/// Apply the op sequence to an index and the oracle simultaneously, verifying
/// sizes, delete counts, invariants and query agreement at every step.
fn run_sequence<I: SpatialIndex<i64, 2>>(initial: &[PointI<2>], ops: &[Op]) {
    let universe = workloads::universe::<2>(MAX);
    let mut index = I::build(initial, &universe);
    let mut oracle = BruteForce::<i64, 2>::build(initial, &universe);
    let mut contents: Vec<PointI<2>> = initial.to_vec();

    for op in ops {
        match op {
            Op::Insert(raw) => {
                let pts = to_points(raw);
                index.batch_insert(&pts);
                oracle.batch_insert(&pts);
                contents.extend_from_slice(&pts);
            }
            Op::DeleteExisting(a, b) => {
                if contents.is_empty() {
                    continue;
                }
                let start = (*a as usize * contents.len()) / 256;
                let len = ((*b as usize * contents.len()) / 256).min(contents.len() - start);
                let victims: Vec<PointI<2>> = contents[start..start + len].to_vec();
                let r1 = index.batch_delete(&victims);
                let r2 = oracle.batch_delete(&victims);
                assert_eq!(r1, r2, "{}: delete count mismatch", I::NAME);
                contents.drain(start..start + len);
            }
            Op::DeleteAbsent(raw) => {
                // Shift the coordinates outside the generation domain so the
                // points are guaranteed absent.
                let pts: Vec<PointI<2>> = raw
                    .iter()
                    .map(|&(x, y)| Point::new([x + MAX + 1, y + MAX + 1]))
                    .collect();
                let r1 = index.batch_delete(&pts);
                let r2 = oracle.batch_delete(&pts);
                assert_eq!(r1, 0, "{}: deleted an absent point", I::NAME);
                assert_eq!(r2, 0);
            }
        }
        assert_eq!(index.len(), oracle.len(), "{}: size drift", I::NAME);
        index.check_invariants();
    }

    // Final query agreement.
    let q = Point::new([MAX / 2, MAX / 2]);
    assert_eq!(
        index
            .knn(&q, 10)
            .iter()
            .map(|p| q.dist_sq(p))
            .collect::<Vec<_>>(),
        oracle
            .knn(&q, 10)
            .iter()
            .map(|p| q.dist_sq(p))
            .collect::<Vec<_>>(),
        "{}: final kNN disagreement",
        I::NAME
    );
    let rect = Rect::from_corners(
        Point::new([MAX / 4, MAX / 4]),
        Point::new([MAX / 2, MAX / 2]),
    );
    assert_eq!(index.range_count(&rect), oracle.range_count(&rect));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn porth_random_dynamic_sequences(
        initial in proptest::collection::vec(point_strategy(), 0..300),
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        run_sequence::<POrthTree<2>>(&to_points(&initial), &ops);
    }

    #[test]
    fn spac_random_dynamic_sequences(
        initial in proptest::collection::vec(point_strategy(), 0..300),
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        run_sequence::<SpacHTree<2>>(&to_points(&initial), &ops);
    }

    /// Insert-then-delete of the same batch is an identity on the point set.
    #[test]
    fn insert_then_delete_is_identity(
        base in proptest::collection::vec(point_strategy(), 1..200),
        batch in proptest::collection::vec(point_strategy(), 1..100),
    ) {
        let universe = workloads::universe::<2>(MAX);
        let base = to_points(&base);
        let batch = to_points(&batch);

        let mut spac = <SpacHTree<2> as SpatialIndex<i64, 2>>::build(&base, &universe);
        spac.batch_insert(&batch);
        prop_assert_eq!(spac.batch_delete(&batch), batch.len());
        prop_assert_eq!(spac.len(), base.len());
        spac.check_invariants();

        let mut porth = <POrthTree<2> as SpatialIndex<i64, 2>>::build(&base, &universe);
        porth.batch_insert(&batch);
        prop_assert_eq!(porth.batch_delete(&batch), batch.len());
        prop_assert_eq!(porth.len(), base.len());
        porth.check_invariants();
    }

    /// The P-Orth tree is history independent: any split of the data into two
    /// insertion batches produces a tree answering queries identically to the
    /// from-scratch build (with the same fixed universe).
    #[test]
    fn porth_history_independence(
        pts in proptest::collection::vec(point_strategy(), 2..400),
        split_frac in 0.0f64..1.0,
    ) {
        let universe = workloads::universe::<2>(MAX);
        let all = to_points(&pts);
        let split = ((all.len() as f64) * split_frac) as usize;

        let direct = <POrthTree<2> as SpatialIndex<i64, 2>>::build(&all, &universe);
        let mut incremental = <POrthTree<2> as SpatialIndex<i64, 2>>::build(&all[..split], &universe);
        incremental.batch_insert(&all[split..]);

        prop_assert_eq!(direct.len(), incremental.len());
        let q = Point::new([MAX / 3, MAX / 3]);
        prop_assert_eq!(
            direct.knn(&q, 5).iter().map(|p| q.dist_sq(p)).collect::<Vec<_>>(),
            incremental.knn(&q, 5).iter().map(|p| q.dist_sq(p)).collect::<Vec<_>>()
        );
    }
}
