//! Macro-generated trait-conformance suite: one shared battery, run against
//! **every registry entry**, in both `i64` and (where the family supports it)
//! `f64` coordinates.
//!
//! The battery exercises the v2 `SpatialIndex` surface through the
//! object-safe `DynIndex` façade — exactly what a runtime driver sees — and
//! covers the edge cases the unified API guarantees:
//!
//! * empty builds answer every query without panicking,
//! * duplicate points are kept as a multiset,
//! * `batch_diff` applies deletions strictly before insertions,
//! * kNN and range queries agree with the brute-force oracle,
//! * degenerate rectangles (empty, inverted, singleton, all-covering).

use psi::registry::{self, BuildOptions, DynIndex};
use psi::{BruteForce, Coord, Point, Rect, SpatialIndex};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

type Make<T> = dyn Fn(&[Point<T, 2>]) -> Box<dyn DynIndex<T, 2>>;
type Mk<T> = dyn Fn(i64, i64) -> Point<T, 2>;

const MAX: i64 = 100_000;

/// The shared battery. `make` constructs the index under test from a point
/// set; `mk` maps integer grid coordinates into the coordinate type.
fn battery<T: Coord>(make: &Make<T>, mk: &Mk<T>) {
    let everything = Rect::from_corners(mk(-MAX, -MAX), mk(MAX, MAX));

    // --- Empty build -----------------------------------------------------
    let empty = make(&[]);
    assert_eq!(empty.len(), 0, "{}: empty build size", empty.name());
    assert!(empty.is_empty());
    empty.check_invariants();
    assert!(empty.knn(&mk(0, 0), 3).is_empty());
    assert_eq!(empty.range_count(&everything), 0);
    assert!(empty.range_list(&everything).is_empty());
    assert!(empty.bounding_box().is_empty());

    // --- Duplicate points are a multiset ---------------------------------
    let p = mk(7, 7);
    let mut dup = make(&[p; 100]);
    assert_eq!(dup.len(), 100, "{}: duplicates kept", dup.name());
    dup.check_invariants();
    let five = dup.knn(&mk(0, 0), 5);
    assert_eq!(five.len(), 5);
    assert!(five.iter().all(|x| *x == p));
    assert_eq!(dup.batch_delete(&[p; 30]), 30);
    assert_eq!(dup.len(), 70);
    dup.check_invariants();
    assert_eq!(dup.range_count(&Rect::singleton(p)), 70);

    // --- batch_diff: deletions strictly before insertions ----------------
    let base: Vec<Point<T, 2>> = (0..400)
        .map(|i| mk((i * 17) % 101, (i * 31) % 103))
        .collect();
    let mut idx = make(&base);
    let absent = mk(9_999, 9_999);
    assert_eq!(
        idx.batch_diff(&[absent], &[absent]),
        0,
        "{}: batch_diff must delete before inserting (the deletion of a \
         point only present in the insert batch must not count)",
        idx.name()
    );
    assert_eq!(idx.len(), base.len() + 1);
    let existing = base[0];
    assert_eq!(idx.batch_diff(&[existing], &[existing]), 1);
    assert_eq!(idx.len(), base.len() + 1);
    idx.check_invariants();

    // --- kNN / range agreement with the oracle under churn ---------------
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut pts: Vec<Point<T, 2>> = (0..2_000)
        .map(|_| mk(rng.gen_range(0..MAX), rng.gen_range(0..MAX)))
        .collect();
    let mut index = make(&pts);
    let mut oracle = BruteForce::<T, 2>::build_with(&pts, None, ());

    let extra: Vec<Point<T, 2>> = (0..500)
        .map(|_| mk(rng.gen_range(0..MAX), rng.gen_range(0..MAX)))
        .collect();
    index.batch_insert(&extra);
    oracle.batch_insert(&extra);
    pts.extend_from_slice(&extra);
    let victims: Vec<Point<T, 2>> = pts.iter().step_by(4).copied().collect();
    assert_eq!(
        index.batch_delete(&victims),
        oracle.batch_delete(&victims),
        "{}: delete count",
        index.name()
    );
    index.check_invariants();
    assert_eq!(index.len(), oracle.len());
    assert_eq!(index.bounding_box(), oracle.bounding_box());

    for _ in 0..15 {
        let q = mk(rng.gen_range(0..MAX), rng.gen_range(0..MAX));
        let got: Vec<f64> = index
            .knn(&q, 10)
            .iter()
            .map(|x| T::dist_to_f64(q.dist_sq(x)))
            .collect();
        let want: Vec<f64> = oracle
            .knn(&q, 10)
            .iter()
            .map(|x| T::dist_to_f64(q.dist_sq(x)))
            .collect();
        assert_eq!(got, want, "{}: kNN distances", index.name());

        let rect = Rect::new(
            mk(rng.gen_range(0..MAX), rng.gen_range(0..MAX)),
            mk(rng.gen_range(0..MAX), rng.gen_range(0..MAX)),
        );
        assert_eq!(
            index.range_count(&rect),
            oracle.range_count(&rect),
            "{}: range_count",
            index.name()
        );
        let mut got = index.range_list(&rect);
        let mut want = oracle.range_list(&rect);
        got.sort();
        want.sort();
        assert_eq!(got, want, "{}: range_list", index.name());
    }

    // --- Degenerate rectangles -------------------------------------------
    let stored = oracle.points()[0];
    assert!(
        index.range_count(&Rect::singleton(stored)) >= 1,
        "{}: singleton rect on a stored point",
        index.name()
    );
    assert_eq!(index.range_count(&Rect::empty()), 0, "{}", index.name());
    // Inverted corners (lo > hi) form an empty box when not normalised.
    let inverted = Rect::from_corners(mk(10, 10), mk(-10, -10));
    assert!(inverted.is_empty());
    assert_eq!(index.range_count(&inverted), 0, "{}", index.name());
    assert_eq!(
        index.range_count(&everything),
        index.len(),
        "{}: all-covering rect",
        index.name()
    );
}

fn battery_i64(name: &'static str) {
    let opts = BuildOptions::<i64, 2>::default();
    let make = move |pts: &[Point<i64, 2>]| {
        registry::create::<2>(name, pts, &opts).unwrap_or_else(|e| panic!("{e}"))
    };
    battery::<i64>(&make, &|x, y| Point::new([x, y]));
}

fn battery_f64(name: &'static str) {
    // Quarter-integer data: scale 4 puts it exactly on the quantising
    // adapter's fixed-point grid, so the SFC families answer bit-precisely
    // too (natively-float families ignore the scale).
    let opts = BuildOptions::<f64, 2>::default().quantize_scale(4.0);
    let make = move |pts: &[Point<f64, 2>]| {
        registry::create_f64::<2>(name, pts, &opts).unwrap_or_else(|e| panic!("{e}"))
    };
    // Quarter-integer coordinates stay exact in f64, so distance comparisons
    // against the oracle are bit-precise.
    battery::<f64>(&make, &|x, y| {
        Point::new([x as f64 * 0.25, y as f64 * 0.25])
    });
}

/// One test per registry entry; float-capable families run the battery twice.
macro_rules! registry_conformance {
    ($($test:ident: $name:literal),+ $(,)?) => {
        $(
            #[test]
            fn $test() {
                battery_i64($name);
                if registry::float_names().contains(&$name) {
                    battery_f64($name);
                }
            }
        )+

        /// A registry entry added without extending this suite is a test bug:
        /// the macro's name list must stay in sync with `registry::names()`.
        #[test]
        fn conformance_covers_every_registry_entry() {
            let covered = [$($name),+];
            assert_eq!(registry::names(), covered);
        }
    };
}

registry_conformance! {
    p_orth_conforms: "p-orth",
    spac_h_conforms: "spac-h",
    spac_z_conforms: "spac-z",
    cpam_h_conforms: "cpam-h",
    cpam_z_conforms: "cpam-z",
    pkd_conforms: "pkd",
    zd_conforms: "zd",
    r_tree_conforms: "r-tree",
    brute_force_conforms: "brute-force",
}
