//! Property tests for the persistent (copy-on-write) PaC-tree backbone:
//! after `snapshot()`, **no mutation of the live tree may ever write a node
//! the snapshot can reach**. The audit is structural, not behavioural — it
//! walks the snapshot's `Arc`-held node graph, records every heap address
//! with a content fingerprint (child addresses included), and re-walks after
//! each live mutation: an in-place write to a shared node changes a
//! fingerprint; a spine that was copied instead leaves every recorded
//! address bit-identical. Answers are re-checked too, so the audit can't
//! pass vacuously.

use proptest::prelude::*;
use psi::{CpamHTree, SpacHTree};
use psi_geometry::{Point, PointI};
use psi_spac::PNode;
use psi_workloads as workloads;
use std::collections::BTreeMap;
use std::sync::Arc;

const MAX: i64 = 1 << 20;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(FNV_PRIME)
}

/// Shallow content fingerprint of one node. Interior fingerprints include
/// both child *addresses*, so re-pointing a shared node at new children is
/// caught as surely as rewriting its payload.
fn shallow_fp<const D: usize>(node: &PNode<D>) -> u64 {
    match node {
        PNode::Leaf {
            entries,
            sorted,
            bbox,
        } => {
            let mut h = fold(FNV_OFFSET, 1);
            h = fold(h, *sorted as u64);
            for (code, p) in entries {
                h = fold(h, *code);
                for c in p.coords {
                    h = fold(h, c as u64);
                }
            }
            for c in bbox.lo.coords.iter().chain(bbox.hi.coords.iter()) {
                h = fold(h, *c as u64);
            }
            h
        }
        PNode::Interior {
            left,
            right,
            pivot,
            size,
            bbox,
        } => {
            let mut h = fold(FNV_OFFSET, 2);
            h = fold(h, Arc::as_ptr(left) as usize as u64);
            h = fold(h, Arc::as_ptr(right) as usize as u64);
            h = fold(h, pivot.0);
            for c in pivot.1.coords {
                h = fold(h, c as u64);
            }
            h = fold(h, *size as u64);
            for c in bbox.lo.coords.iter().chain(bbox.hi.coords.iter()) {
                h = fold(h, *c as u64);
            }
            h
        }
    }
}

/// Record every `Arc`-held node reachable from `node`: heap address →
/// shallow fingerprint. (The root itself lives inline in the tree struct —
/// its address is not stable across moves — so the caller fingerprints it
/// separately.)
fn audit_reachable<const D: usize>(node: &PNode<D>, out: &mut BTreeMap<usize, u64>) {
    if let PNode::Interior { left, right, .. } = node {
        for child in [left, right] {
            let addr = Arc::as_ptr(child) as usize;
            if out.insert(addr, shallow_fp(child)).is_none() {
                audit_reachable(child, out);
            }
        }
    }
}

/// One frozen observation of a snapshot, to be re-verified after every
/// subsequent live mutation.
struct Frozen<S> {
    snap: S,
    root_fp: u64,
    nodes: BTreeMap<usize, u64>,
    points: Vec<PointI<2>>,
}

fn to_points(v: &[(i64, i64)]) -> Vec<PointI<2>> {
    v.iter().map(|&(x, y)| Point::new([x, y])).collect()
}

fn point_strategy() -> impl Strategy<Value = (i64, i64)> {
    (0..MAX, 0..MAX)
}

/// One step of the mutation workload: insert fresh points, or delete a
/// fraction-addressed slice of the current content.
#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<(i64, i64)>),
    DeleteExisting(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(point_strategy(), 1..60).prop_map(Op::Insert),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::DeleteExisting(a, b)),
    ]
}

macro_rules! persistence_audit {
    ($tree:ty, $initial:expr, $ops:expr) => {{
        let initial = to_points($initial);
        let mut live = <$tree>::build(&initial);
        let mut contents = initial;
        let mut frozen: Vec<Frozen<$tree>> = Vec::new();

        for op in $ops {
            // Freeze a snapshot of the current state...
            let snap = live.snapshot();
            let mut nodes = BTreeMap::new();
            audit_reachable(snap.root(), &mut nodes);
            let mut points = snap.collect_points();
            points.sort_unstable();
            frozen.push(Frozen {
                root_fp: shallow_fp(snap.root()),
                nodes,
                points,
                snap,
            });

            // ...mutate the live tree...
            match op {
                Op::Insert(raw) => {
                    let pts = to_points(raw);
                    live.batch_insert(&pts);
                    contents.extend_from_slice(&pts);
                }
                Op::DeleteExisting(a, b) => {
                    if contents.is_empty() {
                        continue;
                    }
                    let start = (*a as usize * contents.len()) / 256;
                    let len = ((*b as usize * contents.len()) / 256).min(contents.len() - start);
                    let victims: Vec<PointI<2>> = contents[start..start + len].to_vec();
                    live.batch_delete(&victims);
                    contents.drain(start..start + len);
                }
            }
            live.check_invariants();

            // ...and audit EVERY snapshot taken so far: same addresses, same
            // fingerprints, same answers. A single in-place write to a
            // shared node fails here.
            for f in &frozen {
                prop_assert_eq!(
                    shallow_fp(f.snap.root()),
                    f.root_fp,
                    "mutation rewrote a snapshot's root"
                );
                let mut now = BTreeMap::new();
                audit_reachable(f.snap.root(), &mut now);
                prop_assert_eq!(
                    &now,
                    &f.nodes,
                    "mutation wrote a node reachable from an earlier snapshot"
                );
                let mut pts = f.snap.collect_points();
                pts.sort_unstable();
                prop_assert_eq!(&pts, &f.points, "a snapshot's answers drifted");
            }
        }
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cpam_snapshots_are_immune_to_live_mutations(
        initial in proptest::collection::vec(point_strategy(), 0..300),
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        persistence_audit!(CpamHTree<2>, &initial, &ops);
    }

    #[test]
    fn spac_snapshots_are_immune_to_live_mutations(
        initial in proptest::collection::vec(point_strategy(), 0..300),
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        persistence_audit!(SpacHTree<2>, &initial, &ops);
    }
}

/// Structural sharing is real, not just correct: a small batch against a
/// large snapshotted tree copies a spine and shares essentially everything
/// else with the snapshot.
#[test]
fn small_batches_share_almost_all_nodes_with_the_snapshot() {
    let data = workloads::uniform::<2>(40_000, MAX, 3);
    let mut live = CpamHTree::<2>::build(&data);
    let snap = live.snapshot();
    let mut before = BTreeMap::new();
    audit_reachable(snap.root(), &mut before);

    // 8 scattered points copy at most 8 spines of O(log n) nodes each.
    live.batch_insert(&workloads::uniform::<2>(8, MAX, 4));

    let mut after = BTreeMap::new();
    audit_reachable(live.root(), &mut after);
    let shared = after.keys().filter(|a| before.contains_key(*a)).count();
    assert!(
        shared * 10 >= after.len() * 9,
        "expected >=90% of the live tree shared with the snapshot, got {shared}/{}",
        after.len()
    );

    // And the snapshot's own nodes are untouched, bit for bit.
    let mut now = BTreeMap::new();
    audit_reachable(snap.root(), &mut now);
    assert_eq!(now, before, "live mutation wrote into the snapshot");
    assert_eq!(snap.len(), 40_000);
    assert_eq!(live.len(), 40_008);
}
