//! Leaf-equivalence battery (PR 7): the SoA leaf kernels must agree *exactly*
//! — bit pattern for bit pattern — with the AoS reference kernels they
//! replaced, and the trees that adopted [`LeafSoA`] (Pkd, P-Orth) must keep
//! answering queries identically to a brute-force scan.
//!
//! The leaf-kernel properties deliberately feed fully arbitrary `f64` bit
//! patterns (every NaN payload, `-0.0`, infinities, subnormals): the kernels
//! are defined over the IEEE 754 total order, so nothing about the input is
//! out of contract at the leaf level. Tree-level properties stay within each
//! tree's documented domain (finite coordinates, `-0.0` and subnormals
//! included) because spatial splitting on NaN is undefined for every family.

use proptest::prelude::*;
use psi::{POrthTreeGeneric as POrthTree, PkdTreeGeneric as PkdTree};
use psi_geometry::leaf::{aos_knn_offer, aos_range_count, aos_range_visit};
use psi_geometry::{Coord, KnnHeap, LeafSoA, Point, Rect};

// ---------------------------------------------------------------------------
// Strategies.
// ---------------------------------------------------------------------------

/// The f64 values most likely to break a total-order kernel.
fn special_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(f64::from_bits(0x7FF8_0000_0000_0001)), // +NaN, payload set
        Just(f64::from_bits(0xFFF8_0000_0000_0001)), // -NaN, payload set
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(0.0),
        Just(-0.0),
        Just(f64::MIN_POSITIVE / 2.0),  // positive subnormal
        Just(-f64::MIN_POSITIVE / 2.0), // negative subnormal
        Just(1.0),
        Just(-1.0),
    ]
}

/// Any f64 bit pattern at all: ordinary values, specials, and raw bits.
fn wild_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        (-1.0e3..1.0e3).boxed(),
        special_f64().boxed(),
        any::<u64>().prop_map(f64::from_bits).boxed(),
    ]
}

/// Finite f64 (tree-level domain), still including -0.0 and subnormals.
fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        (-1.0e3..1.0e3).boxed(),
        Just(-0.0).boxed(),
        Just(0.0).boxed(),
        Just(f64::MIN_POSITIVE / 2.0).boxed(),
        Just(-f64::MIN_POSITIVE / 2.0).boxed(),
        (-1.0e12..1.0e12).boxed(),
    ]
}

/// Small i64 domain so duplicates and exact ties are frequent.
fn tie_i64() -> impl Strategy<Value = i64> {
    prop_oneof![(-8i64..8).boxed(), (-1000i64..1000).boxed(),]
}

/// i64 values straddling the `PRUNABLE_KEY_*` fence (±2^61) while keeping a
/// 2-d squared-distance sum inside i128 (kernels would overflow-panic in
/// debug otherwise, in AoS and SoA alike).
fn fence_i64() -> impl Strategy<Value = i64> {
    prop_oneof![
        (-1000i64..1000).boxed(),
        ((1i64 << 60)..(3i64 << 60)).boxed(),
        (-(3i64 << 60)..-(1i64 << 60)).boxed(),
    ]
}

fn points_f(raw: &[(f64, f64)]) -> Vec<Point<f64, 2>> {
    raw.iter().map(|&(x, y)| Point::new([x, y])).collect()
}

fn points_i(raw: &[(i64, i64)]) -> Vec<Point<i64, 2>> {
    raw.iter().map(|&(x, y)| Point::new([x, y])).collect()
}

/// A closed query box from two arbitrary corner draws, ordered per dimension
/// by the coordinate total order (so "inverted" draws still form a box).
fn rect_from<T: Coord, const D: usize>(a: Point<T, D>, b: Point<T, D>) -> Rect<T, D> {
    let mut lo = a;
    let mut hi = b;
    for d in 0..D {
        if lo.coords[d].total_cmp(&hi.coords[d]) == std::cmp::Ordering::Greater {
            std::mem::swap(&mut lo.coords[d], &mut hi.coords[d]);
        }
    }
    Rect::from_corners(lo, hi)
}

// ---------------------------------------------------------------------------
// Exact-equality helpers (f64 compared by bits, never by ==).
// ---------------------------------------------------------------------------

fn bits_f(points: &[Point<f64, 2>]) -> Vec<[u64; 2]> {
    points
        .iter()
        .map(|p| [p.coords[0].to_bits(), p.coords[1].to_bits()])
        .collect()
}

/// Run all three kernels on SoA and AoS forms and require exact agreement.
fn assert_leaf_kernels_agree_f64(
    points: &[Point<f64, 2>],
    rect: &Rect<f64, 2>,
    q: Point<f64, 2>,
    k: usize,
) {
    let soa = LeafSoA::from_points(points);

    assert_eq!(soa.range_count(rect), aos_range_count(points, rect));

    let mut soa_hits = Vec::new();
    soa.range_visit(rect, |p: &Point<f64, 2>| soa_hits.push(*p));
    let mut aos_hits = Vec::new();
    aos_range_visit(points, rect, |p: &Point<f64, 2>| aos_hits.push(*p));
    assert_eq!(
        bits_f(&soa_hits),
        bits_f(&aos_hits),
        "range_visit order/bits"
    );

    let mut soa_heap = KnnHeap::new(k);
    soa.knn_offer(&q, &mut soa_heap);
    let mut aos_heap = KnnHeap::new(k);
    aos_knn_offer(points, &q, &mut aos_heap);
    let soa_knn = soa_heap.into_sorted_with_dist();
    let aos_knn = aos_heap.into_sorted_with_dist();
    assert_eq!(soa_knn.len(), aos_knn.len());
    for ((ds, ps), (da, pa)) in soa_knn.iter().zip(aos_knn.iter()) {
        assert_eq!(ds.to_bits(), da.to_bits(), "kNN distance bits");
        assert_eq!(bits_f(&[*ps]), bits_f(&[*pa]), "kNN point bits (ties)");
    }
}

fn assert_leaf_kernels_agree_i64(
    points: &[Point<i64, 2>],
    rect: &Rect<i64, 2>,
    q: Point<i64, 2>,
    k: usize,
) {
    let soa = LeafSoA::from_points(points);

    assert_eq!(soa.range_count(rect), aos_range_count(points, rect));

    let mut soa_hits = Vec::new();
    soa.range_visit(rect, |p: &Point<i64, 2>| soa_hits.push(*p));
    let mut aos_hits = Vec::new();
    aos_range_visit(points, rect, |p: &Point<i64, 2>| aos_hits.push(*p));
    assert_eq!(soa_hits, aos_hits, "range_visit order");

    let mut soa_heap = KnnHeap::new(k);
    soa.knn_offer(&q, &mut soa_heap);
    let mut aos_heap = KnnHeap::new(k);
    aos_knn_offer(points, &q, &mut aos_heap);
    assert_eq!(
        soa_heap.into_sorted_with_dist(),
        aos_heap.into_sorted_with_dist(),
        "kNN results incl. ties"
    );
}

// ---------------------------------------------------------------------------
// Tree-level oracle: a plain AoS scan over the original point slice.
// ---------------------------------------------------------------------------

/// Sort key that is total even for f64 (so unordered result sets compare).
fn sort_points<T: Coord, const D: usize>(points: &mut [Point<T, D>]) {
    points.sort_by(|a, b| {
        (0..D)
            .map(|d| a.coords[d].total_key().cmp(&b.coords[d].total_key()))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

fn assert_tree_matches_scan<T, I, const D: usize>(
    points: &[Point<T, D>],
    index: &I,
    rect: &Rect<T, D>,
    q: Point<T, D>,
    k: usize,
) where
    T: Coord,
    I: TreeOps<T, D>,
{
    let expect_count = aos_range_count(points, rect);
    assert_eq!(index.tree_range_count(rect), expect_count);

    let mut got = index.tree_range_list(rect);
    let mut expect: Vec<Point<T, D>> = points
        .iter()
        .filter(|p| rect.contains(p))
        .copied()
        .collect();
    sort_points(&mut got);
    sort_points(&mut expect);
    assert_eq!(got.len(), expect.len());
    for (g, e) in got.iter().zip(expect.iter()) {
        for d in 0..D {
            assert_eq!(g.coords[d].total_key(), e.coords[d].total_key());
        }
    }

    // kNN: the distance multiset must match a brute-force scan exactly.
    let got_knn = index.tree_knn(&q, k);
    let expect_knn = psi_geometry::brute_force_knn(points, &q, k);
    assert_eq!(got_knn.len(), expect_knn.len());
    for (g, e) in got_knn.iter().zip(expect_knn.iter()) {
        assert_eq!(
            T::dist_cmp(q.dist_sq(g), q.dist_sq(e)),
            std::cmp::Ordering::Equal,
            "kNN distance rank mismatch"
        );
    }
}

/// The minimal query surface shared by the two LeafSoA-adopting trees.
trait TreeOps<T: Coord, const D: usize> {
    fn tree_range_count(&self, rect: &Rect<T, D>) -> usize;
    fn tree_range_list(&self, rect: &Rect<T, D>) -> Vec<Point<T, D>>;
    fn tree_knn(&self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>>;
}

impl<T: Coord, const D: usize> TreeOps<T, D> for PkdTree<T, D> {
    fn tree_range_count(&self, rect: &Rect<T, D>) -> usize {
        self.range_count(rect)
    }
    fn tree_range_list(&self, rect: &Rect<T, D>) -> Vec<Point<T, D>> {
        self.range_list(rect)
    }
    fn tree_knn(&self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>> {
        self.knn(q, k)
    }
}

impl<T: Coord, const D: usize> TreeOps<T, D> for POrthTree<T, D> {
    fn tree_range_count(&self, rect: &Rect<T, D>) -> usize {
        self.range_count(rect)
    }
    fn tree_range_list(&self, rect: &Rect<T, D>) -> Vec<Point<T, D>> {
        self.range_list(rect)
    }
    fn tree_knn(&self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>> {
        self.knn(q, k)
    }
}

// ---------------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// f64 leaf kernels over completely arbitrary bit patterns.
    #[test]
    fn f64_leaf_kernels_bit_identical_to_aos(
        raw in proptest::collection::vec((wild_f64(), wild_f64()), 0..96),
        ra in (wild_f64(), wild_f64()),
        rb in (wild_f64(), wild_f64()),
        q in (wild_f64(), wild_f64()),
        k in 1usize..16,
    ) {
        let points = points_f(&raw);
        let rect = rect_from(Point::new([ra.0, ra.1]), Point::new([rb.0, rb.1]));
        assert_leaf_kernels_agree_f64(&points, &rect, Point::new([q.0, q.1]), k);
    }

    /// i64 leaf kernels over a tie-heavy domain.
    #[test]
    fn i64_leaf_kernels_identical_to_aos(
        raw in proptest::collection::vec((tie_i64(), tie_i64()), 0..96),
        ra in (tie_i64(), tie_i64()),
        rb in (tie_i64(), tie_i64()),
        q in (tie_i64(), tie_i64()),
        k in 1usize..16,
    ) {
        let points = points_i(&raw);
        let rect = rect_from(Point::new([ra.0, ra.1]), Point::new([rb.0, rb.1]));
        assert_leaf_kernels_agree_i64(&points, &rect, Point::new([q.0, q.1]), k);
    }

    /// Multi-leaf kNN with one persistent heap, as the trees drive it: the
    /// bound tightens from leaf to leaf, which is exactly the regime where
    /// the SoA leaf's bbox prune can skip whole leaves. Results must stay
    /// bit-identical to the AoS scan — over arbitrary bit patterns, where
    /// pruning must fence itself off rather than trust NaN/inf arithmetic.
    #[test]
    fn f64_multi_leaf_knn_persistent_heap(
        raw in proptest::collection::vec((wild_f64(), wild_f64()), 1..160),
        leaf_size in 4usize..24,
        q in (wild_f64(), wild_f64()),
        k in 1usize..8,
    ) {
        let points = points_f(&raw);
        let query = Point::new([q.0, q.1]);
        let mut soa_heap = KnnHeap::new(k);
        let mut aos_heap = KnnHeap::new(k);
        for chunk in points.chunks(leaf_size) {
            let soa = LeafSoA::from_points(chunk);
            soa.knn_offer(&query, &mut soa_heap);
            aos_knn_offer(chunk, &query, &mut aos_heap);
        }
        let soa_knn = soa_heap.into_sorted_with_dist();
        let aos_knn = aos_heap.into_sorted_with_dist();
        prop_assert_eq!(soa_knn.len(), aos_knn.len());
        for ((ds, ps), (da, pa)) in soa_knn.iter().zip(aos_knn.iter()) {
            prop_assert_eq!(ds.to_bits(), da.to_bits(), "kNN distance bits");
            prop_assert_eq!(bits_f(&[*ps]), bits_f(&[*pa]), "kNN point bits (ties)");
        }
    }

    /// Same persistent-heap regime for i64, with coordinates straddling the
    /// prunable fence so the overflow fallback path is exercised.
    #[test]
    fn i64_multi_leaf_knn_persistent_heap(
        raw in proptest::collection::vec((fence_i64(), fence_i64()), 1..160),
        leaf_size in 4usize..24,
        q in (fence_i64(), fence_i64()),
        k in 1usize..8,
    ) {
        let points = points_i(&raw);
        let query = Point::new([q.0, q.1]);
        let mut soa_heap = KnnHeap::new(k);
        let mut aos_heap = KnnHeap::new(k);
        for chunk in points.chunks(leaf_size) {
            let soa = LeafSoA::from_points(chunk);
            soa.knn_offer(&query, &mut soa_heap);
            aos_knn_offer(chunk, &query, &mut aos_heap);
        }
        prop_assert_eq!(
            soa_heap.into_sorted_with_dist(),
            aos_heap.into_sorted_with_dist(),
            "kNN results incl. ties"
        );
    }

    /// Pkd over i64: tree answers equal a brute-force scan after the SoA port.
    #[test]
    fn pkd_i64_tree_matches_scan(
        raw in proptest::collection::vec((tie_i64(), tie_i64()), 1..400),
        ra in (tie_i64(), tie_i64()),
        rb in (tie_i64(), tie_i64()),
        q in (tie_i64(), tie_i64()),
        k in 1usize..12,
    ) {
        let points = points_i(&raw);
        let tree = PkdTree::<i64, 2>::build(&points);
        tree.check_invariants();
        let rect = rect_from(Point::new([ra.0, ra.1]), Point::new([rb.0, rb.1]));
        assert_tree_matches_scan(&points, &tree, &rect, Point::new([q.0, q.1]), k);
    }

    /// Pkd over f64 (finite incl. -0.0/subnormals).
    #[test]
    fn pkd_f64_tree_matches_scan(
        raw in proptest::collection::vec((finite_f64(), finite_f64()), 1..400),
        ra in (finite_f64(), finite_f64()),
        rb in (finite_f64(), finite_f64()),
        q in (finite_f64(), finite_f64()),
        k in 1usize..12,
    ) {
        let points = points_f(&raw);
        let tree = PkdTree::<f64, 2>::build(&points);
        tree.check_invariants();
        let rect = rect_from(Point::new([ra.0, ra.1]), Point::new([rb.0, rb.1]));
        assert_tree_matches_scan(&points, &tree, &rect, Point::new([q.0, q.1]), k);
    }

    /// P-Orth over i64.
    #[test]
    fn porth_i64_tree_matches_scan(
        raw in proptest::collection::vec((tie_i64(), tie_i64()), 1..400),
        ra in (tie_i64(), tie_i64()),
        rb in (tie_i64(), tie_i64()),
        q in (tie_i64(), tie_i64()),
        k in 1usize..12,
    ) {
        let points = points_i(&raw);
        let tree = POrthTree::<i64, 2>::build(&points);
        tree.check_invariants();
        let rect = rect_from(Point::new([ra.0, ra.1]), Point::new([rb.0, rb.1]));
        assert_tree_matches_scan(&points, &tree, &rect, Point::new([q.0, q.1]), k);
    }

    /// P-Orth over f64 (finite incl. -0.0/subnormals).
    #[test]
    fn porth_f64_tree_matches_scan(
        raw in proptest::collection::vec((finite_f64(), finite_f64()), 1..400),
        ra in (finite_f64(), finite_f64()),
        rb in (finite_f64(), finite_f64()),
        q in (finite_f64(), finite_f64()),
        k in 1usize..12,
    ) {
        let points = points_f(&raw);
        let tree = POrthTree::<f64, 2>::build(&points);
        tree.check_invariants();
        let rect = rect_from(Point::new([ra.0, ra.1]), Point::new([rb.0, rb.1]));
        assert_tree_matches_scan(&points, &tree, &rect, Point::new([q.0, q.1]), k);
    }
}
