//! End-to-end semantics for the `psi-net` socket front-end: answers over
//! TCP must be **checksum-identical** to in-process answers, on both
//! transports, with and without coalescing, for both coordinate types —
//! and hostile connections (malformed frames, oversized prefixes, unknown
//! opcodes, mid-frame disconnects) must be answered with an error frame or
//! dropped cleanly, leaving the server fully serviceable.

use psi::registry::{self, BuildOptions};
use psi::{Point, PointI, Rect};
use psi_net::client::WireClient;
use psi_net::loadgen::{fanout, replay_checksum, FanoutSpec};
use psi_net::wire::{
    self, decode_reply, read_frame, Reply, Request, ERR_MALFORMED, ERR_OPCODE, ERR_SHAPE,
    ERR_TOO_LARGE, LEN_PREFIX,
};
use psi_net::{loopback, NetConfig, NetServer, Transport};
use psi_server::{closed_loop_with, IndexFactory, LoadSpec, PsiServer, QueryClient, ServeConfig};
use psi_workloads as workloads;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const MAX: i64 = 1_000_000;

fn i64_server(shards: usize) -> (Arc<PsiServer<i64, 2>>, Vec<PointI<2>>) {
    let data = workloads::varden::<2>(1_500, MAX, 11);
    let universe = workloads::universe::<2>(MAX);
    let factory: IndexFactory<i64, 2> = Arc::new(|pts: &[PointI<2>]| {
        registry::create::<2>("pkd", pts, &BuildOptions::default()).unwrap()
    });
    let server = Arc::new(PsiServer::new(
        &data,
        &universe,
        ServeConfig {
            shards,
            ..Default::default()
        },
        factory,
    ));
    (server, data)
}

fn query_mix(data: &[PointI<2>]) -> (Vec<PointI<2>>, Vec<Rect<i64, 2>>) {
    (
        workloads::ind_queries(data, 24, 12),
        workloads::range_queries(data, MAX, 40, 10, 13),
    )
}

/// Wait for the transport to retire closed connections (accept/close is
/// asynchronous with respect to client-side drops).
fn await_drained(net: &NetServer) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while net.open_connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "server never drained: {} connections still open",
            net.open_connections()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The tentpole identity: a fan-out run over sockets produces the same
/// combined answer checksum as replaying the identical op sequences through
/// the matching in-process handle — per transport, per query backend.
#[test]
fn socket_answers_are_checksum_identical_to_inprocess() {
    for transport in [Transport::Threaded, Transport::Evented] {
        for coalesce in [true, false] {
            let (server, data) = i64_server(3);
            let (queries, rects) = query_mix(&data);
            let net = NetServer::spawn(
                Arc::clone(&server),
                loopback(),
                NetConfig {
                    transport,
                    coalesce,
                },
            )
            .expect("spawn net server");
            let spec = FanoutSpec {
                connections: 48,
                workers: 3,
                rounds: 16,
                k: 5,
            };
            let label = format!("{}/coalesce={coalesce}", transport.name());
            let out = fanout(net.addr(), &queries, &rects, &spec)
                .unwrap_or_else(|e| panic!("{label}: fanout failed: {e}"));
            assert_eq!(out.ops, 48 * 16, "{label}");
            assert_eq!(net.accepted(), 48, "{label}");

            // Replay through the same query path the transport used, so
            // the only difference under test is the wire.
            let expected = if coalesce {
                let mut handle = server.client();
                replay_checksum(&mut handle, &queries, &rects, &spec)
            } else {
                let mut handle = server.direct_client();
                replay_checksum(&mut handle, &queries, &rects, &spec)
            };
            assert_eq!(
                out.checksum, expected,
                "{label}: socket answers diverged from in-process answers"
            );
            await_drained(&net);
            net.shutdown();
        }
    }
}

/// Same identity in f64 (coordinates cross the wire as raw IEEE bits).
#[test]
fn socket_answers_match_inprocess_f64() {
    let data = workloads::varden::<2>(1_200, MAX, 21);
    let fdata: Vec<Point<f64, 2>> = data
        .iter()
        .map(|p| Point::new(p.coords.map(|c| c as f64)))
        .collect();
    let universe = Rect::from_corners(Point::new([0.0, 0.0]), Point::new([MAX as f64, MAX as f64]));
    let factory: IndexFactory<f64, 2> = Arc::new(|pts: &[Point<f64, 2>]| {
        registry::create_f64::<2>("pkd", pts, &BuildOptions::default()).unwrap()
    });
    let server = Arc::new(PsiServer::new(
        &fdata,
        &universe,
        ServeConfig {
            shards: 2,
            ..Default::default()
        },
        factory,
    ));
    let (iqueries, irects) = query_mix(&data);
    let queries: Vec<Point<f64, 2>> = iqueries
        .iter()
        .map(|p| Point::new(p.coords.map(|c| c as f64)))
        .collect();
    let rects: Vec<Rect<f64, 2>> = irects
        .iter()
        .map(|r| {
            Rect::from_corners(
                Point::new(r.lo.coords.map(|c| c as f64)),
                Point::new(r.hi.coords.map(|c| c as f64)),
            )
        })
        .collect();
    let net = NetServer::spawn(Arc::clone(&server), loopback(), NetConfig::default())
        .expect("spawn net server");
    let spec = FanoutSpec {
        connections: 32,
        workers: 2,
        rounds: 12,
        k: 4,
    };
    let out = fanout(net.addr(), &queries, &rects, &spec).expect("fanout");
    let mut handle = server.client();
    let expected = replay_checksum(&mut handle, &queries, &rects, &spec);
    assert_eq!(out.checksum, expected, "f64 socket answers diverged");
    net.shutdown();
}

/// The socket mode of `psi_server`'s closed-loop generator: the same driver
/// (same shape assertions, same count-conservation check) runs with wire
/// clients instead of in-process handles, under concurrent writer churn.
#[test]
fn closed_loop_drives_sockets_under_writer_churn() {
    for transport in [Transport::Threaded, Transport::Evented] {
        let (server, data) = i64_server(2);
        let (queries, rects) = query_mix(&data);
        let net = NetServer::spawn(
            Arc::clone(&server),
            loopback(),
            NetConfig {
                transport,
                coalesce: true,
            },
        )
        .expect("spawn net server");
        let addr = net.addr();
        let spec = LoadSpec {
            clients: 4,
            ops_per_client: 40,
            k: 5,
            write_batch: 64,
            write_every_ms: 0,
        };
        let out = closed_loop_with(&server, &data, &queries, &rects, &spec, |_| {
            let client: WireClient<i64, 2> =
                WireClient::connect(addr).map_err(|e| e.to_string())?;
            Ok(Box::new(client) as Box<dyn QueryClient<i64, 2>>)
        })
        .unwrap_or_else(|e| panic!("{}: closed loop over sockets: {e}", transport.name()));
        assert_eq!(out.ops, 160, "{}", transport.name());
        assert!(out.batches > 0, "{}", transport.name());
        net.shutdown();
    }
}

/// Updates over the wire: move batches round-trip through `apply_batch`
/// frames, conserve the live count, and advance the applied-batch counter.
#[test]
fn apply_batch_over_the_wire_conserves_counts() {
    let (server, data) = i64_server(2);
    let net = NetServer::spawn(Arc::clone(&server), loopback(), NetConfig::default())
        .expect("spawn net server");
    let mut client: WireClient<i64, 2> = WireClient::connect(net.addr()).expect("connect");
    assert_eq!(client.shards(), 2);
    let before = server.batches_applied();
    for r in 0..5 {
        let lo = r * 100;
        let slice = data[lo..lo + 100].to_vec();
        client.apply_batch(slice.clone(), slice).expect("apply");
    }
    server.quiesce();
    assert_eq!(server.view().len(), data.len(), "a wire batch tore");
    assert!(server.batches_applied() >= before + 5);
    net.shutdown();
}

/// Shape negotiation: a client with the wrong coordinate type is refused at
/// hello with a typed error, before any query runs.
#[test]
fn hello_rejects_mismatched_shape() {
    let (server, _) = i64_server(1);
    let net = NetServer::spawn(Arc::clone(&server), loopback(), NetConfig::default())
        .expect("spawn net server");
    let err = match WireClient::<f64, 2>::connect(net.addr()) {
        Err(e) => e,
        Ok(_) => panic!("shape mismatch must refuse"),
    };
    assert!(
        err.to_string().contains(&format!("code {ERR_SHAPE}")),
        "unexpected refusal: {err}"
    );
    net.shutdown();
}

/// Read the single error frame a poisoned connection gets, and require the
/// server to close it afterwards.
fn expect_error_then_close(stream: &mut TcpStream, want_code: u16, label: &str) {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut payload = Vec::new();
    assert!(
        read_frame(stream, &mut payload).unwrap_or_else(|e| panic!("{label}: read error: {e}")),
        "{label}: server closed without an error frame"
    );
    let (_, reply) = decode_reply::<i64, 2>(&payload).expect("error frame decodes");
    match reply {
        Reply::Error { code, .. } => assert_eq!(code, want_code, "{label}"),
        other => panic!("{label}: expected an error frame, got {other:?}"),
    }
    // ... then EOF.
    let mut rest = Vec::new();
    while read_frame(stream, &mut rest).unwrap_or(false) {}
}

/// The malformed-connection gauntlet, per transport: every abuse is either
/// answered with a typed error frame or dropped cleanly, the reactor keeps
/// running, and a well-formed client still gets correct answers afterwards.
#[test]
fn malformed_connections_never_wound_the_server() {
    for transport in [Transport::Threaded, Transport::Evented] {
        let (server, data) = i64_server(2);
        let (queries, rects) = query_mix(&data);
        let net = NetServer::spawn(
            Arc::clone(&server),
            loopback(),
            NetConfig {
                transport,
                coalesce: true,
            },
        )
        .expect("spawn net server");
        let label = transport.name();
        let hello_bytes = |out: &mut Vec<u8>| {
            wire::encode_request(&Request::<i64, 2>::hello(), 0, out).unwrap();
        };

        // 1. Oversized length prefix straight away.
        {
            let mut s = TcpStream::connect(net.addr()).unwrap();
            s.write_all(&u32::MAX.to_le_bytes()).unwrap();
            expect_error_then_close(&mut s, ERR_TOO_LARGE, &format!("{label}/oversized"));
        }
        // 2. Unknown opcode after a valid hello.
        {
            let mut s = TcpStream::connect(net.addr()).unwrap();
            let mut out = Vec::new();
            hello_bytes(&mut out);
            out.extend_from_slice(&13u32.to_le_bytes());
            out.push(0x42); // no such opcode
            out.extend_from_slice(&9u64.to_le_bytes());
            out.extend_from_slice(&[0u8; 4]);
            s.write_all(&out).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut payload = Vec::new();
            assert!(read_frame(&mut s, &mut payload).unwrap(), "{label}: hello");
            expect_error_then_close(&mut s, ERR_OPCODE, &format!("{label}/unknown-opcode"));
        }
        // 3. Truncated frame: length prefix promises more bytes than the
        //    body delivers before a trailing valid frame — body parsing
        //    consumes the valid frame's bytes and rejects.
        {
            let mut s = TcpStream::connect(net.addr()).unwrap();
            let mut out = Vec::new();
            hello_bytes(&mut out);
            let mut knn = Vec::new();
            wire::encode_request(
                &Request::<i64, 2>::Knn {
                    q: Point::new([1, 2]),
                    k: 3,
                    at: None,
                },
                1,
                &mut knn,
            )
            .unwrap();
            // Declare 5 extra bytes the frame does not carry.
            let len = u32::from_le_bytes(knn[..LEN_PREFIX].try_into().unwrap()) + 5;
            knn[..LEN_PREFIX].copy_from_slice(&len.to_le_bytes());
            knn.extend_from_slice(&[0u8; 5]); // pad so the frame completes
            out.extend_from_slice(&knn);
            s.write_all(&out).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut payload = Vec::new();
            assert!(read_frame(&mut s, &mut payload).unwrap(), "{label}: hello");
            expect_error_then_close(&mut s, ERR_MALFORMED, &format!("{label}/truncated"));
        }
        // 4. Mid-frame disconnect, with a query already in flight: the
        //    coalescer's answer for the dead connection must be discarded,
        //    not leaked or misdelivered.
        {
            let mut s = TcpStream::connect(net.addr()).unwrap();
            let mut out = Vec::new();
            hello_bytes(&mut out);
            wire::encode_request(
                &Request::<i64, 2>::Knn {
                    q: queries[0],
                    k: 5,
                    at: None,
                },
                1,
                &mut out,
            )
            .unwrap();
            out.extend_from_slice(&200u32.to_le_bytes()); // frame never finished
            out.push(0x10);
            s.write_all(&out).unwrap();
            drop(s);
        }
        // 5. Garbage hello (wrong magic).
        {
            let mut s = TcpStream::connect(net.addr()).unwrap();
            let mut out = Vec::new();
            out.extend_from_slice(&16u32.to_le_bytes());
            out.push(0x01);
            out.extend_from_slice(&0u64.to_le_bytes());
            out.extend_from_slice(b"NOPE");
            out.extend_from_slice(&[1, 0, 0]);
            s.write_all(&out).unwrap();
            expect_error_then_close(&mut s, ERR_MALFORMED, &format!("{label}/bad-magic"));
        }

        assert!(
            net.protocol_errors() >= 4,
            "{label}: protocol errors went uncounted"
        );
        // The server is unwounded: a fresh well-formed run still matches
        // in-process answers exactly.
        let spec = FanoutSpec {
            connections: 8,
            workers: 2,
            rounds: 8,
            k: 5,
        };
        let out = fanout(net.addr(), &queries, &rects, &spec)
            .unwrap_or_else(|e| panic!("{label}: post-abuse fanout failed: {e}"));
        let mut handle = server.client();
        assert_eq!(
            out.checksum,
            replay_checksum(&mut handle, &queries, &rects, &spec),
            "{label}: answers diverged after abuse"
        );
        await_drained(&net);
        net.shutdown();
    }
}
