//! Integration tests of the incremental-workload driver end to end: the same
//! protocols the figure binaries run, at a tiny scale, with correctness checks
//! instead of timings.

use psi::driver::{incremental_delete, incremental_insert, timed_build, QuerySet};
use psi::registry::{self, BuildOptions};
use psi::{
    BruteForce, CpamHTree, POrthTree2, PkdTree, RTree, SpacHTree, SpacZTree, SpatialIndex, ZdTree,
};
use psi_workloads::{self as workloads, Distribution};

const MAX: i64 = 1_000_000_000;

fn query_set(data: &[psi::PointI<2>]) -> QuerySet<i64, 2> {
    QuerySet {
        knn_ind: workloads::ind_queries(data, 40, 3),
        knn_ood: workloads::ood_queries::<2>(MAX, 40, 4),
        k: 10,
        ranges: workloads::range_queries(data, MAX, 50, 20, 5),
    }
}

/// The incremental protocols must end with exactly the same index content as
/// a one-shot build, for every index and every batch ratio.
fn protocol<I: SpatialIndex<i64, 2>>(dist: Distribution) {
    let n = 4_000;
    let data = dist.generate::<2>(n, MAX, 11);
    let universe = workloads::universe::<2>(MAX);
    let qs = query_set(&data);

    let (_t, reference) = timed_build::<BruteForce<i64, 2>, i64, 2>(&data, &universe);

    for ratio in [0.1, 0.01] {
        let batch = ((n as f64 * ratio) as usize).max(1);
        let (res, index) = incremental_insert::<I, i64, 2>(&data, batch, &universe, Some(&qs));
        assert_eq!(res.final_len, n, "{}: final size", I::NAME);
        assert!(
            res.batches >= (1.0 / ratio) as usize,
            "{}: batch count",
            I::NAME
        );
        assert!(res.queries_at_half.is_some());
        index.check_invariants();

        // The fully built index answers exactly like the oracle.
        for q in &qs.knn_ind {
            assert_eq!(
                index
                    .knn(q, 10)
                    .iter()
                    .map(|p| q.dist_sq(p))
                    .collect::<Vec<_>>(),
                reference
                    .knn(q, 10)
                    .iter()
                    .map(|p| q.dist_sq(p))
                    .collect::<Vec<_>>(),
                "{}: post-insert kNN",
                I::NAME
            );
        }

        let (res, index) = incremental_delete::<I, i64, 2>(&data, batch, &universe, Some(&qs));
        assert_eq!(res.final_len, 0, "{}: delete must empty the index", I::NAME);
        assert!(index.is_empty());
    }
}

#[test]
fn porth_protocols() {
    protocol::<POrthTree2>(Distribution::Uniform);
    protocol::<POrthTree2>(Distribution::Varden);
}

#[test]
fn spac_protocols() {
    protocol::<SpacHTree<2>>(Distribution::Uniform);
    protocol::<SpacZTree<2>>(Distribution::Sweepline);
    protocol::<CpamHTree<2>>(Distribution::Uniform);
}

#[test]
fn baseline_protocols() {
    protocol::<PkdTree<2>>(Distribution::Uniform);
    protocol::<ZdTree<2>>(Distribution::Varden);
    protocol::<RTree<2>>(Distribution::Uniform);
}

/// Query probes taken mid-workload must be identical (by checksum) across
/// indexes, because they all saw the same data prefix.
#[test]
fn mid_workload_probes_are_consistent_across_indexes() {
    let n = 4_000;
    let data = Distribution::Sweepline.generate::<2>(n, MAX, 13);
    let universe = workloads::universe::<2>(MAX);
    let qs = query_set(&data);
    let batch = n / 10;

    let (a, _) = incremental_insert::<POrthTree2, i64, 2>(&data, batch, &universe, Some(&qs));
    let (b, _) = incremental_insert::<SpacHTree<2>, i64, 2>(&data, batch, &universe, Some(&qs));
    let (c, _) = incremental_insert::<PkdTree<2>, i64, 2>(&data, batch, &universe, Some(&qs));
    let (d, _) =
        incremental_insert::<BruteForce<i64, 2>, i64, 2>(&data, batch, &universe, Some(&qs));

    let ca = a.queries_at_half.unwrap().checksum;
    let cb = b.queries_at_half.unwrap().checksum;
    let cc = c.queries_at_half.unwrap().checksum;
    let cd = d.queries_at_half.unwrap().checksum;
    assert_eq!(ca, cd);
    assert_eq!(cb, cd);
    assert_eq!(cc, cd);
}

/// The batch-*deletion* teardown path, for every registry family: tear the
/// index down batch by batch in lockstep with the oracle, checking sizes and
/// a query probe at every intermediate state, down to empty.
#[test]
fn batch_deletion_teardown_every_family() {
    let n = 2_100;
    let data = Distribution::Varden.generate::<2>(n, MAX, 19);
    let universe = workloads::universe::<2>(MAX);
    let opts = BuildOptions::with_universe(universe);
    let probes = workloads::ind_queries(&data, 10, 23);
    let batch = 500;

    for name in registry::names() {
        let mut index = registry::create::<2>(name, &data, &opts).unwrap();
        let mut oracle = registry::create::<2>("brute-force", &data, &opts).unwrap();
        let mut removed_total = 0;
        while removed_total < n {
            let next = (removed_total + batch).min(n);
            let removed = index.batch_delete(&data[removed_total..next]);
            let removed_oracle = oracle.batch_delete(&data[removed_total..next]);
            assert_eq!(removed, removed_oracle, "{name}: deletion count");
            assert_eq!(index.len(), oracle.len(), "{name}: size after deletion");
            index.check_invariants();
            for q in &probes {
                let got: Vec<i128> = index.knn(q, 5).iter().map(|p| q.dist_sq(p)).collect();
                let want: Vec<i128> = oracle.knn(q, 5).iter().map(|p| q.dist_sq(p)).collect();
                assert_eq!(got, want, "{name}: kNN mid-teardown");
            }
            removed_total = next;
        }
        assert!(index.is_empty(), "{name}: teardown must empty the index");
    }
}

/// A mixed insert/delete schedule for every registry family, in lockstep
/// with the oracle: build a third, then alternate inserting fresh batches
/// and deleting the oldest live batch, probing queries at every step.
#[test]
fn mixed_insert_delete_schedule_every_family() {
    let n = 2_400;
    let data = Distribution::Sweepline.generate::<2>(n, MAX, 29);
    let universe = workloads::universe::<2>(MAX);
    let opts = BuildOptions::with_universe(universe);
    let ranges = workloads::range_queries(&data, MAX, 80, 8, 31);
    let batch = n / 8;

    for name in registry::names() {
        let first = n / 3;
        let mut index = registry::create::<2>(name, &data[..first], &opts).unwrap();
        let mut oracle = registry::create::<2>("brute-force", &data[..first], &opts).unwrap();
        let mut inserted = first;
        let mut deleted = 0;
        while inserted < n {
            let next = (inserted + batch).min(n);
            index.batch_insert(&data[inserted..next]);
            oracle.batch_insert(&data[inserted..next]);
            inserted = next;

            let gone = (deleted + batch).min(inserted);
            let removed = index.batch_delete(&data[deleted..gone]);
            assert_eq!(
                removed,
                oracle.batch_delete(&data[deleted..gone]),
                "{name}: mixed-schedule deletion count"
            );
            deleted = gone;

            index.check_invariants();
            assert_eq!(index.len(), oracle.len(), "{name}: size under churn");
            for r in &ranges {
                assert_eq!(
                    index.range_count(r),
                    oracle.range_count(r),
                    "{name}: range_count under churn"
                );
                let mut got = index.range_list(r);
                let mut want = oracle.range_list(r);
                got.sort();
                want.sort();
                assert_eq!(got, want, "{name}: range_list under churn");
            }
        }
        assert_eq!(index.len(), n - deleted, "{name}: final live count");
    }
}

/// The driver handles a batch size larger than the dataset (a single batch).
#[test]
fn single_batch_degenerate_case() {
    let data = Distribution::Uniform.generate::<2>(500, MAX, 17);
    let universe = workloads::universe::<2>(MAX);
    let (res, index) = incremental_insert::<SpacHTree<2>, i64, 2>(&data, 10_000, &universe, None);
    assert_eq!(res.batches, 1);
    assert_eq!(index.len(), 500);
    let (res, index) = incremental_delete::<SpacHTree<2>, i64, 2>(&data, 10_000, &universe, None);
    assert_eq!(res.batches, 1);
    assert!(index.is_empty());
}
