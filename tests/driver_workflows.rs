//! Integration tests of the incremental-workload driver end to end: the same
//! protocols the figure binaries run, at a tiny scale, with correctness checks
//! instead of timings.

use psi::driver::{incremental_delete, incremental_insert, timed_build, QuerySet};
use psi::{
    BruteForce, CpamHTree, POrthTree2, PkdTree, RTree, SpacHTree, SpacZTree, SpatialIndex, ZdTree,
};
use psi_workloads::{self as workloads, Distribution};

const MAX: i64 = 1_000_000_000;

fn query_set(data: &[psi::PointI<2>]) -> QuerySet<i64, 2> {
    QuerySet {
        knn_ind: workloads::ind_queries(data, 40, 3),
        knn_ood: workloads::ood_queries::<2>(MAX, 40, 4),
        k: 10,
        ranges: workloads::range_queries(data, MAX, 50, 20, 5),
    }
}

/// The incremental protocols must end with exactly the same index content as
/// a one-shot build, for every index and every batch ratio.
fn protocol<I: SpatialIndex<i64, 2>>(dist: Distribution) {
    let n = 4_000;
    let data = dist.generate::<2>(n, MAX, 11);
    let universe = workloads::universe::<2>(MAX);
    let qs = query_set(&data);

    let (_t, reference) = timed_build::<BruteForce<i64, 2>, i64, 2>(&data, &universe);

    for ratio in [0.1, 0.01] {
        let batch = ((n as f64 * ratio) as usize).max(1);
        let (res, index) = incremental_insert::<I, i64, 2>(&data, batch, &universe, Some(&qs));
        assert_eq!(res.final_len, n, "{}: final size", I::NAME);
        assert!(
            res.batches >= (1.0 / ratio) as usize,
            "{}: batch count",
            I::NAME
        );
        assert!(res.queries_at_half.is_some());
        index.check_invariants();

        // The fully built index answers exactly like the oracle.
        for q in &qs.knn_ind {
            assert_eq!(
                index
                    .knn(q, 10)
                    .iter()
                    .map(|p| q.dist_sq(p))
                    .collect::<Vec<_>>(),
                reference
                    .knn(q, 10)
                    .iter()
                    .map(|p| q.dist_sq(p))
                    .collect::<Vec<_>>(),
                "{}: post-insert kNN",
                I::NAME
            );
        }

        let (res, index) = incremental_delete::<I, i64, 2>(&data, batch, &universe, Some(&qs));
        assert_eq!(res.final_len, 0, "{}: delete must empty the index", I::NAME);
        assert!(index.is_empty());
    }
}

#[test]
fn porth_protocols() {
    protocol::<POrthTree2>(Distribution::Uniform);
    protocol::<POrthTree2>(Distribution::Varden);
}

#[test]
fn spac_protocols() {
    protocol::<SpacHTree<2>>(Distribution::Uniform);
    protocol::<SpacZTree<2>>(Distribution::Sweepline);
    protocol::<CpamHTree<2>>(Distribution::Uniform);
}

#[test]
fn baseline_protocols() {
    protocol::<PkdTree<2>>(Distribution::Uniform);
    protocol::<ZdTree<2>>(Distribution::Varden);
    protocol::<RTree<2>>(Distribution::Uniform);
}

/// Query probes taken mid-workload must be identical (by checksum) across
/// indexes, because they all saw the same data prefix.
#[test]
fn mid_workload_probes_are_consistent_across_indexes() {
    let n = 4_000;
    let data = Distribution::Sweepline.generate::<2>(n, MAX, 13);
    let universe = workloads::universe::<2>(MAX);
    let qs = query_set(&data);
    let batch = n / 10;

    let (a, _) = incremental_insert::<POrthTree2, i64, 2>(&data, batch, &universe, Some(&qs));
    let (b, _) = incremental_insert::<SpacHTree<2>, i64, 2>(&data, batch, &universe, Some(&qs));
    let (c, _) = incremental_insert::<PkdTree<2>, i64, 2>(&data, batch, &universe, Some(&qs));
    let (d, _) =
        incremental_insert::<BruteForce<i64, 2>, i64, 2>(&data, batch, &universe, Some(&qs));

    let ca = a.queries_at_half.unwrap().checksum;
    let cb = b.queries_at_half.unwrap().checksum;
    let cc = c.queries_at_half.unwrap().checksum;
    let cd = d.queries_at_half.unwrap().checksum;
    assert_eq!(ca, cd);
    assert_eq!(cb, cd);
    assert_eq!(cc, cd);
}

/// The driver handles a batch size larger than the dataset (a single batch).
#[test]
fn single_batch_degenerate_case() {
    let data = Distribution::Uniform.generate::<2>(500, MAX, 17);
    let universe = workloads::universe::<2>(MAX);
    let (res, index) = incremental_insert::<SpacHTree<2>, i64, 2>(&data, 10_000, &universe, None);
    assert_eq!(res.batches, 1);
    assert_eq!(index.len(), 500);
    let (res, index) = incremental_delete::<SpacHTree<2>, i64, 2>(&data, 10_000, &universe, None);
    assert_eq!(res.batches, 1);
    assert!(index.is_empty());
}
