//! Umbrella crate for the Ψ-Lib workspace: re-exports the public API and hosts the
//! workspace-level integration tests and runnable examples.
pub use psi::*;
