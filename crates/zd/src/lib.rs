//! **Zd-tree** baseline — the Morton-presort parallel Orth-tree of Blelloch &
//! Dobson that the paper compares the P-Orth tree against.
//!
//! The Zd-tree takes the classical route the P-Orth tree deliberately avoids:
//! every point's Morton code is computed up front, the `⟨code, point⟩` records
//! are comparison-sorted, and the quadtree/octree is then carved out of the
//! sorted sequence — each node corresponds to a contiguous code range, and its
//! `2^D` children are found by binary searching the next `D` bits of the code.
//! Batch updates merge a sorted batch into the affected code ranges. The extra
//! passes over the data (code computation + full sort) are exactly the
//! overhead the paper's Fig. 3 attributes to "Zd-tree" relative to "P-Orth".
//!
//! Like the original, this index requires integer coordinates within the SFC
//! precision budget (the paper's data is scaled accordingly).
//!
//! # Example
//!
//! ```
//! use psi_geometry::{Point, PointI};
//! use psi_zd::ZdTree;
//!
//! let pts: Vec<PointI<2>> = (0..500).map(|i| Point::new([i * 3 % 509, i * 11 % 509])).collect();
//! let mut t = ZdTree::<2>::build(&pts);
//! t.batch_insert(&[Point::new([100, 100])]);
//! assert_eq!(t.len(), 501);
//! ```

use psi_geometry::{Coord, KnnHeap, PointI, Rect, RectI};
use psi_parutils::par_sort_by_key;
use psi_parutils::stats::counters;
use psi_sfc::{bits_per_dim, MortonCurve, SfcCurve};
use rayon::prelude::*;

/// An entry: Morton code plus the point.
type Entry<const D: usize> = (u64, PointI<D>);

/// Tuning parameters of a [`ZdTree`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZdConfig {
    /// Leaf wrap threshold (paper default 32).
    pub leaf_cap: usize,
}

impl Default for ZdConfig {
    fn default() -> Self {
        ZdConfig { leaf_cap: 32 }
    }
}

enum Node<const D: usize> {
    Leaf {
        entries: Vec<Entry<D>>,
        bbox: RectI<D>,
    },
    Internal {
        /// Positional children, one per Morton quadrant/octant at this level.
        children: Vec<Node<D>>,
        size: usize,
        bbox: RectI<D>,
    },
}

impl<const D: usize> Node<D> {
    fn size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Internal { size, .. } => *size,
        }
    }
    fn bbox(&self) -> &RectI<D> {
        match self {
            Node::Leaf { bbox, .. } => bbox,
            Node::Internal { bbox, .. } => bbox,
        }
    }
    fn height(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { children, .. } => {
                1 + children.iter().map(|c| c.height()).max().unwrap_or(0)
            }
        }
    }
    fn collect_entries(&self, out: &mut Vec<Entry<D>>) {
        match self {
            Node::Leaf { entries, .. } => out.extend_from_slice(entries),
            Node::Internal { children, .. } => {
                for c in children {
                    c.collect_entries(out);
                }
            }
        }
    }
}

/// The Morton-presort parallel Orth-tree. See the crate docs.
pub struct ZdTree<const D: usize> {
    root: Node<D>,
    cfg: ZdConfig,
}

/// Total number of code bits used for `D` dimensions.
fn total_bits(d: usize) -> u32 {
    bits_per_dim(d) * d as u32
}

/// The child index of `code` at tree `level` (level 0 = root's children).
#[inline]
fn child_of<const D: usize>(code: u64, level: u32) -> usize {
    let tb = total_bits(D);
    let shift = tb.saturating_sub(D as u32 * (level + 1));
    ((code >> shift) as usize) & ((1 << D) - 1)
}

/// Does `level` still have code bits left to discriminate on?
fn level_exhausted<const D: usize>(level: u32) -> bool {
    D as u32 * (level + 1) > total_bits(D)
}

fn bbox_of<const D: usize>(entries: &[Entry<D>]) -> RectI<D> {
    let mut b = Rect::empty();
    for (_, p) in entries {
        b.expand(p);
    }
    b
}

fn build_rec<const D: usize>(entries: &[Entry<D>], level: u32, cfg: &ZdConfig) -> Node<D> {
    let n = entries.len();
    if n <= cfg.leaf_cap || level_exhausted::<D>(level) {
        return Node::Leaf {
            entries: entries.to_vec(),
            bbox: bbox_of(entries),
        };
    }
    // Split the sorted code range into 2^D contiguous child ranges by binary
    // search on the child index of this level.
    let fanout = 1usize << D;
    let mut bounds = Vec::with_capacity(fanout + 1);
    bounds.push(0usize);
    for c in 1..fanout {
        let idx = entries.partition_point(|e| child_of::<D>(e.0, level) < c);
        bounds.push(idx);
    }
    bounds.push(n);

    let children: Vec<Node<D>> = (0..fanout)
        .into_par_iter()
        .map(|c| build_rec(&entries[bounds[c]..bounds[c + 1]], level + 1, cfg))
        .collect();
    let mut bbox = Rect::empty();
    for c in &children {
        bbox = bbox.merged(c.bbox());
    }
    Node::Internal {
        children,
        size: n,
        bbox,
    }
}

fn insert_rec<const D: usize>(
    node: Node<D>,
    batch: &[Entry<D>],
    level: u32,
    cfg: &ZdConfig,
) -> Node<D> {
    if batch.is_empty() {
        return node;
    }
    match node {
        Node::Leaf { mut entries, .. } => {
            entries.extend_from_slice(batch);
            entries.sort_unstable_by_key(|e| e.0);
            build_rec(&entries, level, cfg)
        }
        Node::Internal {
            mut children, size, ..
        } => {
            let fanout = 1usize << D;
            let mut bounds = Vec::with_capacity(fanout + 1);
            bounds.push(0usize);
            for c in 1..fanout {
                bounds.push(batch.partition_point(|e| child_of::<D>(e.0, level) < c));
            }
            bounds.push(batch.len());
            let new_children: Vec<Node<D>> = children
                .drain(..)
                .zip(0..fanout)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|(child, c)| {
                    insert_rec(child, &batch[bounds[c]..bounds[c + 1]], level + 1, cfg)
                })
                .collect();
            let mut bbox = Rect::empty();
            for c in &new_children {
                bbox = bbox.merged(c.bbox());
            }
            Node::Internal {
                children: new_children,
                size: size + batch.len(),
                bbox,
            }
        }
    }
}

fn delete_rec<const D: usize>(
    node: Node<D>,
    batch: &[Entry<D>],
    level: u32,
    cfg: &ZdConfig,
) -> Node<D> {
    if batch.is_empty() {
        return node;
    }
    match node {
        Node::Leaf { mut entries, .. } => {
            remove_multiset(&mut entries, batch);
            let bbox = bbox_of(&entries);
            Node::Leaf { entries, bbox }
        }
        Node::Internal { mut children, .. } => {
            let fanout = 1usize << D;
            let mut bounds = Vec::with_capacity(fanout + 1);
            bounds.push(0usize);
            for c in 1..fanout {
                bounds.push(batch.partition_point(|e| child_of::<D>(e.0, level) < c));
            }
            bounds.push(batch.len());
            let new_children: Vec<Node<D>> = children
                .drain(..)
                .zip(0..fanout)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|(child, c)| {
                    delete_rec(child, &batch[bounds[c]..bounds[c + 1]], level + 1, cfg)
                })
                .collect();
            let size: usize = new_children.iter().map(|c| c.size()).sum();
            if size <= cfg.leaf_cap {
                // Flatten ancestors that shrank below the wrap, as in all
                // Orth-tree deletions.
                let mut entries = Vec::with_capacity(size);
                for c in &new_children {
                    c.collect_entries(&mut entries);
                }
                entries.sort_unstable_by_key(|e| e.0);
                let bbox = bbox_of(&entries);
                return Node::Leaf { entries, bbox };
            }
            let mut bbox = Rect::empty();
            for c in &new_children {
                bbox = bbox.merged(c.bbox());
            }
            Node::Internal {
                children: new_children,
                size,
                bbox,
            }
        }
    }
}

fn remove_multiset<const D: usize>(entries: &mut Vec<Entry<D>>, batch: &[Entry<D>]) {
    let mut remaining: Vec<(Entry<D>, usize)> = Vec::new();
    let mut sorted_batch = batch.to_vec();
    sorted_batch.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.lex_cmp(&b.1)));
    for e in &sorted_batch {
        match remaining.last_mut() {
            Some((prev, count)) if prev.0 == e.0 && prev.1 == e.1 => *count += 1,
            _ => remaining.push((*e, 1)),
        }
    }
    entries.retain(|e| {
        match remaining.binary_search_by(|(b, _)| b.0.cmp(&e.0).then_with(|| b.1.lex_cmp(&e.1))) {
            Ok(i) if remaining[i].1 > 0 => {
                remaining[i].1 -= 1;
                false
            }
            _ => true,
        }
    });
}

impl<const D: usize> ZdTree<D>
where
    MortonCurve: SfcCurve<D>,
{
    /// Build a Zd-tree: compute Morton codes, sort, carve out the Orth-tree.
    pub fn build(points: &[PointI<D>]) -> Self {
        Self::build_with_config(points, ZdConfig::default())
    }

    /// Build with explicit parameters.
    pub fn build_with_config(points: &[PointI<D>], cfg: ZdConfig) -> Self {
        let mut entries: Vec<Entry<D>> = points
            .par_iter()
            .map(|p| {
                counters::CODES_COMPUTED.bump();
                (<MortonCurve as SfcCurve<D>>::encode(p), *p)
            })
            .collect();
        par_sort_by_key(&mut entries, |e| (e.0, e.1));
        counters::POINTS_MOVED.add(entries.len() as u64);
        let root = build_rec(&entries, 0, &cfg);
        ZdTree { root, cfg }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.root.size()
    }

    /// `true` if no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Height of the tree (leaf = 1).
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// Collect all stored points (Morton order).
    pub fn collect_points(&self) -> Vec<PointI<D>> {
        let mut entries = Vec::with_capacity(self.len());
        self.root.collect_entries(&mut entries);
        entries.into_iter().map(|e| e.1).collect()
    }

    /// Batch insertion: encode + sort the batch, then merge it down the tree.
    pub fn batch_insert(&mut self, points: &[PointI<D>]) {
        if points.is_empty() {
            return;
        }
        let mut batch: Vec<Entry<D>> = points
            .par_iter()
            .map(|p| (<MortonCurve as SfcCurve<D>>::encode(p), *p))
            .collect();
        par_sort_by_key(&mut batch, |e| (e.0, e.1));
        let root = std::mem::replace(
            &mut self.root,
            Node::Leaf {
                entries: Vec::new(),
                bbox: Rect::empty(),
            },
        );
        self.root = insert_rec(root, &batch, 0, &self.cfg);
    }

    /// Batch deletion (multiset semantics); returns the number removed.
    pub fn batch_delete(&mut self, points: &[PointI<D>]) -> usize {
        if points.is_empty() {
            return 0;
        }
        let before = self.len();
        let mut batch: Vec<Entry<D>> = points
            .par_iter()
            .map(|p| (<MortonCurve as SfcCurve<D>>::encode(p), *p))
            .collect();
        par_sort_by_key(&mut batch, |e| (e.0, e.1));
        let root = std::mem::replace(
            &mut self.root,
            Node::Leaf {
                entries: Vec::new(),
                bbox: Rect::empty(),
            },
        );
        self.root = delete_rec(root, &batch, 0, &self.cfg);
        before - self.len()
    }

    /// The `k` nearest neighbours of `q`, closest first.
    pub fn knn(&self, q: &PointI<D>, k: usize) -> Vec<PointI<D>> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut heap = KnnHeap::new(k);
        self.knn_into(q, k, &mut heap);
        heap.into_sorted()
    }

    /// kNN primitive: reset `heap` to capacity `k` (reusing its allocation)
    /// and fill it with the `k` nearest neighbours of `q`. Requires `k >= 1`.
    pub fn knn_into(&self, q: &PointI<D>, k: usize, heap: &mut KnnHeap<i64, D>) {
        heap.reset(k);
        if !self.is_empty() {
            knn_rec(&self.root, q, heap);
        }
    }

    /// Range primitive: call `visitor` on every stored point inside the closed
    /// box, allocating nothing.
    pub fn range_visit(&self, rect: &RectI<D>, visitor: &mut dyn FnMut(&PointI<D>)) {
        range_visit(&self.root, rect, visitor)
    }

    /// Tight bounding box of the stored points ([`Rect::empty`] when empty).
    pub fn bounding_box(&self) -> RectI<D> {
        *self.root.bbox()
    }

    /// Number of stored points in the closed box.
    pub fn range_count(&self, rect: &RectI<D>) -> usize {
        range_count(&self.root, rect)
    }

    /// All stored points in the closed box.
    pub fn range_list(&self, rect: &RectI<D>) -> Vec<PointI<D>> {
        let mut out = Vec::new();
        range_list(&self.root, rect, &mut out);
        out
    }

    /// Validate structural invariants (sizes, boxes, code order, leaf wrap).
    pub fn check_invariants(&self) {
        fn rec<const D: usize>(node: &Node<D>, level: u32, cfg: &ZdConfig) -> usize
        where
            MortonCurve: SfcCurve<D>,
        {
            match node {
                Node::Leaf { entries, bbox } => {
                    assert_eq!(*bbox, bbox_of(entries), "leaf bbox mismatch");
                    for (code, p) in entries {
                        assert_eq!(*code, <MortonCurve as SfcCurve<D>>::encode(p));
                    }
                    entries.len()
                }
                Node::Internal {
                    children,
                    size,
                    bbox,
                } => {
                    assert_eq!(children.len(), 1 << D);
                    let mut total = 0;
                    let mut expect = Rect::empty();
                    for (i, c) in children.iter().enumerate() {
                        // Every entry in child i must map to child index i.
                        let mut entries = Vec::new();
                        c.collect_entries(&mut entries);
                        for (code, _) in &entries {
                            assert_eq!(child_of::<D>(*code, level), i, "entry in wrong quadrant");
                        }
                        total += rec(c, level + 1, cfg);
                        expect = expect.merged(c.bbox());
                    }
                    assert_eq!(total, *size, "size mismatch");
                    assert_eq!(&expect, bbox, "bbox mismatch");
                    assert!(*size > cfg.leaf_cap, "undersized internal node");
                    total
                }
            }
        }
        if let Node::Internal { .. } = self.root {
            rec(&self.root, 0, &self.cfg);
        } else if let Node::Leaf { entries, bbox } = &self.root {
            assert_eq!(*bbox, bbox_of(entries));
        }
    }
}

fn knn_rec<const D: usize>(node: &Node<D>, q: &PointI<D>, heap: &mut KnnHeap<i64, D>) {
    counters::NODES_VISITED.bump();
    match node {
        Node::Leaf { entries, .. } => {
            for (_, p) in entries {
                heap.offer_point(q, *p);
            }
        }
        Node::Internal { children, .. } => {
            let mut order: Vec<(i128, usize)> = children
                .iter()
                .enumerate()
                .filter(|(_, c)| c.size() > 0)
                .map(|(i, c)| (c.bbox().dist_sq_to_point(q), i))
                .collect();
            order.sort_by(|a, b| <i64 as Coord>::dist_cmp(a.0, b.0));
            for (dist, i) in order {
                if !heap.could_improve(dist) {
                    break;
                }
                knn_rec(&children[i], q, heap);
            }
        }
    }
}

fn range_count<const D: usize>(node: &Node<D>, rect: &RectI<D>) -> usize {
    counters::NODES_VISITED.bump();
    if node.size() == 0 || !rect.intersects(node.bbox()) {
        return 0;
    }
    if rect.contains_rect(node.bbox()) {
        return node.size();
    }
    match node {
        Node::Leaf { entries, .. } => entries.iter().filter(|(_, p)| rect.contains(p)).count(),
        Node::Internal { children, .. } => children.iter().map(|c| range_count(c, rect)).sum(),
    }
}

fn range_list<const D: usize>(node: &Node<D>, rect: &RectI<D>, out: &mut Vec<PointI<D>>) {
    range_visit(node, rect, &mut |p| out.push(*p));
}

fn range_visit<const D: usize>(
    node: &Node<D>,
    rect: &RectI<D>,
    visitor: &mut dyn FnMut(&PointI<D>),
) {
    counters::NODES_VISITED.bump();
    if node.size() == 0 || !rect.intersects(node.bbox()) {
        return;
    }
    if rect.contains_rect(node.bbox()) {
        visit_all(node, visitor);
        return;
    }
    match node {
        Node::Leaf { entries, .. } => {
            for (_, p) in entries.iter().filter(|(_, p)| rect.contains(p)) {
                visitor(p);
            }
        }
        Node::Internal { children, .. } => {
            for c in children {
                range_visit(c, rect, visitor);
            }
        }
    }
}

fn visit_all<const D: usize>(node: &Node<D>, visitor: &mut dyn FnMut(&PointI<D>)) {
    match node {
        Node::Leaf { entries, .. } => {
            for (_, p) in entries {
                visitor(p);
            }
        }
        Node::Internal { children, .. } => {
            for c in children {
                visit_all(c, visitor);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_geometry::{brute_force_knn, Point};
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn random_points(n: usize, seed: u64, max: i64) -> Vec<PointI<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.gen_range(0..max), rng.gen_range(0..max)]))
            .collect()
    }

    #[test]
    fn build_empty_single_duplicates() {
        let t = ZdTree::<2>::build(&[]);
        assert!(t.is_empty());
        t.check_invariants();
        let p = PointI::<2>::new([7, 8]);
        let t = ZdTree::<2>::build(&[p]);
        assert_eq!(t.len(), 1);
        // Many duplicates exhaust the code bits and must still terminate.
        let t = ZdTree::<2>::build(&vec![p; 500]);
        assert_eq!(t.len(), 500);
        t.check_invariants();
    }

    #[test]
    fn knn_matches_oracle() {
        let pts = random_points(5_000, 1, 1_000_000);
        let t = ZdTree::<2>::build(&pts);
        t.check_invariants();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..40 {
            let q = Point::new([rng.gen_range(0..1_000_000), rng.gen_range(0..1_000_000)]);
            assert_eq!(
                t.knn(&q, 10)
                    .iter()
                    .map(|p| q.dist_sq(p))
                    .collect::<Vec<_>>(),
                brute_force_knn(&pts, &q, 10)
                    .iter()
                    .map(|p| q.dist_sq(p))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn range_matches_scan() {
        let pts = random_points(3_000, 3, 80_000);
        let t = ZdTree::<2>::build(&pts);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..40 {
            let a = Point::new([rng.gen_range(0..80_000), rng.gen_range(0..80_000)]);
            let b = Point::new([rng.gen_range(0..80_000), rng.gen_range(0..80_000)]);
            let rect = Rect::new(a, b);
            let expect = pts.iter().filter(|p| rect.contains(p)).count();
            assert_eq!(t.range_count(&rect), expect);
            assert_eq!(t.range_list(&rect).len(), expect);
        }
    }

    #[test]
    fn insert_delete_roundtrip() {
        let all = random_points(5_000, 5, 1_000_000);
        let (a, b) = all.split_at(2_500);
        let mut t = ZdTree::<2>::build(a);
        for chunk in b.chunks(400) {
            t.batch_insert(chunk);
            t.check_invariants();
        }
        assert_eq!(t.len(), all.len());
        let mut got = t.collect_points();
        let mut want = all.clone();
        got.sort();
        want.sort();
        assert_eq!(got, want);

        assert_eq!(t.batch_delete(&all[..3_000]), 3_000);
        t.check_invariants();
        assert_eq!(t.len(), 2_000);
        let q = Point::new([500_000, 500_000]);
        let survivors = &all[3_000..];
        assert_eq!(
            t.knn(&q, 10)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>(),
            brute_force_knn(survivors, &q, 10)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn history_independence_of_structure() {
        // Orth-trees are history independent: building from scratch and
        // building incrementally must produce the same shape.
        let all = random_points(3_000, 7, 1 << 20);
        let direct = ZdTree::<2>::build(&all);
        let (a, b) = all.split_at(1_500);
        let mut inc = ZdTree::<2>::build(a);
        inc.batch_insert(b);
        assert_eq!(direct.len(), inc.len());
        assert_eq!(direct.height(), inc.height());
    }

    #[test]
    fn three_d_points() {
        let mut rng = StdRng::seed_from_u64(9);
        let pts: Vec<PointI<3>> = (0..2_000)
            .map(|_| {
                Point::new([
                    rng.gen_range(0..1_000_000),
                    rng.gen_range(0..1_000_000),
                    rng.gen_range(0..1_000_000),
                ])
            })
            .collect();
        let t = ZdTree::<3>::build(&pts);
        t.check_invariants();
        let q = Point::new([400_000, 600_000, 500_000]);
        assert_eq!(
            t.knn(&q, 5)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>(),
            brute_force_knn(&pts, &q, 5)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>()
        );
    }
}
