//! Parallel primitives substrate for Ψ-Lib-rs.
//!
//! The C++ Ψ-Lib builds on ParlayLib for fork-join parallelism and a handful of
//! parallel building blocks. This crate is the Rust equivalent, built on the
//! rayon substrate's worker pool: `par_*` iterators with chunked
//! work-distribution and steal-on-idle, plus `rayon::join` for the binary
//! fork-join recursions the paper analyses in §2.1. `join` is pool-native
//! (work-stealing task deques — a fork is an amortised task push, not a
//! thread spawn), so the deep binary recursions in the index builds and the
//! kernels below run at full parallelism however they nest:
//!
//! * [`scan`] — parallel prefix sums (exclusive scan), used to turn per-block
//!   histograms into scatter offsets,
//! * [`sieve`] — the **Sieve** primitive of the Pkd-tree paper (re-used by the
//!   P-Orth tree, Alg. 1 line 6): a stable parallel counting-sort pass that
//!   reorders a point sequence so that all points falling into the same bucket
//!   of a tree skeleton become contiguous, returning the bucket boundaries,
//! * [`sort`] — a parallel sample sort over `(u64 key, u32 id)` pairs plus the
//!   paper's **HybridSort** (Alg. 3) that computes SFC codes lazily during the
//!   first distribution round,
//! * [`stats`] — lightweight atomic instrumentation counters used by the
//!   ablation benchmarks to report work/IO-proxy numbers.
//!
//! All primitives fall back to the sequential path below a grain-size
//! threshold, following the Rayon guidance of keeping per-task work large
//! enough to amortise scheduling.

use rayon::prelude::*;

pub mod scan;
pub mod sieve;
pub mod sort;
pub mod stats;

pub use scan::{exclusive_scan, exclusive_scan_inplace};
pub use sieve::{sieve, sieve_by, SieveResult};
pub use sort::{hybrid_sort_keys, par_sort_by_key, par_sort_unstable};

/// Grain size below which parallel primitives switch to their sequential
/// implementation. Chosen so per-task work comfortably exceeds the cost of a
/// rayon fork (a deque push/pop pair); the exact value is not
/// performance-critical.
pub const SEQ_THRESHOLD: usize = 2048;

/// Execute two closures, potentially in parallel (thin wrapper over
/// `rayon::join` so that index crates depend only on this substrate). The
/// fork rides the worker pool's task deques: unstolen forks run inline on
/// the caller after a push/pop pair, stolen ones keep the caller stealing
/// other tasks instead of blocking, so `par2` recursions of any depth never
/// spawn OS threads or idle a core.
#[inline]
pub fn par2<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    rayon::join(a, b)
}

/// Parallel for over `0..n` in index chunks of at most `grain`, calling
/// `f(range)` for each chunk. Chunks are distributed over the rayon worker
/// pool (grain-sized claiming with steal-on-idle), so uneven per-chunk costs
/// rebalance across threads; consecutive chunks claimed by one worker run
/// back-to-back, preserving locality.
pub fn par_chunks<F>(n: usize, grain: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let grain = grain.max(1);
    let nchunks = n.div_ceil(grain);
    (0..nchunks).into_par_iter().for_each(|c| {
        let lo = c * grain;
        let hi = (lo + grain).min(n);
        f(lo..hi)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par2_runs_both() {
        let (a, b) = par2(|| 21, || 2);
        assert_eq!(a * b, 42);
    }

    #[test]
    fn par_chunks_covers_every_index_exactly_once() {
        let n = 100_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_chunks(n, 1000, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_empty_and_tiny() {
        par_chunks(0, 10, |_| panic!("must not be called"));
        let count = AtomicUsize::new(0);
        par_chunks(1, 10, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}
