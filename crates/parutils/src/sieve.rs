//! The **Sieve** primitive (stable parallel bucket distribution).
//!
//! `Sieve(P, T)` is the workhorse of both the Pkd-tree and the P-Orth tree
//! (Alg. 1 line 6, Alg. 2 line 7): given a sequence of points and a small tree
//! skeleton whose external nodes define buckets, it reorders the sequence so
//! that points belonging to the same bucket become contiguous, and returns the
//! bucket boundaries. It is, as the paper puts it, "a parallel counting sort"
//! executed blockwise so each block's working set fits in cache:
//!
//! 1. split the input into blocks, compute a per-block histogram in parallel
//!    (recording each item's bucket id once so it is not recomputed),
//! 2. prefix-sum the histograms in bucket-major order, which yields for every
//!    `(block, bucket)` pair the exact output offset of that block's items for
//!    that bucket (this is the "matrix transpose" step of Alg. 3 line 16),
//! 3. scatter each block's items to their final positions in parallel.
//!
//! The scatter is stable: two items in the same bucket keep their relative
//! input order, which the P-Orth tree relies on only for determinism, and the
//! sample sort relies on for its recursion.

use crate::scan::exclusive_scan_inplace;
use crate::SEQ_THRESHOLD;
use rayon::prelude::*;
use std::cell::UnsafeCell;

/// Result of a [`sieve`] call: bucket boundary offsets. Bucket `i` occupies
/// `data[offsets[i]..offsets[i + 1]]`; `offsets.len() == num_buckets + 1`.
pub type SieveResult = Vec<usize>;

/// A shared output buffer that allows disjoint parallel writes.
///
/// Safety contract: every index is written by exactly one task (the scatter
/// offsets computed from the exclusive scan partition the output), so no two
/// threads ever alias the same element and every element is initialised before
/// the buffer is read.
struct ScatterBuf<'a, T> {
    slots: &'a [UnsafeCell<T>],
}

unsafe impl<T: Send> Sync for ScatterBuf<'_, T> {}

impl<'a, T> ScatterBuf<'a, T> {
    fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`; we hold the only
        // mutable borrow of `slice` for the lifetime of the scatter.
        let slots = unsafe {
            std::slice::from_raw_parts(slice.as_ptr() as *const UnsafeCell<T>, slice.len())
        };
        ScatterBuf { slots }
    }

    #[inline(always)]
    unsafe fn write(&self, idx: usize, value: T) {
        // SAFETY: caller guarantees exclusive access to `idx` (see struct docs).
        unsafe { *self.slots[idx].get() = value };
    }
}

/// Stable bucket distribution of `data` according to `bucket_of`, which must
/// return a value in `0..num_buckets` for every element. Returns the bucket
/// boundary offsets (length `num_buckets + 1`).
pub fn sieve_by<T, F>(data: &mut [T], num_buckets: usize, bucket_of: F) -> SieveResult
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> usize + Sync,
{
    let n = data.len();
    if num_buckets == 0 {
        assert_eq!(n, 0, "non-empty input requires at least one bucket");
        return vec![0];
    }
    if n <= SEQ_THRESHOLD || num_buckets == 1 {
        return seq_sieve(data, num_buckets, &bucket_of);
    }

    let nblocks = (rayon::current_num_threads().max(1) * 8).min(n.div_ceil(SEQ_THRESHOLD / 4));
    let block = n.div_ceil(nblocks);
    let nblocks = n.div_ceil(block);

    // Pass 1: bucket id per element + per-block histograms.
    let mut bucket_ids: Vec<u32> = vec![0; n];
    let mut histograms: Vec<usize> = vec![0; nblocks * num_buckets];
    data.par_chunks(block)
        .zip(bucket_ids.par_chunks_mut(block))
        .zip(histograms.par_chunks_mut(num_buckets))
        .for_each(|((chunk, ids), hist)| {
            for (item, id) in chunk.iter().zip(ids.iter_mut()) {
                let b = bucket_of(item);
                debug_assert!(b < num_buckets, "bucket id {b} out of range {num_buckets}");
                *id = b as u32;
                hist[b] += 1;
            }
        });

    // Pass 2: transpose to bucket-major order and scan, producing for every
    // (bucket, block) pair the output offset of that block's run.
    let mut offsets_bm: Vec<usize> = vec![0; nblocks * num_buckets];
    for b in 0..nblocks {
        for k in 0..num_buckets {
            offsets_bm[k * nblocks + b] = histograms[b * num_buckets + k];
        }
    }
    let total = exclusive_scan_inplace(&mut offsets_bm);
    debug_assert_eq!(total, n);

    // Bucket boundaries: the offset of each bucket's first block.
    let mut boundaries = Vec::with_capacity(num_buckets + 1);
    for k in 0..num_buckets {
        boundaries.push(offsets_bm[k * nblocks]);
    }
    boundaries.push(n);

    // Pass 3: scatter into a scratch buffer, then copy back.
    let mut scratch: Vec<T> = data.to_vec();
    {
        let out = ScatterBuf::new(&mut scratch);
        data.par_chunks(block)
            .zip(bucket_ids.par_chunks(block))
            .enumerate()
            .for_each(|(bi, (chunk, ids))| {
                // Local cursor per bucket for this block.
                let mut cursors: Vec<usize> = (0..num_buckets)
                    .map(|k| offsets_bm[k * nblocks + bi])
                    .collect();
                for (item, &id) in chunk.iter().zip(ids.iter()) {
                    let k = id as usize;
                    let dst = cursors[k];
                    cursors[k] += 1;
                    // SAFETY: `dst` ranges over this block's private sub-range of
                    // bucket `k`'s output region; ranges of different (block,
                    // bucket) pairs are disjoint by construction of the scan.
                    unsafe { out.write(dst, *item) };
                }
            });
    }
    data.copy_from_slice(&scratch);
    boundaries
}

/// Convenience wrapper over [`sieve_by`] when bucket ids are already computed.
pub fn sieve<T>(data: &mut [T], num_buckets: usize, bucket_ids: &[usize]) -> SieveResult
where
    T: Copy + Send + Sync,
{
    assert_eq!(data.len(), bucket_ids.len());
    // Pair each item with its position so the precomputed id can be looked up.
    let mut indexed: Vec<(usize, T)> = data.iter().copied().enumerate().collect();
    let offsets = sieve_by(&mut indexed, num_buckets, |(i, _)| bucket_ids[*i]);
    for (dst, (_, item)) in data.iter_mut().zip(indexed) {
        *dst = item;
    }
    offsets
}

fn seq_sieve<T, F>(data: &mut [T], num_buckets: usize, bucket_of: &F) -> SieveResult
where
    T: Copy,
    F: Fn(&T) -> usize,
{
    let n = data.len();
    let mut counts = vec![0usize; num_buckets];
    let ids: Vec<usize> = data
        .iter()
        .map(|x| {
            let b = bucket_of(x);
            debug_assert!(b < num_buckets);
            b
        })
        .collect();
    for &b in &ids {
        counts[b] += 1;
    }
    let mut offsets = Vec::with_capacity(num_buckets + 1);
    let mut acc = 0;
    for &c in &counts {
        offsets.push(acc);
        acc += c;
    }
    offsets.push(acc);
    debug_assert_eq!(acc, n);

    let mut cursors = offsets[..num_buckets].to_vec();
    let scratch: Vec<T> = data.to_vec();
    for (item, &b) in scratch.iter().zip(ids.iter()) {
        data[cursors[b]] = *item;
        cursors[b] += 1;
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_sieve(mut v: Vec<u64>, nb: usize) {
        let orig = v.clone();
        let f = |x: &u64| (*x as usize) % nb;
        let offsets = sieve_by(&mut v, nb, f);

        // 1. It is a permutation of the input.
        let mut a = orig.clone();
        let mut b = v.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);

        // 2. Offsets are monotone and bracket the whole array.
        assert_eq!(offsets.len(), nb + 1);
        assert_eq!(offsets[0], 0);
        assert_eq!(offsets[nb], v.len());
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));

        // 3. Every element sits inside its bucket's range.
        for k in 0..nb {
            for &x in &v[offsets[k]..offsets[k + 1]] {
                assert_eq!(f(&x), k);
            }
        }

        // 4. Stability: relative order within a bucket matches the input order.
        for k in 0..nb {
            let expect: Vec<u64> = orig.iter().copied().filter(|x| f(x) == k).collect();
            assert_eq!(&v[offsets[k]..offsets[k + 1]], &expect[..]);
        }
    }

    #[test]
    fn sieve_empty() {
        let mut v: Vec<u64> = vec![];
        let offsets = sieve_by(&mut v, 4, |x| *x as usize % 4);
        assert_eq!(offsets, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn sieve_small() {
        check_sieve(vec![5, 3, 8, 1, 9, 2, 7, 0, 6, 4], 3);
    }

    #[test]
    fn sieve_single_bucket() {
        check_sieve((0..5000).collect(), 1);
    }

    #[test]
    fn sieve_large_parallel_path() {
        let v: Vec<u64> = (0..200_000)
            .map(|i| (i * 2654435761u64) % 1_000_003)
            .collect();
        check_sieve(v, 16);
        let v: Vec<u64> = (0..200_000).map(|i| (i * 40503u64) % 97).collect();
        check_sieve(v, 97);
    }

    #[test]
    fn sieve_all_same_bucket_large() {
        let v: Vec<u64> = vec![8; 100_000];
        check_sieve(v, 4);
    }

    #[test]
    fn sieve_with_precomputed_ids() {
        let mut v: Vec<u64> = (0..10_000).collect();
        let ids: Vec<usize> = v.iter().map(|x| (x % 7) as usize).collect();
        let offsets = sieve(&mut v, 7, &ids);
        assert_eq!(offsets[7], v.len());
        for k in 0..7 {
            for &x in &v[offsets[k]..offsets[k + 1]] {
                assert_eq!((x % 7) as usize, k);
            }
        }
    }

    proptest! {
        #[test]
        fn sieve_random(v in proptest::collection::vec(0u64..10_000, 0..4000), nb in 1usize..32) {
            check_sieve(v, nb);
        }
    }
}
