//! Parallel sorting: sample sort and the paper's **HybridSort**.
//!
//! The SPaC-tree construction (Alg. 3) does not sort points directly; it sorts
//! lightweight `⟨code, id⟩` pairs where `code` is the SFC key and `id` indexes
//! the original point array, and — crucially — computes the code lazily the
//! first time a point is touched by the sort, saving one full read/write round
//! over the naive "compute codes, then sort" pipeline (§4.1 credits this with
//! a large share of the 3.1–3.5× speed-up over the plain CPAM adaptation).
//!
//! [`par_sort_by_key`] is a general parallel sample sort used wherever an index
//! needs to order things (batch preprocessing, Zd-tree Morton presort, leaf
//! re-sorting). [`hybrid_sort_keys`] is the fused variant for `⟨code, id⟩`
//! pairs.

use crate::sieve::sieve_by;
use crate::{par2, SEQ_THRESHOLD};
use rayon::prelude::*;

/// Oversampling factor of the sample sort: the number of samples taken per
/// output bucket. Larger values give more even buckets at slightly higher
/// sampling cost.
const OVERSAMPLE: usize = 8;
/// Maximum fan-out of one sample-sort round.
const MAX_BUCKETS: usize = 256;

/// Sort `data` in parallel by the key produced by `key`. Not stable.
pub fn par_sort_by_key<T, K, F>(data: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: Ord + Copy + Send + Sync,
    F: Fn(&T) -> K + Sync + Copy,
{
    let n = data.len();
    if n <= SEQ_THRESHOLD {
        data.sort_unstable_by_key(key);
        return;
    }

    // Choose the fan-out so each bucket is expected to be ~SEQ_THRESHOLD or we
    // recurse at most a couple of times.
    let nbuckets = (n / SEQ_THRESHOLD).clamp(2, MAX_BUCKETS);

    // Sample and pick pivots.
    let sample_count = nbuckets * OVERSAMPLE;
    let mut samples: Vec<K> = (0..sample_count)
        .map(|i| key(&data[(i * (n / sample_count)).min(n - 1)]))
        .collect();
    samples.sort_unstable();
    let pivots: Vec<K> = (1..nbuckets).map(|i| samples[i * OVERSAMPLE]).collect();

    // Degenerate sample (heavily duplicated keys): fall back to a direct sort
    // rather than recursing with no progress.
    if pivots.windows(2).all(|w| w[0] == w[1]) && !pivots.is_empty() {
        data.par_sort_unstable_by_key(key);
        return;
    }

    // Distribute into buckets with one sieve pass.
    let offsets = sieve_by(data, nbuckets, |x| {
        let k = key(x);
        pivots.partition_point(|p| *p <= k)
    });

    // Recurse on buckets in parallel: a binary fork-join over the bucket
    // list, so every level of the recursion is a task on the worker pool's
    // deques (rather than a flat nested job per level) and uneven bucket
    // sizes rebalance through work stealing.
    let mut slices: Vec<&mut [T]> = Vec::with_capacity(nbuckets);
    let mut rest = data;
    for w in offsets.windows(2) {
        let len = w[1] - w[0];
        let (head, tail) = rest.split_at_mut(len);
        slices.push(head);
        rest = tail;
    }
    sort_buckets(&mut slices, key);
}

/// Sort each bucket, forking the bucket list in halves via [`par2`].
fn sort_buckets<T, K, F>(slices: &mut [&mut [T]], key: F)
where
    T: Copy + Send + Sync,
    K: Ord + Copy + Send + Sync,
    F: Fn(&T) -> K + Sync + Copy,
{
    match slices {
        [] => {}
        [s] => {
            if s.len() > SEQ_THRESHOLD {
                par_sort_by_key(s, key);
            } else {
                s.sort_unstable_by_key(key);
            }
        }
        _ => {
            let mid = slices.len() / 2;
            let (left, right) = slices.split_at_mut(mid);
            par2(|| sort_buckets(left, key), || sort_buckets(right, key));
        }
    }
}

/// Parallel unstable sort of an `Ord` slice (convenience wrapper).
pub fn par_sort_unstable<T: Ord + Copy + Send + Sync>(data: &mut [T]) {
    par_sort_by_key(data, |x| *x);
}

/// The paper's HybridSort (Alg. 3, lines 5–19): produce the sequence of
/// `⟨code, id⟩` pairs for `points`, sorted by code (ties broken by id for
/// determinism), computing each point's code exactly once during the first
/// distribution pass rather than in a separate preprocessing round.
pub fn hybrid_sort_keys<P, F>(points: &[P], code_of: F) -> Vec<(u64, u32)>
where
    P: Sync,
    F: Fn(&P) -> u64 + Sync,
{
    let n = points.len();
    assert!(n <= u32::MAX as usize, "point ids are 32-bit");

    // First (and only) touch of the point data: compute codes in parallel while
    // materialising the lightweight pair array the rest of the sort works on.
    let mut pairs: Vec<(u64, u32)> = points
        .par_iter()
        .enumerate()
        .map(|(i, p)| (code_of(p), i as u32))
        .collect();

    par_sort_by_key(&mut pairs, |&(c, i)| (c, i));
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    #[test]
    fn sort_empty_and_single() {
        let mut v: Vec<u64> = vec![];
        par_sort_unstable(&mut v);
        assert!(v.is_empty());
        let mut v = vec![42u64];
        par_sort_unstable(&mut v);
        assert_eq!(v, vec![42]);
    }

    #[test]
    fn sort_small() {
        let mut v = vec![5u64, 3, 9, 1, 4, 1, 5, 9, 2, 6];
        par_sort_unstable(&mut v);
        assert_eq!(v, vec![1, 1, 2, 3, 4, 5, 5, 6, 9, 9]);
    }

    #[test]
    fn sort_large_random() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u64> = (0..300_000).map(|_| rng.gen_range(0..1_000_000)).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        par_sort_unstable(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sort_large_all_equal() {
        let mut v: Vec<u64> = vec![7; 150_000];
        par_sort_unstable(&mut v);
        assert!(v.iter().all(|&x| x == 7));
    }

    #[test]
    fn sort_already_sorted_and_reversed() {
        let mut v: Vec<u64> = (0..100_000).collect();
        par_sort_unstable(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        let mut v: Vec<u64> = (0..100_000).rev().collect();
        par_sort_unstable(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sort_by_key_uses_key_only() {
        let mut v: Vec<(u64, u64)> = (0..50_000u64).map(|i| (i, 50_000 - i)).collect();
        par_sort_by_key(&mut v, |&(_, b)| b);
        assert!(v.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn hybrid_sort_small() {
        let points = vec![30u64, 10, 20, 10];
        let sorted = hybrid_sort_keys(&points, |&p| p);
        assert_eq!(sorted, vec![(10, 1), (10, 3), (20, 2), (30, 0)]);
    }

    #[test]
    fn hybrid_sort_matches_reference_large() {
        let mut rng = StdRng::seed_from_u64(13);
        let points: Vec<u64> = (0..200_000).map(|_| rng.gen_range(0..1u64 << 40)).collect();
        let got = hybrid_sort_keys(&points, |&p| p.rotate_left(17));
        let mut expect: Vec<(u64, u32)> = points
            .iter()
            .enumerate()
            .map(|(i, &p)| (p.rotate_left(17), i as u32))
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    proptest! {
        #[test]
        fn par_sort_matches_std(v in proptest::collection::vec(0u64..1000, 0..5000)) {
            let mut a = v.clone();
            let mut b = v;
            par_sort_unstable(&mut a);
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn hybrid_sort_is_sorted_permutation(v in proptest::collection::vec(0u64.., 0..3000)) {
            let got = hybrid_sort_keys(&v, |&p| p / 3);
            prop_assert_eq!(got.len(), v.len());
            prop_assert!(got.windows(2).all(|w| w[0] <= w[1]));
            // ids form a permutation of 0..n
            let mut ids: Vec<u32> = got.iter().map(|&(_, i)| i).collect();
            ids.sort_unstable();
            prop_assert!(ids.iter().enumerate().all(|(i, &id)| id as usize == i));
            // codes are correct for their ids
            prop_assert!(got.iter().all(|&(c, i)| c == v[i as usize] / 3));
        }
    }
}
