//! Parallel prefix sums (exclusive scan).
//!
//! Used throughout the sieve and sample-sort passes to turn per-block counts
//! into scatter offsets. The implementation is the classic two-pass blocked
//! scan: per-block sums are reduced in parallel, scanned sequentially (the
//! number of blocks is small), and the per-block offsets are then applied in
//! parallel — `O(n)` work and `O(log n)` span, matching the bound the paper
//! assumes for its counting-sort subroutine.

use crate::SEQ_THRESHOLD;
use rayon::prelude::*;

/// Exclusive prefix sum: returns a vector `out` with `out[i] = sum(v[..i])`
/// plus the total sum of all elements.
pub fn exclusive_scan(v: &[usize]) -> (Vec<usize>, usize) {
    let mut out = v.to_vec();
    let total = exclusive_scan_inplace(&mut out);
    (out, total)
}

/// In-place exclusive prefix sum; returns the total.
pub fn exclusive_scan_inplace(v: &mut [usize]) -> usize {
    let n = v.len();
    if n == 0 {
        return 0;
    }
    if n <= SEQ_THRESHOLD {
        return seq_exclusive_scan(v);
    }

    let nblocks = rayon::current_num_threads().max(1) * 8;
    let block = n.div_ceil(nblocks);

    // Pass 1: per-block sums.
    let mut sums: Vec<usize> = v
        .par_chunks(block)
        .map(|c| c.iter().sum::<usize>())
        .collect();

    // Scan the (small) block-sum array sequentially.
    let total = seq_exclusive_scan(&mut sums);

    // Pass 2: local scan with the block offset added.
    v.par_chunks_mut(block)
        .zip(sums.par_iter())
        .for_each(|(c, &offset)| {
            let mut acc = offset;
            for x in c.iter_mut() {
                let next = acc + *x;
                *x = acc;
                acc = next;
            }
        });

    total
}

fn seq_exclusive_scan(v: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for x in v.iter_mut() {
        let next = acc + *x;
        *x = acc;
        acc = next;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_scan() {
        let (out, total) = exclusive_scan(&[]);
        assert!(out.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn small_scan() {
        let (out, total) = exclusive_scan(&[3, 1, 4, 1, 5]);
        assert_eq!(out, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn scan_all_zeros() {
        let (out, total) = exclusive_scan(&[0; 10]);
        assert_eq!(out, vec![0; 10]);
        assert_eq!(total, 0);
    }

    #[test]
    fn large_scan_matches_sequential() {
        let v: Vec<usize> = (0..100_000).map(|i| (i * 31 + 7) % 13).collect();
        let (par, total) = exclusive_scan(&v);
        let mut expect = v.clone();
        let et = seq_exclusive_scan(&mut expect);
        assert_eq!(par, expect);
        assert_eq!(total, et);
    }

    proptest! {
        #[test]
        fn scan_invariant(v in proptest::collection::vec(0usize..1000, 0..500)) {
            let (out, total) = exclusive_scan(&v);
            prop_assert_eq!(out.len(), v.len());
            // out[i] + v[i] == out[i+1], and out[last] + v[last] == total
            for i in 0..v.len() {
                let next = if i + 1 < v.len() { out[i + 1] } else { total };
                prop_assert_eq!(out[i] + v[i], next);
            }
        }
    }
}
