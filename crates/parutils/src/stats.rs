//! Lightweight instrumentation counters.
//!
//! The paper analyses its algorithms in the work–span and ideal-cache models
//! (§2.1). Absolute wall-clock numbers on a small machine are noisy, so the
//! ablation benchmarks additionally report *machine-independent proxies*:
//! how many points were moved, how many tree nodes were visited, how many
//! leaves were re-sorted, etc.
//!
//! The counter type itself now lives in `psi-obs` (re-exported here, so
//! existing call sites keep compiling): a cache-line-padded striped counter
//! whose `add` is one relaxed `fetch_add` on the calling thread's stripe —
//! cheap enough to leave enabled, precise enough for comparative ablation.
//! [`register_metrics`] catalogues the six process-global counters in the
//! ψ-obs [`MetricsRegistry`](psi_obs::MetricsRegistry) so they ride the
//! stats endpoint and `OP_STATS` alongside the serving-stack metrics.
//!
//! Tests that assert on these process-global counters should use
//! [`Counter::scoped`] — a same-thread delta capture — instead of raw
//! before/after snapshots, which race with every other test thread
//! touching the same counter.

pub use psi_obs::Counter;

/// Counters shared by the index implementations. Each index bumps the subset
/// that is meaningful for it; the ablation benches snapshot them around a
/// measured region via [`snapshot`]/[`delta`].
pub mod counters {
    use super::Counter;

    /// Points physically moved by sieve/scatter/sort passes (the cache-cost proxy).
    pub static POINTS_MOVED: Counter = Counter::new();
    /// Tree nodes visited by queries.
    pub static NODES_VISITED: Counter = Counter::new();
    /// Leaves whose points had to be (re-)sorted (the SPaC vs CPAM ablation signal).
    pub static LEAVES_SORTED: Counter = Counter::new();
    /// SFC codes computed.
    pub static CODES_COMPUTED: Counter = Counter::new();
    /// Join/rebalance operations performed.
    pub static REBALANCES: Counter = Counter::new();
    /// Shared nodes copied on write (the persistent-snapshot cost proxy: a
    /// batch update against a snapshotted tree copies only the touched spine,
    /// so this stays O(log n + touched leaves) per batch, never O(n)).
    pub static NODES_COPIED: Counter = Counter::new();
}

/// Catalogue the six ablation counters in the process-global ψ-obs
/// registry (idempotent — call as often as convenient). The counters work
/// without this; registration only makes them visible to the exposition
/// endpoints.
pub fn register_metrics() {
    let r = psi_obs::registry();
    r.register_static_counter(
        "psi_index_points_moved_total",
        "points physically moved by sieve/scatter/sort passes",
        &counters::POINTS_MOVED,
    );
    r.register_static_counter(
        "psi_index_nodes_visited_total",
        "tree nodes visited by queries",
        &counters::NODES_VISITED,
    );
    r.register_static_counter(
        "psi_index_leaves_sorted_total",
        "leaves whose points were (re-)sorted",
        &counters::LEAVES_SORTED,
    );
    r.register_static_counter(
        "psi_index_codes_computed_total",
        "space-filling-curve codes computed",
        &counters::CODES_COMPUTED,
    );
    r.register_static_counter(
        "psi_index_rebalances_total",
        "join/rebalance operations performed",
        &counters::REBALANCES,
    );
    r.register_static_counter(
        "psi_index_nodes_copied_total",
        "shared nodes copied on write (persistent-snapshot cost proxy)",
        &counters::NODES_COPIED,
    );
}

/// A snapshot of all counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    pub points_moved: u64,
    pub nodes_visited: u64,
    pub leaves_sorted: u64,
    pub codes_computed: u64,
    pub rebalances: u64,
    pub nodes_copied: u64,
}

/// Read all counters.
pub fn snapshot() -> Snapshot {
    Snapshot {
        points_moved: counters::POINTS_MOVED.get(),
        nodes_visited: counters::NODES_VISITED.get(),
        leaves_sorted: counters::LEAVES_SORTED.get(),
        codes_computed: counters::CODES_COMPUTED.get(),
        rebalances: counters::REBALANCES.get(),
        nodes_copied: counters::NODES_COPIED.get(),
    }
}

/// Difference between two snapshots (later minus earlier, saturating).
pub fn delta(before: Snapshot, after: Snapshot) -> Snapshot {
    Snapshot {
        points_moved: after.points_moved.saturating_sub(before.points_moved),
        nodes_visited: after.nodes_visited.saturating_sub(before.nodes_visited),
        leaves_sorted: after.leaves_sorted.saturating_sub(before.leaves_sorted),
        codes_computed: after.codes_computed.saturating_sub(before.codes_computed),
        rebalances: after.rebalances.saturating_sub(before.rebalances),
        nodes_copied: after.nodes_copied.saturating_sub(before.nodes_copied),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.bump();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Counter::new();
        rayon::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        c.bump();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn snapshot_delta() {
        let before = snapshot();
        counters::POINTS_MOVED.add(5);
        counters::LEAVES_SORTED.add(2);
        let after = snapshot();
        let d = delta(before, after);
        assert!(d.points_moved >= 5);
        assert!(d.leaves_sorted >= 2);
        assert_eq!(d.nodes_visited, after.nodes_visited - before.nodes_visited);
    }

    #[test]
    fn registration_is_idempotent_and_reads_through() {
        register_metrics();
        register_metrics();
        counters::REBALANCES.bump();
        let text = psi_obs::render_prometheus();
        assert!(text.contains("psi_index_rebalances_total"));
    }
}
