//! Lightweight instrumentation counters.
//!
//! The paper analyses its algorithms in the work–span and ideal-cache models
//! (§2.1). Absolute wall-clock numbers on a small machine are noisy, so the
//! ablation benchmarks additionally report *machine-independent proxies*:
//! how many points were moved, how many tree nodes were visited, how many
//! leaves were re-sorted, etc. These counters are global, relaxed atomics —
//! cheap enough to leave enabled, precise enough for comparative ablation.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named global event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A new zeroed counter (usable in `static` position).
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add `n` events.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add a single event.
    #[inline(always)]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero and return the previous value.
    pub fn take(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// Counters shared by the index implementations. Each index bumps the subset
/// that is meaningful for it; the ablation benches snapshot them around a
/// measured region via [`snapshot`]/[`delta`].
pub mod counters {
    use super::Counter;

    /// Points physically moved by sieve/scatter/sort passes (the cache-cost proxy).
    pub static POINTS_MOVED: Counter = Counter::new();
    /// Tree nodes visited by queries.
    pub static NODES_VISITED: Counter = Counter::new();
    /// Leaves whose points had to be (re-)sorted (the SPaC vs CPAM ablation signal).
    pub static LEAVES_SORTED: Counter = Counter::new();
    /// SFC codes computed.
    pub static CODES_COMPUTED: Counter = Counter::new();
    /// Join/rebalance operations performed.
    pub static REBALANCES: Counter = Counter::new();
    /// Shared nodes copied on write (the persistent-snapshot cost proxy: a
    /// batch update against a snapshotted tree copies only the touched spine,
    /// so this stays O(log n + touched leaves) per batch, never O(n)).
    pub static NODES_COPIED: Counter = Counter::new();
}

/// A snapshot of all counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    pub points_moved: u64,
    pub nodes_visited: u64,
    pub leaves_sorted: u64,
    pub codes_computed: u64,
    pub rebalances: u64,
    pub nodes_copied: u64,
}

/// Read all counters.
pub fn snapshot() -> Snapshot {
    Snapshot {
        points_moved: counters::POINTS_MOVED.get(),
        nodes_visited: counters::NODES_VISITED.get(),
        leaves_sorted: counters::LEAVES_SORTED.get(),
        codes_computed: counters::CODES_COMPUTED.get(),
        rebalances: counters::REBALANCES.get(),
        nodes_copied: counters::NODES_COPIED.get(),
    }
}

/// Difference between two snapshots (later minus earlier, saturating).
pub fn delta(before: Snapshot, after: Snapshot) -> Snapshot {
    Snapshot {
        points_moved: after.points_moved.saturating_sub(before.points_moved),
        nodes_visited: after.nodes_visited.saturating_sub(before.nodes_visited),
        leaves_sorted: after.leaves_sorted.saturating_sub(before.leaves_sorted),
        codes_computed: after.codes_computed.saturating_sub(before.codes_computed),
        rebalances: after.rebalances.saturating_sub(before.rebalances),
        nodes_copied: after.nodes_copied.saturating_sub(before.nodes_copied),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.bump();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Counter::new();
        rayon::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        c.bump();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn snapshot_delta() {
        let before = snapshot();
        counters::POINTS_MOVED.add(5);
        counters::LEAVES_SORTED.add(2);
        let after = snapshot();
        let d = delta(before, after);
        assert!(d.points_moved >= 5);
        assert!(d.leaves_sorted >= 2);
        assert_eq!(d.nodes_visited, after.nodes_visited - before.nodes_visited);
    }
}
