//! Exposition: serialise the registry as Prometheus-style text. Histograms
//! render as summaries (`{quantile="…"}` series plus `_count`, `_sum`,
//! `_max`) — the full 1920-bucket array would dwarf the payload while the
//! log-linear buckets already bound each quantile within 1/32.
//!
//! The same text is the payload of the wire's `OP_STATS` reply (prefixed
//! with [`SNAPSHOT_VERSION`]) and of the `--stats-addr` endpoint, so every
//! consumer sees one consistent rendering.

use crate::registry::{registry, Sample};

/// Version tag carried inside the `OP_STATS` snapshot frame. Bump when the
/// text schema changes incompatibly (metric renames, format changes).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Quantiles every histogram reports.
const QUANTILES: &[(f64, &str)] = &[(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

fn labels_with(extra: (&str, &str), id: &crate::registry::MetricId) -> String {
    let mut pairs: Vec<String> = id
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    pairs.push(format!("{}=\"{}\"", extra.0, extra.1));
    format!("{}{{{}}}", id.name, pairs.join(","))
}

/// Render every registered metric as Prometheus-style text exposition.
pub fn render_prometheus() -> String {
    let mut out = String::with_capacity(4096);
    let mut seen_help: Vec<&'static str> = Vec::new();
    for sample in registry().collect() {
        match sample {
            Sample::Counter(id, help, v) => {
                if !seen_help.contains(&id.name) {
                    out.push_str(&format!(
                        "# HELP {} {}\n# TYPE {} counter\n",
                        id.name, help, id.name
                    ));
                    seen_help.push(id.name);
                }
                out.push_str(&format!("{} {}\n", id.render(), v));
            }
            Sample::Gauge(id, help, v) => {
                if !seen_help.contains(&id.name) {
                    out.push_str(&format!(
                        "# HELP {} {}\n# TYPE {} gauge\n",
                        id.name, help, id.name
                    ));
                    seen_help.push(id.name);
                }
                out.push_str(&format!("{} {}\n", id.render(), v));
            }
            Sample::Histogram(id, help, snap) => {
                if !seen_help.contains(&id.name) {
                    out.push_str(&format!(
                        "# HELP {} {}\n# TYPE {} summary\n",
                        id.name, help, id.name
                    ));
                    seen_help.push(id.name);
                }
                for &(q, tag) in QUANTILES {
                    out.push_str(&format!(
                        "{} {}\n",
                        labels_with(("quantile", tag), &id),
                        snap.quantile(q)
                    ));
                }
                let base = id.render();
                let (series, labels) = match base.find('{') {
                    Some(i) => (&base[..i], &base[i..]),
                    None => (base.as_str(), ""),
                };
                out.push_str(&format!("{series}_count{labels} {}\n", snap.count()));
                out.push_str(&format!("{series}_sum{labels} {}\n", snap.sum));
                out.push_str(&format!("{series}_max{labels} {}\n", snap.max));
            }
        }
    }
    out
}

/// Render the most recent `limit` events as text, one line each.
pub fn render_events(limit: usize) -> String {
    let mut out = String::new();
    for e in crate::events::recent_events(limit) {
        out.push_str(&e.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_contains_registered_series() {
        let c = crate::counter("expose_test_total", "events", &[("op", "knn")]);
        c.add(7);
        let h = crate::histogram("expose_test_latency_ns", "latency", &[]);
        h.record(1000);
        let text = render_prometheus();
        assert!(text.contains("expose_test_total{op=\"knn\"} 7"));
        assert!(text.contains("# TYPE expose_test_total counter"));
        assert!(text.contains("expose_test_latency_ns{quantile=\"0.99\"}"));
        assert!(text.contains("expose_test_latency_ns_count 1"));
        assert!(text.contains("expose_test_latency_ns_sum 1000"));
        assert!(text.contains("expose_test_latency_ns_max 1000"));
    }
}
