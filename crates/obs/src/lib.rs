//! ψ-obs: the observability substrate of the serving stack.
//!
//! Every layer of the system — the work-stealing pool, the epoch-published
//! shards, the request coalescer, the WAL/checkpoint durability machinery
//! and the socket front-end — reports into this crate, and everything the
//! crate offers is hermetic: no external dependencies, in the spirit of
//! `crates/shims`.
//!
//! # Primitives
//!
//! * [`Counter`] — a monotonically increasing event count, striped across
//!   cache-line-padded shards so concurrent writers do not bounce one line.
//!   `add` is a single relaxed `fetch_add`; reads sum the stripes.
//! * [`Gauge`] — a signed instantaneous level (queue depth, open
//!   connections). One atomic; updates are rare relative to counters.
//! * [`Histogram`] — a lock-free log-bucketed latency histogram in the
//!   HDR style: power-of-two groups refined by 32 linear sub-buckets, so
//!   every recorded value lands in a bucket whose width is at most 1/32 of
//!   its magnitude (≤ 3.2 % relative error). [`Histogram::record`] is
//!   **wait-free**: one `fetch_add` on the bucket, one on the running sum,
//!   one `fetch_max` — no CAS loop, no lock, nothing that can spin.
//!   Snapshots are plain arrays that merge associatively and subtract to
//!   form deltas; quantiles (p50/p90/p99/p999/max) read out of the
//!   cumulative bucket walk.
//!
//! # Registry
//!
//! A process-global [`MetricsRegistry`] catalogues every metric under a
//! name plus a *static label set* (labels are fixed at registration:
//! `shard`, `op`, `transport`, …). Hot paths never touch the registry —
//! they hold the `Arc` (or a [`LazyCounter`]/[`LazyGauge`] static) obtained
//! once at startup; the registry's mutex guards registration and collection
//! only.
//!
//! # Events and slow queries
//!
//! [`event!`] appends a structured event (severity, target, message,
//! key/value fields) to a bounded in-memory ring; warnings and errors are
//! additionally printed to stderr by the default sink, which is what keeps
//! operator-facing messages greppable in logs. The slow-query log
//! ([`slowlog`]) is opt-in and threshold-gated: while disabled (the
//! default) the hot-path check is a single relaxed load, and it never
//! coordinates with the queries it observes.
//!
//! # Exposure
//!
//! [`render_prometheus`] serialises the whole registry as Prometheus-style
//! text (histograms as summaries: `{quantile="…"}` plus `_count`, `_sum`,
//! `_max`); the same text rides the wire inside the `OP_STATS` reply and
//! the `psi-netd --stats-addr` endpoint.

pub mod events;
pub mod expose;
pub mod metrics;
pub mod registry;
pub mod slowlog;

pub use events::{recent_events, Event, Severity};
pub use expose::{render_events, render_prometheus, SNAPSHOT_VERSION};
pub use metrics::{bucket_bounds, bucket_index, Counter, Gauge, HistSnapshot, Histogram};
pub use registry::{
    counter, gauge, histogram, registry, LazyCounter, LazyGauge, LazyHistogram, MetricsRegistry,
};

/// Append a structured event to the ring (and stderr for `Warn`/`Error`).
///
/// Two forms:
///
/// ```
/// psi_obs::event!(Warn, "server", "WAL append failed ({})", "io error");
/// psi_obs::event!(
///     Info,
///     "server",
///     [("shard", 3), ("epoch", 17)],
///     "publish complete"
/// );
/// ```
///
/// The first argument is a [`Severity`] variant name; the second the
/// subsystem (`"server"`, `"net"`, `"wal"`, …); the optional bracketed list
/// carries key/value fields (values go through `ToString`); the rest is a
/// `format!` message.
#[macro_export]
macro_rules! event {
    ($sev:ident, $target:expr, [$(($k:expr, $v:expr)),* $(,)?], $($fmt:tt)+) => {
        $crate::events::emit(
            $crate::Severity::$sev,
            $target,
            format!($($fmt)+),
            vec![$(($k, $v.to_string())),*],
        )
    };
    ($sev:ident, $target:expr, $($fmt:tt)+) => {
        $crate::events::emit($crate::Severity::$sev, $target, format!($($fmt)+), Vec::new())
    };
}
