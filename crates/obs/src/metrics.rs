//! The metric primitives: sharded counters, gauges, and the log-bucketed
//! latency histogram. Everything here is designed for the *recording* side
//! to be wait-free — a bounded number of relaxed atomic operations, no CAS
//! loop, no lock — because these calls sit on query, steal and publish hot
//! paths that must never coordinate.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Stripes per [`Counter`]. Eight 128-byte-padded cells cost 1 KiB per
/// counter and absorb the write traffic of every realistic thread count —
/// threads hash onto stripes, so two cores rarely contend on one line.
const COUNTER_STRIPES: usize = 8;

/// A cache-line-padded atomic cell. 128-byte alignment covers the adjacent
/// line prefetcher on common x86 parts, not just the 64-byte line itself.
#[repr(align(128))]
struct PaddedU64(AtomicU64);

thread_local! {
    /// This thread's counter stripe, assigned round-robin on first use.
    static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    /// The active same-thread scoped capture: (counter address, count).
    /// At most one capture per thread; see [`Counter::scoped`].
    static CAPTURE: Cell<(usize, u64)> = const { Cell::new((0, 0)) };
}

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn stripe_index() -> usize {
    STRIPE.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % COUNTER_STRIPES;
        s.set(v);
        v
    })
}

/// A monotonically increasing event counter, striped across padded cells so
/// concurrent writers on different cores do not serialise on one cache
/// line. Const-constructible, so it works in `static` position.
pub struct Counter {
    stripes: [PaddedU64; COUNTER_STRIPES],
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

impl Counter {
    /// A new zeroed counter (usable in `static` position).
    pub const fn new() -> Self {
        Counter {
            stripes: [const { PaddedU64(AtomicU64::new(0)) }; COUNTER_STRIPES],
        }
    }

    /// Add `n` events. One relaxed `fetch_add` on this thread's stripe.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
        let (addr, count) = CAPTURE.with(Cell::get);
        if addr == std::ptr::from_ref(self) as usize {
            CAPTURE.with(|c| c.set((addr, count + n)));
        }
    }

    /// Add a single event.
    #[inline(always)]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Current value (sum over stripes; exact once writers are quiescent,
    /// a consistent-enough read while they are not).
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Reset to zero and return the previous value.
    pub fn take(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.swap(0, Ordering::Relaxed))
            .sum()
    }

    /// Run `f` and return `(f(), adds)` where `adds` counts only the events
    /// **this thread** added to **this counter** inside `f`.
    ///
    /// This is the scoped delta handle for tests that assert on a
    /// process-global counter: a plain before/after snapshot races with
    /// every other test thread mutating the same counter, while a scoped
    /// capture attributes exactly the calling thread's own work. The global
    /// stripes are still bumped — capture observes, it never diverts.
    /// Captures do not nest (the inner scope would steal the outer's
    /// attribution); at most one is active per thread.
    pub fn scoped<R>(&self, f: impl FnOnce() -> R) -> (R, u64) {
        let me = std::ptr::from_ref(self) as usize;
        let prev = CAPTURE.with(|c| c.replace((me, 0)));
        assert_eq!(prev.0, 0, "Counter::scoped captures do not nest");
        let out = f();
        let (_, n) = CAPTURE.with(|c| c.replace(prev));
        (out, n)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.get())
            .finish()
    }
}

/// A signed instantaneous level: queue depth, open connections, pinned
/// readers. Set/add/sub on one atomic — gauges change orders of magnitude
/// less often than counters, so striping would buy nothing.
#[derive(Debug, Default)]
pub struct Gauge {
    value: std::sync::atomic::AtomicI64,
}

impl Gauge {
    /// A new zeroed gauge (usable in `static` position).
    pub const fn new() -> Self {
        Gauge {
            value: std::sync::atomic::AtomicI64::new(0),
        }
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the level by `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Lower the level by `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raise by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Lower by one.
    #[inline]
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram: HDR-style log-linear buckets.
// ---------------------------------------------------------------------------

/// Linear sub-buckets per power-of-two group: 2^5. Bucket width is at most
/// 1/32 of the value's magnitude, so any quantile read out of a bucket is
/// within ~3.2 % of the true sample quantile.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;

/// Total buckets: indices `0..64` hold exact integer values `0..64`
/// (groups where the sub-bucket refinement is finer than 1); above that,
/// one 32-bucket group per power of two up to `u64::MAX`.
pub const N_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB; // 1920

/// The bucket a value lands in. Monotonic in `v`; exact for `v < 64`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let group = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) as usize) - SUB;
    SUB + group * SUB + sub
}

/// Inclusive `[lo, hi]` value bounds of bucket `idx`. Every `v` with
/// `bucket_index(v) == idx` satisfies `lo <= v <= hi`, and vice versa.
#[inline]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    debug_assert!(idx < N_BUCKETS);
    if idx < SUB {
        return (idx as u64, idx as u64);
    }
    let group = (idx - SUB) / SUB;
    let sub = ((idx - SUB) % SUB) as u64;
    let lo = (SUB as u64 + sub) << group;
    let width = 1u64 << group;
    (lo, lo + (width - 1))
}

/// A lock-free log-bucketed latency histogram. [`record`](Self::record) is
/// wait-free (three relaxed atomic RMWs, no CAS loop); snapshots merge
/// associatively and subtract into deltas; quantiles come from the
/// cumulative bucket walk, reported as the bucket's upper bound (within
/// 1/32 of the true value by construction), with the exact observed
/// maximum kept alongside.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A new empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Wait-free: bucket `fetch_add`, sum `fetch_add`,
    /// max `fetch_max` — all relaxed, none can spin or block.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record an elapsed duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total recorded values (sums the buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the whole histogram. Concurrent recorders
    /// may land between bucket reads; each individual value is either fully
    /// in or fully out of some later snapshot, so deltas never go negative
    /// per bucket by more than in-flight records.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

/// A mergeable point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot::empty()
    }
}

impl HistSnapshot {
    /// A snapshot of nothing.
    pub fn empty() -> Self {
        HistSnapshot {
            buckets: vec![0; N_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fold `other` into `self`. Associative and commutative: merging
    /// per-thread or per-shard snapshots in any grouping yields the same
    /// totals, which is what makes sharded recording aggregate exactly.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The growth since `earlier` (bucket-wise saturating subtraction).
    /// `max` carries over from `self`: the running maximum is monotone, so
    /// the delta's max is an upper bound, not the window's exact max.
    pub fn delta(&self, earlier: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Inclusive value bounds of the bucket holding the `q`-quantile
    /// (`0.0 ..= 1.0`); `None` when the histogram is empty. The true
    /// sorted-sample quantile is guaranteed to lie inside these bounds.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        // Nearest-rank: the smallest value with cumulative count >= ceil(q*n).
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_bounds(idx));
            }
        }
        None
    }

    /// The `q`-quantile, reported as its bucket's upper bound clamped to
    /// the observed maximum (0 when empty). Within 1/32 of the true
    /// nearest-rank sample quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q)
            .map(|(_, hi)| hi.min(self.max))
            .unwrap_or(0)
    }

    /// Convenience: a quantile in milliseconds, for values recorded in
    /// nanoseconds.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile(q) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_bounded() {
        let mut values: Vec<u64> = (0..64)
            .flat_map(|shift| [0u64, 1, 2, 3].map(|off| (1u64 << shift).saturating_add(off)))
            .collect();
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index must be monotone in value (v={v})");
            assert!(idx < N_BUCKETS);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} outside bucket [{lo},{hi}]");
            prev = idx;
        }
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_partition_the_line() {
        // Consecutive buckets tile the u64 line with no gap or overlap.
        for idx in 0..N_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(idx);
            let (next_lo, _) = bucket_bounds(idx + 1);
            assert_eq!(hi + 1, next_lo, "gap/overlap at bucket {idx}");
        }
        assert_eq!(bucket_bounds(0).0, 0);
        assert_eq!(bucket_bounds(N_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn counter_stripes_sum() {
        let c = Counter::new();
        c.add(5);
        c.bump();
        assert_eq!(c.get(), 6);
        assert_eq!(c.take(), 6);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_scoped_captures_own_thread_only() {
        static C: Counter = Counter::new();
        let other = std::thread::spawn(|| {
            for _ in 0..1000 {
                C.add(3);
            }
        });
        let ((), mine) = C.scoped(|| {
            for _ in 0..10 {
                C.add(2);
            }
        });
        other.join().unwrap();
        assert_eq!(mine, 20, "scoped delta must see only this thread's adds");
        assert_eq!(C.get(), 3020, "global total still counts everyone");
    }

    #[test]
    fn gauge_levels() {
        let g = Gauge::new();
        g.inc();
        g.add(4);
        g.dec();
        assert_eq!(g.get(), 4);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_quantiles_track_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max, 1000);
        let (lo, hi) = s.quantile_bounds(0.5).unwrap();
        assert!(lo <= 500 && 500 <= hi);
        let (lo, hi) = s.quantile_bounds(0.99).unwrap();
        assert!(lo <= 990 && 990 <= hi);
        // The reported value is the bucket's upper bound: never below the
        // true quantile, never above it by more than the bucket width.
        assert!(s.quantile(0.5) >= 500);
        assert!(s.quantile(1.0) == 1000);
    }

    #[test]
    fn histogram_merge_is_associative() {
        let parts: Vec<HistSnapshot> = (0..3)
            .map(|i| {
                let h = Histogram::new();
                for v in 0..100u64 {
                    h.record(v * (i + 1));
                }
                h.snapshot()
            })
            .collect();
        // (a + b) + c == a + (b + c)
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn histogram_delta_isolates_a_window() {
        let h = Histogram::new();
        h.record(10);
        let before = h.snapshot();
        h.record(20);
        h.record(30);
        let after = h.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum, 50);
    }
}
