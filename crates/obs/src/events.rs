//! The structured event log: a bounded in-memory ring of severity-tagged,
//! key/value-carrying events, with a default stderr sink for warnings and
//! errors. Replaces the server's raw `eprintln!` sites — the same text
//! still lands on stderr (operators and the fault-injection harness grep
//! it), but the event also becomes queryable over the stats endpoint.
//!
//! Events are *rare* (recovery warnings, degradations, lifecycle marks), so
//! a mutex-guarded ring is the right tool; nothing on a query or publish
//! hot path emits events.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Retained events; older ones fall off the ring.
const RING_CAP: usize = 256;

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Diagnostic detail.
    Debug,
    /// Normal lifecycle marks.
    Info,
    /// Degradations the system survived (stderr by default).
    Warn,
    /// Failures (stderr by default).
    Error,
}

impl Severity {
    /// Uppercase tag for rendering.
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Debug => "DEBUG",
            Severity::Info => "INFO",
            Severity::Warn => "WARN",
            Severity::Error => "ERROR",
        }
    }
}

/// One structured event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic sequence number (process-wide).
    pub seq: u64,
    /// Severity.
    pub severity: Severity,
    /// Emitting subsystem (`"server"`, `"wal"`, `"net"`, …).
    pub target: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Structured key/value context.
    pub fields: Vec<(&'static str, String)>,
}

impl Event {
    /// Render as one log line: `[WARN] server: message key=value …`.
    pub fn render(&self) -> String {
        let mut line = format!(
            "[{}] {}: {}",
            self.severity.tag(),
            self.target,
            self.message
        );
        for (k, v) in &self.fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(v);
        }
        line
    }
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static RING: Mutex<VecDeque<Event>> = Mutex::new(VecDeque::new());

/// Append an event to the ring; `Warn` and above also print to stderr
/// (the default sink — keeps operator-facing warnings greppable in logs
/// and in the fault-injection harness's captured stderr).
pub fn emit(
    severity: Severity,
    target: &'static str,
    message: String,
    fields: Vec<(&'static str, String)>,
) {
    let event = Event {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        severity,
        target,
        message,
        fields,
    };
    if severity >= Severity::Warn {
        eprintln!("{}", event.render());
    }
    let mut ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    if ring.len() == RING_CAP {
        ring.pop_front();
    }
    ring.push_back(event);
}

/// The most recent `limit` events, oldest first.
pub fn recent_events(limit: usize) -> Vec<Event> {
    let ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    let skip = ring.len().saturating_sub(limit);
    ring.iter().skip(skip).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_ring_and_render() {
        crate::event!(Info, "test", "hello {}", 42);
        crate::event!(Info, "test", [("shard", 3), ("epoch", "9")], "publish done");
        let recent = recent_events(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].message, "hello 42");
        assert!(recent[1].seq > recent[0].seq);
        assert_eq!(
            recent[1].render(),
            format!("[INFO] test: publish done shard=3 epoch=9")
        );
    }

    #[test]
    fn ring_is_bounded() {
        for i in 0..(RING_CAP + 10) {
            emit(Severity::Debug, "bound", format!("e{i}"), Vec::new());
        }
        let all = recent_events(usize::MAX);
        assert!(all.len() <= RING_CAP);
    }
}
