//! The process-global metrics registry: a catalogue of every named metric
//! and its static label set, used only on cold paths (registration at
//! startup, collection at exposition time). Hot paths hold the `Arc` a
//! registration call returned — or a [`LazyCounter`]/[`LazyGauge`] static
//! that resolves it once — and never take the registry lock again.

use crate::metrics::{Counter, Gauge, HistSnapshot, Histogram};
use std::sync::{Arc, Mutex, OnceLock};

/// One metric's identity: name + resolved label pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricId {
    /// Metric name (`psi_serve_publish_latency_ns`, …).
    pub name: &'static str,
    /// Label pairs, fixed at registration.
    pub labels: Vec<(&'static str, String)>,
}

impl MetricId {
    /// Render as `name` or `name{k="v",…}`.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_string();
        }
        let inner: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{}{{{}}}", self.name, inner.join(","))
    }
}

enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    /// A `static` counter owned elsewhere (the legacy `psi_parutils::stats`
    /// counters live in statics; the registry only catalogues them).
    StaticCounter(&'static Counter),
}

struct Entry {
    id: MetricId,
    help: &'static str,
    slot: Slot,
}

/// A read-out of one metric at collection time.
pub enum Sample {
    /// Monotonic counter value.
    Counter(MetricId, &'static str, u64),
    /// Instantaneous gauge level.
    Gauge(MetricId, &'static str, i64),
    /// Full histogram snapshot.
    Histogram(MetricId, &'static str, HistSnapshot),
}

/// The process-global catalogue of metrics. Obtain it via [`registry`];
/// registration is idempotent — asking for the same name + label set again
/// returns the same underlying metric, so re-created servers within one
/// process keep accumulating into one series.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    fn find_or_insert<M>(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        get: impl Fn(&Slot) -> Option<M>,
        make: impl FnOnce() -> (M, Slot),
    ) -> M {
        let labels: Vec<(&'static str, String)> =
            labels.iter().map(|(k, v)| (*k, v.to_string())).collect();
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries
            .iter()
            .find(|e| e.id.name == name && e.id.labels == labels)
        {
            return get(&e.slot)
                .unwrap_or_else(|| panic!("metric {name:?} re-registered with a different type"));
        }
        let (out, slot) = make();
        entries.push(Entry {
            id: MetricId { name, labels },
            help,
            slot,
        });
        out
    }

    /// Get-or-register a counter.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Counter> {
        self.find_or_insert(
            name,
            help,
            labels,
            |s| match s {
                Slot::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (Arc::clone(&c), Slot::Counter(c))
            },
        )
    }

    /// Get-or-register a gauge.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Gauge> {
        self.find_or_insert(
            name,
            help,
            labels,
            |s| match s {
                Slot::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (Arc::clone(&g), Slot::Gauge(g))
            },
        )
    }

    /// Get-or-register a histogram.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Histogram> {
        self.find_or_insert(
            name,
            help,
            labels,
            |s| match s {
                Slot::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::new());
                (Arc::clone(&h), Slot::Histogram(h))
            },
        )
    }

    /// Catalogue a `static` counter owned by another crate (idempotent).
    pub fn register_static_counter(
        &self,
        name: &'static str,
        help: &'static str,
        counter: &'static Counter,
    ) {
        let mut entries = self.entries.lock().unwrap();
        if entries
            .iter()
            .any(|e| e.id.name == name && e.id.labels.is_empty())
        {
            return;
        }
        entries.push(Entry {
            id: MetricId {
                name,
                labels: Vec::new(),
            },
            help,
            slot: Slot::StaticCounter(counter),
        });
    }

    /// Snapshot every registered metric, in registration order.
    pub fn collect(&self) -> Vec<Sample> {
        let entries = self.entries.lock().unwrap();
        entries
            .iter()
            .map(|e| match &e.slot {
                Slot::Counter(c) => Sample::Counter(e.id.clone(), e.help, c.get()),
                Slot::StaticCounter(c) => Sample::Counter(e.id.clone(), e.help, c.get()),
                Slot::Gauge(g) => Sample::Gauge(e.id.clone(), e.help, g.get()),
                Slot::Histogram(h) => Sample::Histogram(e.id.clone(), e.help, h.snapshot()),
            })
            .collect()
    }
}

static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-global registry.
pub fn registry() -> &'static MetricsRegistry {
    REGISTRY.get_or_init(MetricsRegistry::default)
}

/// Get-or-register a counter in the global registry.
pub fn counter(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &str)],
) -> Arc<Counter> {
    registry().counter(name, help, labels)
}

/// Get-or-register a gauge in the global registry.
pub fn gauge(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &str)],
) -> Arc<Gauge> {
    registry().gauge(name, help, labels)
}

/// Get-or-register a histogram in the global registry.
pub fn histogram(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &str)],
) -> Arc<Histogram> {
    registry().histogram(name, help, labels)
}

/// A counter `static` that registers itself on first use: the hot path
/// pays one initialised-`OnceLock` load, never the registry mutex.
pub struct LazyCounter {
    name: &'static str,
    help: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    /// Declare (registration happens on first access).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        LazyCounter {
            name,
            help,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    fn get(&self) -> &Counter {
        self.cell.get_or_init(|| counter(self.name, self.help, &[]))
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.get().add(n);
    }

    /// Add one event.
    #[inline]
    pub fn bump(&self) {
        self.get().bump();
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.get().get()
    }
}

/// A gauge `static` that registers itself on first use.
pub struct LazyGauge {
    name: &'static str,
    help: &'static str,
    cell: OnceLock<Arc<Gauge>>,
}

impl LazyGauge {
    /// Declare (registration happens on first access).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        LazyGauge {
            name,
            help,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    fn get(&self) -> &Gauge {
        self.cell.get_or_init(|| gauge(self.name, self.help, &[]))
    }

    /// Raise by one.
    #[inline]
    pub fn inc(&self) {
        self.get().inc();
    }

    /// Lower by one.
    #[inline]
    pub fn dec(&self) {
        self.get().dec();
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.get().set(v);
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.get().get()
    }
}

/// A histogram `static` that registers itself on first use.
pub struct LazyHistogram {
    name: &'static str,
    help: &'static str,
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    /// Declare (registration happens on first access).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        LazyHistogram {
            name,
            help,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    fn get(&self) -> &Histogram {
        self.cell
            .get_or_init(|| histogram(self.name, self.help, &[]))
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.get().record(v);
    }

    /// Record an elapsed duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.get().record_duration(d);
    }

    /// Snapshot the histogram.
    pub fn snapshot(&self) -> HistSnapshot {
        self.get().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_name_and_labels() {
        let r = MetricsRegistry::default();
        let a = r.counter("test_total", "help", &[("shard", "0")]);
        let b = r.counter("test_total", "help", &[("shard", "0")]);
        let c = r.counter("test_total", "help", &[("shard", "1")]);
        a.add(3);
        assert_eq!(b.get(), 3, "same id must alias the same counter");
        assert_eq!(c.get(), 0, "different labels are a different series");
        assert_eq!(r.collect().len(), 2);
    }

    #[test]
    fn metric_id_renders_prometheus_shape() {
        let id = MetricId {
            name: "x_total",
            labels: vec![
                ("op", "knn".to_string()),
                ("transport", "evented".to_string()),
            ],
        };
        assert_eq!(id.render(), "x_total{op=\"knn\",transport=\"evented\"}");
    }
}
