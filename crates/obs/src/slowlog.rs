//! The opt-in slow-query log. Disabled by default; while disabled, the
//! hot-path gate is a single relaxed load of the threshold (zero). When a
//! threshold is set, queries whose measured latency meets it are recorded
//! — op shape plus latency — into a bounded ring. The observing side never
//! coordinates with the queries it watches: recording takes the ring mutex
//! only for queries that were *already* slow, and the shape string is
//! built lazily, only past the gate.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const RING_CAP: usize = 128;

/// One recorded slow query.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Operation (`"knn"`, `"range_count"`, …).
    pub op: &'static str,
    /// Measured latency, nanoseconds.
    pub latency_ns: u64,
    /// Op shape detail (k, rect extent, epoch tag, …).
    pub shape: String,
}

static THRESHOLD_NS: AtomicU64 = AtomicU64::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);
static RING: Mutex<VecDeque<SlowQuery>> = Mutex::new(VecDeque::new());

/// Enable (`Some(threshold)`) or disable (`None`) the slow-query log.
pub fn set_threshold(threshold: Option<Duration>) {
    let ns = threshold
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1))
        .unwrap_or(0);
    THRESHOLD_NS.store(ns, Ordering::Relaxed);
}

/// The active threshold in nanoseconds (0 = disabled).
pub fn threshold_ns() -> u64 {
    THRESHOLD_NS.load(Ordering::Relaxed)
}

/// Record `op` if `latency_ns` meets the threshold. `shape` is only
/// invoked past the gate, so the fast path is one relaxed load.
#[inline]
pub fn observe(op: &'static str, latency_ns: u64, shape: impl FnOnce() -> String) {
    let t = THRESHOLD_NS.load(Ordering::Relaxed);
    if t == 0 || latency_ns < t {
        return;
    }
    record(op, latency_ns, shape());
}

#[cold]
fn record(op: &'static str, latency_ns: u64, shape: String) {
    let entry = SlowQuery {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        op,
        latency_ns,
        shape,
    };
    let mut ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    if ring.len() == RING_CAP {
        ring.pop_front();
    }
    ring.push_back(entry);
}

/// The most recent `limit` slow queries, oldest first.
pub fn recent(limit: usize) -> Vec<SlowQuery> {
    let ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    let skip = ring.len().saturating_sub(limit);
    ring.iter().skip(skip).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        set_threshold(None);
        observe("knn", u64::MAX, || {
            unreachable!("shape built while disabled")
        });
    }

    #[test]
    fn threshold_gates_recording() {
        set_threshold(Some(Duration::from_millis(5)));
        observe("knn", 1_000_000, || "fast".to_string()); // 1ms: below
        observe("range_count", 6_000_000, || "k=10".to_string()); // 6ms: slow
        let got = recent(usize::MAX);
        assert!(got
            .iter()
            .any(|q| q.op == "range_count" && q.latency_ns == 6_000_000));
        assert!(!got.iter().any(|q| q.shape == "fast"));
        set_threshold(None);
    }
}
