//! Histogram torture tests: concurrent recorders (the wait-free `record`
//! path must conserve every sample), merge associativity over randomized
//! shards, and a property check that every reported quantile brackets the
//! true sorted-sample quantile within its bucket's bounds.

use proptest::prelude::*;
use psi_obs::{HistSnapshot, Histogram};
use std::sync::Arc;

#[test]
fn concurrent_recorders_conserve_every_sample() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let h = Arc::new(Histogram::new());
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                // Values spread across many buckets, deterministic per
                // thread, with a known global sum and maximum.
                for i in 0..PER_THREAD {
                    h.record((i << (t % 8)) + t);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let snap = h.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD, "a record was lost");
    let expect_sum: u64 = (0..THREADS)
        .map(|t| (0..PER_THREAD).map(|i| (i << (t % 8)) + t).sum::<u64>())
        .sum();
    assert_eq!(snap.sum, expect_sum);
    let expect_max = (0..THREADS)
        .map(|t| ((PER_THREAD - 1) << (t % 8)) + t)
        .max()
        .unwrap();
    assert_eq!(snap.max, expect_max);
}

#[test]
fn snapshots_taken_mid_flight_never_exceed_final_totals() {
    // A reader snapshotting while writers record must always see a
    // self-consistent prefix: count and sum only grow, and no snapshot can
    // outrun the writers' eventual totals.
    const TOTAL: u64 = 50_000;
    let h = Arc::new(Histogram::new());
    let writer = {
        let h = Arc::clone(&h);
        std::thread::spawn(move || {
            for i in 0..TOTAL {
                h.record(i % 1_000);
            }
        })
    };
    let mut last_count = 0u64;
    while last_count < TOTAL {
        let snap = h.snapshot();
        assert!(snap.count() >= last_count, "count went backwards");
        assert!(snap.count() <= TOTAL);
        last_count = snap.count();
    }
    writer.join().unwrap();
    assert_eq!(h.snapshot().count(), TOTAL);
}

/// Nearest-rank quantile of a sorted sample — the ground truth the
/// histogram's bucketed readout is checked against.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn quantiles_bracket_the_true_sample_quantile(
        values in proptest::collection::vec(0u64.., 1..500),
        // Quantiles as permille (the shim has no float strategies).
        qs_permille in proptest::collection::vec(0u64..=1000, 1..8),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &pm in &qs_permille {
            let q = pm as f64 / 1000.0;
            let truth = true_quantile(&sorted, q);
            let (lo, hi) = snap.quantile_bounds(q).expect("non-empty");
            prop_assert!(
                lo <= truth && truth <= hi,
                "true q={q} quantile {truth} outside bucket [{lo},{hi}]"
            );
            // The reported point value is the bucket's upper bound clamped
            // to the observed max: never below the truth, never past max.
            let reported = snap.quantile(q);
            prop_assert!(reported >= truth);
            prop_assert!(reported <= snap.max);
        }
    }

    #[test]
    fn merge_of_random_shards_equals_one_big_histogram(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 0..200), 1..6),
    ) {
        let combined = Histogram::new();
        let mut merged = HistSnapshot::empty();
        for shard in &shards {
            let h = Histogram::new();
            for &v in shard {
                h.record(v);
                combined.record(v);
            }
            merged.merge(&h.snapshot());
        }
        prop_assert_eq!(merged, combined.snapshot());
    }
}
