//! [`SpatialIndex`] v2 implementations for every index family.
//!
//! Each impl wires the index's native operations into the unified trait:
//! the query *primitives* (`range_visit`, `knn_into`) plus native overrides
//! of the derived queries where the index has a structurally better answer
//! (subtree-count shortcuts for `range_count`, `O(1)` root boxes for
//! `bounding_box`).
//!
//! Coordinate coverage: the SFC-free trees (P-Orth, Pkd) implement the trait
//! for **every** [`Coord`] type, so `f64` workloads go through the same API;
//! the SFC-based families (SPaC, CPAM, Zd) and the R-tree are `i64`-only,
//! matching the paper's integer-domain restriction for those structures.

use crate::index::SpatialIndex;
use psi_geometry::{Coord, KnnHeap, Point, PointI, Rect, RectI};
use psi_pkd::{PkdConfig, PkdTree};
use psi_porth::{POrthConfig, POrthTree};
use psi_rtree::RTree;
use psi_sfc::{MortonCurve, SfcCurve};
use psi_spac::{CpamConfig, CpamTree, SpacConfig, SpacTree};
use psi_zd::{ZdConfig, ZdTree};

impl<T: Coord, const D: usize> SpatialIndex<T, D> for POrthTree<T, D> {
    const NAME: &'static str = "P-Orth";
    type Config = POrthConfig;

    fn build_with(points: &[Point<T, D>], universe: Option<&Rect<T, D>>, cfg: POrthConfig) -> Self {
        match universe {
            Some(u) => POrthTree::build_with_config(points, *u, cfg),
            None => POrthTree::build_with_config(points, Rect::bounding(points), cfg),
        }
    }
    fn batch_insert(&mut self, points: &[Point<T, D>]) {
        POrthTree::batch_insert(self, points)
    }
    fn batch_delete(&mut self, points: &[Point<T, D>]) -> usize {
        POrthTree::batch_delete(self, points)
    }
    fn len(&self) -> usize {
        POrthTree::len(self)
    }
    fn range_visit(&self, rect: &Rect<T, D>, visitor: &mut dyn FnMut(&Point<T, D>)) {
        POrthTree::range_visit(self, rect, visitor)
    }
    fn knn_into(&self, q: &Point<T, D>, k: usize, heap: &mut KnnHeap<T, D>) {
        POrthTree::knn_into(self, q, k, heap)
    }
    fn range_count(&self, rect: &Rect<T, D>) -> usize {
        POrthTree::range_count(self, rect)
    }
    fn bounding_box(&self) -> Rect<T, D> {
        POrthTree::bounding_box(self)
    }
    fn check_invariants(&self) {
        POrthTree::check_invariants(self)
    }
}

impl<T: Coord, const D: usize> SpatialIndex<T, D> for PkdTree<T, D> {
    const NAME: &'static str = "Pkd";
    type Config = PkdConfig;

    fn build_with(points: &[Point<T, D>], _universe: Option<&Rect<T, D>>, cfg: PkdConfig) -> Self {
        PkdTree::build_with_config(points, cfg)
    }
    fn batch_insert(&mut self, points: &[Point<T, D>]) {
        PkdTree::batch_insert(self, points)
    }
    fn batch_delete(&mut self, points: &[Point<T, D>]) -> usize {
        PkdTree::batch_delete(self, points)
    }
    fn len(&self) -> usize {
        PkdTree::len(self)
    }
    fn range_visit(&self, rect: &Rect<T, D>, visitor: &mut dyn FnMut(&Point<T, D>)) {
        PkdTree::range_visit(self, rect, visitor)
    }
    fn knn_into(&self, q: &Point<T, D>, k: usize, heap: &mut KnnHeap<T, D>) {
        PkdTree::knn_into(self, q, k, heap)
    }
    fn range_count(&self, rect: &Rect<T, D>) -> usize {
        PkdTree::range_count(self, rect)
    }
    fn bounding_box(&self) -> Rect<T, D> {
        PkdTree::bounding_box(self)
    }
    fn check_invariants(&self) {
        PkdTree::check_invariants(self)
    }
}

impl<C: SfcCurve<D>, const D: usize> SpatialIndex<i64, D> for SpacTree<C, D> {
    const NAME: &'static str = "SPaC";
    type Config = SpacConfig;

    fn build_with(points: &[PointI<D>], _universe: Option<&RectI<D>>, cfg: SpacConfig) -> Self {
        SpacTree::build_with_config(points, cfg)
    }
    fn batch_insert(&mut self, points: &[PointI<D>]) {
        SpacTree::batch_insert(self, points)
    }
    fn batch_delete(&mut self, points: &[PointI<D>]) -> usize {
        SpacTree::batch_delete(self, points)
    }
    fn len(&self) -> usize {
        SpacTree::len(self)
    }
    fn range_visit(&self, rect: &RectI<D>, visitor: &mut dyn FnMut(&PointI<D>)) {
        SpacTree::range_visit(self, rect, visitor)
    }
    fn knn_into(&self, q: &PointI<D>, k: usize, heap: &mut KnnHeap<i64, D>) {
        SpacTree::knn_into(self, q, k, heap)
    }
    fn range_count(&self, rect: &RectI<D>) -> usize {
        SpacTree::range_count(self, rect)
    }
    fn bounding_box(&self) -> RectI<D> {
        SpacTree::bounding_box(self)
    }
    fn check_invariants(&self) {
        SpacTree::check_invariants(self)
    }
    fn snapshot(&self) -> Option<Self> {
        Some(SpacTree::snapshot(self))
    }
}

impl<C: SfcCurve<D>, const D: usize> SpatialIndex<i64, D> for CpamTree<C, D> {
    const NAME: &'static str = "CPAM";
    type Config = CpamConfig;

    fn build_with(points: &[PointI<D>], _universe: Option<&RectI<D>>, cfg: CpamConfig) -> Self {
        CpamTree::build_with_config(points, cfg)
    }
    fn batch_insert(&mut self, points: &[PointI<D>]) {
        CpamTree::batch_insert(self, points)
    }
    fn batch_delete(&mut self, points: &[PointI<D>]) -> usize {
        CpamTree::batch_delete(self, points)
    }
    fn len(&self) -> usize {
        CpamTree::len(self)
    }
    fn range_visit(&self, rect: &RectI<D>, visitor: &mut dyn FnMut(&PointI<D>)) {
        CpamTree::range_visit(self, rect, visitor)
    }
    fn knn_into(&self, q: &PointI<D>, k: usize, heap: &mut KnnHeap<i64, D>) {
        CpamTree::knn_into(self, q, k, heap)
    }
    fn range_count(&self, rect: &RectI<D>) -> usize {
        CpamTree::range_count(self, rect)
    }
    fn bounding_box(&self) -> RectI<D> {
        CpamTree::bounding_box(self)
    }
    fn check_invariants(&self) {
        CpamTree::check_invariants(self)
    }
    fn snapshot(&self) -> Option<Self> {
        Some(CpamTree::snapshot(self))
    }
}

impl<const D: usize> SpatialIndex<i64, D> for ZdTree<D>
where
    MortonCurve: SfcCurve<D>,
{
    const NAME: &'static str = "Zd-Tree";
    type Config = ZdConfig;

    fn build_with(points: &[PointI<D>], _universe: Option<&RectI<D>>, cfg: ZdConfig) -> Self {
        ZdTree::build_with_config(points, cfg)
    }
    fn batch_insert(&mut self, points: &[PointI<D>]) {
        ZdTree::batch_insert(self, points)
    }
    fn batch_delete(&mut self, points: &[PointI<D>]) -> usize {
        ZdTree::batch_delete(self, points)
    }
    fn len(&self) -> usize {
        ZdTree::len(self)
    }
    fn range_visit(&self, rect: &RectI<D>, visitor: &mut dyn FnMut(&PointI<D>)) {
        ZdTree::range_visit(self, rect, visitor)
    }
    fn knn_into(&self, q: &PointI<D>, k: usize, heap: &mut KnnHeap<i64, D>) {
        ZdTree::knn_into(self, q, k, heap)
    }
    fn range_count(&self, rect: &RectI<D>) -> usize {
        ZdTree::range_count(self, rect)
    }
    fn bounding_box(&self) -> RectI<D> {
        ZdTree::bounding_box(self)
    }
    fn check_invariants(&self) {
        ZdTree::check_invariants(self)
    }
}

impl<const D: usize> SpatialIndex<i64, D> for RTree<D> {
    const NAME: &'static str = "Boost-R";
    /// The R-tree has no tunable knobs (fan-out is a compile-time constant).
    type Config = ();

    fn build_with(points: &[PointI<D>], _universe: Option<&RectI<D>>, _cfg: ()) -> Self {
        RTree::build(points)
    }
    fn batch_insert(&mut self, points: &[PointI<D>]) {
        RTree::batch_insert(self, points)
    }
    fn batch_delete(&mut self, points: &[PointI<D>]) -> usize {
        RTree::batch_delete(self, points)
    }
    fn len(&self) -> usize {
        RTree::len(self)
    }
    fn range_visit(&self, rect: &RectI<D>, visitor: &mut dyn FnMut(&PointI<D>)) {
        RTree::range_visit(self, rect, visitor)
    }
    fn knn_into(&self, q: &PointI<D>, k: usize, heap: &mut KnnHeap<i64, D>) {
        RTree::knn_into(self, q, k, heap)
    }
    fn range_count(&self, rect: &RectI<D>) -> usize {
        RTree::range_count(self, rect)
    }
    fn bounding_box(&self) -> RectI<D> {
        RTree::bounding_box(self)
    }
    fn check_invariants(&self) {
        RTree::check_invariants(self)
    }
}
