//! The unified `SpatialIndex` trait (v2): coordinate-generic, config-aware,
//! with allocation-free visitor/heap query primitives.
//!
//! # Design
//!
//! The trait is generic over the coordinate type `T` ([`Coord`]: `i64` for the
//! paper's workloads, `f64` for the P-Orth tree's unrestricted domain) and the
//! dimension `D`. Three layers:
//!
//! 1. **Construction** — [`SpatialIndex::build_with`] is the single required
//!    entry point: points, an optional universe (the fixed root region only
//!    the P-Orth tree consumes), and a per-index [`SpatialIndex::Config`]
//!    carrying the paper's ablation knobs (`φ`, `λ`, `α`, sorted-leaves, …).
//!    [`SpatialIndex::build`] and the fluent [`PsiBuilder`] are sugar on top.
//! 2. **Primitives** — [`SpatialIndex::range_visit`] (a visitor walk over the
//!    matching points) and [`SpatialIndex::knn_into`] (filling a
//!    caller-provided, reusable [`KnnHeap`]) are the hot-path operations and
//!    allocate nothing.
//! 3. **Derived queries** — `knn`, `range_count`, `range_list`, `batch_diff`
//!    and the parallel `knn_batch` / `range_count_batch` / `range_list_batch`
//!    are default methods re-derived from the primitives; indexes override
//!    them only where a structurally better implementation exists (e.g.
//!    subtree-count shortcuts for `range_count`). The batch variants fan out
//!    over the rayon worker pool with per-worker scratch state (`KnnHeap`s,
//!    result arenas) reused across each worker's queries.

use crate::builder::PsiBuilder;
use psi_geometry::{Coord, KnnHeap, Point, Rect};
use rayon::prelude::*;

/// The interface shared by every spatial index in Ψ-Lib-rs: parallel batch
/// construction and updates plus the paper's three query types, over a generic
/// coordinate type.
///
/// Implementors provide the five required operations plus the two query
/// primitives; everything else has a default. `universe` is the data domain;
/// indexes that do not need it (everything except the P-Orth tree) are free to
/// ignore it.
pub trait SpatialIndex<T: Coord, const D: usize>: Sized + Send + Sync {
    /// Short name used in benchmark tables and the runtime registry
    /// ("P-Orth", "SPaC-H", ...).
    const NAME: &'static str;

    /// Per-index tuning parameters (the paper's ablation knobs). `Default`
    /// must produce the paper's preset for this index.
    type Config: Default + Clone + Send + Sync + 'static;

    /// Build the index over `points` with an explicit configuration and an
    /// optional universe (fixed root region). `None` lets the index derive
    /// its own domain (typically the bounding box of `points`).
    fn build_with(points: &[Point<T, D>], universe: Option<&Rect<T, D>>, cfg: Self::Config)
        -> Self;

    /// Insert a batch of points.
    fn batch_insert(&mut self, points: &[Point<T, D>]);

    /// Delete a batch of points (each element removes at most one stored
    /// match); returns the number removed.
    fn batch_delete(&mut self, points: &[Point<T, D>]) -> usize;

    /// Number of stored points.
    fn len(&self) -> usize;

    /// Range primitive: invoke `visitor` on every stored point inside the
    /// closed axis-aligned box, allocating nothing.
    fn range_visit(&self, rect: &Rect<T, D>, visitor: &mut dyn FnMut(&Point<T, D>));

    /// kNN primitive: reset `heap` to capacity `k` (reusing its allocation)
    /// and fill it with the `k` nearest neighbours of `q`. Requires `k >= 1`;
    /// the derived [`SpatialIndex::knn`] handles `k == 0`.
    fn knn_into(&self, q: &Point<T, D>, k: usize, heap: &mut KnnHeap<T, D>);

    // ------------------------------------------------------------------
    // Derived construction.
    // ------------------------------------------------------------------

    /// Build with the paper's default configuration and an explicit universe.
    fn build(points: &[Point<T, D>], universe: &Rect<T, D>) -> Self {
        Self::build_with(points, Some(universe), Self::Config::default())
    }

    /// Start a fluent [`PsiBuilder`] for this index type.
    fn builder() -> PsiBuilder<Self, T, D> {
        PsiBuilder::new()
    }

    // ------------------------------------------------------------------
    // Derived queries.
    // ------------------------------------------------------------------

    /// `true` if no points are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k` nearest neighbours of `q`, closest first.
    fn knn(&self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>> {
        if k == 0 || self.len() == 0 {
            return Vec::new();
        }
        let mut heap = KnnHeap::new(k);
        self.knn_into(q, k, &mut heap);
        heap.into_sorted()
    }

    /// Number of stored points in the closed axis-aligned box.
    ///
    /// Derived by counting visits; indexes with subtree counts override this
    /// with an `O(log n)`-ish native version.
    fn range_count(&self, rect: &Rect<T, D>) -> usize {
        let mut count = 0usize;
        self.range_visit(rect, &mut |_| count += 1);
        count
    }

    /// The stored points in the closed axis-aligned box.
    fn range_list(&self, rect: &Rect<T, D>) -> Vec<Point<T, D>> {
        let mut out = Vec::new();
        self.range_list_into(rect, &mut out);
        out
    }

    /// As [`SpatialIndex::range_list`], but filling a caller-owned arena:
    /// `out` is cleared and refilled, reusing its allocation. This is the
    /// allocation-free companion of `range_list` — a worker answering many
    /// range queries keeps one arena and amortises the growth cost across
    /// all of them (the same contract [`KnnHeap`] gives `knn_into`).
    fn range_list_into(&self, rect: &Rect<T, D>, out: &mut Vec<Point<T, D>>) {
        out.clear();
        self.range_visit(rect, &mut |p| out.push(*p));
    }

    /// Tight bounding box of the stored points ([`Rect::empty`] when empty).
    ///
    /// The default scans every point through [`SpatialIndex::range_visit`];
    /// tree indexes override it with their `O(1)` root box.
    fn bounding_box(&self) -> Rect<T, D> {
        let everything =
            Rect::from_corners(Point::new([T::MIN_VALUE; D]), Point::new([T::MAX_VALUE; D]));
        let mut bbox = Rect::empty();
        self.range_visit(&everything, &mut |p| bbox.expand(p));
        bbox
    }

    /// Check internal structural invariants (used by tests); default is a
    /// no-op for indexes without a checker.
    fn check_invariants(&self) {}

    /// An optional **persistent snapshot** capability. Families backed by a
    /// functional (path-copying) structure — the CPAM/SPaC PaC-trees — return
    /// a second handle to the *same* nodes in O(1): later updates through
    /// either handle copy-on-write only the spine they touch, so the snapshot
    /// is immutable, costs no full copy, and never blocks the writer.
    /// Families without structural sharing return `None` (the default), and
    /// callers fall back to rebuilding or full-copy strategies.
    fn snapshot(&self) -> Option<Self> {
        None
    }

    /// Apply a deletion batch and an insertion batch as one logical update
    /// (the `BatchDiff` operation of the Ψ-Lib API): first the deletions, then
    /// the insertions. Returns the number of points actually deleted.
    fn batch_diff(&mut self, delete: &[Point<T, D>], insert: &[Point<T, D>]) -> usize {
        let removed = self.batch_delete(delete);
        self.batch_insert(insert);
        removed
    }

    // ------------------------------------------------------------------
    // Derived parallel batch queries.
    // ------------------------------------------------------------------

    /// Answer many kNN queries in parallel (the paper's query benchmarks
    /// issue millions of concurrent queries this way), distributing queries
    /// over the rayon worker pool. One [`KnnHeap`] is created per
    /// participating worker — `map_init`'s per-worker state contract — and
    /// reused across all of that worker's queries, so the batch allocates
    /// one heap per thread rather than one per query. Each query fully
    /// resets the heap (`knn_into` does), so results are independent of how
    /// queries are distributed across workers: the output is bit-identical
    /// to a sequential run.
    fn knn_batch(&self, queries: &[Point<T, D>], k: usize) -> Vec<Vec<Point<T, D>>> {
        if k == 0 {
            return vec![Vec::new(); queries.len()];
        }
        queries
            .par_iter()
            .map_init(
                || KnnHeap::new(k),
                |heap, q| {
                    self.knn_into(q, k, heap);
                    heap.drain_sorted()
                },
            )
            .collect()
    }

    /// Answer many range-count queries in parallel.
    fn range_count_batch(&self, rects: &[Rect<T, D>]) -> Vec<usize> {
        rects.par_iter().map(|r| self.range_count(r)).collect()
    }

    /// Answer many range-list queries in parallel. Each worker keeps one
    /// scratch arena ([`SpatialIndex::range_list_into`] reuse via
    /// `map_init`), so per-query results are materialised with a single
    /// exact-size allocation instead of repeated growth reallocations; the
    /// arena's capacity is amortised across the worker's whole share of the
    /// batch. Output order matches `rects`.
    fn range_list_batch(&self, rects: &[Rect<T, D>]) -> Vec<Vec<Point<T, D>>> {
        rects
            .par_iter()
            .map_init(Vec::new, |arena: &mut Vec<Point<T, D>>, r| {
                self.range_list_into(r, arena);
                arena.as_slice().to_vec()
            })
            .collect()
    }
}
