//! Fixed-point quantising adapter: serve `f64` workloads from an integer
//! index.
//!
//! The SFC-based families (SPaC, CPAM, Zd — everything that orders points by
//! a space-filling-curve code) require the paper's integer coordinate domain.
//! [`Quantized`] wraps any `i64` index behind the `f64` API by snapping every
//! coordinate to a fixed-point grid: a float coordinate `c` is stored as the
//! integer `round(c * scale)` and read back as `q / scale`.
//!
//! # Semantics
//!
//! Queries are answered **exactly with respect to the snapped points**:
//!
//! * `range_*` converts the query box conservatively (`ceil` on the low
//!   corner, `floor` on the high corner after scaling), so a stored point is
//!   reported iff its *dequantised* coordinates lie in the box — exact, with
//!   no false positives or negatives on the grid.
//! * `knn` snaps the query point to the grid and ranks candidates by exact
//!   integer distance in quantised space. For queries on the grid this is
//!   exact; off-grid queries are answered as if asked from the nearest grid
//!   point (an error of at most half a grid cell per axis).
//!
//! Workloads whose coordinates are exactly representable on the grid — e.g.
//! integer-valued `f64` data with `scale = 1.0`, or fixed-precision decimal
//! data with `scale = 10^p` — lose nothing. Genuinely continuous data is
//! snapped; pick `scale` so the grid is finer than the precision you care
//! about, keeping `|c| * scale` within the curve's supported domain (the SFC
//! families assume non-negative coordinates bounded by the paper's `10^9`).
//!
//! [`registry::create_f64`](crate::registry::create_f64) uses this adapter to
//! expose every SFC family under float coordinates (scale from
//! [`BuildOptions::quantize_scale`](crate::registry::BuildOptions), default
//! `1.0`).

use crate::builder::LeafSized;
use crate::index::SpatialIndex;
use psi_geometry::{KnnHeap, Point, Rect};

/// Configuration of a [`Quantized`] index: the inner index's config plus the
/// fixed-point scale.
#[derive(Clone, Debug)]
pub struct QuantizeConfig<C> {
    /// Configuration forwarded to the wrapped integer index.
    pub inner: C,
    /// Grid resolution: float coordinate `c` is stored as `round(c * scale)`.
    /// Must be positive and finite. Default `1.0` (snap to integers).
    pub scale: f64,
}

impl<C: Default> Default for QuantizeConfig<C> {
    fn default() -> Self {
        QuantizeConfig {
            inner: C::default(),
            scale: 1.0,
        }
    }
}

impl<C: LeafSized> LeafSized for QuantizeConfig<C> {
    fn set_leaf_size(&mut self, leaf_size: usize) {
        self.inner.set_leaf_size(leaf_size);
    }
}

/// An `i64` spatial index serving the `f64` API through fixed-point
/// quantisation (see the module docs for the exactness contract).
pub struct Quantized<I> {
    inner: I,
    scale: f64,
}

impl<I> Quantized<I> {
    /// The wrapped integer index.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// The fixed-point scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

#[inline]
fn quantize(c: f64, scale: f64) -> i64 {
    (c * scale).round() as i64
}

#[inline]
fn dequantize(q: i64, scale: f64) -> f64 {
    q as f64 / scale
}

fn quantize_point<const D: usize>(p: &Point<f64, D>, scale: f64) -> Point<i64, D> {
    Point::new(p.coords.map(|c| quantize(c, scale)))
}

fn dequantize_point<const D: usize>(p: &Point<i64, D>, scale: f64) -> Point<f64, D> {
    Point::new(p.coords.map(|c| dequantize(c, scale)))
}

fn quantize_points<const D: usize>(pts: &[Point<f64, D>], scale: f64) -> Vec<Point<i64, D>> {
    pts.iter().map(|p| quantize_point(p, scale)).collect()
}

/// Convert a float query box to the quantised grid without changing which
/// stored points it matches: a stored integer `q` dequantises into `[lo, hi]`
/// iff `q ∈ [ceil(lo·scale), floor(hi·scale)]`.
fn quantize_rect<const D: usize>(rect: &Rect<f64, D>, scale: f64) -> Option<Rect<i64, D>> {
    let mut lo = [0i64; D];
    let mut hi = [0i64; D];
    for d in 0..D {
        lo[d] = (rect.lo.coords[d] * scale).ceil() as i64;
        hi[d] = (rect.hi.coords[d] * scale).floor() as i64;
        if lo[d] > hi[d] {
            return None; // no grid point falls inside on this axis
        }
    }
    Some(Rect::from_corners(Point::new(lo), Point::new(hi)))
}

/// Convert a universe (root region) outward so every quantised point it could
/// receive stays inside: `floor` on the low corner, `ceil` on the high.
fn quantize_universe<const D: usize>(rect: &Rect<f64, D>, scale: f64) -> Rect<i64, D> {
    let lo = Point::new(rect.lo.coords.map(|c| (c * scale).floor() as i64));
    let hi = Point::new(rect.hi.coords.map(|c| (c * scale).ceil() as i64));
    Rect::from_corners(lo, hi)
}

impl<I, const D: usize> SpatialIndex<f64, D> for Quantized<I>
where
    I: SpatialIndex<i64, D>,
{
    const NAME: &'static str = I::NAME;

    type Config = QuantizeConfig<I::Config>;

    fn build_with(
        points: &[Point<f64, D>],
        universe: Option<&Rect<f64, D>>,
        cfg: Self::Config,
    ) -> Self {
        assert!(
            cfg.scale.is_finite() && cfg.scale > 0.0,
            "quantize scale must be positive and finite, got {}",
            cfg.scale
        );
        let scale = cfg.scale;
        let qpoints = quantize_points(points, scale);
        let quniverse = universe.map(|u| quantize_universe(u, scale));
        Quantized {
            inner: I::build_with(&qpoints, quniverse.as_ref(), cfg.inner),
            scale,
        }
    }

    fn batch_insert(&mut self, points: &[Point<f64, D>]) {
        self.inner
            .batch_insert(&quantize_points(points, self.scale));
    }

    fn batch_delete(&mut self, points: &[Point<f64, D>]) -> usize {
        self.inner
            .batch_delete(&quantize_points(points, self.scale))
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn range_visit(&self, rect: &Rect<f64, D>, visitor: &mut dyn FnMut(&Point<f64, D>)) {
        let Some(qrect) = quantize_rect(rect, self.scale) else {
            return;
        };
        let scale = self.scale;
        self.inner
            .range_visit(&qrect, &mut |p| visitor(&dequantize_point(p, scale)));
    }

    fn knn_into(&self, q: &Point<f64, D>, k: usize, heap: &mut KnnHeap<f64, D>) {
        heap.reset(k);
        let qq = quantize_point(q, self.scale);
        // Rank in quantised space (exact integer distances); report the
        // dequantised points with their float distance from the original
        // query, so downstream distance folds see the true f64 geometry.
        for p in self.inner.knn(&qq, k) {
            heap.offer_point(q, dequantize_point(&p, self.scale));
        }
    }

    fn range_count(&self, rect: &Rect<f64, D>) -> usize {
        match quantize_rect(rect, self.scale) {
            Some(qrect) => self.inner.range_count(&qrect),
            None => 0,
        }
    }

    fn bounding_box(&self) -> Rect<f64, D> {
        let inner_box = self.inner.bounding_box();
        if inner_box.is_empty() {
            return Rect::empty();
        }
        Rect::from_corners(
            dequantize_point(&inner_box.lo, self.scale),
            dequantize_point(&inner_box.hi, self.scale),
        )
    }

    fn check_invariants(&self) {
        self.inner.check_invariants();
    }

    fn snapshot(&self) -> Option<Self> {
        Some(Quantized {
            inner: self.inner.snapshot()?,
            scale: self.scale,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::BruteForce;
    use psi_spac::{SpacConfig, SpacHTree};
    use psi_zd::{ZdConfig, ZdTree};

    fn grid_points(n: usize) -> Vec<Point<f64, 2>> {
        // Integer-valued f64 points: exactly representable on the scale-1 grid.
        (0..n)
            .map(|i| Point::new([((i * 37) % 1000) as f64, ((i * 91) % 1000) as f64]))
            .collect()
    }

    #[test]
    fn integer_valued_floats_are_exact_through_spac() {
        let pts = grid_points(2_000);
        let mut q = Quantized::<SpacHTree<2>>::build_with(
            &pts,
            None,
            QuantizeConfig::<SpacConfig>::default(),
        );
        let mut oracle = BruteForce::<f64, 2>::build_with(&pts, None, ());
        assert_eq!(q.len(), pts.len());
        q.check_invariants();

        let probes = [[0.0, 0.0], [500.0, 500.0], [999.0, 1.0]];
        for c in probes {
            let qp = Point::new(c);
            let got: Vec<f64> = q.knn(&qp, 7).iter().map(|p| qp.dist_sq(p)).collect();
            let want: Vec<f64> = oracle.knn(&qp, 7).iter().map(|p| qp.dist_sq(p)).collect();
            assert_eq!(got, want, "kNN from {c:?}");
        }
        let rect = Rect::from_corners(Point::new([100.0, 100.0]), Point::new([700.0, 800.0]));
        assert_eq!(q.range_count(&rect), oracle.range_count(&rect));
        let mut got = q.range_list(&rect);
        let mut want = oracle.range_list(&rect);
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(q.bounding_box(), oracle.bounding_box());

        // Updates round-trip exactly too.
        let removed = q.batch_delete(&pts[..250]);
        assert_eq!(removed, oracle.batch_delete(&pts[..250]));
        q.batch_insert(&pts[..100]);
        oracle.batch_insert(&pts[..100]);
        assert_eq!(q.len(), oracle.len());
        q.check_invariants();
    }

    #[test]
    fn fractional_boxes_snap_conservatively() {
        let pts = grid_points(500);
        let q =
            Quantized::<ZdTree<2>>::build_with(&pts, None, QuantizeConfig::<ZdConfig>::default());
        let oracle = BruteForce::<f64, 2>::build_with(&pts, None, ());
        // A box with fractional corners must match exactly the stored (grid)
        // points inside it — 0.5 rounds must not leak points in or out.
        let rect = Rect::from_corners(Point::new([99.5, 100.5]), Point::new([700.5, 799.5]));
        assert_eq!(q.range_count(&rect), oracle.range_count(&rect));
        // A sliver between two grid lines contains nothing.
        let sliver = Rect::from_corners(Point::new([10.1, 0.0]), Point::new([10.9, 1000.0]));
        assert_eq!(q.range_count(&sliver), 0);
        assert!(q.range_list(&sliver).is_empty());
    }

    #[test]
    fn finer_scale_resolves_fixed_point_data() {
        // Data on a 1/8 grid: exact under scale = 8 (dyadic, so the products
        // and quotients are exact in f64).
        let pts: Vec<Point<f64, 2>> = (0..800)
            .map(|i| Point::new([(i % 40) as f64 / 8.0, (i % 29) as f64 / 8.0]))
            .collect();
        let cfg = QuantizeConfig::<SpacConfig> {
            scale: 8.0,
            ..Default::default()
        };
        let q = Quantized::<SpacHTree<2>>::build_with(&pts, None, cfg);
        let oracle = BruteForce::<f64, 2>::build_with(&pts, None, ());
        let probe = Point::new([2.5, 1.25]); // on the 1/8 grid
        let got: Vec<f64> = q.knn(&probe, 9).iter().map(|p| probe.dist_sq(p)).collect();
        let want: Vec<f64> = oracle
            .knn(&probe, 9)
            .iter()
            .map(|p| probe.dist_sq(p))
            .collect();
        assert_eq!(got, want);
        let rect = Rect::from_corners(Point::new([0.25, 0.25]), Point::new([3.75, 2.5]));
        assert_eq!(q.range_count(&rect), oracle.range_count(&rect));
        assert_eq!(q.scale(), 8.0);
        assert_eq!(q.inner().len(), pts.len());
    }

    #[test]
    #[should_panic(expected = "quantize scale must be positive")]
    fn rejects_nonpositive_scale() {
        let cfg = QuantizeConfig::<SpacConfig> {
            scale: 0.0,
            ..Default::default()
        };
        let _ = Quantized::<SpacHTree<2>>::build_with(&grid_points(10), None, cfg);
    }
}
