//! The fluent builder over [`SpatialIndex::build_with`].
//!
//! ```
//! use psi::{PsiBuilder, SpacHTree, POrthTree};
//! use psi::workloads;
//!
//! let pts = workloads::uniform::<2>(1_000, 10_000, 1);
//! let universe = workloads::universe::<2>(10_000);
//!
//! // The ablation knobs of the paper are reachable through one chain:
//! let spac = PsiBuilder::<SpacHTree<2>>::new()
//!     .universe(universe)
//!     .leaf_size(32)
//!     .build(&pts);
//! assert_eq!(spac.len(), 1_000);
//!
//! // Per-index config structs slot into the same chain:
//! let porth = PsiBuilder::<POrthTree<2>>::new()
//!     .universe(universe)
//!     .configure(|cfg| cfg.skeleton_levels = 2)
//!     .build(&pts);
//! assert_eq!(porth.len(), 1_000);
//! ```

use crate::index::SpatialIndex;
use psi_geometry::{Coord, Point, Rect};

/// Configs exposing the leaf wrap threshold `φ` — the one knob every tree in
/// the paper shares — so [`PsiBuilder::leaf_size`] works uniformly.
pub trait LeafSized {
    fn set_leaf_size(&mut self, leaf_size: usize);
}

impl LeafSized for psi_porth::POrthConfig {
    fn set_leaf_size(&mut self, leaf_size: usize) {
        self.leaf_cap = leaf_size;
    }
}

impl LeafSized for psi_pkd::PkdConfig {
    fn set_leaf_size(&mut self, leaf_size: usize) {
        self.leaf_cap = leaf_size;
    }
}

impl LeafSized for psi_spac::SpacConfig {
    fn set_leaf_size(&mut self, leaf_size: usize) {
        self.leaf_cap = leaf_size;
    }
}

impl LeafSized for psi_spac::CpamConfig {
    fn set_leaf_size(&mut self, leaf_size: usize) {
        self.0.leaf_cap = leaf_size;
    }
}

impl LeafSized for psi_zd::ZdConfig {
    fn set_leaf_size(&mut self, leaf_size: usize) {
        self.leaf_cap = leaf_size;
    }
}

/// Fluent construction of any [`SpatialIndex`].
///
/// `T` and `D` default to the paper's standard setting (`i64`, 2-D), so the
/// common case is just `PsiBuilder::<SpacHTree<2>>::new()`; float or 3-D
/// indexes spell out all three parameters
/// (`PsiBuilder::<POrthTree3, i64, 3>::new()`). Equivalent shorthand:
/// `SpacHTree::<2>::builder()` via [`SpatialIndex::builder`].
pub struct PsiBuilder<I, T: Coord = i64, const D: usize = 2>
where
    I: SpatialIndex<T, D>,
{
    universe: Option<Rect<T, D>>,
    cfg: I::Config,
}

impl<I, T: Coord, const D: usize> PsiBuilder<I, T, D>
where
    I: SpatialIndex<T, D>,
{
    /// Start from the index's default (paper) configuration and no universe.
    pub fn new() -> Self {
        PsiBuilder {
            universe: None,
            cfg: I::Config::default(),
        }
    }

    /// Fix the root region / data domain. Indexes that don't consume a
    /// universe ignore it.
    pub fn universe(mut self, universe: Rect<T, D>) -> Self {
        self.universe = Some(universe);
        self
    }

    /// Replace the whole configuration.
    pub fn config(mut self, cfg: I::Config) -> Self {
        self.cfg = cfg;
        self
    }

    /// Tweak individual configuration fields in place.
    pub fn configure(mut self, f: impl FnOnce(&mut I::Config)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Set the leaf wrap threshold `φ` (available for every config that has
    /// one; the R-tree's fan-out is fixed by `MAX_ENTRIES`).
    pub fn leaf_size(mut self, leaf_size: usize) -> Self
    where
        I::Config: LeafSized,
    {
        self.cfg.set_leaf_size(leaf_size);
        self
    }

    /// Build the index.
    pub fn build(self, points: &[Point<T, D>]) -> I {
        I::build_with(points, self.universe.as_ref(), self.cfg)
    }
}

impl<I, T: Coord, const D: usize> Default for PsiBuilder<I, T, D>
where
    I: SpatialIndex<T, D>,
{
    fn default() -> Self {
        Self::new()
    }
}
