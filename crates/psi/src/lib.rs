//! **Ψ-Lib-rs** — Parallel Spatial Indexes: the unified public API.
//!
//! This crate ties the workspace together the way the paper's Ψ-Lib does for
//! its C++ components: a single [`SpatialIndex`] trait implemented by every
//! index under study, a brute-force [`BruteForce`] oracle used to validate
//! query answers, and the [`driver`] module that reproduces the paper's
//! *incremental* (highly dynamic) workloads — building an index through a long
//! sequence of batch insertions or deletions and probing query quality along
//! the way.
//!
//! Indexes re-exported here:
//!
//! | type | paper name | family |
//! |---|---|---|
//! | [`POrthTree`] | P-Orth tree ★ | space-partitioning (Orth-tree) |
//! | [`SpacHTree`], [`SpacZTree`] | SPaC-H / SPaC-Z ★ | object-partitioning (R-tree over SFC) |
//! | [`CpamHTree`], [`CpamZTree`] | CPAM-H / CPAM-Z | baseline (total order) |
//! | [`PkdTree`] | Pkd-tree | space-partitioning (kd-tree) |
//! | [`ZdTree`] | Zd-tree | space-partitioning (Morton Orth-tree) |
//! | [`RTree`] | Boost-R (stand-in) | object-partitioning, sequential |
//!
//! ★ = the paper's contributions.
//!
//! # Quick start
//!
//! ```
//! use psi::{SpatialIndex, SpacHTree, POrthTree2};
//! use psi::workloads;
//! use psi_geometry::Point;
//!
//! let data = workloads::uniform::<2>(5_000, 1_000_000, 42);
//! let universe = workloads::universe::<2>(1_000_000);
//!
//! // Build two different indexes through the same trait.
//! let spac = <SpacHTree<2> as SpatialIndex<2>>::build(&data, &universe);
//! let porth = <POrthTree2 as SpatialIndex<2>>::build(&data, &universe);
//!
//! let q = Point::new([500_000, 500_000]);
//! assert_eq!(
//!     spac.knn(&q, 10).len(),
//!     porth.knn(&q, 10).len(),
//! );
//! ```

pub mod driver;
pub mod oracle;

pub use oracle::BruteForce;

pub use psi_geometry::{brute_force_knn, Coord, KnnHeap, Point, PointI, Rect, RectI};
pub use psi_pkd::{PkdConfig, PkdTree as PkdTreeGeneric};
pub use psi_porth::{POrthConfig, POrthTree as POrthTreeGeneric};
pub use psi_rtree::RTree;
pub use psi_sfc::{HilbertCurve, MortonCurve, SfcCurve};
pub use psi_spac::{CpamHTree, CpamTree, CpamZTree, SpacConfig, SpacHTree, SpacTree, SpacZTree};
pub use psi_workloads as workloads;
pub use psi_zd::ZdTree;

/// The P-Orth tree over integer coordinates (the configuration used by every
/// experiment in the paper); alias so trait impls don't clash with the generic.
pub type POrthTree<const D: usize> = POrthTreeGeneric<i64, D>;
/// 2-D integer P-Orth tree.
pub type POrthTree2 = POrthTree<2>;
/// 3-D integer P-Orth tree.
pub type POrthTree3 = POrthTree<3>;
/// The Pkd-tree over integer coordinates.
pub type PkdTree<const D: usize> = PkdTreeGeneric<i64, D>;

/// The interface shared by every spatial index in Ψ-Lib-rs: parallel batch
/// construction and updates plus the paper's three query types.
///
/// `universe` is the data domain; indexes that do not need it (everything
/// except the P-Orth tree) are free to ignore it.
pub trait SpatialIndex<const D: usize>: Sized + Send + Sync {
    /// Short name used in benchmark tables ("P-Orth", "SPaC-H", ...).
    const NAME: &'static str;

    /// Build the index over `points`.
    fn build(points: &[PointI<D>], universe: &RectI<D>) -> Self;

    /// Insert a batch of points.
    fn batch_insert(&mut self, points: &[PointI<D>]);

    /// Delete a batch of points (each element removes at most one stored
    /// match); returns the number removed.
    fn batch_delete(&mut self, points: &[PointI<D>]) -> usize;

    /// The `k` nearest neighbours of `q`, closest first.
    fn knn(&self, q: &PointI<D>, k: usize) -> Vec<PointI<D>>;

    /// Number of stored points in the closed axis-aligned box.
    fn range_count(&self, rect: &RectI<D>) -> usize;

    /// The stored points in the closed axis-aligned box.
    fn range_list(&self, rect: &RectI<D>) -> Vec<PointI<D>>;

    /// Number of stored points.
    fn len(&self) -> usize;

    /// `true` if no points are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Check internal structural invariants (used by tests); default is a no-op
    /// for indexes without a checker.
    fn check_invariants(&self) {}

    /// Apply a deletion batch and an insertion batch as one logical update
    /// (the `BatchDiff` operation of the Ψ-Lib API): first the deletions, then
    /// the insertions. Returns the number of points actually deleted.
    fn batch_diff(&mut self, delete: &[PointI<D>], insert: &[PointI<D>]) -> usize {
        let removed = self.batch_delete(delete);
        self.batch_insert(insert);
        removed
    }

    /// Answer many kNN queries, running them in parallel (the paper's query
    /// benchmarks issue millions of concurrent queries this way).
    fn knn_batch(&self, queries: &[PointI<D>], k: usize) -> Vec<Vec<PointI<D>>> {
        use rayon::prelude::*;
        queries.par_iter().map(|q| self.knn(q, k)).collect()
    }

    /// Answer many range-count queries in parallel.
    fn range_count_batch(&self, rects: &[RectI<D>]) -> Vec<usize> {
        use rayon::prelude::*;
        rects.par_iter().map(|r| self.range_count(r)).collect()
    }
}

impl<const D: usize> SpatialIndex<D> for POrthTree<D> {
    const NAME: &'static str = "P-Orth";

    fn build(points: &[PointI<D>], universe: &RectI<D>) -> Self {
        POrthTreeGeneric::build_with_universe(points, *universe)
    }
    fn batch_insert(&mut self, points: &[PointI<D>]) {
        POrthTreeGeneric::batch_insert(self, points)
    }
    fn batch_delete(&mut self, points: &[PointI<D>]) -> usize {
        POrthTreeGeneric::batch_delete(self, points)
    }
    fn knn(&self, q: &PointI<D>, k: usize) -> Vec<PointI<D>> {
        POrthTreeGeneric::knn(self, q, k)
    }
    fn range_count(&self, rect: &RectI<D>) -> usize {
        POrthTreeGeneric::range_count(self, rect)
    }
    fn range_list(&self, rect: &RectI<D>) -> Vec<PointI<D>> {
        POrthTreeGeneric::range_list(self, rect)
    }
    fn len(&self) -> usize {
        POrthTreeGeneric::len(self)
    }
    fn check_invariants(&self) {
        POrthTreeGeneric::check_invariants(self)
    }
}

impl<C: SfcCurve<D>, const D: usize> SpatialIndex<D> for SpacTree<C, D> {
    const NAME: &'static str = "SPaC";

    fn build(points: &[PointI<D>], _universe: &RectI<D>) -> Self {
        SpacTree::build(points)
    }
    fn batch_insert(&mut self, points: &[PointI<D>]) {
        SpacTree::batch_insert(self, points)
    }
    fn batch_delete(&mut self, points: &[PointI<D>]) -> usize {
        SpacTree::batch_delete(self, points)
    }
    fn knn(&self, q: &PointI<D>, k: usize) -> Vec<PointI<D>> {
        SpacTree::knn(self, q, k)
    }
    fn range_count(&self, rect: &RectI<D>) -> usize {
        SpacTree::range_count(self, rect)
    }
    fn range_list(&self, rect: &RectI<D>) -> Vec<PointI<D>> {
        SpacTree::range_list(self, rect)
    }
    fn len(&self) -> usize {
        SpacTree::len(self)
    }
    fn check_invariants(&self) {
        SpacTree::check_invariants(self)
    }
}

impl<C: SfcCurve<D>, const D: usize> SpatialIndex<D> for CpamTree<C, D> {
    const NAME: &'static str = "CPAM";

    fn build(points: &[PointI<D>], _universe: &RectI<D>) -> Self {
        CpamTree::build(points)
    }
    fn batch_insert(&mut self, points: &[PointI<D>]) {
        CpamTree::batch_insert(self, points)
    }
    fn batch_delete(&mut self, points: &[PointI<D>]) -> usize {
        CpamTree::batch_delete(self, points)
    }
    fn knn(&self, q: &PointI<D>, k: usize) -> Vec<PointI<D>> {
        CpamTree::knn(self, q, k)
    }
    fn range_count(&self, rect: &RectI<D>) -> usize {
        CpamTree::range_count(self, rect)
    }
    fn range_list(&self, rect: &RectI<D>) -> Vec<PointI<D>> {
        CpamTree::range_list(self, rect)
    }
    fn len(&self) -> usize {
        CpamTree::len(self)
    }
    fn check_invariants(&self) {
        CpamTree::check_invariants(self)
    }
}

impl<const D: usize> SpatialIndex<D> for PkdTree<D> {
    const NAME: &'static str = "Pkd";

    fn build(points: &[PointI<D>], _universe: &RectI<D>) -> Self {
        PkdTreeGeneric::build(points)
    }
    fn batch_insert(&mut self, points: &[PointI<D>]) {
        PkdTreeGeneric::batch_insert(self, points)
    }
    fn batch_delete(&mut self, points: &[PointI<D>]) -> usize {
        PkdTreeGeneric::batch_delete(self, points)
    }
    fn knn(&self, q: &PointI<D>, k: usize) -> Vec<PointI<D>> {
        PkdTreeGeneric::knn(self, q, k)
    }
    fn range_count(&self, rect: &RectI<D>) -> usize {
        PkdTreeGeneric::range_count(self, rect)
    }
    fn range_list(&self, rect: &RectI<D>) -> Vec<PointI<D>> {
        PkdTreeGeneric::range_list(self, rect)
    }
    fn len(&self) -> usize {
        PkdTreeGeneric::len(self)
    }
    fn check_invariants(&self) {
        PkdTreeGeneric::check_invariants(self)
    }
}

impl<const D: usize> SpatialIndex<D> for ZdTree<D>
where
    MortonCurve: SfcCurve<D>,
{
    const NAME: &'static str = "Zd-Tree";

    fn build(points: &[PointI<D>], _universe: &RectI<D>) -> Self {
        ZdTree::build(points)
    }
    fn batch_insert(&mut self, points: &[PointI<D>]) {
        ZdTree::batch_insert(self, points)
    }
    fn batch_delete(&mut self, points: &[PointI<D>]) -> usize {
        ZdTree::batch_delete(self, points)
    }
    fn knn(&self, q: &PointI<D>, k: usize) -> Vec<PointI<D>> {
        ZdTree::knn(self, q, k)
    }
    fn range_count(&self, rect: &RectI<D>) -> usize {
        ZdTree::range_count(self, rect)
    }
    fn range_list(&self, rect: &RectI<D>) -> Vec<PointI<D>> {
        ZdTree::range_list(self, rect)
    }
    fn len(&self) -> usize {
        ZdTree::len(self)
    }
    fn check_invariants(&self) {
        ZdTree::check_invariants(self)
    }
}

impl<const D: usize> SpatialIndex<D> for RTree<D> {
    const NAME: &'static str = "Boost-R";

    fn build(points: &[PointI<D>], _universe: &RectI<D>) -> Self {
        RTree::build(points)
    }
    fn batch_insert(&mut self, points: &[PointI<D>]) {
        RTree::batch_insert(self, points)
    }
    fn batch_delete(&mut self, points: &[PointI<D>]) -> usize {
        RTree::batch_delete(self, points)
    }
    fn knn(&self, q: &PointI<D>, k: usize) -> Vec<PointI<D>> {
        RTree::knn(self, q, k)
    }
    fn range_count(&self, rect: &RectI<D>) -> usize {
        RTree::range_count(self, rect)
    }
    fn range_list(&self, rect: &RectI<D>) -> Vec<PointI<D>> {
        RTree::range_list(self, rect)
    }
    fn len(&self) -> usize {
        RTree::len(self)
    }
    fn check_invariants(&self) {
        RTree::check_invariants(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn random_points(n: usize, seed: u64, max: i64) -> Vec<PointI<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.gen_range(0..max), rng.gen_range(0..max)]))
            .collect()
    }

    /// Exercise one index through the whole trait surface and compare every
    /// query answer against the brute-force oracle.
    fn conformance<I: SpatialIndex<2>>(seed: u64) {
        let max = 200_000;
        let universe = Rect::from_corners(Point::new([0, 0]), Point::new([max, max]));
        let all = random_points(4_000, seed, max);
        let (base, extra) = all.split_at(2_500);

        let mut index = I::build(base, &universe);
        let mut oracle = BruteForce::<2>::build(base, &universe);
        assert_eq!(index.len(), 2_500);
        index.check_invariants();

        index.batch_insert(extra);
        oracle.batch_insert(extra);
        index.check_invariants();
        assert_eq!(index.len(), oracle.len());

        let removed = index.batch_delete(&all[..1_000]);
        let removed_oracle = oracle.batch_delete(&all[..1_000]);
        assert_eq!(removed, removed_oracle);
        index.check_invariants();
        assert_eq!(index.len(), oracle.len());

        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..25 {
            let q = Point::new([rng.gen_range(0..max), rng.gen_range(0..max)]);
            let got: Vec<i128> = index.knn(&q, 10).iter().map(|p| q.dist_sq(p)).collect();
            let want: Vec<i128> = oracle.knn(&q, 10).iter().map(|p| q.dist_sq(p)).collect();
            assert_eq!(got, want, "{} kNN disagrees with oracle", I::NAME);

            let a = Point::new([rng.gen_range(0..max), rng.gen_range(0..max)]);
            let b = Point::new([rng.gen_range(0..max), rng.gen_range(0..max)]);
            let rect = Rect::new(a, b);
            assert_eq!(
                index.range_count(&rect),
                oracle.range_count(&rect),
                "{} range_count disagrees",
                I::NAME
            );
            let mut got = index.range_list(&rect);
            let mut want = oracle.range_list(&rect);
            got.sort();
            want.sort();
            assert_eq!(got, want, "{} range_list disagrees", I::NAME);
        }
    }

    #[test]
    fn porth_conforms() {
        conformance::<POrthTree2>(1);
    }

    #[test]
    fn spac_h_conforms() {
        conformance::<SpacHTree<2>>(2);
    }

    #[test]
    fn spac_z_conforms() {
        conformance::<SpacZTree<2>>(3);
    }

    #[test]
    fn cpam_h_conforms() {
        conformance::<CpamHTree<2>>(4);
    }

    #[test]
    fn cpam_z_conforms() {
        conformance::<CpamZTree<2>>(5);
    }

    #[test]
    fn pkd_conforms() {
        conformance::<PkdTree<2>>(6);
    }

    #[test]
    fn zd_conforms() {
        conformance::<ZdTree<2>>(7);
    }

    #[test]
    fn rtree_conforms() {
        conformance::<RTree<2>>(8);
    }

    #[test]
    fn batch_diff_moves_points() {
        let max = 100_000;
        let universe = Rect::from_corners(Point::new([0, 0]), Point::new([max, max]));
        let data = random_points(2_000, 21, max);
        let fresh = random_points(500, 22, max);
        let mut index = <SpacHTree<2> as SpatialIndex<2>>::build(&data, &universe);
        let removed = index.batch_diff(&data[..500], &fresh);
        assert_eq!(removed, 500);
        assert_eq!(index.len(), 2_000);
        index.check_invariants();
    }

    #[test]
    fn parallel_batch_queries_match_sequential() {
        let max = 50_000;
        let universe = Rect::from_corners(Point::new([0, 0]), Point::new([max, max]));
        let data = random_points(3_000, 23, max);
        let index = <POrthTree2 as SpatialIndex<2>>::build(&data, &universe);
        let queries = random_points(100, 24, max);
        let batched = index.knn_batch(&queries, 5);
        for (q, got) in queries.iter().zip(batched.iter()) {
            assert_eq!(got, &index.knn(q, 5));
        }
        let rects: Vec<RectI<2>> = queries
            .windows(2)
            .map(|w| Rect::new(w[0], w[1]))
            .collect();
        let counts = index.range_count_batch(&rects);
        for (r, got) in rects.iter().zip(counts.iter()) {
            assert_eq!(*got, index.range_count(r));
        }
    }
}
