//! **Ψ-Lib-rs** — Parallel Spatial Indexes: the unified public API.
//!
//! This crate ties the workspace together the way the paper's Ψ-Lib does for
//! its C++ components: one coordinate-generic [`SpatialIndex`] trait
//! implemented by every index under study, a fluent [`PsiBuilder`], a runtime
//! [`registry`] for selecting indexes by name, a brute-force [`BruteForce`]
//! oracle used to validate query answers, and the [`driver`] module that
//! reproduces the paper's *incremental* (highly dynamic) workloads.
//!
//! Indexes re-exported here:
//!
//! | type | registry name | paper name | family | coords |
//! |---|---|---|---|---|
//! | [`POrthTree`] | `p-orth` | P-Orth tree ★ | space-partitioning (Orth-tree) | `i64`, `f64` |
//! | [`SpacHTree`], [`SpacZTree`] | `spac-h`, `spac-z` | SPaC-H / SPaC-Z ★ | object-partitioning (R-tree over SFC) | `i64`, `f64`† |
//! | [`CpamHTree`], [`CpamZTree`] | `cpam-h`, `cpam-z` | CPAM-H / CPAM-Z | baseline (total order) | `i64`, `f64`† |
//! | [`PkdTree`] | `pkd` | Pkd-tree | space-partitioning (kd-tree) | `i64`, `f64` |
//! | [`ZdTree`] | `zd` | Zd-tree | space-partitioning (Morton Orth-tree) | `i64`, `f64`† |
//! | [`RTree`] | `r-tree` | Boost-R (stand-in) | object-partitioning, sequential | `i64` |
//!
//! ★ = the paper's contributions. † = `f64` through the fixed-point
//! [`Quantized`] adapter ([`quantize`] module; exact for grid-representable
//! data, snapping otherwise).
//!
//! # Quick start
//!
//! Compile-time generics with the fluent builder:
//!
//! ```
//! use psi::{PsiBuilder, SpatialIndex, SpacHTree, POrthTree2};
//! use psi::workloads;
//! use psi_geometry::Point;
//!
//! let data = workloads::uniform::<2>(5_000, 1_000_000, 42);
//! let universe = workloads::universe::<2>(1_000_000);
//!
//! // Build two different indexes through the same API; the paper's ablation
//! // knobs hang off the same chain.
//! let spac = PsiBuilder::<SpacHTree<2>>::new()
//!     .universe(universe)
//!     .leaf_size(40)
//!     .build(&data);
//! let porth = <POrthTree2 as SpatialIndex<i64, 2>>::build(&data, &universe);
//!
//! let q = Point::new([500_000, 500_000]);
//! assert_eq!(spac.knn(&q, 10).len(), porth.knn(&q, 10).len());
//! ```
//!
//! Runtime selection through the registry (the driver/CLI path):
//!
//! ```
//! use psi::registry::{self, BuildOptions};
//! use psi::workloads;
//!
//! let data = workloads::uniform::<2>(2_000, 100_000, 7);
//! let mut index = registry::create::<2>("spac-h", &data, &BuildOptions::default()).unwrap();
//! index.batch_insert(&workloads::uniform::<2>(100, 100_000, 8));
//! assert_eq!(index.len(), 2_100);
//! ```
//!
//! Float coordinates run through the identical generic API (P-Orth and Pkd):
//!
//! ```
//! use psi::{SpatialIndex, POrthTreeGeneric};
//! use psi_geometry::{Point, Rect};
//!
//! let pts: Vec<Point<f64, 2>> = (0..100)
//!     .map(|i| Point::new([i as f64 * 0.01, (i % 10) as f64 * 0.1]))
//!     .collect();
//! let tree = POrthTreeGeneric::<f64, 2>::build_with(&pts, None, Default::default());
//! assert_eq!(tree.knn(&Point::new([0.5, 0.5]), 3).len(), 3);
//! ```
//!
//! # Allocation-free queries
//!
//! [`SpatialIndex::range_visit`] and [`SpatialIndex::knn_into`] are the
//! primitive operations: the former walks matching points through a visitor,
//! the latter fills a caller-owned, reusable [`KnnHeap`]. `knn`, `range_list`,
//! `range_count` and the parallel batch runners are derived from them, so a
//! hot loop can hold one heap (or scratch `Vec`) per worker and never touch
//! the allocator between queries.

pub mod builder;
pub mod driver;
pub mod index;
pub mod oracle;
pub mod quantize;
pub mod registry;

mod impls;

pub use builder::{LeafSized, PsiBuilder};
pub use index::SpatialIndex;
pub use oracle::BruteForce;
pub use quantize::{QuantizeConfig, Quantized};
pub use registry::{BuildOptions, DynIndex, RegistryError};

pub use psi_geometry::{
    brute_force_knn, Coord, KnnHeap, Point, PointF, PointI, Rect, RectF, RectI,
};
pub use psi_pkd::{PkdConfig, PkdTree as PkdTreeGeneric};
pub use psi_porth::{POrthConfig, POrthTree as POrthTreeGeneric};
pub use psi_rtree::RTree;
pub use psi_sfc::{HilbertCurve, MortonCurve, SfcCurve};
pub use psi_spac::{
    CpamConfig, CpamHTree, CpamTree, CpamZTree, SpacConfig, SpacHTree, SpacTree, SpacZTree,
};
pub use psi_workloads as workloads;
pub use psi_zd::{ZdConfig, ZdTree};

/// The P-Orth tree over integer coordinates (the configuration used by every
/// experiment in the paper); alias so call sites stay short.
pub type POrthTree<const D: usize> = POrthTreeGeneric<i64, D>;
/// 2-D integer P-Orth tree.
pub type POrthTree2 = POrthTree<2>;
/// 3-D integer P-Orth tree.
pub type POrthTree3 = POrthTree<3>;
/// The Pkd-tree over integer coordinates.
pub type PkdTree<const D: usize> = PkdTreeGeneric<i64, D>;
/// The P-Orth tree over float coordinates (the only index family free of the
/// integer-domain restriction, §3 "Applicability").
pub type POrthTreeF<const D: usize> = POrthTreeGeneric<f64, D>;
/// The Pkd-tree over float coordinates.
pub type PkdTreeF<const D: usize> = PkdTreeGeneric<f64, D>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn random_points(n: usize, seed: u64, max: i64) -> Vec<PointI<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.gen_range(0..max), rng.gen_range(0..max)]))
            .collect()
    }

    /// Exercise one index through the whole trait surface and compare every
    /// query answer against the brute-force oracle.
    fn conformance<I: SpatialIndex<i64, 2>>(seed: u64) {
        let max = 200_000;
        let universe = Rect::from_corners(Point::new([0, 0]), Point::new([max, max]));
        let all = random_points(4_000, seed, max);
        let (base, extra) = all.split_at(2_500);

        let mut index = I::build(base, &universe);
        let mut oracle = BruteForce::<i64, 2>::build(base, &universe);
        assert_eq!(index.len(), 2_500);
        index.check_invariants();

        index.batch_insert(extra);
        oracle.batch_insert(extra);
        index.check_invariants();
        assert_eq!(index.len(), oracle.len());

        let removed = index.batch_delete(&all[..1_000]);
        let removed_oracle = oracle.batch_delete(&all[..1_000]);
        assert_eq!(removed, removed_oracle);
        index.check_invariants();
        assert_eq!(index.len(), oracle.len());

        // The bounding boxes must agree (both tight over the same multiset).
        assert_eq!(index.bounding_box(), oracle.bounding_box(), "{}", I::NAME);

        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut heap = KnnHeap::new(10);
        for _ in 0..25 {
            let q = Point::new([rng.gen_range(0..max), rng.gen_range(0..max)]);
            let got: Vec<i128> = index.knn(&q, 10).iter().map(|p| q.dist_sq(p)).collect();
            let want: Vec<i128> = oracle.knn(&q, 10).iter().map(|p| q.dist_sq(p)).collect();
            assert_eq!(got, want, "{} kNN disagrees with oracle", I::NAME);

            // The primitive agrees with the derived method.
            index.knn_into(&q, 10, &mut heap);
            let mut via_heap: Vec<i128> =
                heap.drain_sorted().iter().map(|p| q.dist_sq(p)).collect();
            via_heap.sort();
            let mut sorted_want = want.clone();
            sorted_want.sort();
            assert_eq!(via_heap, sorted_want, "{} knn_into disagrees", I::NAME);

            let a = Point::new([rng.gen_range(0..max), rng.gen_range(0..max)]);
            let b = Point::new([rng.gen_range(0..max), rng.gen_range(0..max)]);
            let rect = Rect::new(a, b);
            assert_eq!(
                index.range_count(&rect),
                oracle.range_count(&rect),
                "{} range_count disagrees",
                I::NAME
            );
            let mut got = index.range_list(&rect);
            let mut want = oracle.range_list(&rect);
            got.sort();
            want.sort();
            assert_eq!(got, want, "{} range_list disagrees", I::NAME);

            // range_visit is the primitive behind range_list; cross-check it.
            let mut visited = Vec::new();
            index.range_visit(&rect, &mut |p| visited.push(*p));
            visited.sort();
            assert_eq!(visited, want, "{} range_visit disagrees", I::NAME);
        }
    }

    #[test]
    fn porth_conforms() {
        conformance::<POrthTree2>(1);
    }

    #[test]
    fn spac_h_conforms() {
        conformance::<SpacHTree<2>>(2);
    }

    #[test]
    fn spac_z_conforms() {
        conformance::<SpacZTree<2>>(3);
    }

    #[test]
    fn cpam_h_conforms() {
        conformance::<CpamHTree<2>>(4);
    }

    #[test]
    fn cpam_z_conforms() {
        conformance::<CpamZTree<2>>(5);
    }

    #[test]
    fn pkd_conforms() {
        conformance::<PkdTree<2>>(6);
    }

    #[test]
    fn zd_conforms() {
        conformance::<ZdTree<2>>(7);
    }

    #[test]
    fn rtree_conforms() {
        conformance::<RTree<2>>(8);
    }

    #[test]
    fn batch_diff_moves_points() {
        let max = 100_000;
        let universe = Rect::from_corners(Point::new([0, 0]), Point::new([max, max]));
        let data = random_points(2_000, 21, max);
        let fresh = random_points(500, 22, max);
        let mut index = <SpacHTree<2> as SpatialIndex<i64, 2>>::build(&data, &universe);
        let removed = index.batch_diff(&data[..500], &fresh);
        assert_eq!(removed, 500);
        assert_eq!(index.len(), 2_000);
        index.check_invariants();
    }

    #[test]
    fn parallel_batch_queries_match_sequential() {
        let max = 50_000;
        let universe = Rect::from_corners(Point::new([0, 0]), Point::new([max, max]));
        let data = random_points(3_000, 23, max);
        let index = <POrthTree2 as SpatialIndex<i64, 2>>::build(&data, &universe);
        let queries = random_points(100, 24, max);
        let batched = index.knn_batch(&queries, 5);
        for (q, got) in queries.iter().zip(batched.iter()) {
            assert_eq!(got, &index.knn(q, 5));
        }
        assert!(index
            .knn_batch(&queries, 0)
            .iter()
            .all(|result| result.is_empty()));
        let rects: Vec<RectI<2>> = queries.windows(2).map(|w| Rect::new(w[0], w[1])).collect();
        let counts = index.range_count_batch(&rects);
        for (r, got) in rects.iter().zip(counts.iter()) {
            assert_eq!(*got, index.range_count(r));
        }
    }

    #[test]
    fn builder_reaches_ablation_knobs() {
        let data = random_points(2_000, 31, 10_000);
        let universe = Rect::from_corners(Point::new([0, 0]), Point::new([10_000, 10_000]));

        let spac = PsiBuilder::<SpacHTree<2>>::new()
            .universe(universe)
            .leaf_size(16)
            .build(&data);
        assert_eq!(spac.config().leaf_cap, 16);
        spac.check_invariants();

        let porth = PsiBuilder::<POrthTree2>::new()
            .universe(universe)
            .configure(|cfg| {
                cfg.leaf_cap = 8;
                cfg.skeleton_levels = 2;
            })
            .build(&data);
        assert_eq!(porth.config().leaf_cap, 8);
        assert_eq!(porth.config().skeleton_levels, 2);
        porth.check_invariants();

        // Equivalent entry point hanging off the index type.
        let zd = ZdTree::<2>::builder().leaf_size(64).build(&data);
        assert_eq!(zd.len(), data.len());
        zd.check_invariants();
    }

    #[test]
    fn float_indexes_answer_through_the_generic_trait() {
        let mut rng = StdRng::seed_from_u64(41);
        let pts: Vec<Point<f64, 2>> = (0..3_000)
            .map(|_| Point::new([rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]))
            .collect();
        let universe = Rect::from_corners(Point::new([-1.0, -1.0]), Point::new([1.0, 1.0]));

        let porth = <POrthTreeF<2> as SpatialIndex<f64, 2>>::build(&pts, &universe);
        let pkd = PkdTreeF::<2>::build_with(&pts, None, PkdConfig::default());
        let oracle = BruteForce::<f64, 2>::build(&pts, &universe);

        for _ in 0..20 {
            let q = Point::new([rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]);
            let want: Vec<u64> = oracle
                .knn(&q, 8)
                .iter()
                .map(|p| q.dist_sq(p).to_bits())
                .collect();
            for (name, got) in [("P-Orth", porth.knn(&q, 8)), ("Pkd", pkd.knn(&q, 8))] {
                let got: Vec<u64> = got.iter().map(|p| q.dist_sq(p).to_bits()).collect();
                assert_eq!(got, want, "{name} f64 kNN disagrees");
            }
            let rect = Rect::new(
                Point::new([rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]),
                Point::new([rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]),
            );
            assert_eq!(porth.range_count(&rect), oracle.range_count(&rect));
            assert_eq!(pkd.range_count(&rect), oracle.range_count(&rect));
        }
    }

    #[test]
    fn registry_creates_every_family() {
        let data = random_points(1_500, 51, 100_000);
        let universe = Rect::from_corners(Point::new([0, 0]), Point::new([100_000, 100_000]));
        let opts = BuildOptions::with_universe(universe).leaf_size(32);
        let oracle = BruteForce::<i64, 2>::build(&data, &universe);
        let q = Point::new([40_000, 60_000]);
        let want: Vec<i128> = oracle.knn(&q, 5).iter().map(|p| q.dist_sq(p)).collect();

        for name in registry::names() {
            let mut index =
                registry::create::<2>(name, &data, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(index.len(), data.len(), "{name}");
            index.check_invariants();
            let got: Vec<i128> = index.knn(&q, 5).iter().map(|p| q.dist_sq(p)).collect();
            assert_eq!(got, want, "{name} kNN through DynIndex");
            index.batch_insert(&data[..10]);
            assert_eq!(index.len(), data.len() + 10, "{name}");
            assert_eq!(index.batch_delete(&data[..10]), 10, "{name}");
        }

        // Aliases and normalisation.
        assert!(registry::create::<2>("SPaC-H", &data, &opts).is_ok());
        assert!(registry::create::<2>("boost-r", &data, &opts).is_ok());
        let err = registry::create::<2>("no-such-index", &data, &opts)
            .err()
            .expect("unknown name must fail");
        assert!(matches!(err, RegistryError::UnknownIndex(_)));
    }

    #[test]
    fn registry_float_entries() {
        let pts: Vec<Point<f64, 2>> = (0..500)
            .map(|i| Point::new([(i % 23) as f64, (i % 17) as f64]))
            .collect();
        let opts = BuildOptions::default();
        for name in registry::float_names() {
            let index = registry::create_f64::<2>(name, &pts, &opts)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(index.len(), pts.len(), "{name}");
            assert_eq!(index.knn(&Point::new([0.0, 0.0]), 3).len(), 3, "{name}");
        }
        // The R-tree stand-in is the one family left without an f64 path;
        // its alias reports the same error kind.
        let err = registry::create_f64::<2>("r-tree", &pts, &opts)
            .err()
            .expect("the r-tree stand-in must reject floats");
        assert!(matches!(err, RegistryError::UnsupportedCoordinates(_)));
        let err = registry::create_f64::<2>("boost-r", &pts, &opts)
            .err()
            .expect("alias of an integer-only index must reject floats");
        assert!(matches!(err, RegistryError::UnsupportedCoordinates(_)));
        let err = registry::create_f64::<2>("no-such", &pts, &opts)
            .err()
            .expect("unknown name must fail");
        assert!(matches!(err, RegistryError::UnknownIndex(_)));
    }

    #[test]
    fn dyn_index_is_object_safe_and_swappable() {
        let data = random_points(800, 61, 10_000);
        let universe = Rect::from_corners(Point::new([0, 0]), Point::new([10_000, 10_000]));
        // A heterogeneous collection behind one vtable.
        let indexes: Vec<Box<dyn DynIndex<i64, 2>>> = vec![
            registry::boxed(<POrthTree2 as SpatialIndex<i64, 2>>::build(
                &data, &universe,
            )),
            registry::boxed(<SpacHTree<2> as SpatialIndex<i64, 2>>::build(
                &data, &universe,
            )),
            registry::boxed(<RTree<2> as SpatialIndex<i64, 2>>::build(&data, &universe)),
        ];
        let q = Point::new([5_000, 5_000]);
        let reference: Vec<i128> = indexes[0].knn(&q, 7).iter().map(|p| q.dist_sq(p)).collect();
        for index in &indexes {
            let got: Vec<i128> = index.knn(&q, 7).iter().map(|p| q.dist_sq(p)).collect();
            assert_eq!(got, reference, "{}", index.name());
            assert_eq!(index.bounding_box(), indexes[0].bounding_box());
        }
    }
}
