//! The incremental-workload driver: the measurement harness behind the
//! paper's "highly dynamic" experiments (§5.1).
//!
//! The paper evaluates each index not just on a one-shot build but on
//! *incremental* workloads: the index is assembled by `n / b` successive batch
//! insertions (or torn down by batch deletions), the total update time is
//! reported, and query latency is sampled after half of the batches have been
//! applied — measuring how much the index quality degrades under a constantly
//! evolving dataset. This module implements exactly that protocol, plus the
//! parallel query runners (the paper runs its 10⁷ kNN queries concurrently).
//!
//! Since the v2 API the driver is generic over the coordinate type and runs
//! its query probes through the allocation-free primitives; queries fan out
//! over the rayon worker pool. Each participating worker creates one
//! [`KnnHeap`] (respectively one scratch arena for `range_list_into`) via
//! `map_init`'s per-worker-state contract and reuses it across all of that
//! worker's queries, so the measured numbers are query work, not allocator
//! traffic — and every query resets its scratch, so checksums are identical
//! whatever the thread count.

use crate::SpatialIndex;
use psi_geometry::{Coord, KnnHeap, Point, Rect};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// A bundle of queries measured together, mirroring the columns of Fig. 3:
/// in-distribution kNN, out-of-distribution kNN, range-count and range-list.
#[derive(Clone, Debug)]
pub struct QuerySet<T: Coord, const D: usize> {
    /// In-distribution kNN query points.
    pub knn_ind: Vec<Point<T, D>>,
    /// Out-of-distribution kNN query points.
    pub knn_ood: Vec<Point<T, D>>,
    /// Number of neighbours per kNN query (10 in Fig. 3).
    pub k: usize,
    /// Range-query rectangles (used for both count and list).
    pub ranges: Vec<Rect<T, D>>,
}

impl<T: Coord, const D: usize> Default for QuerySet<T, D> {
    fn default() -> Self {
        QuerySet {
            knn_ind: Vec::new(),
            knn_ood: Vec::new(),
            k: 0,
            ranges: Vec::new(),
        }
    }
}

/// Wall-clock results of running a [`QuerySet`].
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryTimes {
    /// Total time for the in-distribution kNN queries.
    pub knn_ind: Duration,
    /// Total time for the out-of-distribution kNN queries.
    pub knn_ood: Duration,
    /// Total time for the range-count queries.
    pub range_count: Duration,
    /// Total time for the range-list queries.
    pub range_list: Duration,
    /// Checksum of query outputs (guards against the optimiser skipping work
    /// and doubles as a cross-index consistency probe).
    pub checksum: u64,
}

impl<T: Coord, const D: usize> QuerySet<T, D> {
    /// Run every query in the set against `index`, queries in parallel, and
    /// return the per-category wall-clock times.
    pub fn run<I: SpatialIndex<T, D>>(&self, index: &I) -> QueryTimes {
        let mut times = QueryTimes::default();
        let mut checksum = 0u64;

        let knn_sweep = |queries: &[Point<T, D>]| -> u64 {
            queries
                .par_iter()
                .map_init(
                    || KnnHeap::new(self.k),
                    |heap, q| {
                        index.knn_into(q, self.k, heap);
                        heap.len() as u64
                    },
                )
                .sum()
        };

        if self.k > 0 && !self.knn_ind.is_empty() {
            let t = Instant::now();
            let s = knn_sweep(&self.knn_ind);
            times.knn_ind = t.elapsed();
            checksum = checksum.wrapping_add(s);
        }
        if self.k > 0 && !self.knn_ood.is_empty() {
            let t = Instant::now();
            let s = knn_sweep(&self.knn_ood);
            times.knn_ood = t.elapsed();
            checksum = checksum.wrapping_add(s);
        }
        if !self.ranges.is_empty() {
            let t = Instant::now();
            let s: u64 = self
                .ranges
                .par_iter()
                .map(|r| index.range_count(r) as u64)
                .sum();
            times.range_count = t.elapsed();
            checksum = checksum.wrapping_add(s);

            let t = Instant::now();
            let s: u64 = self
                .ranges
                .par_iter()
                .map_init(Vec::new, |arena: &mut Vec<Point<T, D>>, r| {
                    index.range_list_into(r, arena);
                    arena.len() as u64
                })
                .sum();
            times.range_list = t.elapsed();
            checksum = checksum.wrapping_add(s);
        }
        times.checksum = checksum;
        times
    }
}

/// Result of one incremental insertion or deletion run.
#[derive(Clone, Copy, Debug, Default)]
pub struct IncrementalResult {
    /// Total wall-clock time spent in batch updates (construction of the first
    /// batch included for insertion runs).
    pub update_time: Duration,
    /// Query times sampled after half of the batches (if a query set was given).
    pub queries_at_half: Option<QueryTimes>,
    /// Number of batches applied.
    pub batches: usize,
    /// Final index size.
    pub final_len: usize,
}

/// Build `I` by inserting `points` in `ceil(n / batch_size)` successive
/// batches (the first batch doubles as the initial build), timing only the
/// update operations. If `queries` is provided, it is run once after half of
/// the batches and its times are reported separately (not counted as update
/// time). Returns the result together with the final index.
pub fn incremental_insert<I: SpatialIndex<T, D>, T: Coord, const D: usize>(
    points: &[Point<T, D>],
    batch_size: usize,
    universe: &Rect<T, D>,
    queries: Option<&QuerySet<T, D>>,
) -> (IncrementalResult, I) {
    assert!(batch_size > 0, "batch size must be positive");
    let n = points.len();
    let mut result = IncrementalResult::default();
    let half = n / 2;

    let t0 = Instant::now();
    let first = batch_size.min(n);
    let mut index = I::build(&points[..first], universe);
    let mut update_time = t0.elapsed();
    result.batches = 1;

    let mut applied = first;
    let mut queried = false;
    while applied < n {
        if !queried && applied >= half {
            if let Some(qs) = queries {
                result.queries_at_half = Some(qs.run(&index));
            }
            queried = true;
        }
        let next = (applied + batch_size).min(n);
        let t = Instant::now();
        index.batch_insert(&points[applied..next]);
        update_time += t.elapsed();
        applied = next;
        result.batches += 1;
    }
    if !queried && queries.is_some() {
        result.queries_at_half = queries.map(|qs| qs.run(&index));
    }
    result.update_time = update_time;
    result.final_len = index.len();
    (result, index)
}

/// Tear an index down by deleting `points` in `ceil(n / batch_size)` batches,
/// starting from an index containing all of `points`. Queries are sampled
/// after half of the deletion batches.
pub fn incremental_delete<I: SpatialIndex<T, D>, T: Coord, const D: usize>(
    points: &[Point<T, D>],
    batch_size: usize,
    universe: &Rect<T, D>,
    queries: Option<&QuerySet<T, D>>,
) -> (IncrementalResult, I) {
    assert!(batch_size > 0, "batch size must be positive");
    let n = points.len();
    let mut result = IncrementalResult::default();
    let mut index = I::build(points, universe);
    let half = n / 2;

    let mut removed = 0usize;
    let mut update_time = Duration::ZERO;
    let mut queried = false;
    while removed < n {
        if !queried && removed >= half {
            if let Some(qs) = queries {
                result.queries_at_half = Some(qs.run(&index));
            }
            queried = true;
        }
        let next = (removed + batch_size).min(n);
        let t = Instant::now();
        index.batch_delete(&points[removed..next]);
        update_time += t.elapsed();
        removed = next;
        result.batches += 1;
    }
    if !queried && queries.is_some() {
        result.queries_at_half = queries.map(|qs| qs.run(&index));
    }
    result.update_time = update_time;
    result.final_len = index.len();
    (result, index)
}

/// Time a one-shot build.
pub fn timed_build<I: SpatialIndex<T, D>, T: Coord, const D: usize>(
    points: &[Point<T, D>],
    universe: &Rect<T, D>,
) -> (Duration, I) {
    let t = Instant::now();
    let index = I::build(points, universe);
    (t.elapsed(), index)
}

/// Time a single batch insertion into an existing index.
pub fn timed_batch_insert<I: SpatialIndex<T, D>, T: Coord, const D: usize>(
    index: &mut I,
    batch: &[Point<T, D>],
) -> Duration {
    let t = Instant::now();
    index.batch_insert(batch);
    t.elapsed()
}

/// Time a single batch deletion from an existing index.
pub fn timed_batch_delete<I: SpatialIndex<T, D>, T: Coord, const D: usize>(
    index: &mut I,
    batch: &[Point<T, D>],
) -> Duration {
    let t = Instant::now();
    index.batch_delete(batch);
    t.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForce, POrthTree2, SpacHTree, SpatialIndex};
    use psi_geometry::{Point, Rect, RectI};
    use psi_workloads as workloads;

    #[test]
    fn incremental_insert_builds_the_full_index() {
        let data = workloads::uniform::<2>(3_000, 100_000, 1);
        let uni = workloads::universe::<2>(100_000);
        let (res, index) = incremental_insert::<POrthTree2, i64, 2>(&data, 500, &uni, None);
        assert_eq!(res.final_len, 3_000);
        assert_eq!(index.len(), 3_000);
        assert_eq!(res.batches, 6);
        assert!(res.queries_at_half.is_none());
    }

    #[test]
    fn incremental_delete_empties_the_index() {
        let data = workloads::uniform::<2>(2_000, 100_000, 2);
        let uni = workloads::universe::<2>(100_000);
        let (res, index) = incremental_delete::<SpacHTree<2>, i64, 2>(&data, 300, &uni, None);
        assert_eq!(res.final_len, 0);
        assert!(index.is_empty());
        assert_eq!(res.batches, 7);
    }

    #[test]
    fn queries_at_half_fire_once_and_are_consistent() {
        let data = workloads::uniform::<2>(2_000, 50_000, 3);
        let uni = workloads::universe::<2>(50_000);
        let qs = QuerySet {
            knn_ind: workloads::ind_queries(&data, 50, 7),
            knn_ood: workloads::ood_queries::<2>(50_000, 50, 7),
            k: 5,
            ranges: workloads::range_queries(&data, 50_000, 50, 20, 7),
        };
        let (res_a, _) = incremental_insert::<POrthTree2, i64, 2>(&data, 400, &uni, Some(&qs));
        let (res_b, _) =
            incremental_insert::<BruteForce<i64, 2>, i64, 2>(&data, 400, &uni, Some(&qs));
        let qa = res_a.queries_at_half.expect("queries must run");
        let qb = res_b.queries_at_half.expect("queries must run");
        // Both indexes saw the same prefix of the data when queried, so the
        // result checksums must agree.
        assert_eq!(qa.checksum, qb.checksum);
    }

    #[test]
    fn timed_single_batches() {
        let data = workloads::uniform::<2>(1_000, 10_000, 4);
        let uni = workloads::universe::<2>(10_000);
        let (_, mut index) = timed_build::<SpacHTree<2>, i64, 2>(&data, &uni);
        let extra = workloads::uniform::<2>(200, 10_000, 5);
        timed_batch_insert(&mut index, &extra);
        assert_eq!(index.len(), 1_200);
        timed_batch_delete(&mut index, &extra);
        assert_eq!(index.len(), 1_000);
    }

    #[test]
    fn query_set_checksum_detects_differences() {
        let data = workloads::uniform::<2>(1_000, 10_000, 6);
        let uni = workloads::universe::<2>(10_000);
        let full = BruteForce::<i64, 2>::build(&data, &uni);
        let partial = BruteForce::<i64, 2>::build(&data[..500], &uni);
        let qs = QuerySet {
            knn_ind: workloads::ind_queries(&data, 30, 8),
            knn_ood: vec![],
            k: 3,
            ranges: workloads::range_queries(&data, 10_000, 200, 10, 8),
        };
        let a = qs.run(&full);
        let b = qs.run(&partial);
        assert_ne!(a.checksum, b.checksum);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let data = workloads::uniform::<2>(100, 1_000, 9);
        let uni = workloads::universe::<2>(1_000);
        let _ = incremental_insert::<POrthTree2, i64, 2>(&data, 0, &uni, None);
    }

    #[test]
    fn empty_rect_universe_is_fine_for_non_porth() {
        let data = workloads::uniform::<2>(500, 1_000, 10);
        let empty_universe = RectI::<2>::from_corners(Point::new([0, 0]), Point::new([0, 0]));
        // Indexes that ignore the universe must still work when handed a bogus one.
        let t = <SpacHTree<2> as SpatialIndex<i64, 2>>::build(&data, &empty_universe);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn driver_runs_float_workloads_through_the_generic_api() {
        // An f64 index driven through the same incremental protocol.
        let pts: Vec<Point<f64, 2>> = (0..800)
            .map(|i| Point::new([(i % 29) as f64 * 0.1, (i % 31) as f64 * 0.1]))
            .collect();
        let uni = Rect::from_corners(Point::new([0.0, 0.0]), Point::new([4.0, 4.0]));
        let qs = QuerySet {
            knn_ind: pts.iter().step_by(40).copied().collect(),
            knn_ood: vec![],
            k: 4,
            ranges: vec![Rect::from_corners(
                Point::new([0.0, 0.0]),
                Point::new([1.0, 1.0]),
            )],
        };
        let (res, index) = incremental_insert::<crate::POrthTreeGeneric<f64, 2>, f64, 2>(
            &pts,
            100,
            &uni,
            Some(&qs),
        );
        assert_eq!(res.final_len, 800);
        let (res_o, _) =
            incremental_insert::<BruteForce<f64, 2>, f64, 2>(&pts, 100, &uni, Some(&qs));
        assert_eq!(
            res.queries_at_half.unwrap().checksum,
            res_o.queries_at_half.unwrap().checksum
        );
        index.check_invariants();
    }
}
