//! Runtime index selection: the object-safe [`DynIndex`] façade plus a
//! string-keyed registry covering every index family in the paper.
//!
//! Compile-time generics ([`SpatialIndex`]) are the fast path; drivers, CLI
//! scenarios and benchmark sweeps instead want to pick an index *by name* at
//! runtime. [`create`] instantiates any family behind a
//! `Box<dyn DynIndex<i64, D>>`, and [`create_f64`] does the same for the
//! float-capable families (the SFC-free P-Orth and Pkd trees).
//!
//! ```
//! use psi::registry;
//! use psi::workloads;
//!
//! let pts = workloads::uniform::<2>(500, 10_000, 7);
//! let opts = registry::BuildOptions::default();
//! for name in registry::names() {
//!     let index = registry::create::<2>(name, &pts, &opts).unwrap();
//!     assert_eq!(index.len(), 500, "{name}");
//! }
//! ```

use crate::builder::LeafSized;
use crate::index::SpatialIndex;
use crate::oracle::BruteForce;
use crate::quantize::{QuantizeConfig, Quantized};
use psi_geometry::{Coord, KnnHeap, Point, PointI, Rect};
use psi_pkd::{PkdConfig, PkdTree};
use psi_porth::{POrthConfig, POrthTree};
use psi_rtree::RTree;
use psi_sfc::{HilbertCurve, MortonCurve, SfcCurve};
use psi_spac::{CpamConfig, CpamHTree, CpamZTree, SpacConfig, SpacHTree, SpacZTree};
use psi_zd::ZdTree;

/// Object-safe view of a [`SpatialIndex`]: everything the unified API offers
/// except compile-time construction, so heterogeneous indexes can live behind
/// one `Box<dyn DynIndex<T, D>>`.
///
/// Obtain one with [`boxed`] or the registry constructors; the adapter
/// delegates the derived queries to the index's (possibly overridden,
/// structurally smarter) trait methods.
pub trait DynIndex<T: Coord, const D: usize>: Send + Sync {
    /// The index family's display name ([`SpatialIndex::NAME`]).
    fn name(&self) -> &'static str;

    /// Number of stored points.
    fn len(&self) -> usize;

    /// `true` if no points are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a batch of points.
    fn batch_insert(&mut self, points: &[Point<T, D>]);

    /// Delete a batch of points; returns the number removed.
    fn batch_delete(&mut self, points: &[Point<T, D>]) -> usize;

    /// Deletions then insertions as one logical update.
    fn batch_diff(&mut self, delete: &[Point<T, D>], insert: &[Point<T, D>]) -> usize {
        let removed = self.batch_delete(delete);
        self.batch_insert(insert);
        removed
    }

    /// kNN primitive (see [`SpatialIndex::knn_into`]). Requires `k >= 1`.
    fn knn_into(&self, q: &Point<T, D>, k: usize, heap: &mut KnnHeap<T, D>);

    /// Range primitive (see [`SpatialIndex::range_visit`]).
    fn range_visit(&self, rect: &Rect<T, D>, visitor: &mut dyn FnMut(&Point<T, D>));

    /// The `k` nearest neighbours of `q`, closest first.
    fn knn(&self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>>;

    /// Number of stored points in the closed box.
    fn range_count(&self, rect: &Rect<T, D>) -> usize;

    /// The stored points in the closed box.
    fn range_list(&self, rect: &Rect<T, D>) -> Vec<Point<T, D>>;

    /// As `range_list`, but clearing and refilling a caller-owned arena
    /// (see [`SpatialIndex::range_list_into`]).
    fn range_list_into(&self, rect: &Rect<T, D>, out: &mut Vec<Point<T, D>>);

    /// Answer many kNN queries in parallel with per-worker heap reuse (see
    /// [`SpatialIndex::knn_batch`]).
    fn knn_batch(&self, queries: &[Point<T, D>], k: usize) -> Vec<Vec<Point<T, D>>>;

    /// Answer many range-count queries in parallel (see
    /// [`SpatialIndex::range_count_batch`]).
    fn range_count_batch(&self, rects: &[Rect<T, D>]) -> Vec<usize>;

    /// Answer many range-list queries in parallel with per-worker arena
    /// reuse (see [`SpatialIndex::range_list_batch`]).
    fn range_list_batch(&self, rects: &[Rect<T, D>]) -> Vec<Vec<Point<T, D>>>;

    /// Tight bounding box of the stored points.
    fn bounding_box(&self) -> Rect<T, D>;

    /// Check structural invariants; panics on violation.
    fn check_invariants(&self);

    /// Optional persistent-snapshot capability (see
    /// [`SpatialIndex::snapshot`]): `Some` holds an immutable O(1)-copy view
    /// sharing structure with `self`; `None` means the family has no
    /// structural sharing and callers must fall back to full copies.
    fn snapshot_dyn(&self) -> Option<Box<dyn DynIndex<T, D>>> {
        None
    }

    /// Append every stored point to `out` (checkpoint serialization: the
    /// extracted build array recreates this index bit-identically through
    /// [`create`]). The default walks [`DynIndex::range_visit`] over the
    /// index's own [`DynIndex::bounding_box`], so it works for every family
    /// without per-family code.
    fn extract_points(&self, out: &mut Vec<Point<T, D>>) {
        if self.is_empty() {
            return;
        }
        out.reserve(self.len());
        self.range_visit(&self.bounding_box(), &mut |p| out.push(*p));
    }
}

/// Adapter giving any [`SpatialIndex`] the [`DynIndex`] vtable.
///
/// A deliberate indirection instead of a blanket `impl DynIndex for I`: a
/// blanket impl would put a second copy of every query method on every
/// concrete index, making plain `index.knn(..)` calls ambiguous wherever both
/// traits are in scope. Box through [`boxed`] (or the registry) instead.
struct DynAdapter<I>(I);

impl<T: Coord, const D: usize, I: SpatialIndex<T, D> + 'static> DynIndex<T, D> for DynAdapter<I> {
    fn name(&self) -> &'static str {
        I::NAME
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn batch_insert(&mut self, points: &[Point<T, D>]) {
        self.0.batch_insert(points)
    }
    fn batch_delete(&mut self, points: &[Point<T, D>]) -> usize {
        self.0.batch_delete(points)
    }
    fn knn_into(&self, q: &Point<T, D>, k: usize, heap: &mut KnnHeap<T, D>) {
        self.0.knn_into(q, k, heap)
    }
    fn range_visit(&self, rect: &Rect<T, D>, visitor: &mut dyn FnMut(&Point<T, D>)) {
        self.0.range_visit(rect, visitor)
    }
    fn knn(&self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>> {
        self.0.knn(q, k)
    }
    fn range_count(&self, rect: &Rect<T, D>) -> usize {
        self.0.range_count(rect)
    }
    fn range_list(&self, rect: &Rect<T, D>) -> Vec<Point<T, D>> {
        self.0.range_list(rect)
    }
    fn range_list_into(&self, rect: &Rect<T, D>, out: &mut Vec<Point<T, D>>) {
        self.0.range_list_into(rect, out)
    }
    fn knn_batch(&self, queries: &[Point<T, D>], k: usize) -> Vec<Vec<Point<T, D>>> {
        self.0.knn_batch(queries, k)
    }
    fn range_count_batch(&self, rects: &[Rect<T, D>]) -> Vec<usize> {
        self.0.range_count_batch(rects)
    }
    fn range_list_batch(&self, rects: &[Rect<T, D>]) -> Vec<Vec<Point<T, D>>> {
        self.0.range_list_batch(rects)
    }
    fn bounding_box(&self) -> Rect<T, D> {
        self.0.bounding_box()
    }
    fn check_invariants(&self) {
        self.0.check_invariants()
    }
    fn snapshot_dyn(&self) -> Option<Box<dyn DynIndex<T, D>>> {
        self.0
            .snapshot()
            .map(|s| Box::new(DynAdapter(s)) as Box<dyn DynIndex<T, D>>)
    }
}

/// Erase a statically typed index into the runtime façade.
pub fn boxed<T, const D: usize, I>(index: I) -> Box<dyn DynIndex<T, D>>
where
    T: Coord,
    I: SpatialIndex<T, D> + 'static,
{
    Box::new(DynAdapter(index))
}

/// Construction options shared by every registry entry.
#[derive(Clone, Debug)]
pub struct BuildOptions<T: Coord, const D: usize> {
    /// Fixed root region; indexes that don't consume one ignore it.
    pub universe: Option<Rect<T, D>>,
    /// Leaf wrap threshold `φ` override; `None` keeps each index's paper
    /// default. Ignored by configless indexes (R-tree, brute force).
    pub leaf_size: Option<usize>,
    /// Fixed-point grid scale used when an integer-only family is built over
    /// `f64` coordinates through the [`Quantized`] adapter (`create_f64`):
    /// float coordinate `c` is stored as `round(c * scale)`. `None` means
    /// `1.0` (snap to integers). Ignored by natively float-capable families
    /// and by [`create`].
    pub quantize_scale: Option<f64>,
}

impl<T: Coord, const D: usize> Default for BuildOptions<T, D> {
    fn default() -> Self {
        BuildOptions {
            universe: None,
            leaf_size: None,
            quantize_scale: None,
        }
    }
}

impl<T: Coord, const D: usize> BuildOptions<T, D> {
    /// Options with a fixed universe.
    pub fn with_universe(universe: Rect<T, D>) -> Self {
        BuildOptions {
            universe: Some(universe),
            ..Self::default()
        }
    }

    /// Set the leaf wrap threshold.
    pub fn leaf_size(mut self, leaf_size: usize) -> Self {
        self.leaf_size = Some(leaf_size);
        self
    }

    /// Set the fixed-point scale for quantised float entries (see
    /// [`BuildOptions::quantize_scale`]).
    pub fn quantize_scale(mut self, scale: f64) -> Self {
        self.quantize_scale = Some(scale);
        self
    }
}

/// Failure modes of [`create`] / [`create_f64`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// The name matches no registered index; the payload echoes it back.
    UnknownIndex(String),
    /// The family exists but does not support the requested coordinate type
    /// (the SFC-based indexes are integer-only).
    UnsupportedCoordinates(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownIndex(name) => {
                write!(f, "unknown index {name:?}; known: {}", names().join(", "))
            }
            RegistryError::UnsupportedCoordinates(name) => write!(
                f,
                "index {name:?} does not support float coordinates; \
                 float-capable (natively or via the quantising adapter): {}",
                FLOAT_NAMES.join(", ")
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

const ALL_NAMES: &[&str] = &[
    "p-orth",
    "spac-h",
    "spac-z",
    "cpam-h",
    "cpam-z",
    "pkd",
    "zd",
    "r-tree",
    "brute-force",
];

/// Families serving `f64` coordinates: the natively float-capable trees
/// (P-Orth, Pkd, brute force) plus every SFC family through the fixed-point
/// [`Quantized`] adapter. Only the R-tree stand-in stays integer-only.
const FLOAT_NAMES: &[&str] = &[
    "p-orth",
    "spac-h",
    "spac-z",
    "cpam-h",
    "cpam-z",
    "pkd",
    "zd",
    "brute-force",
];

/// Canonical names of every registered index, in the paper's table order.
pub fn names() -> &'static [&'static str] {
    ALL_NAMES
}

/// Canonical names of the families supporting `f64` coordinates.
pub fn float_names() -> &'static [&'static str] {
    FLOAT_NAMES
}

/// Normalise a user-provided index name: case-insensitive, `_`/space treated
/// as `-`, so "SPaC-H", "spac_h" and "spac h" all resolve.
fn canonical(name: &str) -> String {
    name.trim().to_ascii_lowercase().replace([' ', '_'], "-")
}

/// Resolve any accepted spelling (canonical names plus the obvious aliases)
/// to the canonical registry name; shared by [`create`] and [`create_f64`] so
/// both report the same errors for the same inputs.
fn resolve(name: &str) -> Option<&'static str> {
    Some(match canonical(name).as_str() {
        "p-orth" | "porth" | "orth" => "p-orth",
        "spac-h" | "spach" => "spac-h",
        "spac-z" | "spacz" => "spac-z",
        "cpam-h" | "cpamh" => "cpam-h",
        "cpam-z" | "cpamz" => "cpam-z",
        "pkd" | "pkd-tree" => "pkd",
        "zd" | "zd-tree" => "zd",
        "r-tree" | "rtree" | "boost-r" => "r-tree",
        "brute-force" | "bruteforce" | "oracle" => "brute-force",
        _ => return None,
    })
}

/// Resolve any accepted spelling to the canonical registry name without
/// building anything — the validation entry point for scenario files and CLI
/// flags that need to reject unknown families before generating data.
pub fn resolve_name(name: &str) -> Option<&'static str> {
    resolve(name)
}

fn config_with_leaf<C: Default + LeafSized, T: Coord, const D: usize>(
    opts: &BuildOptions<T, D>,
) -> C {
    let mut cfg = C::default();
    if let Some(leaf) = opts.leaf_size {
        cfg.set_leaf_size(leaf);
    }
    cfg
}

/// Instantiate an integer-coordinate index by name.
///
/// Accepted names are [`names`] plus the obvious aliases ("porth", "boost-r",
/// "spach", ...). `D` must be a dimension with SFC support (2 or 3).
pub fn create<const D: usize>(
    name: &str,
    points: &[PointI<D>],
    opts: &BuildOptions<i64, D>,
) -> Result<Box<dyn DynIndex<i64, D>>, RegistryError>
where
    HilbertCurve: SfcCurve<D>,
    MortonCurve: SfcCurve<D>,
{
    let universe = opts.universe.as_ref();
    let resolved = resolve(name).ok_or_else(|| RegistryError::UnknownIndex(name.to_string()))?;
    Ok(match resolved {
        "p-orth" => boxed(POrthTree::<i64, D>::build_with(
            points,
            universe,
            config_with_leaf::<POrthConfig, _, D>(opts),
        )),
        "spac-h" => boxed(SpacHTree::<D>::build_with(
            points,
            universe,
            config_with_leaf::<SpacConfig, _, D>(opts),
        )),
        "spac-z" => boxed(SpacZTree::<D>::build_with(
            points,
            universe,
            config_with_leaf::<SpacConfig, _, D>(opts),
        )),
        "cpam-h" => boxed(CpamHTree::<D>::build_with(
            points,
            universe,
            config_with_leaf::<CpamConfig, _, D>(opts),
        )),
        "cpam-z" => boxed(CpamZTree::<D>::build_with(
            points,
            universe,
            config_with_leaf::<CpamConfig, _, D>(opts),
        )),
        "pkd" => boxed(PkdTree::<i64, D>::build_with(
            points,
            universe,
            config_with_leaf::<PkdConfig, _, D>(opts),
        )),
        "zd" => boxed(ZdTree::<D>::build_with(
            points,
            universe,
            config_with_leaf::<psi_zd::ZdConfig, _, D>(opts),
        )),
        "r-tree" => boxed(RTree::<D>::build_with(points, universe, ())),
        "brute-force" => boxed(BruteForce::<i64, D>::build_with(points, universe, ())),
        _ => unreachable!("resolve() only returns canonical names"),
    })
}

/// Quantised config for an SFC family under `create_f64`: inner config with
/// the leaf override applied, scale from [`BuildOptions::quantize_scale`].
fn quantize_config<C: Default + LeafSized, const D: usize>(
    opts: &BuildOptions<f64, D>,
) -> QuantizeConfig<C> {
    let mut cfg = QuantizeConfig::<C>::default();
    if let Some(leaf) = opts.leaf_size {
        cfg.set_leaf_size(leaf);
    }
    if let Some(scale) = opts.quantize_scale {
        cfg.scale = scale;
    }
    cfg
}

/// Instantiate a float-coordinate index by name ([`float_names`]). The
/// natively float-capable families (P-Orth, Pkd, brute force) build directly;
/// the SFC families build through the fixed-point [`Quantized`] adapter
/// (grid scale [`BuildOptions::quantize_scale`], default `1.0` — see
/// [`crate::quantize`] for the exactness contract). The R-tree stand-in
/// remains integer-only and returns
/// [`RegistryError::UnsupportedCoordinates`].
pub fn create_f64<const D: usize>(
    name: &str,
    points: &[Point<f64, D>],
    opts: &BuildOptions<f64, D>,
) -> Result<Box<dyn DynIndex<f64, D>>, RegistryError>
where
    HilbertCurve: SfcCurve<D>,
    MortonCurve: SfcCurve<D>,
{
    let universe = opts.universe.as_ref();
    let resolved = resolve(name).ok_or_else(|| RegistryError::UnknownIndex(name.to_string()))?;
    Ok(match resolved {
        "p-orth" => boxed(POrthTree::<f64, D>::build_with(
            points,
            universe,
            config_with_leaf::<POrthConfig, _, D>(opts),
        )),
        "pkd" => boxed(PkdTree::<f64, D>::build_with(
            points,
            universe,
            config_with_leaf::<PkdConfig, _, D>(opts),
        )),
        "spac-h" => boxed(Quantized::<SpacHTree<D>>::build_with(
            points,
            universe,
            quantize_config::<SpacConfig, D>(opts),
        )),
        "spac-z" => boxed(Quantized::<SpacZTree<D>>::build_with(
            points,
            universe,
            quantize_config::<SpacConfig, D>(opts),
        )),
        "cpam-h" => boxed(Quantized::<CpamHTree<D>>::build_with(
            points,
            universe,
            quantize_config::<CpamConfig, D>(opts),
        )),
        "cpam-z" => boxed(Quantized::<CpamZTree<D>>::build_with(
            points,
            universe,
            quantize_config::<CpamConfig, D>(opts),
        )),
        "zd" => boxed(Quantized::<ZdTree<D>>::build_with(
            points,
            universe,
            quantize_config::<psi_zd::ZdConfig, D>(opts),
        )),
        "brute-force" => boxed(BruteForce::<f64, D>::build_with(points, universe, ())),
        _ => return Err(RegistryError::UnsupportedCoordinates(name.to_string())),
    })
}
