//! The brute-force oracle: a "spatial index" that simply stores the points in
//! a vector and answers every query by exhaustive scan.
//!
//! Slow but obviously correct — every other index is validated against it in
//! the conformance tests and the property suite, and it doubles as a reference
//! when debugging new index implementations. Generic over the coordinate type
//! like the trait itself, so it also oracles the `f64` configurations.

use crate::SpatialIndex;
use psi_geometry::{Coord, KnnHeap, Point, Rect};

/// Exhaustive-scan implementation of [`SpatialIndex`].
pub struct BruteForce<T: Coord, const D: usize> {
    points: Vec<Point<T, D>>,
}

impl<T: Coord, const D: usize> BruteForce<T, D> {
    /// All stored points (insertion order).
    pub fn points(&self) -> &[Point<T, D>] {
        &self.points
    }
}

impl<T: Coord, const D: usize> SpatialIndex<T, D> for BruteForce<T, D> {
    const NAME: &'static str = "BruteForce";
    /// Nothing to tune in a linear scan.
    type Config = ();

    fn build_with(points: &[Point<T, D>], _universe: Option<&Rect<T, D>>, _cfg: ()) -> Self {
        BruteForce {
            points: points.to_vec(),
        }
    }

    fn batch_insert(&mut self, points: &[Point<T, D>]) {
        self.points.extend_from_slice(points);
    }

    fn batch_delete(&mut self, points: &[Point<T, D>]) -> usize {
        // Multiset removal: each batch element removes at most one stored copy.
        let mut to_remove = points.to_vec();
        to_remove.sort();
        let mut kept = Vec::with_capacity(self.points.len());
        let mut stored = std::mem::take(&mut self.points);
        stored.sort();
        let mut j = 0;
        let mut removed = 0;
        for p in stored {
            while j < to_remove.len() && to_remove[j] < p {
                j += 1;
            }
            if j < to_remove.len() && to_remove[j] == p {
                j += 1;
                removed += 1;
            } else {
                kept.push(p);
            }
        }
        self.points = kept;
        removed
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn range_visit(&self, rect: &Rect<T, D>, visitor: &mut dyn FnMut(&Point<T, D>)) {
        for p in self.points.iter().filter(|p| rect.contains(p)) {
            visitor(p);
        }
    }

    fn knn_into(&self, q: &Point<T, D>, k: usize, heap: &mut KnnHeap<T, D>) {
        heap.reset(k);
        for p in &self.points {
            heap.offer_point(q, *p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_geometry::{Point, Rect};

    #[test]
    fn oracle_basics() {
        let uni = Rect::from_corners(Point::new([0, 0]), Point::new([100, 100]));
        let pts = vec![
            Point::new([1, 1]),
            Point::new([2, 2]),
            Point::new([2, 2]),
            Point::new([50, 50]),
        ];
        let mut o = BruteForce::<i64, 2>::build(&pts, &uni);
        assert_eq!(o.len(), 4);
        assert_eq!(o.batch_delete(&[Point::new([2, 2])]), 1);
        assert_eq!(o.len(), 3);
        assert_eq!(
            o.range_count(&Rect::from_corners(
                Point::new([0, 0]),
                Point::new([10, 10])
            )),
            2
        );
        assert_eq!(o.knn(&Point::new([0, 0]), 1), vec![Point::new([1, 1])]);
        assert_eq!(o.knn(&Point::new([0, 0]), 0), vec![]);
        o.batch_insert(&[Point::new([3, 3])]);
        assert_eq!(o.len(), 4);
    }

    #[test]
    fn oracle_works_on_floats() {
        let pts = vec![
            Point::new([0.5f64, 0.5]),
            Point::new([0.25, 0.25]),
            Point::new([0.9, 0.9]),
        ];
        let o = BruteForce::<f64, 2>::build_with(&pts, None, ());
        assert_eq!(
            o.knn(&Point::new([0.0, 0.0]), 1),
            vec![Point::new([0.25, 0.25])]
        );
        let r = Rect::from_corners(Point::new([0.0, 0.0]), Point::new([0.6, 0.6]));
        assert_eq!(o.range_count(&r), 2);
        let bb = o.bounding_box();
        assert_eq!(bb.lo, Point::new([0.25, 0.25]));
        assert_eq!(bb.hi, Point::new([0.9, 0.9]));
    }
}
