//! The brute-force oracle: a "spatial index" that simply stores the points in
//! a vector and answers every query by exhaustive scan.
//!
//! Slow but obviously correct — every other index is validated against it in
//! the conformance tests and the property suite, and it doubles as a reference
//! when debugging new index implementations.

use crate::SpatialIndex;
use psi_geometry::{brute_force_knn, PointI, RectI};

/// Exhaustive-scan implementation of [`SpatialIndex`].
pub struct BruteForce<const D: usize> {
    points: Vec<PointI<D>>,
}

impl<const D: usize> BruteForce<D> {
    /// All stored points (insertion order).
    pub fn points(&self) -> &[PointI<D>] {
        &self.points
    }
}

impl<const D: usize> SpatialIndex<D> for BruteForce<D> {
    const NAME: &'static str = "BruteForce";

    fn build(points: &[PointI<D>], _universe: &RectI<D>) -> Self {
        BruteForce {
            points: points.to_vec(),
        }
    }

    fn batch_insert(&mut self, points: &[PointI<D>]) {
        self.points.extend_from_slice(points);
    }

    fn batch_delete(&mut self, points: &[PointI<D>]) -> usize {
        // Multiset removal: each batch element removes at most one stored copy.
        let mut to_remove = points.to_vec();
        to_remove.sort();
        let mut kept = Vec::with_capacity(self.points.len());
        let mut stored = std::mem::take(&mut self.points);
        stored.sort();
        let mut j = 0;
        let mut removed = 0;
        for p in stored {
            while j < to_remove.len() && to_remove[j] < p {
                j += 1;
            }
            if j < to_remove.len() && to_remove[j] == p {
                j += 1;
                removed += 1;
            } else {
                kept.push(p);
            }
        }
        self.points = kept;
        removed
    }

    fn knn(&self, q: &PointI<D>, k: usize) -> Vec<PointI<D>> {
        if k == 0 {
            return Vec::new();
        }
        brute_force_knn(&self.points, q, k)
    }

    fn range_count(&self, rect: &RectI<D>) -> usize {
        self.points.iter().filter(|p| rect.contains(p)).count()
    }

    fn range_list(&self, rect: &RectI<D>) -> Vec<PointI<D>> {
        self.points
            .iter()
            .copied()
            .filter(|p| rect.contains(p))
            .collect()
    }

    fn len(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_geometry::{Point, Rect};

    #[test]
    fn oracle_basics() {
        let uni = Rect::from_corners(Point::new([0, 0]), Point::new([100, 100]));
        let pts = vec![
            Point::new([1, 1]),
            Point::new([2, 2]),
            Point::new([2, 2]),
            Point::new([50, 50]),
        ];
        let mut o = BruteForce::<2>::build(&pts, &uni);
        assert_eq!(o.len(), 4);
        assert_eq!(o.batch_delete(&[Point::new([2, 2])]), 1);
        assert_eq!(o.len(), 3);
        assert_eq!(o.range_count(&Rect::from_corners(Point::new([0, 0]), Point::new([10, 10]))), 2);
        assert_eq!(o.knn(&Point::new([0, 0]), 1), vec![Point::new([1, 1])]);
        assert_eq!(o.knn(&Point::new([0, 0]), 0), vec![]);
        o.batch_insert(&[Point::new([3, 3])]);
        assert_eq!(o.len(), 4);
    }
}
