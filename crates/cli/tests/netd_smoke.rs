//! End-to-end smoke for the `psi-netd` binary: spawn the real executable,
//! scrape the ephemeral port off its banner line, drive real TCP
//! connections against it, and check that closing stdin stops it cleanly.

use psi_geometry::{Point, Rect};
use psi_net::client::WireClient;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn spawn_netd(extra: &[&str]) -> (Child, SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_psi-netd"));
    cmd.args(["--addr", "127.0.0.1:0", "--n", "3000"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd.spawn().expect("spawn psi-netd");
    let stdout = child.stdout.take().expect("piped stdout");
    let banner = BufReader::new(stdout)
        .lines()
        .next()
        .expect("banner line")
        .expect("banner read");
    let addr = banner
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable banner {banner:?}"));
    (child, addr)
}

fn wait_exit(mut child: Child) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "psi-netd exited with {status}");
                return;
            }
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("psi-netd did not exit within 10s of stdin EOF");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[test]
fn netd_serves_tcp_and_stops_on_stdin_eof() {
    for transport in ["threaded", "evented"] {
        let (mut child, addr) = spawn_netd(&["--transport", transport]);
        let mut client: WireClient<i64, 2> = WireClient::connect(addr).expect("connect");
        assert_eq!(client.shards(), 2, "{transport}");
        let hits = client
            .knn(&Point::new([500_000, 500_000]), 7)
            .expect("knn over tcp");
        assert_eq!(hits.len(), 7, "{transport}");
        let total = client
            .range_count(&Rect::from_corners(
                Point::new([0, 0]),
                Point::new([1_000_000, 1_000_000]),
            ))
            .expect("range_count over tcp");
        assert_eq!(total, 3000, "{transport}");
        drop(client);
        drop(child.stdin.take());
        wait_exit(child);
    }
}

#[test]
fn netd_rejects_bad_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_psi-netd"))
        .args(["--transport", "smoke-signal"])
        .output()
        .expect("run psi-netd");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--transport"));
}

#[test]
fn netd_writes_survive_over_f64_direct() {
    let (mut child, addr) = spawn_netd(&["--coords", "f64", "--direct", "--shards", "3"]);
    let mut client: WireClient<f64, 2> = WireClient::connect(addr).expect("connect");
    assert_eq!(client.shards(), 3);
    let hits = client.knn(&Point::new([10.0, 10.0]), 4).expect("knn");
    assert_eq!(hits.len(), 4);
    // Move a point through the write path and make sure the daemon stays up.
    client
        .apply_batch(hits[..1].to_vec(), vec![Point::new([123.0, 456.0])])
        .expect("apply_batch over tcp");
    let n = client
        .range_count(&Rect::from_corners(
            Point::new([-1.0e12, -1.0e12]),
            Point::new([1.0e12, 1.0e12]),
        ))
        .expect("range_count");
    assert_eq!(n, 3000);
    drop(child.stdin.take());
    wait_exit(child);
}
