//! End-to-end observability smoke: spawn the real `psi-netd` binary with a
//! durable data dir and a metrics endpoint, push a loadgen burst plus a
//! write batch through the wire, then check that `OP_STATS` (over both
//! transports) and the `--stats-addr` plaintext endpoint report consistent,
//! nonzero values for the core series: per-op request latency, publish
//! latency, coalesce flushes, WAL fsync.

use psi_geometry::{Point, Rect};
use psi_net::client::WireClient;
use psi_net::loadgen::{fanout, FanoutSpec};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Netd {
    child: Child,
    addr: SocketAddr,
    stats_addr: SocketAddr,
}

fn spawn_netd(extra: &[&str]) -> Netd {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_psi-netd"));
    cmd.args([
        "--addr",
        "127.0.0.1:0",
        "--stats-addr",
        "127.0.0.1:0",
        "--n",
        "3000",
        "--coalesce",
        "4",
    ])
    .args(extra)
    .stdin(Stdio::piped())
    .stdout(Stdio::piped())
    .stderr(Stdio::inherit());
    let mut child = cmd.spawn().expect("spawn psi-netd");
    let stdout = child.stdout.take().expect("piped stdout");
    let banner = BufReader::new(stdout)
        .lines()
        .next()
        .expect("banner line")
        .expect("banner read");
    let addr = banner
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable banner {banner:?}"));
    let stats_addr = banner
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("stats="))
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("no stats= in banner {banner:?}"));
    Netd {
        child,
        addr,
        stats_addr,
    }
}

fn stop(mut netd: Netd) {
    drop(netd.child.stdin.take());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match netd.child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "psi-netd exited with {status}");
                return;
            }
            None if Instant::now() > deadline => {
                let _ = netd.child.kill();
                panic!("psi-netd did not exit within 10s of stdin EOF");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// The value of the first exposition line starting with `prefix`.
fn series_value(text: &str, prefix: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("series {prefix:?} missing from:\n{text}"))
}

/// One curl-style GET against the plaintext endpoint; returns the body.
fn scrape(addr: SocketAddr) -> String {
    let mut s = TcpStream::connect(addr).expect("connect stats endpoint");
    s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut text = String::new();
    s.read_to_string(&mut text).expect("read scrape");
    assert!(text.starts_with("HTTP/1.0 200 OK\r\n"), "{text:?}");
    text.split_once("\r\n\r\n")
        .expect("header/body split")
        .1
        .to_string()
}

#[test]
fn stats_are_nonzero_and_consistent_across_exposures() {
    let world = Rect::from_corners(Point::new([0, 0]), Point::new([1_000_000, 1_000_000]));
    for transport in ["threaded", "evented"] {
        let dir =
            std::env::temp_dir().join(format!("psi-obs-smoke-{}-{transport}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let netd = spawn_netd(&[
            "--transport",
            transport,
            "--data-dir",
            dir.to_str().unwrap(),
        ]);

        // Loadgen burst: 8 closed-loop connections, 40 rounds each.
        let queries: Vec<Point<i64, 2>> = (0..16)
            .map(|i| Point::new([i * 50_000, 1_000_000 - i * 50_000]))
            .collect();
        let rects = vec![
            Rect::from_corners(Point::new([0, 0]), Point::new([200_000, 200_000])),
            Rect::from_corners(
                Point::new([400_000, 400_000]),
                Point::new([600_000, 600_000]),
            ),
        ];
        let spec = FanoutSpec {
            connections: 8,
            workers: 2,
            rounds: 40,
            k: 5,
        };
        let out = fanout(netd.addr, &queries, &rects, &spec).expect("loadgen burst");
        assert_eq!(out.ops, 8 * 40, "{transport}");

        // One write batch through the WAL, polled to publication so the
        // publish-latency and fsync series are guaranteed nonzero.
        let mut client: WireClient<i64, 2> = WireClient::connect(netd.addr).expect("connect");
        client
            .apply_batch(Vec::new(), vec![Point::new([7, 7]), Point::new([9, 9])])
            .expect("apply_batch");
        let deadline = Instant::now() + Duration::from_secs(10);
        while client.range_count(&world).expect("range_count") != 3002 {
            assert!(Instant::now() < deadline, "write batch never published");
            std::thread::sleep(Duration::from_millis(5));
        }

        // Exposure 1: OP_STATS over the wire.
        let (version, text) = client.stats().expect("OP_STATS");
        assert_eq!(version, psi_obs::SNAPSHOT_VERSION, "{transport}");
        let knn_in = series_value(&text, "psi_net_frames_in_total{op=\"knn\"}");
        assert!(knn_in >= 2.0 * 40.0, "{transport}: knn frames {knn_in}");
        assert!(
            series_value(
                &text,
                "psi_net_request_latency_ns{op=\"knn\",quantile=\"0.99\"}"
            ) > 0.0,
            "{transport}"
        );
        assert!(
            series_value(
                &text,
                "psi_serve_publish_latency_ns{shard=\"0\",quantile=\"0.99\"}"
            ) > 0.0
        );
        assert!(
            series_value(&text, "psi_serve_flushes_total") > 0.0,
            "{transport}"
        );
        assert!(
            series_value(&text, "psi_wal_fsync_latency_ns_count") > 0.0,
            "{transport}"
        );
        assert!(
            series_value(&text, "psi_wal_bytes_written_total") > 0.0,
            "{transport}"
        );
        assert!(
            series_value(&text, "psi_net_open_connections") >= 1.0,
            "{transport}"
        );

        // Exposure 2: the plaintext endpoint. Counters are monotone, so the
        // later scrape must agree with (or exceed) the wire snapshot.
        let body = scrape(netd.stats_addr);
        let scraped_knn_in = series_value(&body, "psi_net_frames_in_total{op=\"knn\"}");
        assert!(
            scraped_knn_in >= knn_in,
            "{transport}: scrape {scraped_knn_in} went backwards from wire {knn_in}"
        );
        assert!(series_value(&body, "psi_wal_fsync_latency_ns_count") > 0.0);
        assert!(series_value(&body, "psi_serve_flushes_total") > 0.0);

        drop(client);
        stop(netd);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
