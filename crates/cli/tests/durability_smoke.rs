//! Fault-injection battery for `psi-netd` durability: SIGKILL the real
//! binary mid-write and require the restarted daemon to answer
//! checksum-equal to an offline replica replaying the same batch prefix;
//! then corrupt the on-disk state directly — WAL byte flips, torn tails,
//! damaged checkpoints — and require graceful degradation to an earlier
//! consistent epoch with a logged warning, never a panic.
//!
//! Everything runs through the real executable and real TCP, mirroring
//! `netd_smoke.rs`; the only i64 2-d family probed is `cpam-h` because only
//! persistent families retain epoch history (`epoch_bounds` is the probe
//! that tells us which prefix of the submitted batches survived the kill).

use psi::registry::{self, BuildOptions, DynIndex};
use psi_geometry::{Point, PointI, Rect};
use psi_net::client::WireClient;
use psi_workloads::{self as workloads, Distribution};
use std::collections::HashSet;
use std::fs::{self, File};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const N: usize = 2000;
const MAX_COORD: i64 = 1_000_000;
const SEED: u64 = 42;
const FAMILY: &str = "cpam-h";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(FNV_PRIME)
}

/// Fresh per-test scratch root (no tempfile crate in the workspace).
fn scratch(label: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("psi-durv-{}-{label}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).expect("create scratch root");
    root
}

/// Spawn the real `psi-netd` over `data_dir`, capturing stderr to a file so
/// the corruption tests can assert on recovery warnings.
fn spawn_durable(data_dir: &Path, stderr_log: &Path) -> (Child, SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_psi-netd"));
    cmd.args(["--addr", "127.0.0.1:0", "--family", FAMILY])
        .args(["--n", &N.to_string(), "--seed", &SEED.to_string()])
        .arg("--data-dir")
        .arg(data_dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::from(
            File::create(stderr_log).expect("create stderr log"),
        ));
    let mut child = cmd.spawn().expect("spawn psi-netd");
    let stdout = child.stdout.take().expect("piped stdout");
    let banner = BufReader::new(stdout)
        .lines()
        .next()
        .expect("banner line")
        .expect("banner read");
    let addr = banner
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable banner {banner:?}"));
    assert!(banner.ends_with("durable=every-batch"), "banner {banner:?}");
    (child, addr)
}

fn wait_exit(mut child: Child) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "psi-netd exited with {status}");
                return;
            }
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("psi-netd did not exit within 10s of stdin EOF");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Block until the published epoch reaches `want` (acks confirm submission,
/// not publication, so every wire-level epoch assertion must poll).
fn wait_epoch(client: &mut WireClient<i64, 2>, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let hi = client
            .epoch_bounds()
            .expect("epoch_bounds")
            .map(|(_, hi)| hi)
            .unwrap_or(0);
        if hi >= want {
            return;
        }
        assert!(Instant::now() < deadline, "epoch {want} never published");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn published_epoch(client: &mut WireClient<i64, 2>) -> u64 {
    client
        .epoch_bounds()
        .expect("epoch_bounds")
        .map(|(_, hi)| hi)
        .unwrap_or(0)
}

fn base_data() -> Vec<PointI<2>> {
    Distribution::Uniform.generate::<2>(N, MAX_COORD, SEED)
}

/// Deterministic insert stream, disjoint from the base dataset and from
/// itself, so a full-universe `range_count` pins down exactly how many
/// batches survived a crash.
fn fresh_points(count: usize, taken: &mut HashSet<[i64; 2]>) -> Vec<PointI<2>> {
    let mut out = Vec::with_capacity(count);
    let mut i: i64 = 0;
    while out.len() < count {
        let cand = [
            (i * 7919 + 13) % (MAX_COORD + 1),
            (i * 104_729 + 31) % (MAX_COORD + 1),
        ];
        if taken.insert(cand) {
            out.push(Point::new(cand));
        }
        i += 1;
    }
    out
}

fn full_universe() -> Rect<i64, 2> {
    Rect::from_corners(Point::new([0, 0]), Point::new([MAX_COORD; 2]))
}

/// Fixed query mix hashed the same way on both sides of the comparison.
/// Answer lists are sorted first: the daemon merges per-shard answers while
/// the replica is a single index, so only set equality is promised.
fn probe_mix() -> (Vec<PointI<2>>, Vec<Rect<i64, 2>>) {
    let queries = (0..8)
        .map(|i| Point::new([(i * 123_457) % MAX_COORD, (i * 654_321 + 99) % MAX_COORD]))
        .collect();
    let rects = (0..6)
        .map(|i| {
            let lo = Point::new([(i * 150_001) % MAX_COORD, (i * 90_007) % MAX_COORD]);
            let hi = Point::new([
                (lo.coords[0] + 120_000).min(MAX_COORD),
                (lo.coords[1] + 200_000).min(MAX_COORD),
            ]);
            Rect::from_corners(lo, hi)
        })
        .collect();
    (queries, rects)
}

fn hash_points(h: u64, mut pts: Vec<PointI<2>>) -> u64 {
    pts.sort_unstable();
    let mut h = fold(h, pts.len() as u64);
    for p in &pts {
        for c in p.coords {
            h = fold(h, c as u64);
        }
    }
    h
}

fn wire_checksum(client: &mut WireClient<i64, 2>) -> u64 {
    let (queries, rects) = probe_mix();
    let mut h = FNV_OFFSET;
    for q in &queries {
        h = hash_points(h, client.knn(q, 4).expect("knn"));
    }
    for r in &rects {
        h = fold(h, client.range_count(r).expect("range_count") as u64);
    }
    for r in &rects {
        h = hash_points(h, client.range_list(r).expect("range_list"));
    }
    h
}

fn replica_checksum(index: &dyn DynIndex<i64, 2>) -> u64 {
    let (queries, rects) = probe_mix();
    let mut h = FNV_OFFSET;
    for ans in index.knn_batch(&queries, 4) {
        h = hash_points(h, ans);
    }
    for c in index.range_count_batch(&rects) {
        h = fold(h, c as u64);
    }
    for list in index.range_list_batch(&rects) {
        h = hash_points(h, list);
    }
    h
}

fn build_replica(base: &[PointI<2>]) -> Box<dyn DynIndex<i64, 2>> {
    let opts = BuildOptions::with_universe(workloads::universe::<2>(MAX_COORD));
    registry::create::<2>(FAMILY, base, &opts).expect("replica build")
}

/// Newest generation number among `checkpoint-g<g>.psic` / `wal-g<g>.log`.
fn newest(dir: &Path, prefix: &str, suffix: &str) -> PathBuf {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in fs::read_dir(dir).expect("read data dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if let Some(g) = name
            .strip_prefix(prefix)
            .and_then(|r| r.strip_suffix(suffix))
            .and_then(|g| g.parse::<u64>().ok())
        {
            if best.as_ref().is_none_or(|(b, _)| g > *b) {
                best = Some((g, path.clone()));
            }
        }
    }
    best.unwrap_or_else(|| panic!("no {prefix}*{suffix} in {}", dir.display()))
        .1
}

/// SIGKILL mid-write: pace a few mixed batches to known epochs, then fire a
/// burst of single-insert batches and kill the daemon without waiting.
/// After restart, the daemon must hold exactly a prefix of the submitted
/// batches and answer the full probe mix checksum-equal to an offline
/// replica replaying that prefix.
#[test]
fn sigkill_mid_write_recovers_a_consistent_prefix() {
    const PACED: usize = 4;
    const BURST: usize = 32;

    let root = scratch("kill");
    let data_dir = root.join("data");
    let base = base_data();
    let mut taken: HashSet<[i64; 2]> = base.iter().map(|p| p.coords).collect();
    // Paced batch i deletes one base point and inserts two fresh ones
    // (net +1); burst batches are single fresh inserts (net +1).
    let paced_ins = fresh_points(2 * PACED, &mut taken);
    let burst_ins = fresh_points(BURST, &mut taken);

    let (mut child, addr) = spawn_durable(&data_dir, &root.join("stderr-0.log"));
    let mut client: WireClient<i64, 2> = WireClient::connect(addr).expect("connect");
    for i in 0..PACED {
        client
            .apply_batch(vec![base[i]], paced_ins[2 * i..2 * i + 2].to_vec())
            .expect("paced batch");
        wait_epoch(&mut client, (i + 1) as u64);
    }
    for p in &burst_ins {
        client.apply_batch(vec![], vec![*p]).expect("burst batch");
    }
    child.kill().expect("SIGKILL psi-netd");
    child.wait().expect("reap killed daemon");
    drop(client);

    let (mut child, addr) = spawn_durable(&data_dir, &root.join("stderr-1.log"));
    let mut client: WireClient<i64, 2> = WireClient::connect(addr).expect("reconnect");
    assert!(
        published_epoch(&mut client) >= PACED as u64,
        "paced batches were acknowledged as published before the kill"
    );
    let count = client.range_count(&full_universe()).expect("count");
    let survived = count
        .checked_sub(N + PACED)
        .unwrap_or_else(|| panic!("recovered count {count} below the paced floor"));
    assert!(
        survived <= BURST,
        "recovered count {count} exceeds submitted"
    );

    // Offline replica replays the same prefix batch-by-batch.
    let mut replica = build_replica(&base);
    for i in 0..PACED {
        replica.batch_delete(&base[i..i + 1]);
        replica.batch_insert(&paced_ins[2 * i..2 * i + 2]);
    }
    replica.batch_insert(&burst_ins[..survived]);
    assert_eq!(
        wire_checksum(&mut client),
        replica_checksum(&*replica),
        "recovered answers must checksum-equal the offline replay \
         ({survived}/{BURST} burst batches survived)"
    );

    drop(client);
    drop(child.stdin.take());
    wait_exit(child);
    let _ = fs::remove_dir_all(&root);
}

/// Boot a daemon over `data_dir`, apply `EPOCHS` paced single-insert
/// batches, shut down cleanly. Returns the insert stream for replays.
fn seed_epochs(root: &Path, data_dir: &Path, label: &str, epochs: usize) -> Vec<PointI<2>> {
    let base = base_data();
    let mut taken: HashSet<[i64; 2]> = base.iter().map(|p| p.coords).collect();
    let ins = fresh_points(epochs, &mut taken);
    let (mut child, addr) = spawn_durable(data_dir, &root.join(format!("stderr-{label}.log")));
    let mut client: WireClient<i64, 2> = WireClient::connect(addr).expect("connect");
    for (i, p) in ins.iter().enumerate() {
        client.apply_batch(vec![], vec![*p]).expect("seed batch");
        wait_epoch(&mut client, (i + 1) as u64);
    }
    drop(client);
    drop(child.stdin.take());
    wait_exit(child);
    ins
}

/// Reboot over `data_dir` and return `(published epoch, full count)`,
/// asserting the daemon stays up and answers queries.
fn reboot_and_probe(root: &Path, data_dir: &Path, label: &str) -> (u64, usize) {
    let (mut child, addr) = spawn_durable(data_dir, &root.join(format!("stderr-{label}.log")));
    let mut client: WireClient<i64, 2> = WireClient::connect(addr).expect("reconnect");
    let epoch = published_epoch(&mut client);
    let count = client.range_count(&full_universe()).expect("count");
    // The daemon must still serve reads after a degraded recovery.
    assert_eq!(client.knn(&Point::new([1, 1]), 3).expect("knn").len(), 3);
    drop(client);
    drop(child.stdin.take());
    wait_exit(child);
    (epoch, count)
}

fn stderr_contains(root: &Path, label: &str, needle: &str) -> bool {
    fs::read_to_string(root.join(format!("stderr-{label}.log")))
        .map(|s| s.contains(needle))
        .unwrap_or(false)
}

/// A flipped byte in the newest WAL record must cost exactly the records
/// from the flip onward — recovery warns and lands on the last epoch whose
/// record still passes its CRC.
#[test]
fn wal_byte_flip_degrades_to_the_last_valid_epoch() {
    const EPOCHS: usize = 6;
    let root = scratch("flip");
    let data_dir = root.join("data");
    seed_epochs(&root, &data_dir, "seed", EPOCHS);

    let wal = newest(&data_dir, "wal-g", ".log");
    let mut bytes = fs::read(&wal).expect("read wal");
    let at = bytes.len() - 5; // inside the final record's body
    bytes[at] ^= 0x40;
    fs::write(&wal, &bytes).expect("write corrupted wal");

    let (epoch, count) = reboot_and_probe(&root, &data_dir, "reboot");
    assert_eq!(
        epoch,
        (EPOCHS - 1) as u64,
        "exactly the flipped record is lost"
    );
    assert_eq!(count, N + EPOCHS - 1);
    assert!(
        stderr_contains(&root, "reboot", "recovery"),
        "degraded recovery must warn on stderr"
    );
    let _ = fs::remove_dir_all(&root);
}

/// A torn tail (partial final record, as left by a crash mid-append) must
/// be skipped silently-but-consistently: the daemon recovers every whole
/// record and keeps serving.
#[test]
fn wal_torn_tail_recovers_every_whole_record() {
    const EPOCHS: usize = 5;
    let root = scratch("torn");
    let data_dir = root.join("data");
    seed_epochs(&root, &data_dir, "seed", EPOCHS);

    let wal = newest(&data_dir, "wal-g", ".log");
    let len = fs::metadata(&wal).expect("stat wal").len();
    let file = File::options().write(true).open(&wal).expect("open wal");
    file.set_len(len - 3).expect("tear the tail");
    drop(file);

    let (epoch, count) = reboot_and_probe(&root, &data_dir, "reboot");
    assert_eq!(epoch, (EPOCHS - 1) as u64, "only the torn record is lost");
    assert_eq!(count, N + EPOCHS - 1);
    let _ = fs::remove_dir_all(&root);
}

/// A corrupted checkpoint must not take the WAL down with it: recovery
/// falls back to the previous generation's checkpoint and re-chains every
/// contiguous WAL segment, landing on the *full* pre-corruption state.
#[test]
fn checkpoint_corruption_falls_back_to_the_previous_generation() {
    const FIRST: usize = 3;
    const SECOND: usize = 2;
    let root = scratch("ckpt");
    let data_dir = root.join("data");
    // Two boot cycles: the second boot recovers epoch FIRST and writes a
    // fresh checkpoint generation, leaving the first generation behind
    // (keep-2 retention), then advances SECOND more epochs into its WAL.
    let ins = seed_epochs(&root, &data_dir, "seed-a", FIRST);
    {
        let base = base_data();
        let mut taken: HashSet<[i64; 2]> = base.iter().map(|p| p.coords).collect();
        let replay = fresh_points(FIRST + SECOND, &mut taken);
        assert_eq!(&replay[..FIRST], &ins[..], "insert stream is deterministic");
        let (mut child, addr) = spawn_durable(&data_dir, &root.join("stderr-seed-b.log"));
        let mut client: WireClient<i64, 2> = WireClient::connect(addr).expect("connect");
        wait_epoch(&mut client, FIRST as u64);
        for (i, p) in replay[FIRST..].iter().enumerate() {
            client
                .apply_batch(vec![], vec![*p])
                .expect("second-cycle batch");
            wait_epoch(&mut client, (FIRST + i + 1) as u64);
        }
        drop(client);
        drop(child.stdin.take());
        wait_exit(child);
    }

    let ckpt = newest(&data_dir, "checkpoint-g", ".psic");
    let mut bytes = fs::read(&ckpt).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&ckpt, &bytes).expect("write corrupted checkpoint");

    let (epoch, count) = reboot_and_probe(&root, &data_dir, "reboot");
    assert_eq!(
        epoch,
        (FIRST + SECOND) as u64,
        "older checkpoint + chained WAL segments rebuild the full state"
    );
    assert_eq!(count, N + FIRST + SECOND);
    assert!(
        stderr_contains(&root, "reboot", "recovery"),
        "checkpoint fallback must warn on stderr"
    );
    let _ = fs::remove_dir_all(&root);
}
