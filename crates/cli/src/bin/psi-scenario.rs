//! `psi-scenario` — run declarative Ψ-Lib workload scenarios from the
//! command line.
//!
//! ```text
//! psi-scenario run <scenario.psi>... [--threads N] [--out report.json]
//!                                    [--check golden.txt] [--quiet]
//! psi-scenario compare <a.json> <b.json> [--tolerance <pct>] [--noise-floor <secs>]
//! psi-scenario golden <scenario.psi> [--threads N]
//! psi-scenario print <scenario.psi>
//! psi-scenario list [dir]
//! ```
//!
//! * `run` executes scenarios and prints a per-family summary table;
//!   `--out` writes the full JSON report (single scenario), `--check`
//!   compares the deterministic golden text against a committed file and
//!   exits non-zero on mismatch (single scenario).
//! * `compare` diffs two `run --out` JSON reports of the same scenario
//!   (possibly from different machines/thread counts): checksum
//!   disagreements and timings in `<b.json>` more than `--tolerance`
//!   percent slower than `<a.json>` (default 20, with a `--noise-floor`
//!   absolute floor, default 1 ms) exit non-zero — the CI
//!   timing-regression gate.
//! * `golden` prints the deterministic golden text to stdout — redirect it
//!   into `tests/golden/<name>.golden` to (re)pin a scenario.
//! * `print` parses a scenario and dumps the resolved configuration.
//! * `list` lists `.psi` files in a directory (default `scenarios/`).

use psi_cli::{compare, exec, report, scenario, serve};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: psi-scenario <command> [args]

commands:
  run <scenario.psi>... [--threads N] [--out report.json] [--check golden.txt] [--quiet]
  compare <a.json> <b.json> [--tolerance <pct>] [--noise-floor <secs>]
  golden <scenario.psi> [--threads N]
  print <scenario.psi>
  list [dir]
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("psi-scenario: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "run" => cmd_run(rest),
        "compare" => cmd_compare(rest),
        "golden" => cmd_golden(rest),
        "print" => cmd_print(rest),
        "list" => cmd_list(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown command {other:?}\n{USAGE}")),
    }
}

struct RunFlags {
    files: Vec<PathBuf>,
    threads: Option<usize>,
    out: Option<PathBuf>,
    check: Option<PathBuf>,
    quiet: bool,
}

fn parse_run_flags(args: &[String]) -> Result<RunFlags, String> {
    let mut flags = RunFlags {
        files: Vec::new(),
        threads: None,
        out: None,
        check: None,
        quiet: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" | "--out" | "--check" => {
                let flag = args[i].clone();
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?;
                match flag.as_str() {
                    "--threads" => {
                        flags.threads =
                            Some(value.parse().map_err(|_| {
                                format!("--threads expects an integer, got {value:?}")
                            })?)
                    }
                    "--out" => flags.out = Some(PathBuf::from(value)),
                    _ => flags.check = Some(PathBuf::from(value)),
                }
                i += 2;
            }
            "--quiet" => {
                flags.quiet = true;
                i += 1;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            file => {
                flags.files.push(PathBuf::from(file));
                i += 1;
            }
        }
    }
    if flags.files.is_empty() {
        return Err("no scenario files given".to_string());
    }
    if flags.files.len() > 1 && (flags.out.is_some() || flags.check.is_some()) {
        return Err("--out/--check work with exactly one scenario".to_string());
    }
    Ok(flags)
}

fn summarise(run: &exec::ScenarioRun) {
    println!(
        "scenario {} [{} {}d {} n={} seed={}] threads={}",
        run.name, run.distribution, run.dims, run.coords, run.n, run.seed, run.threads
    );
    println!(
        "  {:<12} {:>7} {:>12} {:>10}  probes(live -> checksum)",
        "family", "final", "update_secs", "probe_secs"
    );
    for fam in &run.families {
        let probe_secs: f64 = fam.probe_secs.iter().sum();
        let probes: Vec<String> = fam
            .probes
            .iter()
            .map(|p| format!("{}:{:08x}", p.live, p.range_list as u32))
            .collect();
        println!(
            "  {:<12} {:>7} {:>12.4} {:>10.4}  {}",
            fam.family,
            fam.final_len,
            fam.update_secs,
            probe_secs,
            probes.join(" ")
        );
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let flags = match parse_run_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    for file in &flags.files {
        let sc = match scenario::parse_file(file) {
            Ok(sc) => sc,
            Err(e) => return fail(&e),
        };
        let run = match exec::run(&sc, flags.threads) {
            Ok(r) => r,
            Err(e) => return fail(&format!("{}: {e}", file.display())),
        };
        if !flags.quiet {
            summarise(&run);
        }
        // Golden comparison first: a deterministic-checksum regression must
        // be reported as such, never masked by (or queued behind) the
        // concurrent, timing-only serve phase.
        if let Some(golden_path) = &flags.check {
            let want = match std::fs::read_to_string(golden_path) {
                Ok(w) => w,
                Err(e) => return fail(&format!("reading {}: {e}", golden_path.display())),
            };
            let got = report::golden_string(&run);
            if got != want {
                eprintln!(
                    "psi-scenario: {} does not match {} — got:\n{got}",
                    file.display(),
                    golden_path.display()
                );
                return ExitCode::FAILURE;
            }
            if !flags.quiet {
                println!("golden match: {}", golden_path.display());
            }
        }
        // The optional concurrent serving phase ([serve] section):
        // timing-only, reported alongside the schedule results.
        let serve_report = if sc.serve.is_some() {
            match serve::run_serve(&sc, flags.threads) {
                Ok(r) => {
                    if !flags.quiet {
                        println!(
                            "  serve {:<12} shards={} transport={} clients={} ops={} batches={} \
                             {:>9.0} q/s p50={:.3}ms p99={:.3}ms coalesce={:.1}x",
                            r.family,
                            r.shards,
                            r.transport,
                            r.clients,
                            r.ops,
                            r.batches,
                            r.throughput_qps,
                            r.p50_ms,
                            r.p99_ms,
                            r.coalesce_factor
                        );
                    }
                    Some(r)
                }
                Err(e) => return fail(&format!("{}: serve phase: {e}", file.display())),
            }
        } else {
            None
        };
        if let Some(out) = &flags.out {
            let json = report::json_string_with_serve(&run, serve_report.as_ref());
            if let Err(e) = std::fs::write(out, json) {
                return fail(&format!("writing {}: {e}", out.display()));
            }
            if !flags.quiet {
                println!("wrote {}", out.display());
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut tolerance = compare::DEFAULT_TOLERANCE_PCT;
    let mut noise_floor = compare::NOISE_FLOOR_SECS;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                let Some(value) = args.get(i + 1) else {
                    return fail("--tolerance needs a value (percent)");
                };
                match value.parse::<f64>() {
                    Ok(t) if t >= 0.0 => tolerance = t,
                    _ => {
                        return fail(&format!(
                            "--tolerance expects a non-negative percentage, got {value:?}"
                        ))
                    }
                }
                i += 2;
            }
            "--noise-floor" => {
                let Some(value) = args.get(i + 1) else {
                    return fail("--noise-floor needs a value (seconds)");
                };
                match value.parse::<f64>() {
                    Ok(f) if f >= 0.0 => noise_floor = f,
                    _ => {
                        return fail(&format!(
                            "--noise-floor expects a non-negative number of seconds, got {value:?}"
                        ))
                    }
                }
                i += 2;
            }
            flag if flag.starts_with("--") => return fail(&format!("unknown flag {flag:?}")),
            path => {
                files.push(PathBuf::from(path));
                i += 1;
            }
        }
    }
    let [a_path, b_path] = files.as_slice() else {
        return fail("compare takes exactly two report files (from `run --out`)");
    };
    let load = |path: &Path| -> Result<compare::Json, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        compare::parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let cmp = match compare::compare_reports(&a, &b, tolerance, noise_floor) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    println!(
        "comparing {} -> {} (tolerance {tolerance}%)",
        a_path.display(),
        b_path.display()
    );
    for line in &cmp.lines {
        println!("  {line}");
    }
    for m in &cmp.mismatches {
        eprintln!("psi-scenario: CHECKSUM MISMATCH: {m}");
    }
    for r in &cmp.regressions {
        eprintln!("psi-scenario: TIMING REGRESSION: {r}");
    }
    if cmp.passed() {
        println!("ok: no checksum mismatches, no timing regressions beyond {tolerance}%");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_golden(args: &[String]) -> ExitCode {
    // Deliberately stricter than `run`: one file, stdout only, so the
    // regeneration workflow (`golden x.psi > tests/golden/x.golden`) can't
    // silently swallow a mistyped `--out` or concatenate several scenarios.
    let mut file: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                let Some(value) = args.get(i + 1) else {
                    return fail("--threads needs a value");
                };
                match value.parse() {
                    Ok(t) => threads = Some(t),
                    Err(_) => return fail(&format!("--threads expects an integer, got {value:?}")),
                }
                i += 2;
            }
            flag if flag.starts_with("--") => {
                return fail(&format!(
                    "golden takes no {flag:?} (it always prints to stdout)"
                ))
            }
            path => {
                if file.replace(PathBuf::from(path)).is_some() {
                    return fail("golden takes exactly one scenario file");
                }
                i += 1;
            }
        }
    }
    let Some(file) = file else {
        return fail("golden takes exactly one scenario file");
    };
    let sc = match scenario::parse_file(&file) {
        Ok(sc) => sc,
        Err(e) => return fail(&e),
    };
    match exec::run(&sc, threads) {
        Ok(run) => {
            print!("{}", report::golden_string(&run));
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("{}: {e}", file.display())),
    }
}

fn cmd_print(args: &[String]) -> ExitCode {
    let [file] = args else {
        return fail("print takes exactly one scenario file");
    };
    match scenario::parse_file(Path::new(file)) {
        Ok(sc) => {
            println!("{sc:#?}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

fn cmd_list(args: &[String]) -> ExitCode {
    let dir = args.first().map_or("scenarios", String::as_str);
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => return fail(&format!("{dir}: {e}")),
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "psi"))
        .collect();
    files.sort();
    for f in &files {
        match scenario::parse_file(f) {
            Ok(sc) => println!(
                "{:<32} {} {}d {} n={} families={} steps={}",
                f.display(),
                sc.distribution.name(),
                sc.dims,
                sc.coords.name(),
                sc.n,
                sc.families.len(),
                sc.schedule.len()
            ),
            Err(e) => println!("{:<32} INVALID: {e}", f.display()),
        }
    }
    ExitCode::SUCCESS
}
