//! `psi-netd` — serve the ψ-net wire protocol over a synthetic dataset.
//!
//! Prints one `listening on HOST:PORT ...` line to stdout (so a driver can
//! scrape the ephemeral port), then runs until stdin reaches EOF. Scripts
//! hold the daemon up exactly as long as they hold the pipe open:
//!
//! ```text
//! mkfifo ctl && psi-netd --transport evented < ctl &
//! ...
//! exec 3>ctl   # keep open while benchmarking, close fd 3 to stop
//! ```

use psi_cli::netd;
use std::io::{Read, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match netd::parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let running = match netd::boot(&cfg) {
        Ok(running) => running,
        Err(msg) => {
            eprintln!("psi-netd: {msg}");
            std::process::exit(1);
        }
    };
    println!("{}", running.banner());
    let _ = std::io::stdout().flush();
    // Block until the controlling pipe closes, then shut down in order
    // (socket front-end first, server second).
    let mut sink = [0u8; 4096];
    let mut stdin = std::io::stdin().lock();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
    running.shutdown();
}
