//! The concurrent serving phase of a scenario (`[serve]` section): replay a
//! declared client/writer mix through the `psi-server` subsystem and report
//! throughput and latency percentiles.
//!
//! The phase is **timing-only**: it runs after the deterministic schedule,
//! never contributes to golden text, and validates itself structurally —
//! the writer's batches *move* points (delete a slice, reinsert it), so the
//! live count after quiescing must equal the dataset size exactly; kNN
//! answers must come back well-formed (correct cardinality, sorted by
//! distance). Epoch atomicity itself is pinned down by the dedicated
//! `tests/serve_semantics.rs` battery.

use crate::scenario::{CoordKind, Scenario, ServeSpec, ServeTransport};
use psi::registry::{self, BuildOptions};
use psi::{HilbertCurve, MortonCurve, SfcCurve};
use psi_geometry::{Point, PointI, Rect};
use psi_net::client::WireClient;
use psi_net::wire::WireCoord;
use psi_net::{loopback, NetConfig, NetServer, Transport};
use psi_server::{
    closed_loop, closed_loop_with, IndexFactory, LoadSpec, PsiServer, QueryClient, ServeConfig,
    ServeCoord,
};
use psi_workloads as workloads;
use std::sync::Arc;

/// Measured outcome of a serving phase.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Family the phase ran on (canonical registry name).
    pub family: String,
    /// Shard count.
    pub shards: usize,
    /// Client transport (`inproc`, `threaded` or `evented`).
    pub transport: &'static str,
    /// Client threads.
    pub clients: usize,
    /// Total queries answered across all clients.
    pub ops: usize,
    /// Update batches the writer published.
    pub batches: u64,
    /// Wall-clock seconds of the client phase.
    pub elapsed_secs: f64,
    /// Queries per second (all clients combined).
    pub throughput_qps: f64,
    /// Median per-query latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-query latency, milliseconds.
    pub p99_ms: f64,
    /// Mean requests folded into one coalesced flush.
    pub coalesce_factor: f64,
    /// Flat metrics read-out of the psi-obs registry at phase end
    /// (`[serve] stats = on`, the default): one `(series, value)` pair per
    /// counter/gauge, three (`_count`/`_p50`/`_p99`) per histogram. Values
    /// are cumulative for the process, which for a scenario run means the
    /// phase that just finished plus its server construction.
    pub metrics: Option<Vec<(String, f64)>>,
}

/// Read every registered metric out of the psi-obs registry as flat
/// `(series, value)` pairs for the JSON report.
fn collect_metrics() -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for sample in psi_obs::registry().collect() {
        match sample {
            psi_obs::registry::Sample::Counter(id, _, v) => out.push((id.render(), v as f64)),
            psi_obs::registry::Sample::Gauge(id, _, v) => out.push((id.render(), v as f64)),
            psi_obs::registry::Sample::Histogram(id, _, snap) => {
                let base = id.render();
                out.push((format!("{base}_count"), snap.count() as f64));
                out.push((format!("{base}_p50"), snap.quantile(0.5) as f64));
                out.push((format!("{base}_p99"), snap.quantile(0.99) as f64));
            }
        }
    }
    out
}

/// Run the scenario's `[serve]` phase. `threads` mirrors `exec::run`: pin
/// the worker pool for the duration, or `None` for the global pool.
pub fn run_serve(sc: &Scenario, threads: Option<usize>) -> Result<ServeReport, String> {
    let Some(sv) = &sc.serve else {
        return Err(format!("scenario {:?} has no [serve] section", sc.name));
    };
    match threads {
        None => run_serve_inner(sc, sv),
        Some(0) => Err("--threads must be positive".to_string()),
        Some(t) => rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .map_err(|_| "failed to build worker pool".to_string())?
            .install(|| run_serve_inner(sc, sv)),
    }
}

fn run_serve_inner(sc: &Scenario, sv: &ServeSpec) -> Result<ServeReport, String> {
    match (sc.coords, sc.dims) {
        (CoordKind::I64, 2) => serve_i64::<2>(sc, sv),
        (CoordKind::I64, 3) => serve_i64::<3>(sc, sv),
        (CoordKind::F64, 2) => serve_f64::<2>(sc, sv),
        (CoordKind::F64, 3) => serve_f64::<3>(sc, sv),
        (_, d) => Err(format!("unsupported dims {d}")),
    }
}

/// The family the phase serves and its leaf override from the scenario.
fn serving_family(sc: &Scenario, sv: &ServeSpec) -> (&'static str, Option<usize>) {
    let family = sv.family.unwrap_or(sc.families[0].family);
    let leaf = sc
        .families
        .iter()
        .find(|f| f.family == family)
        .and_then(|f| f.leaf);
    (family, leaf)
}

fn serve_i64<const D: usize>(sc: &Scenario, sv: &ServeSpec) -> Result<ServeReport, String>
where
    HilbertCurve: SfcCurve<D>,
    MortonCurve: SfcCurve<D>,
{
    let (data, max_coord) = crate::exec::source_data_i64::<D>(sc)?;
    let universe = match sc.source {
        Some(_) => crate::datafile::derive_universe(&data, max_coord),
        None => workloads::universe::<D>(max_coord),
    };
    let (family, leaf) = serving_family(sc, sv);
    let mut opts = BuildOptions::with_universe(universe);
    opts.leaf_size = leaf;
    registry::create::<D>(family, &data[..0], &opts).map_err(|e| e.to_string())?;
    let factory: IndexFactory<i64, D> = Arc::new(move |pts: &[PointI<D>]| {
        registry::create::<D>(family, pts, &opts).expect("family validated above")
    });
    let queries = workloads::ind_queries(&data, 256, sc.seed ^ 0x61);
    let rects = workloads::range_queries(
        &data,
        max_coord,
        sc.queries.range_target.max(1),
        64,
        sc.seed ^ 0x62,
    );
    serve_typed(sc, sv, family, &data, &universe, &queries, &rects, factory)
}

fn to_f64_point<const D: usize>(p: &PointI<D>) -> Point<f64, D> {
    Point::new(p.coords.map(|c| c as f64))
}

fn serve_f64<const D: usize>(sc: &Scenario, sv: &ServeSpec) -> Result<ServeReport, String>
where
    HilbertCurve: SfcCurve<D>,
    MortonCurve: SfcCurve<D>,
{
    // Same integer-generated geometry as the executor's f64 path.
    let (idata, max_coord) = crate::exec::source_data_i64::<D>(sc)?;
    let data: Vec<Point<f64, D>> = idata.iter().map(to_f64_point).collect();
    let iuniverse = match sc.source {
        Some(_) => crate::datafile::derive_universe(&idata, max_coord),
        None => workloads::universe::<D>(max_coord),
    };
    let universe = Rect::from_corners(to_f64_point(&iuniverse.lo), to_f64_point(&iuniverse.hi));
    let (family, leaf) = serving_family(sc, sv);
    let mut opts = BuildOptions::with_universe(universe);
    opts.leaf_size = leaf;
    registry::create_f64::<D>(family, &data[..0], &opts).map_err(|e| e.to_string())?;
    let factory: IndexFactory<f64, D> = Arc::new(move |pts: &[Point<f64, D>]| {
        registry::create_f64::<D>(family, pts, &opts).expect("family validated above")
    });
    let queries: Vec<Point<f64, D>> = workloads::ind_queries(&idata, 256, sc.seed ^ 0x61)
        .iter()
        .map(to_f64_point)
        .collect();
    let rects: Vec<Rect<f64, D>> = workloads::range_queries(
        &idata,
        max_coord,
        sc.queries.range_target.max(1),
        64,
        sc.seed ^ 0x62,
    )
    .iter()
    .map(|r| Rect::from_corners(to_f64_point(&r.lo), to_f64_point(&r.hi)))
    .collect();
    serve_typed(sc, sv, family, &data, &universe, &queries, &rects, factory)
}

#[allow(clippy::too_many_arguments)]
fn serve_typed<T: ServeCoord + WireCoord, const D: usize>(
    sc: &Scenario,
    sv: &ServeSpec,
    family: &str,
    data: &[Point<T, D>],
    universe: &Rect<T, D>,
    queries: &[Point<T, D>],
    rects: &[Rect<T, D>],
    factory: IndexFactory<T, D>,
) -> Result<ServeReport, String> {
    let server = Arc::new(PsiServer::new(
        data,
        universe,
        ServeConfig {
            shards: sv.shards,
            coalesce_max_batch: sv.coalesce,
            writer_queue: 8,
            epoch_history: sv.epoch_history,
            epoch_history_bytes: sv.epoch_history_bytes,
            durability: sv
                .data_dir
                .as_ref()
                .map(|dir| psi_server::DurabilityConfig {
                    dir: dir.clone(),
                    fsync: sv.fsync,
                }),
        },
        factory,
    ));
    let spec = LoadSpec {
        clients: sv.clients,
        ops_per_client: sv.ops,
        k: sc.queries.ks.iter().copied().find(|&k| k > 0).unwrap_or(8),
        write_batch: sv.write_batch,
        write_every_ms: sv.write_every_ms,
    };
    // Socket transports put a real TCP loopback (and the ψ-net wire
    // protocol) between the closed-loop clients and the coalescer; the
    // driver — and its conservation and answer-shape checks — is the same.
    let out = match sv.transport {
        ServeTransport::Inproc => closed_loop(&server, data, queries, rects, &spec),
        ServeTransport::Threaded | ServeTransport::Evented => {
            let transport = match sv.transport {
                ServeTransport::Threaded => Transport::Threaded,
                _ => Transport::Evented,
            };
            let net = NetServer::spawn(
                Arc::clone(&server),
                loopback(),
                NetConfig {
                    transport,
                    coalesce: true,
                },
            )
            .map_err(|e| format!("serve phase: bind loopback: {e}"))?;
            let addr = net.addr();
            let out = closed_loop_with(&server, data, queries, rects, &spec, |_| {
                let client: WireClient<T, D> =
                    WireClient::connect(addr).map_err(|e| e.to_string())?;
                Ok(Box::new(client) as Box<dyn QueryClient<T, D>>)
            });
            net.shutdown();
            out
        }
    }
    .map_err(|e| format!("serve phase: {e}"))?;
    // Time-travel sanity probe: when the shards are persistent, the newest
    // retained epoch must agree with the live view — drift here means a
    // publish escaped the history log.
    let epoch = server.epoch();
    if let Some(past) = server.view_at(epoch) {
        let live = server.view().len();
        if past.len() != live {
            return Err(format!(
                "serve phase: epoch {epoch} snapshot holds {} points, live view holds {live}",
                past.len()
            ));
        }
    }
    Ok(ServeReport {
        family: family.to_string(),
        shards: sv.shards,
        transport: sv.transport.name(),
        clients: sv.clients,
        ops: out.ops,
        batches: out.batches,
        elapsed_secs: out.elapsed_secs,
        throughput_qps: out.throughput_qps,
        p50_ms: out.p50_ms,
        p99_ms: out.p99_ms,
        coalesce_factor: out.coalesce_factor,
        metrics: sv.stats.then(collect_metrics),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    const SERVE: &str = "\
[scenario]
name = serve-test
seed = 9
[data]
distribution = uniform
n = 1500
max-coord = 100000
[indexes]
families = spac-h, brute-force
[queries]
k = 6
[serve]
clients = 2
ops = 60
shards = 2
write-batch = 50
write-every-ms = 0
coalesce = 16
";

    #[test]
    fn serve_phase_runs_and_conserves_points() {
        let sc = scenario::parse(SERVE).unwrap();
        let report = run_serve(&sc, None).unwrap();
        assert_eq!(report.family, "spac-h");
        assert_eq!(report.clients, 2);
        assert_eq!(report.ops, 120);
        assert_eq!(report.shards, 2);
        assert!(report.throughput_qps > 0.0);
        assert!(report.p99_ms >= report.p50_ms);
        assert!(report.coalesce_factor >= 1.0);
    }

    #[test]
    fn serve_phase_respects_family_and_threads() {
        let text = SERVE.replace("coalesce = 16", "coalesce = 16\nfamily = brute-force");
        let sc = scenario::parse(&text).unwrap();
        let report = run_serve(&sc, Some(1)).unwrap();
        assert_eq!(report.family, "brute-force");
        // No [serve] section is an error, not a silent no-op.
        let bare =
            scenario::parse("[scenario]\nname = x\n[data]\ndistribution = uniform\nn = 50\n")
                .unwrap();
        assert!(run_serve(&bare, None).is_err());
    }

    #[test]
    fn socket_transports_run_the_serve_phase() {
        for transport in ["threaded", "evented"] {
            let text = SERVE.replace(
                "coalesce = 16",
                &format!("coalesce = 16\ntransport = {transport}"),
            );
            let sc = scenario::parse(&text).unwrap();
            let report = run_serve(&sc, None).unwrap();
            assert_eq!(report.transport, transport);
            assert_eq!(report.ops, 120, "{transport}");
            assert!(report.coalesce_factor >= 1.0, "{transport}");
        }
    }

    #[test]
    fn persistent_family_serves_with_epoch_history() {
        // A snapshot-capable family exercises the persistent publish path
        // and the time-travel sanity probe in `serve_typed`.
        let text = SERVE
            .replace("families = spac-h, brute-force", "families = cpam-h")
            .replace("coalesce = 16", "coalesce = 16\nepoch-history = 4");
        let sc = scenario::parse(&text).unwrap();
        assert_eq!(sc.serve.as_ref().unwrap().epoch_history, 4);
        let report = run_serve(&sc, None).unwrap();
        assert_eq!(report.family, "cpam-h");
        assert_eq!(report.ops, 120);
        assert!(report.batches > 0, "writer must publish epochs");
    }

    #[test]
    fn f64_serve_phase_runs() {
        let text = SERVE
            .replace("max-coord = 100000", "max-coord = 100000\ncoords = f64")
            .replace("families = spac-h, brute-force", "families = pkd, zd");
        let sc = scenario::parse(&text).unwrap();
        let report = run_serve(&sc, None).unwrap();
        assert_eq!(report.family, "pkd");
        assert_eq!(report.ops, 120);
    }
}
