//! The declarative scenario-file format (`scenarios/*.psi`) and its
//! hand-rolled parser.
//!
//! A scenario file is a sequence of INI-style sections holding `key = value`
//! pairs; `#` starts a comment. The full grammar is documented in
//! `scenarios/README.md`; in short:
//!
//! ```text
//! [scenario]
//! name = churn-sweepline-2d
//! seed = 42
//!
//! [data]
//! distribution = sweepline      # any workloads::Distribution name
//! dims = 2                      # 2 or 3
//! coords = i64                  # i64 or f64
//! n = 2400
//! max-coord = 1000000           # optional; defaults to the paper's domain
//! source = file:points.csv      # optional: load points from a file instead
//!                               # of generating them (CSV `x,y[,z]` rows or
//!                               # raw little-endian i64 words, by extension;
//!                               # relative to the scenario file). With a
//!                               # source, distribution / n / max-coord are
//!                               # optional: n truncates, max-coord defaults
//!                               # to the data's own bounding box.
//!
//! [indexes]
//! families = all                # or a comma list of registry names;
//!                               # `name@16` pins a per-family leaf size φ
//! leaf-size = 32                # optional leaf-wrap override; a comma
//!                               # list (`16, 32, 64`) sweeps every family
//!                               # over each φ as separate instances
//!
//! [queries]
//! k = 10                        # a comma list (`5, 10, 20`) sweeps k
//! knn-ind = 30
//! knn-ood = 30
//! ranges = 15
//! range-target = 64
//!
//! [schedule]
//! step = build 50%              # must come first; builds the index
//! step = probe                  # run the query mix, record checksums
//! step = insert 25%             # batch-insert the next unseen points
//! step = delete 25%             # batch-delete the oldest live points
//! step = probe
//!
//! [serve]                       # optional: concurrent serving phase
//! clients = 4                   # closed-loop reader threads
//! ops = 500                     # queries per client
//! shards = 2                    # spatial shards (stripes along dim 0)
//! write-batch = 64              # points per published update batch
//! write-every-ms = 2            # writer pacing (0 = as fast as possible)
//! coalesce = 32                 # max queries folded into one flush
//! transport = inproc            # inproc | threaded | evented (TCP loopback)
//! epoch-history = 8             # retained epochs for "as of epoch N" queries
//! epoch-history-bytes = 1048576 # optional byte budget for that history
//! data-dir = /var/psi/demo      # optional: WAL + checkpoint durability
//! fsync = every-batch           # every-batch | every-N | os (needs data-dir)
//! ```
//!
//! Amounts are either absolute point counts (`500`) or percentages of `n`
//! (`25%`). Unknown sections or keys — and duplicate scalar keys (only
//! `step` repeats) — are hard errors: a scenario harness that silently
//! ignores a typo would quietly test nothing.

use psi::registry;
use psi_workloads::{Distribution, DEFAULT_MAX_COORD_2D, DEFAULT_MAX_COORD_3D};

/// Coordinate type a scenario runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoordKind {
    /// The paper's 64-bit integer domain (every index family).
    I64,
    /// Float coordinates (the SFC-free families only).
    F64,
}

impl CoordKind {
    /// The name used in scenario files and reports.
    pub fn name(&self) -> &'static str {
        match self {
            CoordKind::I64 => "i64",
            CoordKind::F64 => "f64",
        }
    }
}

/// A point count, absolute or relative to the scenario's `n`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Amount {
    /// Fraction of `n` (parsed from a `%` suffix).
    Fraction(f64),
    /// Absolute number of points.
    Count(usize),
}

impl Amount {
    /// Resolve against the dataset size; at least 1 point.
    pub fn resolve(&self, n: usize) -> usize {
        match *self {
            Amount::Count(c) => c,
            Amount::Fraction(f) => (((n as f64) * f).round() as usize).max(1),
        }
    }

    fn parse(s: &str) -> Result<Amount, String> {
        let s = s.trim();
        if let Some(pct) = s.strip_suffix('%') {
            let v: f64 = pct
                .trim()
                .parse()
                .map_err(|_| format!("bad percentage {s:?}"))?;
            if !(0.0..=100.0).contains(&v) {
                return Err(format!("percentage {s:?} out of [0, 100]"));
            }
            Ok(Amount::Fraction(v / 100.0))
        } else {
            let v: usize = s.parse().map_err(|_| format!("bad point count {s:?}"))?;
            Ok(Amount::Count(v))
        }
    }
}

/// One step of a scenario's update/query schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Step {
    /// Initial build over the first `Amount` points of the dataset. Must be
    /// the first step and appear exactly once.
    Build(Amount),
    /// Batch-insert the next `Amount` not-yet-inserted points.
    Insert(Amount),
    /// Batch-delete the `Amount` oldest still-live points.
    Delete(Amount),
    /// Run the query mix and record per-category checksums.
    Probe,
}

impl Step {
    fn parse(s: &str) -> Result<Step, String> {
        let mut parts = s.split_whitespace();
        let verb = parts.next().ok_or_else(|| "empty step".to_string())?;
        let arg = parts.next();
        if parts.next().is_some() {
            return Err(format!("trailing tokens in step {s:?}"));
        }
        let need = |a: Option<&str>| {
            a.map(Amount::parse)
                .transpose()?
                .ok_or_else(|| format!("step {verb:?} needs an amount"))
        };
        match verb {
            "build" => Ok(Step::Build(need(arg)?)),
            "insert" => Ok(Step::Insert(need(arg)?)),
            "delete" => Ok(Step::Delete(need(arg)?)),
            "probe" => {
                if arg.is_some() {
                    return Err("step \"probe\" takes no argument".to_string());
                }
                Ok(Step::Probe)
            }
            other => Err(format!(
                "unknown step {other:?} (expected build/insert/delete/probe)"
            )),
        }
    }
}

/// Size of the query mix a `probe` step runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// Neighbour counts to sweep: each kNN query point is asked once per
    /// `k` in this list, and all answers fold into the probe checksum. A
    /// single entry reproduces the pre-sweep behaviour bit-for-bit.
    pub ks: Vec<usize>,
    /// Number of in-distribution kNN query points.
    pub knn_ind: usize,
    /// Number of out-of-distribution kNN query points.
    pub knn_ood: usize,
    /// Number of range rectangles (used for both count and list).
    pub ranges: usize,
    /// Expected points per range rectangle.
    pub range_target: usize,
}

impl Default for QuerySpec {
    fn default() -> Self {
        QuerySpec {
            ks: vec![10],
            knn_ind: 32,
            knn_ood: 32,
            ranges: 16,
            range_target: 50,
        }
    }
}

/// One index instance a scenario runs: a registry family plus an optional
/// leaf-size override `φ`. Sweeps (`leaf-size = 16, 32` or `fam@16`) expand
/// into one instance per (family, φ) pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FamilySpec {
    /// Canonical registry name.
    pub family: &'static str,
    /// Leaf wrap threshold for this instance; `None` keeps the paper
    /// default.
    pub leaf: Option<usize>,
    /// Display label used in reports and golden files: the bare family name
    /// for a single-φ run (pre-sweep compatible), `family@φ` in sweeps.
    pub label: String,
}

/// The concurrent serving phase of a scenario (`[serve]` section): a
/// closed-loop client/writer mix replayed by `psi-scenario run` through the
/// `psi-server` subsystem after the schedule completes. Timing-only — never
/// part of the golden text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeSpec {
    /// Closed-loop reader client threads.
    pub clients: usize,
    /// Queries each client issues.
    pub ops: usize,
    /// Spatial shards (stripes along dimension 0).
    pub shards: usize,
    /// Points per published update batch (0 disables the writer).
    pub write_batch: usize,
    /// Milliseconds between writer publishes (0 = back-to-back).
    pub write_every_ms: u64,
    /// Maximum queries the coalescer folds into one batched flush.
    pub coalesce: usize,
    /// Published epochs retained for "as of epoch N" time-travel queries.
    /// Only takes effect when every shard serves a snapshot-capable
    /// (persistent) family; left-right families keep no history.
    pub epoch_history: usize,
    /// Byte budget for the epoch history (`0` bounds by count only); see
    /// `ServeConfig::epoch_history_bytes`.
    pub epoch_history_bytes: usize,
    /// Family serving the phase; `None` uses the scenario's first instance.
    pub family: Option<&'static str>,
    /// How clients reach the server: in-process handles (the default) or a
    /// ψ-net TCP loopback socket on one of its two transports.
    pub transport: ServeTransport,
    /// Durability directory: applied batches are WAL-logged and
    /// checkpointed there, and a rerun recovers the previous run's state.
    /// `None` (the default) serves memory-only.
    pub data_dir: Option<std::path::PathBuf>,
    /// WAL fsync policy; only meaningful with `data_dir`.
    pub fsync: psi_server::FsyncPolicy,
    /// Embed a metrics block (psi-obs registry read-out) in the JSON
    /// report (`stats = on`, the default; `off` omits it).
    pub stats: bool,
}

/// Client transport for the serving phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeTransport {
    /// In-process coalescing handles (no sockets).
    Inproc,
    /// TCP loopback through ψ-net's thread-per-connection server.
    Threaded,
    /// TCP loopback through ψ-net's epoll event loop.
    Evented,
}

impl ServeTransport {
    fn parse(s: &str) -> Option<ServeTransport> {
        match s {
            "inproc" => Some(ServeTransport::Inproc),
            "threaded" => Some(ServeTransport::Threaded),
            "evented" => Some(ServeTransport::Evented),
            _ => None,
        }
    }

    /// The scenario-file spelling.
    pub fn name(self) -> &'static str {
        match self {
            ServeTransport::Inproc => "inproc",
            ServeTransport::Threaded => "threaded",
            ServeTransport::Evented => "evented",
        }
    }
}

impl Default for ServeSpec {
    fn default() -> Self {
        ServeSpec {
            clients: 4,
            ops: 500,
            shards: 2,
            write_batch: 64,
            write_every_ms: 2,
            coalesce: 32,
            epoch_history: psi_server::DEFAULT_EPOCH_HISTORY,
            epoch_history_bytes: 0,
            family: None,
            transport: ServeTransport::Inproc,
            data_dir: None,
            fsync: psi_server::FsyncPolicy::default(),
            stats: true,
        }
    }
}

/// A fully parsed and validated scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (reports and golden files echo it).
    pub name: String,
    /// RNG seed for data and query generation.
    pub seed: u64,
    /// Point distribution.
    pub distribution: Distribution,
    /// Dimensionality (2 or 3 — the SFC families' limit).
    pub dims: usize,
    /// Coordinate type.
    pub coords: CoordKind,
    /// Dataset size. With a file [`Scenario::source`], `0` means "every
    /// point in the file" and a positive value truncates to the first `n`.
    pub n: usize,
    /// Coordinate domain upper bound. With a file [`Scenario::source`], `0`
    /// means "derive from the data's own bounding box".
    pub max_coord: i64,
    /// Point file to load instead of generating from `distribution`
    /// (`source = file:PATH` in `[data]`). `.csv` files hold one
    /// comma-separated `x,y[,z]` row per point (`#` comments allowed); any
    /// other extension is raw little-endian i64 words, row-major.
    /// [`parse_file`] resolves relative paths against the scenario file.
    pub source: Option<String>,
    /// The index instances to run (family × leaf-size sweep, expanded).
    pub families: Vec<FamilySpec>,
    /// Query-mix sizes.
    pub queries: QuerySpec,
    /// The update/probe schedule; starts with `Step::Build`.
    pub schedule: Vec<Step>,
    /// Optional concurrent serving phase (`[serve]` section).
    pub serve: Option<ServeSpec>,
}

/// Parse failure, with the 1-based line it occurred on (0 for file-level
/// validation errors).
#[derive(Clone, Debug)]
pub struct ParseError {
    /// 1-based source line, or 0 for whole-file validation errors.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse a comma-separated list of distinct unsigned integers (`k` and
/// `leaf-size` sweep values).
fn parse_usize_list(value: &str, what: &str) -> Result<Vec<usize>, String> {
    let mut out: Vec<usize> = Vec::new();
    for part in value.split(',') {
        let v: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("{what} expects integers, got {:?}", part.trim()))?;
        if out.contains(&v) {
            return Err(format!("duplicate {what} value {v}"));
        }
        out.push(v);
    }
    Ok(out)
}

/// Parse a scenario from its textual form.
pub fn parse(text: &str) -> Result<Scenario, ParseError> {
    let mut name: Option<String> = None;
    let mut seed: u64 = 42;
    let mut distribution: Option<Distribution> = None;
    let mut dims: usize = 2;
    let mut coords = CoordKind::I64;
    let mut n: Option<usize> = None;
    let mut max_coord: Option<i64> = None;
    let mut source: Option<String> = None;
    let mut fsync_line: Option<usize> = None;
    let mut families_raw: Option<(usize, String)> = None;
    let mut leaf_sizes: Option<(usize, Vec<usize>)> = None;
    let mut queries = QuerySpec::default();
    let mut schedule: Vec<Step> = Vec::new();
    let mut serve: Option<ServeSpec> = None;
    let mut serve_family_raw: Option<(usize, String)> = None;

    let mut section = String::new();
    let mut seen: std::collections::HashSet<(String, String)> = std::collections::HashSet::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix('[') {
            let sect = inner
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, format!("malformed section header {line:?}")))?
                .trim();
            match sect {
                "scenario" | "data" | "indexes" | "queries" | "schedule" => {
                    section = sect.to_string()
                }
                "serve" => {
                    serve.get_or_insert_with(ServeSpec::default);
                    section = sect.to_string()
                }
                other => return Err(err(lineno, format!("unknown section [{other}]"))),
            }
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(lineno, format!("expected `key = value`, got {line:?}")))?;
        let (key, value) = (key.trim(), value.trim());
        if value.is_empty() {
            return Err(err(lineno, format!("empty value for {key:?}")));
        }
        // Scalar keys may be assigned once; only `step` accumulates. A
        // duplicate would silently last-win — the same class of quiet
        // misconfiguration the unknown-key errors exist to prevent.
        if key != "step" && !seen.insert((section.clone(), key.to_string())) {
            return Err(err(lineno, format!("duplicate key {key:?} in [{section}]")));
        }
        let parse_usize = |v: &str, what: &str| {
            v.parse::<usize>()
                .map_err(|_| err(lineno, format!("{what} expects an integer, got {v:?}")))
        };
        match (section.as_str(), key) {
            ("scenario", "name") => name = Some(value.to_string()),
            ("scenario", "seed") => {
                seed = value
                    .parse()
                    .map_err(|_| err(lineno, format!("seed expects an integer, got {value:?}")))?
            }
            ("data", "distribution") => {
                distribution = Some(
                    Distribution::from_name(value)
                        .ok_or_else(|| err(lineno, format!("unknown distribution {value:?}")))?,
                )
            }
            ("data", "dims") => dims = parse_usize(value, "dims")?,
            ("data", "coords") => {
                coords = match value {
                    "i64" => CoordKind::I64,
                    "f64" => CoordKind::F64,
                    other => {
                        return Err(err(
                            lineno,
                            format!("coords must be i64 or f64, got {other:?}"),
                        ))
                    }
                }
            }
            ("data", "n") => n = Some(parse_usize(value, "n")?),
            ("data", "max-coord") => {
                max_coord = Some(value.parse().map_err(|_| {
                    err(
                        lineno,
                        format!("max-coord expects an integer, got {value:?}"),
                    )
                })?)
            }
            ("data", "source") => {
                let path = value.strip_prefix("file:").ok_or_else(|| {
                    err(lineno, format!("source expects `file:PATH`, got {value:?}"))
                })?;
                if path.trim().is_empty() {
                    return Err(err(lineno, "source file path is empty"));
                }
                source = Some(path.trim().to_string());
            }
            ("indexes", "families") => families_raw = Some((lineno, value.to_string())),
            ("indexes", "leaf-size") => {
                leaf_sizes = Some((
                    lineno,
                    parse_usize_list(value, "leaf-size").map_err(|m| err(lineno, m))?,
                ))
            }
            ("queries", "k") => {
                queries.ks = parse_usize_list(value, "k").map_err(|m| err(lineno, m))?
            }
            ("queries", "knn-ind") => queries.knn_ind = parse_usize(value, "knn-ind")?,
            ("queries", "knn-ood") => queries.knn_ood = parse_usize(value, "knn-ood")?,
            ("queries", "ranges") => queries.ranges = parse_usize(value, "ranges")?,
            ("queries", "range-target") => {
                queries.range_target = parse_usize(value, "range-target")?
            }
            ("schedule", "step") => schedule.push(Step::parse(value).map_err(|m| err(lineno, m))?),
            ("serve", key) => {
                let sv = serve.as_mut().expect("serve section sets the default");
                match key {
                    "clients" => sv.clients = parse_usize(value, "clients")?,
                    "ops" => sv.ops = parse_usize(value, "ops")?,
                    "shards" => sv.shards = parse_usize(value, "shards")?,
                    "write-batch" => sv.write_batch = parse_usize(value, "write-batch")?,
                    "write-every-ms" => {
                        sv.write_every_ms = value.parse().map_err(|_| {
                            err(
                                lineno,
                                format!("write-every-ms expects an integer, got {value:?}"),
                            )
                        })?
                    }
                    "coalesce" => sv.coalesce = parse_usize(value, "coalesce")?,
                    "epoch-history" => sv.epoch_history = parse_usize(value, "epoch-history")?,
                    "epoch-history-bytes" => {
                        sv.epoch_history_bytes = parse_usize(value, "epoch-history-bytes")?
                    }
                    "data-dir" => sv.data_dir = Some(std::path::PathBuf::from(value)),
                    "fsync" => {
                        sv.fsync = psi_server::FsyncPolicy::parse(value).ok_or_else(|| {
                            err(
                                lineno,
                                format!("fsync expects every-batch, every-N or os, got {value:?}"),
                            )
                        })?;
                        fsync_line = Some(lineno);
                    }
                    "transport" => {
                        sv.transport = ServeTransport::parse(value).ok_or_else(|| {
                            err(
                                lineno,
                                format!(
                                    "transport expects inproc, threaded or evented, got {value:?}"
                                ),
                            )
                        })?
                    }
                    "family" => serve_family_raw = Some((lineno, value.to_string())),
                    "stats" => {
                        sv.stats = match value {
                            "on" => true,
                            "off" => false,
                            other => {
                                return Err(err(
                                    lineno,
                                    format!("stats expects on or off, got {other:?}"),
                                ))
                            }
                        }
                    }
                    other => return Err(err(lineno, format!("unknown key {other:?} in [serve]"))),
                }
            }
            ("", _) => return Err(err(lineno, "key/value pair before any [section]")),
            (sect, key) => return Err(err(lineno, format!("unknown key {key:?} in [{sect}]"))),
        }
    }

    // Whole-file validation. A file source supplies the data itself, so
    // distribution/n/max-coord turn optional: 0 is the "take it from the
    // file" sentinel for the numeric pair (see the [`Scenario`] field docs).
    let name = name.ok_or_else(|| err(0, "[scenario] name is required"))?;
    let distribution = match (distribution, &source) {
        (Some(d), _) => d,
        (None, Some(_)) => Distribution::Uniform,
        (None, None) => return Err(err(0, "[data] distribution is required")),
    };
    let n = match (n, &source) {
        (Some(n), _) => n,
        (None, Some(_)) => 0,
        (None, None) => return Err(err(0, "[data] n is required")),
    };
    if n == 0 && source.is_none() {
        return Err(err(0, "[data] n must be positive"));
    }
    if !(dims == 2 || dims == 3) {
        return Err(err(0, format!("dims must be 2 or 3, got {dims}")));
    }
    let max_coord = match (max_coord, &source) {
        (Some(m), _) => m,
        (None, Some(_)) => 0,
        (None, None) => match dims {
            3 => DEFAULT_MAX_COORD_3D,
            _ => DEFAULT_MAX_COORD_2D,
        },
    };
    if max_coord <= 0 && !(max_coord == 0 && source.is_some()) {
        return Err(err(0, "max-coord must be positive"));
    }

    let available: &[&'static str] = match coords {
        CoordKind::I64 => registry::names(),
        CoordKind::F64 => registry::float_names(),
    };
    // Each listed family entry is a name with an optional `@φ` leaf pin;
    // entries without a pin expand over the global `leaf-size` sweep list.
    let mut listed: Vec<(&'static str, Option<usize>)> = Vec::new();
    match families_raw {
        None => listed.extend(available.iter().map(|&f| (f, None))),
        Some((lineno, raw)) => {
            for part in raw.split(',') {
                let part = part.trim();
                let (name_part, leaf) = match part.split_once('@') {
                    Some((n, l)) => {
                        let leaf: usize = l.trim().parse().map_err(|_| {
                            err(lineno, format!("bad leaf size in family entry {part:?}"))
                        })?;
                        (n.trim(), Some(leaf))
                    }
                    None => (part, None),
                };
                if name_part == "all" {
                    if leaf.is_some() {
                        return Err(err(lineno, "`all` cannot take an @leaf pin"));
                    }
                    listed.extend(available.iter().map(|&f| (f, None)));
                    continue;
                }
                let canon = registry::resolve_name(name_part)
                    .ok_or_else(|| err(lineno, format!("unknown index family {name_part:?}")))?;
                if coords == CoordKind::F64 && !registry::float_names().contains(&canon) {
                    return Err(err(
                        lineno,
                        format!("family {canon:?} does not support f64 coordinates"),
                    ));
                }
                listed.push((canon, leaf));
            }
        }
    }
    // Expand over the global leaf-size sweep. A single global value keeps
    // the bare family name as the label, so pre-sweep scenarios (and their
    // golden files) are untouched; multi-value sweeps and explicit `@φ`
    // pins label instances as `family@φ`.
    let global_leaves: Vec<Option<usize>> = match &leaf_sizes {
        None => vec![None],
        Some((_, list)) => list.iter().map(|&l| Some(l)).collect(),
    };
    let sweeping = global_leaves.len() > 1;
    let mut families: Vec<FamilySpec> = Vec::new();
    for (family, pinned) in listed {
        let leaves: Vec<(Option<usize>, bool)> = match pinned {
            Some(l) => vec![(Some(l), true)],
            None => global_leaves.iter().map(|&l| (l, sweeping)).collect(),
        };
        for (leaf, labelled) in leaves {
            let label = match (leaf, labelled) {
                (Some(l), true) => format!("{family}@{l}"),
                _ => family.to_string(),
            };
            let spec = FamilySpec {
                family,
                leaf,
                label,
            };
            if !families.contains(&spec) {
                families.push(spec);
            }
        }
    }
    if families.is_empty() {
        return Err(err(0, "[indexes] families resolved to an empty list"));
    }
    {
        let mut labels: Vec<&str> = families.iter().map(|f| f.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        if labels.len() != families.len() {
            return Err(err(
                0,
                "family instances must have distinct labels (mixing `fam@φ` pins \
                 with a sweep that produces the same φ, or repeating a family \
                 with different spellings, collides)",
            ));
        }
    }
    if queries.ks.is_empty() {
        return Err(err(0, "[queries] k resolved to an empty list"));
    }

    // Serve-phase validation.
    if let Some(sv) = &mut serve {
        if sv.clients == 0 || sv.ops == 0 || sv.shards == 0 || sv.coalesce == 0 {
            return Err(err(
                0,
                "[serve] clients, ops, shards and coalesce must be positive",
            ));
        }
        if let Some(lineno) = fsync_line {
            if sv.data_dir.is_none() {
                return Err(err(lineno, "[serve] fsync requires data-dir"));
            }
        }
        if let Some((lineno, raw)) = serve_family_raw {
            let canon = registry::resolve_name(&raw)
                .ok_or_else(|| err(lineno, format!("unknown serve family {raw:?}")))?;
            if !families.iter().any(|f| f.family == canon) {
                return Err(err(
                    lineno,
                    format!("serve family {canon:?} is not in [indexes] families"),
                ));
            }
            sv.family = Some(canon);
        }
    } else if serve_family_raw.is_some() {
        unreachable!("serve keys only parse inside [serve]");
    }

    if schedule.is_empty() {
        schedule = vec![Step::Build(Amount::Fraction(1.0)), Step::Probe];
    }
    match schedule.first() {
        Some(Step::Build(_)) => {}
        _ => return Err(err(0, "the first schedule step must be `build`")),
    }
    if schedule[1..].iter().any(|s| matches!(s, Step::Build(_))) {
        return Err(err(0, "`build` may appear only as the first step"));
    }

    Ok(Scenario {
        name,
        seed,
        distribution,
        dims,
        coords,
        n,
        max_coord,
        source,
        families,
        queries,
        schedule,
        serve,
    })
}

/// Read and parse a scenario file. A relative `source = file:` path is
/// resolved against the scenario file's own directory, so scenarios can
/// ship next to their datasets.
pub fn parse_file(path: &std::path::Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut sc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    if let Some(src) = &sc.source {
        let p = std::path::Path::new(src);
        if p.is_relative() {
            if let Some(dir) = path.parent() {
                sc.source = Some(dir.join(p).to_string_lossy().into_owned());
            }
        }
    }
    Ok(sc)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "\
[scenario]
name = demo
[data]
distribution = uniform
n = 100
";

    fn family_names(sc: &Scenario) -> Vec<&'static str> {
        sc.families.iter().map(|f| f.family).collect()
    }

    #[test]
    fn minimal_scenario_gets_defaults() {
        let sc = parse(MINIMAL).unwrap();
        assert_eq!(sc.name, "demo");
        assert_eq!(sc.seed, 42);
        assert_eq!(sc.dims, 2);
        assert_eq!(sc.coords, CoordKind::I64);
        assert_eq!(sc.max_coord, DEFAULT_MAX_COORD_2D);
        assert_eq!(family_names(&sc), registry::names());
        assert!(sc.families.iter().all(|f| f.leaf.is_none()));
        // Single-φ instances keep the bare family name as their label, so
        // pre-sweep golden files stay valid.
        assert!(sc
            .families
            .iter()
            .all(|f| f.label == f.family && !f.label.contains('@')));
        assert_eq!(sc.queries.ks, vec![10]);
        assert_eq!(
            sc.schedule,
            vec![Step::Build(Amount::Fraction(1.0)), Step::Probe]
        );
        assert_eq!(sc.serve, None);
    }

    #[test]
    fn full_scenario_round_trips() {
        let text = "\
# A comment
[scenario]
name = churn            # trailing comment
seed = 7
[data]
distribution = cosmo-like
dims = 3
coords = i64
n = 500
max-coord = 4096
[indexes]
families = p-orth, spac_h, ZD
leaf-size = 16
[queries]
k = 5
knn-ind = 10
knn-ood = 0
ranges = 4
range-target = 20
[schedule]
step = build 40%
step = probe
step = insert 100
step = delete 25%
step = probe
";
        let sc = parse(text).unwrap();
        assert_eq!(sc.seed, 7);
        assert_eq!(sc.distribution, Distribution::CosmoLike);
        assert_eq!(sc.dims, 3);
        assert_eq!(sc.max_coord, 4096);
        assert_eq!(family_names(&sc), vec!["p-orth", "spac-h", "zd"]);
        assert!(sc.families.iter().all(|f| f.leaf == Some(16)));
        assert!(sc.families.iter().all(|f| f.label == f.family));
        assert_eq!(sc.queries.ks, vec![5]);
        assert_eq!(sc.schedule.len(), 5);
        assert_eq!(sc.schedule[2], Step::Insert(Amount::Count(100)));
        assert_eq!(sc.schedule[3], Step::Delete(Amount::Fraction(0.25)));
    }

    #[test]
    fn sweep_knobs_round_trip() {
        // Per-family φ pins, a global φ sweep, and a k sweep, all at once.
        let text = "\
[scenario]
name = sweep
[data]
distribution = uniform
n = 400
[indexes]
families = p-orth@8, pkd, zd
leaf-size = 16, 32
[queries]
k = 4, 8, 16
";
        let sc = parse(text).unwrap();
        assert_eq!(sc.queries.ks, vec![4, 8, 16]);
        let got: Vec<(String, Option<usize>)> = sc
            .families
            .iter()
            .map(|f| (f.label.clone(), f.leaf))
            .collect();
        assert_eq!(
            got,
            vec![
                ("p-orth@8".to_string(), Some(8)),
                ("pkd@16".to_string(), Some(16)),
                ("pkd@32".to_string(), Some(32)),
                ("zd@16".to_string(), Some(16)),
                ("zd@32".to_string(), Some(32)),
            ]
        );
        // Sweep values must be well-formed.
        assert!(parse(&format!("{MINIMAL}[queries]\nk = 4, 4\n")).is_err());
        assert!(parse(&format!("{MINIMAL}[queries]\nk = 4, nope\n")).is_err());
        assert!(parse(&format!("{MINIMAL}[indexes]\nfamilies = pkd@x\n")).is_err());
        assert!(parse(&format!("{MINIMAL}[indexes]\nfamilies = all@16\n")).is_err());
        // A single global φ keeps bare labels (golden compatibility).
        let single = parse(&format!("{MINIMAL}[indexes]\nleaf-size = 32\n")).unwrap();
        assert!(single.families.iter().all(|f| f.leaf == Some(32)));
        assert!(single.families.iter().all(|f| !f.label.contains('@')));
    }

    #[test]
    fn serve_section_round_trips() {
        let text = "\
[scenario]
name = serve-demo
[data]
distribution = uniform
n = 500
[indexes]
families = spac-h, pkd
[serve]
clients = 3
ops = 250
shards = 4
write-batch = 32
write-every-ms = 5
coalesce = 16
family = pkd
transport = evented
epoch-history = 12
";
        let sc = parse(text).unwrap();
        let sv = sc.serve.expect("serve section parsed");
        assert_eq!(sv.clients, 3);
        assert_eq!(sv.ops, 250);
        assert_eq!(sv.shards, 4);
        assert_eq!(sv.write_batch, 32);
        assert_eq!(sv.write_every_ms, 5);
        assert_eq!(sv.coalesce, 16);
        assert_eq!(sv.epoch_history, 12);
        assert_eq!(sv.family, Some("pkd"));
        assert_eq!(sv.transport, ServeTransport::Evented);
        assert_eq!(sv.transport.name(), "evented");
        // Bare [serve] gets the defaults; absent section stays None.
        let bare = parse(&format!("{MINIMAL}[serve]\n")).unwrap();
        assert_eq!(bare.serve, Some(ServeSpec::default()));
        assert_eq!(parse(MINIMAL).unwrap().serve, None);
        // Unknown keys, zero knobs, bogus transports and unlisted serve
        // families are errors.
        assert!(parse(&format!("{MINIMAL}[serve]\nbogus = 1\n")).is_err());
        assert!(parse(&format!("{MINIMAL}[serve]\nclients = 0\n")).is_err());
        assert!(parse(&format!("{MINIMAL}[serve]\ntransport = osmotic\n")).is_err());
        assert!(parse(&format!(
            "{MINIMAL}[indexes]\nfamilies = pkd\n[serve]\nfamily = zd\n"
        ))
        .is_err());
    }

    #[test]
    fn file_source_relaxes_data_keys() {
        // With a source, distribution/n/max-coord all become optional and
        // fall back to their "take it from the file" sentinels.
        let text = "\
[scenario]
name = file-demo
[data]
source = file:points.csv
[indexes]
families = pkd
";
        let sc = parse(text).unwrap();
        assert_eq!(sc.source.as_deref(), Some("points.csv"));
        assert_eq!(sc.n, 0);
        assert_eq!(sc.max_coord, 0);
        assert_eq!(sc.distribution, Distribution::Uniform);
        // Explicit n / max-coord still win.
        let sc = parse(&text.replace(
            "source = file:points.csv",
            "source = file:points.csv\nn = 100\nmax-coord = 4096",
        ))
        .unwrap();
        assert_eq!(sc.n, 100);
        assert_eq!(sc.max_coord, 4096);
        // Malformed sources are errors, and without a source the old
        // required-key rules still hold.
        assert!(parse(&text.replace("file:points.csv", "points.csv")).is_err());
        assert!(parse(&text.replace("file:points.csv", "file: ")).is_err());
        assert!(parse("[scenario]\nname = x\n[data]\nn = 10\n").is_err());
    }

    #[test]
    fn source_paths_resolve_against_the_scenario_file() {
        let dir = std::env::temp_dir().join(format!("psi-scn-src-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.psi");
        std::fs::write(
            &path,
            "[scenario]\nname = demo\n[data]\nsource = file:pts.csv\n",
        )
        .unwrap();
        let sc = parse_file(&path).unwrap();
        assert_eq!(
            sc.source.as_deref(),
            Some(dir.join("pts.csv").to_str().unwrap())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_durability_keys_round_trip() {
        let base = format!("{MINIMAL}[serve]\n");
        let sc = parse(&format!(
            "{base}data-dir = /tmp/psi-serve\nfsync = every-4\nepoch-history-bytes = 4096\n"
        ))
        .unwrap();
        let sv = sc.serve.unwrap();
        assert_eq!(
            sv.data_dir.as_deref(),
            Some(std::path::Path::new("/tmp/psi-serve"))
        );
        assert_eq!(sv.fsync, psi_server::FsyncPolicy::EveryN(4));
        assert_eq!(sv.epoch_history_bytes, 4096);
        // fsync without data-dir, and bogus policies, are parse errors.
        assert!(parse(&format!("{base}fsync = os\n")).is_err());
        assert!(parse(&format!("{base}data-dir = /tmp/x\nfsync = sometimes\n")).is_err());
    }

    #[test]
    fn amounts_resolve() {
        assert_eq!(Amount::Fraction(0.25).resolve(1000), 250);
        assert_eq!(Amount::Fraction(0.0001).resolve(100), 1);
        assert_eq!(Amount::Count(7).resolve(1000), 7);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "[data]\nn = 10\ndistribution = nope\n";
        let e = parse(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("nope"));
    }

    #[test]
    fn rejects_unknown_keys_sections_and_schedules() {
        assert!(parse("[bogus]\n").is_err());
        assert!(parse(&format!("{MINIMAL}typo = 3\n")).is_err());
        assert!(parse(&format!("{MINIMAL}[schedule]\nstep = probe\n")).is_err());
        assert!(parse(&format!(
            "{MINIMAL}[schedule]\nstep = build 50%\nstep = build 50%\n"
        ))
        .is_err());
        assert!(parse(&format!("{MINIMAL}[indexes]\nfamilies = warp-drive\n")).is_err());
        // Duplicate scalar keys must not silently last-win.
        let e = parse(&format!("{MINIMAL}n = 999\n")).unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
        assert!(parse(&format!(
            "{MINIMAL}[indexes]\nfamilies = pkd\nfamilies = zd\n"
        ))
        .is_err());
        // ...but repeated `step` lines are the schedule.
        assert!(parse(&format!(
            "{MINIMAL}[schedule]\nstep = build 50%\nstep = insert 50%\nstep = probe\n"
        ))
        .is_ok());
    }

    #[test]
    fn f64_rejects_integer_only_families() {
        // The SFC families serve f64 through the quantising adapter now;
        // only the R-tree stand-in remains integer-only.
        let text = "\
[scenario]
name = f
[data]
distribution = uniform
n = 10
coords = f64
[indexes]
families = r-tree
";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("f64"));
        let quantised = parse(&text.replace("families = r-tree", "families = spac-h")).unwrap();
        assert_eq!(family_names(&quantised), vec!["spac-h"]);
        // `all` under f64 resolves to the float-capable set.
        let text_all = "\
[scenario]
name = f
[data]
distribution = uniform
n = 10
coords = f64
";
        let sc = parse(text_all).unwrap();
        assert_eq!(family_names(&sc), registry::float_names());
    }
}
