//! The declarative scenario-file format (`scenarios/*.psi`) and its
//! hand-rolled parser.
//!
//! A scenario file is a sequence of INI-style sections holding `key = value`
//! pairs; `#` starts a comment. The full grammar is documented in
//! `scenarios/README.md`; in short:
//!
//! ```text
//! [scenario]
//! name = churn-sweepline-2d
//! seed = 42
//!
//! [data]
//! distribution = sweepline      # any workloads::Distribution name
//! dims = 2                      # 2 or 3
//! coords = i64                  # i64 or f64
//! n = 2400
//! max-coord = 1000000           # optional; defaults to the paper's domain
//!
//! [indexes]
//! families = all                # or a comma list of registry names
//! leaf-size = 32                # optional leaf-wrap override
//!
//! [queries]
//! k = 10
//! knn-ind = 30
//! knn-ood = 30
//! ranges = 15
//! range-target = 64
//!
//! [schedule]
//! step = build 50%              # must come first; builds the index
//! step = probe                  # run the query mix, record checksums
//! step = insert 25%             # batch-insert the next unseen points
//! step = delete 25%             # batch-delete the oldest live points
//! step = probe
//! ```
//!
//! Amounts are either absolute point counts (`500`) or percentages of `n`
//! (`25%`). Unknown sections or keys — and duplicate scalar keys (only
//! `step` repeats) — are hard errors: a scenario harness that silently
//! ignores a typo would quietly test nothing.

use psi::registry;
use psi_workloads::{Distribution, DEFAULT_MAX_COORD_2D, DEFAULT_MAX_COORD_3D};

/// Coordinate type a scenario runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoordKind {
    /// The paper's 64-bit integer domain (every index family).
    I64,
    /// Float coordinates (the SFC-free families only).
    F64,
}

impl CoordKind {
    /// The name used in scenario files and reports.
    pub fn name(&self) -> &'static str {
        match self {
            CoordKind::I64 => "i64",
            CoordKind::F64 => "f64",
        }
    }
}

/// A point count, absolute or relative to the scenario's `n`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Amount {
    /// Fraction of `n` (parsed from a `%` suffix).
    Fraction(f64),
    /// Absolute number of points.
    Count(usize),
}

impl Amount {
    /// Resolve against the dataset size; at least 1 point.
    pub fn resolve(&self, n: usize) -> usize {
        match *self {
            Amount::Count(c) => c,
            Amount::Fraction(f) => (((n as f64) * f).round() as usize).max(1),
        }
    }

    fn parse(s: &str) -> Result<Amount, String> {
        let s = s.trim();
        if let Some(pct) = s.strip_suffix('%') {
            let v: f64 = pct
                .trim()
                .parse()
                .map_err(|_| format!("bad percentage {s:?}"))?;
            if !(0.0..=100.0).contains(&v) {
                return Err(format!("percentage {s:?} out of [0, 100]"));
            }
            Ok(Amount::Fraction(v / 100.0))
        } else {
            let v: usize = s.parse().map_err(|_| format!("bad point count {s:?}"))?;
            Ok(Amount::Count(v))
        }
    }
}

/// One step of a scenario's update/query schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Step {
    /// Initial build over the first `Amount` points of the dataset. Must be
    /// the first step and appear exactly once.
    Build(Amount),
    /// Batch-insert the next `Amount` not-yet-inserted points.
    Insert(Amount),
    /// Batch-delete the `Amount` oldest still-live points.
    Delete(Amount),
    /// Run the query mix and record per-category checksums.
    Probe,
}

impl Step {
    fn parse(s: &str) -> Result<Step, String> {
        let mut parts = s.split_whitespace();
        let verb = parts.next().ok_or_else(|| "empty step".to_string())?;
        let arg = parts.next();
        if parts.next().is_some() {
            return Err(format!("trailing tokens in step {s:?}"));
        }
        let need = |a: Option<&str>| {
            a.map(Amount::parse)
                .transpose()?
                .ok_or_else(|| format!("step {verb:?} needs an amount"))
        };
        match verb {
            "build" => Ok(Step::Build(need(arg)?)),
            "insert" => Ok(Step::Insert(need(arg)?)),
            "delete" => Ok(Step::Delete(need(arg)?)),
            "probe" => {
                if arg.is_some() {
                    return Err("step \"probe\" takes no argument".to_string());
                }
                Ok(Step::Probe)
            }
            other => Err(format!(
                "unknown step {other:?} (expected build/insert/delete/probe)"
            )),
        }
    }
}

/// Size of the query mix a `probe` step runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// Neighbours per kNN query.
    pub k: usize,
    /// Number of in-distribution kNN query points.
    pub knn_ind: usize,
    /// Number of out-of-distribution kNN query points.
    pub knn_ood: usize,
    /// Number of range rectangles (used for both count and list).
    pub ranges: usize,
    /// Expected points per range rectangle.
    pub range_target: usize,
}

impl Default for QuerySpec {
    fn default() -> Self {
        QuerySpec {
            k: 10,
            knn_ind: 32,
            knn_ood: 32,
            ranges: 16,
            range_target: 50,
        }
    }
}

/// A fully parsed and validated scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (reports and golden files echo it).
    pub name: String,
    /// RNG seed for data and query generation.
    pub seed: u64,
    /// Point distribution.
    pub distribution: Distribution,
    /// Dimensionality (2 or 3 — the SFC families' limit).
    pub dims: usize,
    /// Coordinate type.
    pub coords: CoordKind,
    /// Dataset size.
    pub n: usize,
    /// Coordinate domain upper bound.
    pub max_coord: i64,
    /// Canonical registry names of the index families to run.
    pub families: Vec<&'static str>,
    /// Optional leaf-wrap override passed to every family.
    pub leaf_size: Option<usize>,
    /// Query-mix sizes.
    pub queries: QuerySpec,
    /// The update/probe schedule; starts with `Step::Build`.
    pub schedule: Vec<Step>,
}

/// Parse failure, with the 1-based line it occurred on (0 for file-level
/// validation errors).
#[derive(Clone, Debug)]
pub struct ParseError {
    /// 1-based source line, or 0 for whole-file validation errors.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse a scenario from its textual form.
pub fn parse(text: &str) -> Result<Scenario, ParseError> {
    let mut name: Option<String> = None;
    let mut seed: u64 = 42;
    let mut distribution: Option<Distribution> = None;
    let mut dims: usize = 2;
    let mut coords = CoordKind::I64;
    let mut n: Option<usize> = None;
    let mut max_coord: Option<i64> = None;
    let mut families_raw: Option<(usize, String)> = None;
    let mut leaf_size: Option<usize> = None;
    let mut queries = QuerySpec::default();
    let mut schedule: Vec<Step> = Vec::new();

    let mut section = String::new();
    let mut seen: std::collections::HashSet<(String, String)> = std::collections::HashSet::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix('[') {
            let sect = inner
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, format!("malformed section header {line:?}")))?
                .trim();
            match sect {
                "scenario" | "data" | "indexes" | "queries" | "schedule" => {
                    section = sect.to_string()
                }
                other => return Err(err(lineno, format!("unknown section [{other}]"))),
            }
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(lineno, format!("expected `key = value`, got {line:?}")))?;
        let (key, value) = (key.trim(), value.trim());
        if value.is_empty() {
            return Err(err(lineno, format!("empty value for {key:?}")));
        }
        // Scalar keys may be assigned once; only `step` accumulates. A
        // duplicate would silently last-win — the same class of quiet
        // misconfiguration the unknown-key errors exist to prevent.
        if key != "step" && !seen.insert((section.clone(), key.to_string())) {
            return Err(err(lineno, format!("duplicate key {key:?} in [{section}]")));
        }
        let parse_usize = |v: &str, what: &str| {
            v.parse::<usize>()
                .map_err(|_| err(lineno, format!("{what} expects an integer, got {v:?}")))
        };
        match (section.as_str(), key) {
            ("scenario", "name") => name = Some(value.to_string()),
            ("scenario", "seed") => {
                seed = value
                    .parse()
                    .map_err(|_| err(lineno, format!("seed expects an integer, got {value:?}")))?
            }
            ("data", "distribution") => {
                distribution = Some(
                    Distribution::from_name(value)
                        .ok_or_else(|| err(lineno, format!("unknown distribution {value:?}")))?,
                )
            }
            ("data", "dims") => dims = parse_usize(value, "dims")?,
            ("data", "coords") => {
                coords = match value {
                    "i64" => CoordKind::I64,
                    "f64" => CoordKind::F64,
                    other => {
                        return Err(err(
                            lineno,
                            format!("coords must be i64 or f64, got {other:?}"),
                        ))
                    }
                }
            }
            ("data", "n") => n = Some(parse_usize(value, "n")?),
            ("data", "max-coord") => {
                max_coord = Some(value.parse().map_err(|_| {
                    err(
                        lineno,
                        format!("max-coord expects an integer, got {value:?}"),
                    )
                })?)
            }
            ("indexes", "families") => families_raw = Some((lineno, value.to_string())),
            ("indexes", "leaf-size") => leaf_size = Some(parse_usize(value, "leaf-size")?),
            ("queries", "k") => queries.k = parse_usize(value, "k")?,
            ("queries", "knn-ind") => queries.knn_ind = parse_usize(value, "knn-ind")?,
            ("queries", "knn-ood") => queries.knn_ood = parse_usize(value, "knn-ood")?,
            ("queries", "ranges") => queries.ranges = parse_usize(value, "ranges")?,
            ("queries", "range-target") => {
                queries.range_target = parse_usize(value, "range-target")?
            }
            ("schedule", "step") => schedule.push(Step::parse(value).map_err(|m| err(lineno, m))?),
            ("", _) => return Err(err(lineno, "key/value pair before any [section]")),
            (sect, key) => return Err(err(lineno, format!("unknown key {key:?} in [{sect}]"))),
        }
    }

    // Whole-file validation.
    let name = name.ok_or_else(|| err(0, "[scenario] name is required"))?;
    let distribution = distribution.ok_or_else(|| err(0, "[data] distribution is required"))?;
    let n = n.ok_or_else(|| err(0, "[data] n is required"))?;
    if n == 0 {
        return Err(err(0, "[data] n must be positive"));
    }
    if !(dims == 2 || dims == 3) {
        return Err(err(0, format!("dims must be 2 or 3, got {dims}")));
    }
    let max_coord = max_coord.unwrap_or(match dims {
        3 => DEFAULT_MAX_COORD_3D,
        _ => DEFAULT_MAX_COORD_2D,
    });
    if max_coord <= 0 {
        return Err(err(0, "max-coord must be positive"));
    }

    let available: &[&'static str] = match coords {
        CoordKind::I64 => registry::names(),
        CoordKind::F64 => registry::float_names(),
    };
    let families: Vec<&'static str> = match families_raw {
        None => available.to_vec(),
        Some((lineno, raw)) => {
            if raw.trim() == "all" {
                available.to_vec()
            } else {
                let mut out = Vec::new();
                for part in raw.split(',') {
                    let canon = registry::resolve_name(part).ok_or_else(|| {
                        err(lineno, format!("unknown index family {:?}", part.trim()))
                    })?;
                    if coords == CoordKind::F64 && !registry::float_names().contains(&canon) {
                        return Err(err(
                            lineno,
                            format!("family {canon:?} does not support f64 coordinates"),
                        ));
                    }
                    if !out.contains(&canon) {
                        out.push(canon);
                    }
                }
                out
            }
        }
    };
    if families.is_empty() {
        return Err(err(0, "[indexes] families resolved to an empty list"));
    }

    if schedule.is_empty() {
        schedule = vec![Step::Build(Amount::Fraction(1.0)), Step::Probe];
    }
    match schedule.first() {
        Some(Step::Build(_)) => {}
        _ => return Err(err(0, "the first schedule step must be `build`")),
    }
    if schedule[1..].iter().any(|s| matches!(s, Step::Build(_))) {
        return Err(err(0, "`build` may appear only as the first step"));
    }

    Ok(Scenario {
        name,
        seed,
        distribution,
        dims,
        coords,
        n,
        max_coord,
        families,
        leaf_size,
        queries,
        schedule,
    })
}

/// Read and parse a scenario file.
pub fn parse_file(path: &std::path::Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "\
[scenario]
name = demo
[data]
distribution = uniform
n = 100
";

    #[test]
    fn minimal_scenario_gets_defaults() {
        let sc = parse(MINIMAL).unwrap();
        assert_eq!(sc.name, "demo");
        assert_eq!(sc.seed, 42);
        assert_eq!(sc.dims, 2);
        assert_eq!(sc.coords, CoordKind::I64);
        assert_eq!(sc.max_coord, DEFAULT_MAX_COORD_2D);
        assert_eq!(sc.families, registry::names());
        assert_eq!(
            sc.schedule,
            vec![Step::Build(Amount::Fraction(1.0)), Step::Probe]
        );
    }

    #[test]
    fn full_scenario_round_trips() {
        let text = "\
# A comment
[scenario]
name = churn            # trailing comment
seed = 7
[data]
distribution = cosmo-like
dims = 3
coords = i64
n = 500
max-coord = 4096
[indexes]
families = p-orth, spac_h, ZD
leaf-size = 16
[queries]
k = 5
knn-ind = 10
knn-ood = 0
ranges = 4
range-target = 20
[schedule]
step = build 40%
step = probe
step = insert 100
step = delete 25%
step = probe
";
        let sc = parse(text).unwrap();
        assert_eq!(sc.seed, 7);
        assert_eq!(sc.distribution, Distribution::CosmoLike);
        assert_eq!(sc.dims, 3);
        assert_eq!(sc.max_coord, 4096);
        assert_eq!(sc.families, vec!["p-orth", "spac-h", "zd"]);
        assert_eq!(sc.leaf_size, Some(16));
        assert_eq!(sc.queries.k, 5);
        assert_eq!(sc.schedule.len(), 5);
        assert_eq!(sc.schedule[2], Step::Insert(Amount::Count(100)));
        assert_eq!(sc.schedule[3], Step::Delete(Amount::Fraction(0.25)));
    }

    #[test]
    fn amounts_resolve() {
        assert_eq!(Amount::Fraction(0.25).resolve(1000), 250);
        assert_eq!(Amount::Fraction(0.0001).resolve(100), 1);
        assert_eq!(Amount::Count(7).resolve(1000), 7);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "[data]\nn = 10\ndistribution = nope\n";
        let e = parse(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("nope"));
    }

    #[test]
    fn rejects_unknown_keys_sections_and_schedules() {
        assert!(parse("[bogus]\n").is_err());
        assert!(parse(&format!("{MINIMAL}typo = 3\n")).is_err());
        assert!(parse(&format!("{MINIMAL}[schedule]\nstep = probe\n")).is_err());
        assert!(parse(&format!(
            "{MINIMAL}[schedule]\nstep = build 50%\nstep = build 50%\n"
        ))
        .is_err());
        assert!(parse(&format!("{MINIMAL}[indexes]\nfamilies = warp-drive\n")).is_err());
        // Duplicate scalar keys must not silently last-win.
        let e = parse(&format!("{MINIMAL}n = 999\n")).unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
        assert!(parse(&format!(
            "{MINIMAL}[indexes]\nfamilies = pkd\nfamilies = zd\n"
        ))
        .is_err());
        // ...but repeated `step` lines are the schedule.
        assert!(parse(&format!(
            "{MINIMAL}[schedule]\nstep = build 50%\nstep = insert 50%\nstep = probe\n"
        ))
        .is_ok());
    }

    #[test]
    fn f64_rejects_sfc_families() {
        let text = "\
[scenario]
name = f
[data]
distribution = uniform
n = 10
coords = f64
[indexes]
families = spac-h
";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("f64"));
        // `all` under f64 resolves to the float-capable subset.
        let text_all = "\
[scenario]
name = f
[data]
distribution = uniform
n = 10
coords = f64
";
        let sc = parse(text_all).unwrap();
        assert_eq!(sc.families, registry::float_names());
    }
}
