//! The plaintext metrics endpoint behind `psi-netd --stats-addr`: a tiny
//! single-threaded HTTP/1.0 responder that answers every request with the
//! same page — the Prometheus-style registry rendering, then the recent
//! event ring and the slow-query log as `#`-prefixed comment lines. It is
//! deliberately not a web server: one short-lived thread, one connection at
//! a time, no routing, no keep-alive — enough for `curl`, a Prometheus
//! scraper, or a watch loop, and nothing that could compete with the
//! serving path for resources.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the accept loop polls the stop flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Cap on the request head we bother reading before answering. Anything a
/// scraper sends fits; anything longer is answered anyway and closed.
const MAX_REQUEST_HEAD: usize = 4096;

/// How many event-ring entries and slow queries the page appends.
const TAIL_LIMIT: usize = 32;

/// A live metrics endpoint. Dropping (or [`StatsEndpoint::shutdown`]) stops
/// the accept thread.
pub struct StatsEndpoint {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StatsEndpoint {
    /// Bind `addr` (port 0 picks an ephemeral port) and start serving.
    pub fn bind(addr: SocketAddr) -> io::Result<StatsEndpoint> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("psi-statsd".to_string())
            .spawn(move || accept_loop(listener, &thread_stop))?;
        Ok(StatsEndpoint {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept thread and release the socket.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StatsEndpoint {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: scrapes are rare and the page is cheap, so
                // one at a time keeps the endpoint to a single thread.
                let _ = serve_scrape(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Read (and discard) the request head, then answer with the stats page.
fn serve_scrape(mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_REQUEST_HEAD {
                    break;
                }
            }
            // Timeout or interruption: answer with what we have anyway —
            // the page is the same for every request.
            Err(_) => break,
        }
    }
    let body = stats_page();
    let header = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The page every scrape receives: metrics first (machine-readable), then
/// the event ring and slow-query log as comments (human-readable tail).
pub fn stats_page() -> String {
    let mut body = psi_obs::render_prometheus();
    let events = psi_obs::render_events(TAIL_LIMIT);
    if !events.is_empty() {
        body.push_str("# recent events:\n");
        for line in events.lines() {
            body.push_str("# ");
            body.push_str(line);
            body.push('\n');
        }
    }
    let slow = psi_obs::slowlog::recent(TAIL_LIMIT);
    if !slow.is_empty() {
        body.push_str("# slow queries (threshold ");
        body.push_str(&psi_obs::slowlog::threshold_ns().to_string());
        body.push_str("ns):\n");
        for q in slow {
            body.push_str(&format!(
                "# [{}] {} {}ns {}\n",
                q.seq, q.op, q.latency_ns, q.shape
            ));
        }
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        text
    }

    #[test]
    fn endpoint_answers_a_plain_get() {
        let c = psi_obs::counter("statsd_test_total", "scrapes", &[]);
        c.bump();
        let ep = StatsEndpoint::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let text = scrape(ep.addr());
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"), "{text:?}");
        assert!(text.contains("Content-Type: text/plain"));
        assert!(text.contains("statsd_test_total"));
        // Content-Length must match the body exactly (scrapers trust it).
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        let len: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(body.len(), len);
        ep.shutdown();
    }

    #[test]
    fn page_appends_slow_queries_as_comments() {
        psi_obs::slowlog::set_threshold(Some(Duration::from_millis(1)));
        psi_obs::slowlog::observe("knn", 2_000_000, || "k=9".to_string());
        let page = stats_page();
        psi_obs::slowlog::set_threshold(None);
        assert!(page.contains("# slow queries"));
        assert!(page
            .lines()
            .any(|l| l.starts_with("# ") && l.contains("knn 2000000ns k=9")));
    }
}
