//! **psi-cli** — the scenario-driven CLI harness for Ψ-Lib-rs.
//!
//! The paper's evaluation protocol (incremental batch builds and teardowns
//! with mid-stream query probes, §5.1) lives in `psi::driver`; this crate
//! makes it drivable without writing Rust: a declarative scenario file names
//! a distribution, dimensionality, coordinate type, a set of index families
//! and a batch insert/delete/probe schedule, and the executor replays it
//! against every family through `psi::registry`, producing
//!
//! * deterministic per-probe **result checksums** (the golden-file contract
//!   `tests/cli_scenarios.rs` pins down — identical across index families,
//!   thread counts and machines), and
//! * wall-clock **timings** (JSON report, `psi-scenario run --out`), which
//!   `psi-scenario compare` diffs across runs with a regression tolerance
//!   ([`compare`]).
//!
//! Scenarios may also declare a **concurrent serving phase** (`[serve]`
//! section): a closed-loop client/writer mix replayed through the
//! `psi-server` subsystem after the schedule, reporting throughput and
//! latency percentiles ([`serve`]); timing-only, never part of golden text.
//!
//! The `psi-scenario` binary is the command-line entry point; the library
//! exposes the same pieces ([`scenario::parse`], [`exec::run`],
//! [`exec::run_differential`], [`report::golden_string`]) so integration
//! tests run scenarios in-process.

pub mod compare;
pub mod datafile;
pub mod exec;
pub mod netd;
pub mod report;
pub mod scenario;
pub mod serve;
pub mod statsd;

pub use compare::{compare_reports, parse_json, Comparison, Json};
pub use exec::{run, run_differential, DiffReport, FamilyRun, ProbeOutcome, ScenarioRun};
pub use report::{golden_string, json_string};
pub use scenario::{
    parse, parse_file, Amount, CoordKind, FamilySpec, ParseError, QuerySpec, Scenario, ServeSpec,
    Step,
};
pub use serve::{run_serve, ServeReport};
