//! Timing-regression comparison of two `psi-scenario run --out` JSON
//! reports (`psi-scenario compare a.json b.json [--tolerance <pct>]`).
//!
//! The two reports must describe the **same scenario** (name, distribution,
//! coordinate type, dimensionality, `n`, seed); thread counts may differ —
//! comparing a 1-thread report against an 8-thread report of the same
//! scenario is exactly the regression-sweep use case. The comparison then
//! checks two things, in order of severity:
//!
//! 1. **Checksums** (`final_state`, `final_len`, every probe's `live` /
//!    `knn_ind` / `knn_ood` / `range_count` / `range_list`) must match
//!    byte-for-byte: a difference means the two runs computed different
//!    *answers*, which is a correctness bug, not a slowdown.
//! 2. **Timings** (`update_secs` and the summed per-probe `secs`, per
//!    family): the second report regresses a metric when it is more than
//!    `tolerance` percent slower than the first **and** the absolute delta
//!    exceeds the noise floor (`--noise-floor` seconds, default
//!    [`NOISE_FLOOR_SECS`] — trivial scenarios finish in microseconds,
//!    where relative noise is meaningless).
//!
//! The JSON reader below is a minimal recursive-descent parser — the
//! workspace builds without a crates registry, so no serde — that accepts
//! the general JSON grammar, not just the shape `report::json_string`
//! emits, making the comparer robust to report-format evolution.

use std::fmt::Write as _;

/// Default absolute slowdown below which a relative regression is ignored as
/// noise (`--noise-floor` overrides it per invocation).
pub const NOISE_FLOOR_SECS: f64 = 0.001;

/// Default `--tolerance` (percent) when the flag is omitted.
pub const DEFAULT_TOLERANCE_PCT: f64 = 20.0;

// ---------------------------------------------------------------------------
// Minimal JSON value + parser.
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are `f64` (the reports' integers are well
/// within exact range); object key order is preserved but irrelevant here.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn str_value(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document (must consume the whole input bar whitespace).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} of JSON input",
            ch as char, *pos
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of JSON input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_keyword(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid JSON keyword at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")?
                            .iter()
                            .map(|&c| c as char)
                            .collect::<String>();
                        *pos += 4;
                        let code =
                            u32::from_str_radix(&hex, 16).map_err(|_| "bad \\u escape digits")?;
                        // Reports only ever escape control characters; a
                        // surrogate here is malformed input.
                        out.push(char::from_u32(code).ok_or("\\u escape is not a scalar value")?);
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            _ => {
                // Copy the raw byte run up to the next quote/backslash so
                // multi-byte UTF-8 passes through untouched.
                let start = *pos - 1;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid UTF-8 in string")?,
                );
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-UTF-8 number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

// ---------------------------------------------------------------------------
// Report comparison.
// ---------------------------------------------------------------------------

/// The outcome of comparing two timing reports: a printable account plus
/// the regression/mismatch tallies that decide the exit code.
pub struct Comparison {
    /// Human-readable per-metric lines (one per timing comparison).
    pub lines: Vec<String>,
    /// Timing regressions beyond tolerance ("family metric: a → b (+x%)").
    pub regressions: Vec<String>,
    /// Checksum/config disagreements (correctness, not speed).
    pub mismatches: Vec<String>,
}

impl Comparison {
    /// `true` when the second report is acceptable: same answers, no timing
    /// regression beyond tolerance.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.mismatches.is_empty()
    }
}

/// Scenario-config fields that must agree for a comparison to be
/// meaningful. `threads` is deliberately absent.
const CONFIG_KEYS: [&str; 6] = ["scenario", "distribution", "coords", "dims", "n", "seed"];

/// Probe fields that are deterministic checksums (any difference is a
/// correctness mismatch).
const PROBE_CHECKSUM_KEYS: [&str; 5] = ["live", "knn_ind", "knn_ood", "range_count", "range_list"];

fn render(v: Option<&Json>) -> String {
    match v {
        None => "<missing>".to_string(),
        Some(Json::Str(s)) => s.clone(),
        Some(Json::Num(n)) => format!("{n}"),
        Some(other) => format!("{other:?}"),
    }
}

/// Compare two parsed reports. `Err` means the inputs are not comparable at
/// all (different scenario config or malformed shape); `Ok` carries the
/// per-metric verdicts.
pub fn compare_reports(
    a: &Json,
    b: &Json,
    tolerance_pct: f64,
    noise_floor_secs: f64,
) -> Result<Comparison, String> {
    for key in CONFIG_KEYS {
        let (va, vb) = (a.get(key), b.get(key));
        if va != vb {
            return Err(format!(
                "reports describe different runs: {key} is {} vs {}",
                render(va),
                render(vb)
            ));
        }
    }
    let fams_a = a
        .get("families")
        .and_then(Json::arr)
        .ok_or("first report has no families array")?;
    let fams_b = b
        .get("families")
        .and_then(Json::arr)
        .ok_or("second report has no families array")?;

    let mut cmp = Comparison {
        lines: Vec::new(),
        regressions: Vec::new(),
        mismatches: Vec::new(),
    };

    let family_name = |f: &Json| {
        f.get("family")
            .and_then(Json::str_value)
            .unwrap_or("<unnamed>")
            .to_string()
    };
    for fb in fams_b {
        let name = family_name(fb);
        if !fams_a.iter().any(|fa| family_name(fa) == name) {
            cmp.mismatches
                .push(format!("family {name}: present only in the second report"));
        }
    }
    for fa in fams_a {
        let name = family_name(fa);
        let Some(fb) = fams_b.iter().find(|fb| family_name(fb) == name) else {
            cmp.mismatches
                .push(format!("family {name}: missing from the second report"));
            continue;
        };

        // Correctness: final state and every probe checksum.
        for key in ["final_len", "final_state"] {
            if fa.get(key) != fb.get(key) {
                cmp.mismatches.push(format!(
                    "family {name}: {key} differs ({} vs {})",
                    render(fa.get(key)),
                    render(fb.get(key))
                ));
            }
        }
        let probes_a = fa.get("probes").and_then(Json::arr).unwrap_or(&[]);
        let probes_b = fb.get("probes").and_then(Json::arr).unwrap_or(&[]);
        if probes_a.len() != probes_b.len() {
            cmp.mismatches.push(format!(
                "family {name}: probe count differs ({} vs {})",
                probes_a.len(),
                probes_b.len()
            ));
        }
        for (i, (pa, pb)) in probes_a.iter().zip(probes_b).enumerate() {
            for key in PROBE_CHECKSUM_KEYS {
                if pa.get(key) != pb.get(key) {
                    cmp.mismatches.push(format!(
                        "family {name} probe {i}: {key} differs ({} vs {})",
                        render(pa.get(key)),
                        render(pb.get(key))
                    ));
                }
            }
        }

        // Timing: update_secs and the summed probe secs.
        let sum_probe_secs = |probes: &[Json]| {
            probes
                .iter()
                .filter_map(|p| p.get("secs").and_then(Json::num))
                .sum::<f64>()
        };
        let metrics = [
            (
                "update_secs",
                fa.get("update_secs").and_then(Json::num),
                fb.get("update_secs").and_then(Json::num),
            ),
            (
                "probe_secs",
                Some(sum_probe_secs(probes_a)),
                Some(sum_probe_secs(probes_b)),
            ),
        ];
        for (metric, ta, tb) in metrics {
            let (Some(ta), Some(tb)) = (ta, tb) else {
                cmp.mismatches
                    .push(format!("family {name}: {metric} missing from a report"));
                continue;
            };
            // A zero baseline (sub-microsecond phases round to 0.000000 in
            // the report) makes the relative delta meaningless; treat any
            // above-floor slowdown from zero as an unconditional regression
            // rather than silently passing it.
            let delta_pct = if ta > 0.0 {
                (tb - ta) / ta * 100.0
            } else if tb > ta {
                f64::INFINITY
            } else {
                0.0
            };
            let mut line = format!("{name:<14} {metric:<12} {ta:>10.6}s -> {tb:>10.6}s");
            let _ = write!(line, "  ({delta_pct:+7.1}%)");
            let regressed = delta_pct > tolerance_pct && tb - ta > noise_floor_secs;
            if regressed {
                line.push_str("  REGRESSION");
                cmp.regressions.push(format!(
                    "family {name}: {metric} {ta:.6}s -> {tb:.6}s ({delta_pct:+.1}%, tolerance {tolerance_pct}%)"
                ));
            }
            cmp.lines.push(line);
        }
    }
    Ok(cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exec, report, scenario};

    fn tiny_report() -> String {
        let sc = scenario::parse(
            "[scenario]\nname = cmp\n[data]\ndistribution = uniform\nn = 300\n\
             max-coord = 10000\n[indexes]\nfamilies = pkd, zd\n[queries]\nk = 3\n\
             knn-ind = 5\nknn-ood = 5\nranges = 3\nrange-target = 10\n",
        )
        .unwrap();
        let run = exec::run(&sc, None).unwrap();
        report::json_string(&run)
    }

    #[test]
    fn json_parser_roundtrips_values() {
        let v = parse_json(r#"{"a": [1, 2.5, -3e2], "b": "x\nyA", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("b").unwrap().str_value(), Some("x\nyA"));
        let arr = v.get("a").unwrap().arr().unwrap();
        assert_eq!(arr[2], Json::Num(-300.0));
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2] trailing").is_err());
    }

    #[test]
    fn identical_reports_compare_clean() {
        let text = tiny_report();
        let a = parse_json(&text).unwrap();
        let cmp = compare_reports(&a, &a, 10.0, NOISE_FLOOR_SECS).unwrap();
        assert!(
            cmp.passed(),
            "self-comparison flagged: {:?}",
            cmp.regressions
        );
        // Two metrics (update + probes) per family, two families.
        assert_eq!(cmp.lines.len(), 4);
    }

    #[test]
    fn real_reruns_compare_within_generous_tolerance() {
        let a = parse_json(&tiny_report()).unwrap();
        let b = parse_json(&tiny_report()).unwrap();
        // Deterministic checksums must always agree between reruns; a tiny
        // scenario's timings sit under the noise floor, so no regression
        // can fire regardless of scheduling.
        let cmp = compare_reports(&a, &b, 1.0, NOISE_FLOOR_SECS).unwrap();
        assert!(cmp.mismatches.is_empty(), "{:?}", cmp.mismatches);
        assert!(cmp.passed());
    }

    #[test]
    fn slowdown_beyond_tolerance_regresses() {
        let text = tiny_report();
        let a = parse_json(&text).unwrap();
        let mut b = a.clone();
        // Inflate every update_secs in the second report well past both the
        // relative tolerance and the absolute noise floor.
        fn inflate(v: &mut Json) {
            match v {
                Json::Obj(fields) => {
                    for (k, v) in fields {
                        if k == "update_secs" {
                            *v = Json::Num(v.num().unwrap_or(0.0) + 1.0);
                        } else {
                            inflate(v);
                        }
                    }
                }
                Json::Arr(items) => items.iter_mut().for_each(inflate),
                _ => {}
            }
        }
        inflate(&mut b);
        let cmp = compare_reports(&a, &b, 20.0, NOISE_FLOOR_SECS).unwrap();
        assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);
        assert!(!cmp.passed());
        // The reverse direction is an improvement, not a regression.
        let cmp = compare_reports(&b, &a, 20.0, NOISE_FLOOR_SECS).unwrap();
        assert!(cmp.passed());
    }

    #[test]
    fn noise_floor_gates_absolute_deltas() {
        let text = tiny_report();
        let a = parse_json(&text).unwrap();
        let mut b = a.clone();
        // +10 ms on every update: a huge relative slowdown on a
        // microsecond-scale scenario, but below a raised floor.
        fn inflate(v: &mut Json) {
            match v {
                Json::Obj(fields) => {
                    for (k, v) in fields {
                        if k == "update_secs" {
                            *v = Json::Num(v.num().unwrap_or(0.0) + 0.010);
                        } else {
                            inflate(v);
                        }
                    }
                }
                Json::Arr(items) => items.iter_mut().for_each(inflate),
                _ => {}
            }
        }
        inflate(&mut b);
        // Default 1 ms floor: the 10 ms delta regresses.
        let cmp = compare_reports(&a, &b, 20.0, NOISE_FLOOR_SECS).unwrap();
        assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);
        // A 1 s floor (noisy shared-CI box) swallows it.
        let cmp = compare_reports(&a, &b, 20.0, 1.0).unwrap();
        assert!(cmp.passed(), "{:?}", cmp.regressions);
        // A zero floor makes the relative tolerance the only gate.
        let cmp = compare_reports(&a, &b, 20.0, 0.0).unwrap();
        assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);
    }

    #[test]
    fn zero_baseline_still_flags_real_slowdowns() {
        let text = tiny_report();
        let a = parse_json(&text).unwrap();
        let (mut za, mut zb) = (a.clone(), a.clone());
        // Baseline metric rounds to exactly zero; the rerun is seconds slow.
        fn set_update_secs(v: &mut Json, secs: f64) {
            match v {
                Json::Obj(fields) => {
                    for (k, v) in fields {
                        if k == "update_secs" {
                            *v = Json::Num(secs);
                        } else {
                            set_update_secs(v, secs);
                        }
                    }
                }
                Json::Arr(items) => items.iter_mut().for_each(|i| set_update_secs(i, secs)),
                _ => {}
            }
        }
        set_update_secs(&mut za, 0.0);
        set_update_secs(&mut zb, 5.0);
        let cmp = compare_reports(&za, &zb, 1_000_000.0, NOISE_FLOOR_SECS).unwrap();
        assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);
        // Zero to zero is not a regression.
        let cmp = compare_reports(&za, &za, 20.0, NOISE_FLOOR_SECS).unwrap();
        assert!(cmp.passed());
    }

    #[test]
    fn checksum_differences_are_mismatches() {
        let text = tiny_report();
        let a = parse_json(&text).unwrap();
        let tampered = text.replacen("\"final_len\": 300", "\"final_len\": 299", 1);
        assert_ne!(tampered, text, "tamper target not found in report");
        let b = parse_json(&tampered).unwrap();
        let cmp = compare_reports(&a, &b, 1_000.0, NOISE_FLOOR_SECS).unwrap();
        assert!(!cmp.mismatches.is_empty());
        assert!(!cmp.passed());
    }

    #[test]
    fn different_scenarios_refuse_to_compare() {
        let text = tiny_report();
        let a = parse_json(&text).unwrap();
        let other = text.replacen("\"scenario\": \"cmp\"", "\"scenario\": \"other\"", 1);
        let b = parse_json(&other).unwrap();
        assert!(compare_reports(&a, &b, 10.0, NOISE_FLOOR_SECS).is_err());
    }
}
