//! Report writers for a [`ScenarioRun`].
//!
//! Two formats:
//!
//! * [`golden_string`] — the deterministic subset (checksums, sizes, config)
//!   that the golden-file test suite commits and compares byte-for-byte. No
//!   timings, no thread counts: the text must be bit-identical across
//!   machines and `RAYON_NUM_THREADS` settings.
//! * [`json_string`] — the full report including wall-clock timings, for
//!   benchmarking sweeps and dashboards (`psi-scenario run --out`).

use crate::exec::{FamilyRun, ScenarioRun};
use crate::serve::ServeReport;

/// Escape a string for embedding in a JSON literal (the scenario name is
/// free text; the other interpolated strings are registry-controlled).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The deterministic golden-file text for a run.
pub fn golden_string(run: &ScenarioRun) -> String {
    let mut out = String::new();
    out.push_str(&format!("scenario {}\n", run.name));
    out.push_str(&format!(
        "config dist={} coords={} dims={} n={} seed={}\n",
        run.distribution, run.coords, run.dims, run.n, run.seed
    ));
    for fam in &run.families {
        out.push_str(&format!("family {}\n", fam.family));
        for (i, p) in fam.probes.iter().enumerate() {
            out.push_str(&format!(
                "probe {i} live={} knn_ind={:016x} knn_ood={:016x} range_count={:016x} range_list={:016x}\n",
                p.live, p.knn_ind, p.knn_ood, p.range_count, p.range_list
            ));
        }
        out.push_str(&format!(
            "final len={} state={:016x}\n",
            fam.final_len, fam.final_state
        ));
    }
    out
}

fn json_family(fam: &FamilyRun) -> String {
    let probes: Vec<String> = fam
        .probes
        .iter()
        .zip(&fam.probe_secs)
        .map(|(p, secs)| {
            format!(
                "{{\"live\": {}, \"knn_ind\": \"{:016x}\", \"knn_ood\": \"{:016x}\", \
                 \"range_count\": \"{:016x}\", \"range_list\": \"{:016x}\", \"secs\": {:.6}}}",
                p.live, p.knn_ind, p.knn_ood, p.range_count, p.range_list, secs
            )
        })
        .collect();
    format!(
        "    {{\n      \"family\": \"{}\",\n      \"update_secs\": {:.6},\n      \
         \"final_len\": {},\n      \"final_state\": \"{:016x}\",\n      \
         \"probes\": [{}]\n    }}",
        json_escape(&fam.family),
        fam.update_secs,
        fam.final_len,
        fam.final_state,
        probes.join(", ")
    )
}

/// The full JSON report (checksums *and* timings) for a run.
pub fn json_string(run: &ScenarioRun) -> String {
    json_string_with_serve(run, None)
}

/// As [`json_string`], with the serving-phase measurements appended when the
/// scenario declared a `[serve]` section. (`psi-scenario compare` reads only
/// the config and family keys, so the extra block never affects the
/// regression gate.)
pub fn json_string_with_serve(run: &ScenarioRun, serve: Option<&ServeReport>) -> String {
    let families: Vec<String> = run.families.iter().map(json_family).collect();
    let serve_block = serve.map_or(String::new(), |s| {
        let metrics_block = s.metrics.as_ref().map_or(String::new(), |m| {
            let pairs: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("      \"{}\": {}", json_escape(k), v))
                .collect();
            format!(",\n    \"metrics\": {{\n{}\n    }}", pairs.join(",\n"))
        });
        format!(
            ",\n  \"serve\": {{\n    \"family\": \"{}\",\n    \"shards\": {},\n    \
             \"transport\": \"{}\",\n    \
             \"clients\": {},\n    \"ops\": {},\n    \"batches\": {},\n    \
             \"elapsed_secs\": {:.6},\n    \"throughput_qps\": {:.1},\n    \
             \"p50_ms\": {:.4},\n    \"p99_ms\": {:.4},\n    \
             \"coalesce_factor\": {:.2}{}\n  }}",
            json_escape(&s.family),
            s.shards,
            s.transport,
            s.clients,
            s.ops,
            s.batches,
            s.elapsed_secs,
            s.throughput_qps,
            s.p50_ms,
            s.p99_ms,
            s.coalesce_factor,
            metrics_block
        )
    });
    format!(
        "{{\n  \"scenario\": \"{}\",\n  \"distribution\": \"{}\",\n  \"coords\": \"{}\",\n  \
         \"dims\": {},\n  \"n\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \
         \"note\": \"checksums are deterministic; secs are wall clock and vary\",\n  \
         \"families\": [\n{}\n  ]{}\n}}\n",
        json_escape(&run.name),
        json_escape(&run.distribution),
        run.coords,
        run.dims,
        run.n,
        run.seed,
        run.threads,
        families.join(",\n"),
        serve_block
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exec, scenario};

    #[test]
    fn golden_and_json_render() {
        let sc = scenario::parse(
            "[scenario]\nname = render\n[data]\ndistribution = uniform\nn = 200\n\
             max-coord = 10000\n[indexes]\nfamilies = pkd\n[queries]\nk = 3\n\
             knn-ind = 5\nknn-ood = 5\nranges = 3\nrange-target = 10\n",
        )
        .unwrap();
        let run = exec::run(&sc, None).unwrap();
        let golden = golden_string(&run);
        assert!(golden.starts_with("scenario render\n"));
        assert!(golden.contains("family pkd\n"));
        assert!(golden.contains("probe 0 live=200 "));
        assert!(golden.contains("final len=200 "));
        // Golden text never contains timing data.
        assert!(!golden.contains("secs"));
        let json = json_string(&run);
        assert!(json.contains("\"family\": \"pkd\""));
        assert!(json.contains("\"secs\""));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(super::json_escape("plain"), "plain");
        assert_eq!(
            super::json_escape("my \"fast\" run\\1\n"),
            "my \\\"fast\\\" run\\\\1\\n"
        );
        assert_eq!(super::json_escape("\u{1}"), "\\u0001");
    }
}
