//! Scenario execution: replay a [`Scenario`]'s schedule against every
//! requested index family through [`psi::registry`], recording wall-clock
//! timings and — the part the golden-file test suite pins down —
//! deterministic result checksums.
//!
//! Checksums are FNV-1a folds over query *answers*, designed to be invariant
//! across index families and thread counts:
//!
//! * kNN folds the per-rank squared distances (families may break distance
//!   ties differently, but the distance sequence is unique),
//! * range-count folds the counts,
//! * range-list sorts each answer lexicographically before folding (the batch
//!   paths return per-query answers in query order, but the points within one
//!   answer arrive in index-specific order),
//! * the final state checksum folds the sorted full contents of the index.
//!
//! Because every family answering the same scenario must produce the same
//! answers, all families share the same probe checksums — a run in which two
//! families disagree is a correctness bug, which [`run`] reports as an error
//! rather than writing a plausible-looking report.

use crate::datafile;
use crate::scenario::{CoordKind, Scenario, Step};
use psi::registry::{self, BuildOptions, DynIndex, RegistryError};
use psi::{HilbertCurve, MortonCurve, SfcCurve};
use psi_geometry::{Coord, Point, PointI, Rect};
use psi_workloads as workloads;
use std::time::Instant;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fold(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// Coordinate types the executor can checksum exactly.
pub trait ScenarioCoord: Coord {
    /// The coordinate as a deterministic 64-bit word.
    fn coord_bits(self) -> u64;
    /// A squared distance as deterministic words (low, high).
    fn dist_bits(d: Self::Dist) -> (u64, u64);
}

impl ScenarioCoord for i64 {
    fn coord_bits(self) -> u64 {
        self as u64
    }
    fn dist_bits(d: i128) -> (u64, u64) {
        (d as u64, (d >> 64) as u64)
    }
}

impl ScenarioCoord for f64 {
    fn coord_bits(self) -> u64 {
        self.to_bits()
    }
    fn dist_bits(d: f64) -> (u64, u64) {
        (d.to_bits(), 0)
    }
}

/// The concrete query mix a scenario's probes run.
struct ProbeSet<T: Coord, const D: usize> {
    knn_ind: Vec<Point<T, D>>,
    knn_ood: Vec<Point<T, D>>,
    /// Neighbour counts swept per kNN query point (usually one entry).
    ks: Vec<usize>,
    ranges: Vec<Rect<T, D>>,
}

/// Checksums (and timing) of one `probe` step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Index size when the probe ran.
    pub live: usize,
    /// Checksum over the in-distribution kNN answers.
    pub knn_ind: u64,
    /// Checksum over the out-of-distribution kNN answers.
    pub knn_ood: u64,
    /// Checksum over the range-count answers.
    pub range_count: u64,
    /// Checksum over the (sorted) range-list answers.
    pub range_list: u64,
}

/// One family's trip through the schedule.
#[derive(Clone, Debug)]
pub struct FamilyRun {
    /// Canonical registry name.
    pub family: String,
    /// One entry per `probe` step, in schedule order.
    pub probes: Vec<ProbeOutcome>,
    /// Per-probe wall-clock seconds (same order; not part of the golden data).
    pub probe_secs: Vec<f64>,
    /// Final index size after the whole schedule.
    pub final_len: usize,
    /// Checksum of the final index contents.
    pub final_state: u64,
    /// Total wall-clock seconds spent in build/insert/delete steps.
    pub update_secs: f64,
}

/// A full scenario execution: every family's probes and timings.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    /// Scenario name.
    pub name: String,
    /// Distribution name.
    pub distribution: String,
    /// Coordinate-type name (`i64`/`f64`).
    pub coords: String,
    /// Dimensionality.
    pub dims: usize,
    /// Dataset size.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads the run observed (`rayon::current_num_threads`).
    pub threads: usize,
    /// Per-family results, in scenario order.
    pub families: Vec<FamilyRun>,
}

/// Execute a scenario. `threads = Some(t)` pins the run to a `t`-worker pool
/// (the in-process equivalent of `RAYON_NUM_THREADS=t`); `None` uses the
/// global pool. Fails if two families disagree on any probe checksum.
pub fn run(sc: &Scenario, threads: Option<usize>) -> Result<ScenarioRun, String> {
    match threads {
        None => run_inner(sc),
        Some(0) => Err("--threads must be positive".to_string()),
        Some(t) => rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .map_err(|_| "failed to build worker pool".to_string())?
            .install(|| run_inner(sc)),
    }
}

fn run_inner(sc: &Scenario) -> Result<ScenarioRun, String> {
    let (n, families) = match (sc.coords, sc.dims) {
        (CoordKind::I64, 2) => run_i64::<2>(sc),
        (CoordKind::I64, 3) => run_i64::<3>(sc),
        (CoordKind::F64, 2) => run_f64::<2>(sc),
        (CoordKind::F64, 3) => run_f64::<3>(sc),
        (_, d) => Err(format!("unsupported dims {d}")),
    }?;

    // Cross-family agreement: every family answered the same queries over the
    // same data, so the probe checksums must be identical.
    if let Some((first, rest)) = families.split_first() {
        for fam in rest {
            if fam.probes != first.probes || fam.final_state != first.final_state {
                return Err(format!(
                    "scenario {:?}: {} disagrees with {} (probe or final-state \
                     checksum mismatch — an index family is answering queries \
                     incorrectly)",
                    sc.name, fam.family, first.family
                ));
            }
        }
    }

    Ok(ScenarioRun {
        name: sc.name.clone(),
        distribution: if sc.source.is_some() {
            "file".to_string()
        } else {
            sc.distribution.name().to_string()
        },
        coords: sc.coords.name().to_string(),
        dims: sc.dims,
        n,
        seed: sc.seed,
        threads: rayon::current_num_threads(),
        families,
    })
}

fn probe_set_i64<const D: usize>(
    sc: &Scenario,
    data: &[PointI<D>],
    max_coord: i64,
) -> ProbeSet<i64, D> {
    ProbeSet {
        knn_ind: workloads::ind_queries(data, sc.queries.knn_ind, sc.seed ^ 0x51),
        knn_ood: workloads::ood_queries::<D>(max_coord, sc.queries.knn_ood, sc.seed ^ 0x52),
        ks: sc.queries.ks.clone(),
        ranges: workloads::range_queries(
            data,
            max_coord,
            sc.queries.range_target,
            sc.queries.ranges,
            sc.seed ^ 0x53,
        ),
    }
}

/// Resolve the scenario's dataset: load the declared file source, or
/// generate from the distribution. Returns the points plus the effective
/// `max_coord` (file sources may derive it from the data — see the
/// [`Scenario`] field docs).
pub(crate) fn source_data_i64<const D: usize>(
    sc: &Scenario,
) -> Result<(Vec<PointI<D>>, i64), String> {
    match &sc.source {
        Some(src) => {
            let mut data = datafile::load::<D>(std::path::Path::new(src))?;
            if sc.n > 0 {
                if data.len() < sc.n {
                    return Err(format!(
                        "{src}: file holds {} points, scenario wants n = {}",
                        data.len(),
                        sc.n
                    ));
                }
                data.truncate(sc.n);
            }
            let max_coord = if sc.max_coord > 0 {
                sc.max_coord
            } else {
                datafile::derive_max_coord(&data)
            };
            Ok((data, max_coord))
        }
        None => Ok((
            sc.distribution.generate::<D>(sc.n, sc.max_coord, sc.seed),
            sc.max_coord,
        )),
    }
}

/// Everything the executor and the differential replay share per scenario:
/// generated data, the probe query mix, the universe and the build options —
/// factored so both paths can never drift onto different inputs.
struct Setup<T: Coord, const D: usize> {
    data: Vec<Point<T, D>>,
    ps: ProbeSet<T, D>,
    universe: Rect<T, D>,
    opts: BuildOptions<T, D>,
    /// Effective dataset size: `sc.n` for synthetic data, the (possibly
    /// truncated) file length for file sources.
    n: usize,
}

fn build_opts<T: Coord, const D: usize>(universe: Rect<T, D>) -> BuildOptions<T, D> {
    // Leaf sizes are per family *instance* (sweepable), so they are applied
    // at create time, not here.
    BuildOptions::with_universe(universe)
}

fn setup_i64<const D: usize>(sc: &Scenario) -> Result<Setup<i64, D>, String> {
    let (data, max_coord) = source_data_i64::<D>(sc)?;
    let ps = probe_set_i64(sc, &data, max_coord);
    let universe = match sc.source {
        Some(_) => datafile::derive_universe(&data, max_coord),
        None => workloads::universe::<D>(max_coord),
    };
    Ok(Setup {
        n: data.len(),
        data,
        ps,
        universe,
        opts: build_opts(universe),
    })
}

fn to_f64_point<const D: usize>(p: &PointI<D>) -> Point<f64, D> {
    Point::new(p.coords.map(|c| c as f64))
}

fn setup_f64<const D: usize>(sc: &Scenario) -> Result<Setup<f64, D>, String> {
    // Float scenarios reuse the integer generators (exact in f64 for the
    // supported domains), so i64 and f64 runs of the same scenario shape see
    // geometrically identical data.
    let is = setup_i64::<D>(sc)?;
    let universe = Rect::from_corners(to_f64_point(&is.universe.lo), to_f64_point(&is.universe.hi));
    Ok(Setup {
        data: is.data.iter().map(to_f64_point).collect(),
        ps: ProbeSet {
            knn_ind: is.ps.knn_ind.iter().map(to_f64_point).collect(),
            knn_ood: is.ps.knn_ood.iter().map(to_f64_point).collect(),
            ks: is.ps.ks,
            ranges: is
                .ps
                .ranges
                .iter()
                .map(|r| Rect::from_corners(to_f64_point(&r.lo), to_f64_point(&r.hi)))
                .collect(),
        },
        universe,
        opts: build_opts(universe),
        n: is.n,
    })
}

fn run_i64<const D: usize>(sc: &Scenario) -> Result<(usize, Vec<FamilyRun>), String>
where
    HilbertCurve: SfcCurve<D>,
    MortonCurve: SfcCurve<D>,
{
    let s = setup_i64::<D>(sc)?;
    let runs = run_typed(
        sc,
        s.n,
        &s.data,
        &s.ps,
        &s.universe,
        &|family, pts, leaf| {
            let mut opts = s.opts.clone();
            opts.leaf_size = leaf;
            registry::create::<D>(family, pts, &opts)
        },
    )?;
    Ok((s.n, runs))
}

fn run_f64<const D: usize>(sc: &Scenario) -> Result<(usize, Vec<FamilyRun>), String>
where
    HilbertCurve: SfcCurve<D>,
    MortonCurve: SfcCurve<D>,
{
    let s = setup_f64::<D>(sc)?;
    let runs = run_typed(
        sc,
        s.n,
        &s.data,
        &s.ps,
        &s.universe,
        &|family, pts, leaf| {
            let mut opts = s.opts.clone();
            opts.leaf_size = leaf;
            registry::create_f64::<D>(family, pts, &opts)
        },
    )?;
    Ok((s.n, runs))
}

/// Index constructor used by the executor: family name, build points, and
/// the instance's leaf-size override.
type Create<'a, T, const D: usize> = dyn Fn(&str, &[Point<T, D>], Option<usize>) -> Result<Box<dyn DynIndex<T, D>>, RegistryError>
    + 'a;

/// A family index and its lockstep brute-force oracle.
type DiffPair<T, const D: usize> = (Box<dyn DynIndex<T, D>>, Box<dyn DynIndex<T, D>>);

fn run_typed<T: ScenarioCoord, const D: usize>(
    sc: &Scenario,
    n: usize,
    data: &[Point<T, D>],
    ps: &ProbeSet<T, D>,
    universe: &Rect<T, D>,
    create: &Create<'_, T, D>,
) -> Result<Vec<FamilyRun>, String> {
    let mut out = Vec::with_capacity(sc.families.len());
    for spec in &sc.families {
        let family = spec.family;
        let mut inserted = 0usize;
        let mut deleted = 0usize;
        let mut index: Option<Box<dyn DynIndex<T, D>>> = None;
        let mut probes = Vec::new();
        let mut probe_secs = Vec::new();
        let mut update_secs = 0.0f64;
        for step in &sc.schedule {
            match step {
                Step::Build(amount) => {
                    let take = amount.resolve(n).min(n);
                    let t = Instant::now();
                    index =
                        Some(create(family, &data[..take], spec.leaf).map_err(|e| e.to_string())?);
                    update_secs += t.elapsed().as_secs_f64();
                    inserted = take;
                }
                Step::Insert(amount) => {
                    let idx = index.as_mut().expect("schedule starts with build");
                    let take = amount.resolve(n).min(n - inserted);
                    let t = Instant::now();
                    idx.batch_insert(&data[inserted..inserted + take]);
                    update_secs += t.elapsed().as_secs_f64();
                    inserted += take;
                }
                Step::Delete(amount) => {
                    let idx = index.as_mut().expect("schedule starts with build");
                    let take = amount.resolve(n).min(inserted - deleted);
                    let t = Instant::now();
                    idx.batch_delete(&data[deleted..deleted + take]);
                    update_secs += t.elapsed().as_secs_f64();
                    deleted += take;
                }
                Step::Probe => {
                    let idx = index.as_ref().expect("schedule starts with build");
                    let t = Instant::now();
                    probes.push(run_probe(&**idx, ps));
                    probe_secs.push(t.elapsed().as_secs_f64());
                }
            }
        }
        let idx = index.expect("schedule starts with build");
        idx.check_invariants();
        out.push(FamilyRun {
            family: spec.label.clone(),
            probes,
            probe_secs,
            final_len: idx.len(),
            final_state: state_checksum(&*idx, universe),
            update_secs,
        });
    }
    Ok(out)
}

fn knn_checksum<T: ScenarioCoord, const D: usize>(
    index: &dyn DynIndex<T, D>,
    queries: &[Point<T, D>],
    ks: &[usize],
) -> u64 {
    // Sweeping several `k` values chains their folds; a single-entry sweep
    // produces exactly the pre-sweep checksum, keeping old goldens valid.
    if queries.is_empty() || ks.iter().all(|&k| k == 0) {
        return 0;
    }
    let mut h = FNV_OFFSET;
    for &k in ks {
        if k == 0 {
            continue;
        }
        let answers = index.knn_batch(queries, k);
        for (q, nbrs) in queries.iter().zip(&answers) {
            h = fold(h, nbrs.len() as u64);
            for p in nbrs {
                let (lo, hi) = T::dist_bits(q.dist_sq(p));
                h = fold(fold(h, lo), hi);
            }
        }
    }
    h
}

fn points_checksum<T: ScenarioCoord, const D: usize>(h: u64, sorted: &[Point<T, D>]) -> u64 {
    let mut h = fold(h, sorted.len() as u64);
    for p in sorted {
        for c in p.coords {
            h = fold(h, c.coord_bits());
        }
    }
    h
}

fn run_probe<T: ScenarioCoord, const D: usize>(
    index: &dyn DynIndex<T, D>,
    ps: &ProbeSet<T, D>,
) -> ProbeOutcome {
    let knn_ind = knn_checksum(index, &ps.knn_ind, &ps.ks);
    let knn_ood = knn_checksum(index, &ps.knn_ood, &ps.ks);
    let (range_count, range_list) = if ps.ranges.is_empty() {
        (0, 0)
    } else {
        let counts = index.range_count_batch(&ps.ranges);
        let mut hc = FNV_OFFSET;
        for c in counts {
            hc = fold(hc, c as u64);
        }
        let mut hl = FNV_OFFSET;
        for mut answer in index.range_list_batch(&ps.ranges) {
            answer.sort_unstable();
            hl = points_checksum(hl, &answer);
        }
        (hc, hl)
    };
    ProbeOutcome {
        live: index.len(),
        knn_ind,
        knn_ood,
        range_count,
        range_list,
    }
}

fn state_checksum<T: ScenarioCoord, const D: usize>(
    index: &dyn DynIndex<T, D>,
    universe: &Rect<T, D>,
) -> u64 {
    let mut contents = index.range_list(universe);
    contents.sort_unstable();
    points_checksum(FNV_OFFSET, &contents)
}

/// Result of a differential replay: how much was compared.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiffReport {
    /// Probe steps compared.
    pub probes: usize,
    /// Individual query answers compared exactly.
    pub answers: usize,
}

/// Replay a scenario's schedule with `family` and the brute-force oracle in
/// lockstep, asserting **exact** agreement of every kNN distance list, every
/// range count and every (sorted) range list at every probe, plus the final
/// index contents. Returns what was compared, or a description of the first
/// disagreement.
pub fn run_differential(sc: &Scenario, family: &str) -> Result<DiffReport, String> {
    match (sc.coords, sc.dims) {
        (CoordKind::I64, 2) => diff_i64::<2>(sc, family),
        (CoordKind::I64, 3) => diff_i64::<3>(sc, family),
        (CoordKind::F64, 2) => diff_f64::<2>(sc, family),
        (CoordKind::F64, 3) => diff_f64::<3>(sc, family),
        (_, d) => Err(format!("unsupported dims {d}")),
    }
}

fn diff_i64<const D: usize>(sc: &Scenario, family: &str) -> Result<DiffReport, String>
where
    HilbertCurve: SfcCurve<D>,
    MortonCurve: SfcCurve<D>,
{
    let s = setup_i64::<D>(sc)?;
    diff_typed(
        sc,
        family,
        s.n,
        &s.data,
        &s.ps,
        &s.universe,
        &|name, pts, leaf| {
            let mut opts = s.opts.clone();
            opts.leaf_size = leaf;
            registry::create::<D>(name, pts, &opts)
        },
    )
}

fn diff_f64<const D: usize>(sc: &Scenario, family: &str) -> Result<DiffReport, String>
where
    HilbertCurve: SfcCurve<D>,
    MortonCurve: SfcCurve<D>,
{
    let s = setup_f64::<D>(sc)?;
    diff_typed(
        sc,
        family,
        s.n,
        &s.data,
        &s.ps,
        &s.universe,
        &|name, pts, leaf| {
            let mut opts = s.opts.clone();
            opts.leaf_size = leaf;
            registry::create_f64::<D>(name, pts, &opts)
        },
    )
}

fn dists_equal<T: Coord>(a: &[T::Dist], b: &[T::Dist]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| T::dist_cmp(*x, *y) == std::cmp::Ordering::Equal)
}

#[allow(clippy::too_many_arguments)]
fn diff_typed<T: ScenarioCoord, const D: usize>(
    sc: &Scenario,
    family: &str,
    n: usize,
    data: &[Point<T, D>],
    ps: &ProbeSet<T, D>,
    universe: &Rect<T, D>,
    create: &Create<'_, T, D>,
) -> Result<DiffReport, String> {
    let family =
        registry::resolve_name(family).ok_or_else(|| format!("unknown family {family:?}"))?;
    // Replay with the leaf size of the scenario's first instance of this
    // family (the paper default when the family isn't listed).
    let leaf = sc
        .families
        .iter()
        .find(|f| f.family == family)
        .and_then(|f| f.leaf);
    let mut report = DiffReport::default();
    let mut index: Option<DiffPair<T, D>> = None;
    let mut inserted = 0usize;
    let mut deleted = 0usize;

    let compare = |probe_no: usize,
                   idx: &dyn DynIndex<T, D>,
                   oracle: &dyn DynIndex<T, D>|
     -> Result<usize, String> {
        let mut answers = 0usize;
        for &k in &ps.ks {
            for (label, queries) in [("knn-ind", &ps.knn_ind), ("knn-ood", &ps.knn_ood)] {
                if k == 0 || queries.is_empty() {
                    continue;
                }
                let got = idx.knn_batch(queries, k);
                let want = oracle.knn_batch(queries, k);
                for (i, q) in queries.iter().enumerate() {
                    let gd: Vec<T::Dist> = got[i].iter().map(|p| q.dist_sq(p)).collect();
                    let wd: Vec<T::Dist> = want[i].iter().map(|p| q.dist_sq(p)).collect();
                    if !dists_equal::<T>(&gd, &wd) {
                        return Err(format!(
                            "{family}: probe {probe_no} {label} k={k} query {i}: \
                             {gd:?} != oracle {wd:?}"
                        ));
                    }
                    answers += 1;
                }
            }
        }
        if !ps.ranges.is_empty() {
            let got_counts = idx.range_count_batch(&ps.ranges);
            let want_counts = oracle.range_count_batch(&ps.ranges);
            if got_counts != want_counts {
                return Err(format!(
                    "{family}: probe {probe_no} range_count {got_counts:?} != oracle {want_counts:?}"
                ));
            }
            answers += ps.ranges.len();
            let mut got_lists = idx.range_list_batch(&ps.ranges);
            let mut want_lists = oracle.range_list_batch(&ps.ranges);
            for (i, (g, w)) in got_lists.iter_mut().zip(want_lists.iter_mut()).enumerate() {
                g.sort_unstable();
                w.sort_unstable();
                if g != w {
                    return Err(format!(
                        "{family}: probe {probe_no} range_list {i} disagrees with oracle \
                         ({} vs {} points)",
                        g.len(),
                        w.len()
                    ));
                }
                answers += 1;
            }
        }
        Ok(answers)
    };

    for step in &sc.schedule {
        match step {
            Step::Build(amount) => {
                let take = amount.resolve(n).min(n);
                index = Some((
                    create(family, &data[..take], leaf).map_err(|e| e.to_string())?,
                    create("brute-force", &data[..take], None).map_err(|e| e.to_string())?,
                ));
                inserted = take;
            }
            Step::Insert(amount) => {
                let (idx, oracle) = index.as_mut().expect("schedule starts with build");
                let take = amount.resolve(n).min(n - inserted);
                idx.batch_insert(&data[inserted..inserted + take]);
                oracle.batch_insert(&data[inserted..inserted + take]);
                inserted += take;
            }
            Step::Delete(amount) => {
                let (idx, oracle) = index.as_mut().expect("schedule starts with build");
                let take = amount.resolve(n).min(inserted - deleted);
                let removed = idx.batch_delete(&data[deleted..deleted + take]);
                let removed_oracle = oracle.batch_delete(&data[deleted..deleted + take]);
                if removed != removed_oracle {
                    return Err(format!(
                        "{family}: batch_delete removed {removed}, oracle removed {removed_oracle}"
                    ));
                }
                deleted += take;
            }
            Step::Probe => {
                let (idx, oracle) = index.as_ref().expect("schedule starts with build");
                report.answers += compare(report.probes, &**idx, &**oracle)?;
                report.probes += 1;
            }
        }
    }

    let (idx, oracle) = index.expect("schedule starts with build");
    if idx.len() != oracle.len() {
        return Err(format!(
            "{family}: final len {} != oracle {}",
            idx.len(),
            oracle.len()
        ));
    }
    let mut got = idx.range_list(universe);
    let mut want = oracle.range_list(universe);
    got.sort_unstable();
    want.sort_unstable();
    if got != want {
        return Err(format!("{family}: final contents disagree with oracle"));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    const SMALL: &str = "\
[scenario]
name = exec-small
seed = 5
[data]
distribution = varden
n = 600
max-coord = 100000
[indexes]
families = p-orth, brute-force
[queries]
k = 4
knn-ind = 10
knn-ood = 10
ranges = 6
range-target = 30
[schedule]
step = build 50%
step = probe
step = insert 50%
step = delete 25%
step = probe
";

    #[test]
    fn run_is_deterministic_and_cross_family_consistent() {
        let sc = scenario::parse(SMALL).unwrap();
        let a = run(&sc, None).unwrap();
        let b = run(&sc, None).unwrap();
        assert_eq!(a.families.len(), 2);
        for (fa, fb) in a.families.iter().zip(&b.families) {
            assert_eq!(fa.probes, fb.probes);
            assert_eq!(fa.final_state, fb.final_state);
        }
        // Pinned to one worker the checksums must not move either.
        let c = run(&sc, Some(1)).unwrap();
        for (fa, fc) in a.families.iter().zip(&c.families) {
            assert_eq!(fa.probes, fc.probes);
            assert_eq!(fa.final_state, fc.final_state);
        }
        // 600 built+inserted, 150 deleted.
        assert_eq!(a.families[0].final_len, 450);
        assert_eq!(a.families[0].probes.len(), 2);
        assert_eq!(a.families[0].probes[0].live, 300);
    }

    #[test]
    fn differential_replay_agrees() {
        let sc = scenario::parse(SMALL).unwrap();
        let report = run_differential(&sc, "spac-h").unwrap();
        assert_eq!(report.probes, 2);
        assert!(report.answers > 0);
    }

    #[test]
    fn file_sourced_scenario_runs_and_agrees_with_oracle() {
        let dir = std::env::temp_dir().join(format!("psi-exec-file-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("pts.csv");
        // A deterministic little point cloud with some duplicates-free
        // clustering, written as the CSV format real exports produce.
        let mut body = String::from("# x,y\n");
        for i in 0..400i64 {
            let x = (i * 37) % 1000;
            let y = (i * 91 + i * i) % 1000;
            body.push_str(&format!("{x},{y}\n"));
        }
        std::fs::write(&csv, body).unwrap();
        let text = format!(
            "[scenario]\nname = file-exec\nseed = 3\n[data]\nsource = file:{}\n\
             [indexes]\nfamilies = spac-h, brute-force\n[queries]\nk = 4\n\
             knn-ind = 8\nknn-ood = 8\nranges = 4\nrange-target = 20\n\
             [schedule]\nstep = build 50%\nstep = probe\nstep = insert 50%\n\
             step = delete 25%\nstep = probe\n",
            csv.display()
        );
        let sc = scenario::parse(&text).unwrap();
        let run_a = run(&sc, None).unwrap();
        assert_eq!(run_a.n, 400);
        assert_eq!(run_a.distribution, "file");
        assert_eq!(run_a.families[0].final_len, 300);
        // Checksums are stable across reruns and families agree (run()
        // checks the latter internally); the differential replay agrees
        // with the oracle answer by answer.
        let run_b = run(&sc, None).unwrap();
        assert_eq!(run_a.families[0].probes, run_b.families[0].probes);
        let diff = run_differential(&sc, "pkd").unwrap();
        assert_eq!(diff.probes, 2);
        // An explicit n truncates; asking for more points than the file
        // holds is an error, not a silent short run.
        let sc_n =
            scenario::parse(&text.replace("[indexes]", "n = 100\nmax-coord = 1000\n[indexes]"))
                .unwrap();
        assert_eq!(run(&sc_n, None).unwrap().n, 100);
        let sc_over = scenario::parse(&text.replace("[indexes]", "n = 4000\n[indexes]")).unwrap();
        assert!(run(&sc_over, None).unwrap_err().contains("file holds"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_on_fresh_oracle_matches_itself() {
        // f64 path smoke: same scenario shape, float coordinates.
        let text = SMALL
            .replace("families = p-orth, brute-force", "families = all")
            .replace("max-coord = 100000", "max-coord = 100000\ncoords = f64");
        let sc = scenario::parse(&text).unwrap();
        let names: Vec<&str> = sc.families.iter().map(|f| f.family).collect();
        assert_eq!(names, registry::float_names());
        let r = run(&sc, None).unwrap();
        assert_eq!(r.families.len(), registry::float_names().len());
    }
}
