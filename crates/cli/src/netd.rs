//! The `psi-netd` daemon: stand up a [`PsiServer`] over a synthetic dataset
//! and serve the ψ-net wire protocol on a TCP address.
//!
//! The binary in `src/bin/psi-netd.rs` is a thin shell around this module:
//! [`parse_args`] turns flags into a [`NetdConfig`], [`boot`] builds the
//! dataset, the sharded server and the socket front-end, and the binary then
//! blocks until stdin reaches EOF — so a driving script (or `bench_net`)
//! holds the daemon up exactly as long as it holds the pipe open.

use crate::scenario::CoordKind;
use crate::statsd::StatsEndpoint;
use psi::registry::{self, BuildOptions};
use psi::{HilbertCurve, MortonCurve, SfcCurve};
use psi_geometry::{Point, PointI, Rect};
use psi_net::wire::WireCoord;
use psi_net::{NetConfig, NetServer, Transport};
use psi_server::{DurabilityConfig, FsyncPolicy, IndexFactory, PsiServer, ServeConfig, ServeCoord};
use psi_workloads::{self as workloads, Distribution};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;

/// Everything `psi-netd` needs to boot, as parsed from its command line.
#[derive(Clone, Debug)]
pub struct NetdConfig {
    /// Address to bind (numeric host:port; port 0 picks an ephemeral port).
    pub addr: SocketAddr,
    /// Index family served (canonical registry name).
    pub family: &'static str,
    /// Spatial shards.
    pub shards: usize,
    /// Coalescing window (`ServeConfig::coalesce_max_batch`).
    pub coalesce: usize,
    /// Socket front-end flavour.
    pub transport: Transport,
    /// `false` routes queries through per-request direct handles instead of
    /// the coalescer (the `--direct` flag).
    pub coalesced: bool,
    /// Coordinate type of the synthetic dataset.
    pub coords: CoordKind,
    /// Dimensionality (2 or 3).
    pub dims: usize,
    /// Dataset size.
    pub n: usize,
    /// Synthetic distribution.
    pub distribution: Distribution,
    /// Coordinate upper bound.
    pub max_coord: i64,
    /// Dataset seed.
    pub seed: u64,
    /// Durability directory (`--data-dir`); `None` serves memory-only.
    pub data_dir: Option<PathBuf>,
    /// WAL fsync policy (`--fsync`); only meaningful with `data_dir`.
    pub fsync: FsyncPolicy,
    /// Plaintext metrics endpoint address (`--stats-addr`); `None` (the
    /// default) exposes metrics over the wire protocol (`OP_STATS`) only.
    pub stats_addr: Option<SocketAddr>,
    /// Slow-query log threshold in milliseconds (`--slow-ms`); `None`
    /// leaves the log disabled.
    pub slow_ms: Option<u64>,
}

impl Default for NetdConfig {
    fn default() -> Self {
        NetdConfig {
            addr: "127.0.0.1:0".parse().expect("literal addr"),
            family: "pkd",
            shards: 2,
            coalesce: 32,
            transport: Transport::Evented,
            coalesced: true,
            coords: CoordKind::I64,
            dims: 2,
            n: 100_000,
            distribution: Distribution::Uniform,
            max_coord: 1_000_000,
            seed: 42,
            data_dir: None,
            fsync: FsyncPolicy::default(),
            stats_addr: None,
            slow_ms: None,
        }
    }
}

/// Usage text for `--help` and flag errors.
pub fn usage() -> &'static str {
    "usage: psi-netd [flags]\n\
     \n\
     Serve the \u{3c8}-net wire protocol over a synthetic dataset.\n\
     The daemon prints one `listening on HOST:PORT ...` line to stdout,\n\
     then runs until stdin reaches EOF (close the pipe to stop it).\n\
     \n\
     --addr HOST:PORT    bind address (default 127.0.0.1:0 = ephemeral port)\n\
     --family NAME       index family to serve (default pkd)\n\
     --shards N          spatial shards (default 2)\n\
     --coalesce N        coalescing window, requests per flush (default 32)\n\
     --transport NAME    threaded | evented (default evented)\n\
     --direct            bypass the coalescer (per-request direct handles)\n\
     --coords KIND       i64 | f64 (default i64)\n\
     --dims D            2 | 3 (default 2)\n\
     --n N               synthetic dataset size (default 100000)\n\
     --distribution NAME any workloads distribution (default uniform)\n\
     --max-coord C       coordinate upper bound (default 1000000)\n\
     --seed S            dataset seed (default 42)\n\
     --data-dir PATH     durability directory: WAL + checkpoints; recovers\n\
     \u{20}                    existing state on start (default: memory-only)\n\
     --fsync POLICY      every-batch | every-N | os (default every-batch;\n\
     \u{20}                    requires --data-dir)\n\
     --stats-addr H:P    also serve a plaintext metrics endpoint here\n\
     \u{20}                    (Prometheus-style text + recent events; port 0\n\
     \u{20}                    picks an ephemeral port, echoed in the banner)\n\
     --slow-ms N         record queries slower than N ms in the slow-query\n\
     \u{20}                    log (shown on the stats endpoint; default off)\n"
}

fn value<'a>(flag: &str, it: &mut impl Iterator<Item = &'a str>) -> Result<&'a str, String> {
    it.next().ok_or_else(|| format!("{flag} expects a value"))
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("{flag}: bad value {v:?}"))
}

/// Parse `psi-netd` flags (everything after argv[0]).
pub fn parse_args<S: AsRef<str>>(args: &[S]) -> Result<NetdConfig, String> {
    let mut cfg = NetdConfig::default();
    let mut fsync_set = false;
    let mut it = args.iter().map(AsRef::as_ref);
    while let Some(flag) = it.next() {
        match flag {
            "--addr" => {
                let v = value(flag, &mut it)?;
                cfg.addr = v
                    .parse()
                    .map_err(|_| format!("--addr: bad address {v:?} (numeric host:port)"))?;
            }
            "--family" => {
                let v = value(flag, &mut it)?;
                cfg.family = registry::resolve_name(v)
                    .ok_or_else(|| format!("--family: unknown family {v:?}"))?;
            }
            "--shards" => cfg.shards = parse_num(flag, value(flag, &mut it)?)?,
            "--coalesce" => cfg.coalesce = parse_num(flag, value(flag, &mut it)?)?,
            "--transport" => {
                let v = value(flag, &mut it)?;
                cfg.transport = Transport::parse(v).ok_or_else(|| {
                    format!("--transport: expected threaded or evented, got {v:?}")
                })?;
            }
            "--direct" => cfg.coalesced = false,
            "--coords" => {
                cfg.coords = match value(flag, &mut it)? {
                    "i64" => CoordKind::I64,
                    "f64" => CoordKind::F64,
                    v => return Err(format!("--coords: expected i64 or f64, got {v:?}")),
                }
            }
            "--dims" => {
                cfg.dims = parse_num(flag, value(flag, &mut it)?)?;
                if !matches!(cfg.dims, 2 | 3) {
                    return Err(format!("--dims: expected 2 or 3, got {}", cfg.dims));
                }
            }
            "--n" => cfg.n = parse_num(flag, value(flag, &mut it)?)?,
            "--distribution" => {
                let v = value(flag, &mut it)?;
                cfg.distribution = Distribution::from_name(v)
                    .ok_or_else(|| format!("--distribution: unknown distribution {v:?}"))?;
            }
            "--max-coord" => cfg.max_coord = parse_num(flag, value(flag, &mut it)?)?,
            "--seed" => cfg.seed = parse_num(flag, value(flag, &mut it)?)?,
            "--data-dir" => cfg.data_dir = Some(PathBuf::from(value(flag, &mut it)?)),
            "--stats-addr" => {
                let v = value(flag, &mut it)?;
                cfg.stats_addr =
                    Some(v.parse().map_err(|_| {
                        format!("--stats-addr: bad address {v:?} (numeric host:port)")
                    })?);
            }
            "--slow-ms" => {
                let ms: u64 = parse_num(flag, value(flag, &mut it)?)?;
                if ms == 0 {
                    return Err("--slow-ms must be positive".to_string());
                }
                cfg.slow_ms = Some(ms);
            }
            "--fsync" => {
                let v = value(flag, &mut it)?;
                cfg.fsync = FsyncPolicy::parse(v).ok_or_else(|| {
                    format!("--fsync: expected every-batch, every-N or os, got {v:?}")
                })?;
                fsync_set = true;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if cfg.shards == 0 {
        return Err("--shards must be positive".to_string());
    }
    if cfg.n == 0 {
        return Err("--n must be positive".to_string());
    }
    if fsync_set && cfg.data_dir.is_none() {
        return Err("--fsync requires --data-dir".to_string());
    }
    Ok(cfg)
}

/// A live daemon: the socket front-end plus the server it fronts. Dropping
/// (or [`RunningNetd::shutdown`]) stops the transport threads *first*, then
/// releases the [`PsiServer`] — the order the coalescer requires.
pub struct RunningNetd {
    net: Option<NetServer>,
    stats: Option<StatsEndpoint>,
    _server: Box<dyn std::any::Any + Send>,
    banner: String,
}

impl RunningNetd {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.net.as_ref().expect("live until drop").addr()
    }

    /// The metrics endpoint's bound address, when `--stats-addr` was given.
    pub fn stats_addr(&self) -> Option<SocketAddr> {
        self.stats.as_ref().map(StatsEndpoint::addr)
    }

    /// The one-line `listening on ...` banner the binary prints.
    pub fn banner(&self) -> &str {
        &self.banner
    }

    /// Stop the socket front-end, then the server.
    pub fn shutdown(mut self) {
        if let Some(net) = self.net.take() {
            net.shutdown();
        }
        if let Some(stats) = self.stats.take() {
            stats.shutdown();
        }
    }
}

impl Drop for RunningNetd {
    fn drop(&mut self) {
        if let Some(net) = self.net.take() {
            net.shutdown();
        }
    }
}

/// Build the dataset and server and bind the socket front-end.
pub fn boot(cfg: &NetdConfig) -> Result<RunningNetd, String> {
    if let Some(ms) = cfg.slow_ms {
        psi_obs::slowlog::set_threshold(Some(std::time::Duration::from_millis(ms)));
    }
    match (cfg.coords, cfg.dims) {
        (CoordKind::I64, 2) => boot_i64::<2>(cfg),
        (CoordKind::I64, 3) => boot_i64::<3>(cfg),
        (CoordKind::F64, 2) => boot_f64::<2>(cfg),
        (CoordKind::F64, 3) => boot_f64::<3>(cfg),
        (_, d) => Err(format!("unsupported dims {d}")),
    }
}

fn boot_i64<const D: usize>(cfg: &NetdConfig) -> Result<RunningNetd, String>
where
    HilbertCurve: SfcCurve<D>,
    MortonCurve: SfcCurve<D>,
{
    let data = cfg
        .distribution
        .generate::<D>(cfg.n, cfg.max_coord, cfg.seed);
    let universe = workloads::universe::<D>(cfg.max_coord);
    let opts = BuildOptions::with_universe(universe);
    let family = cfg.family;
    registry::create::<D>(family, &data[..0], &opts).map_err(|e| e.to_string())?;
    let factory: IndexFactory<i64, D> = Arc::new(move |pts: &[PointI<D>]| {
        registry::create::<D>(family, pts, &opts).expect("family validated above")
    });
    boot_typed(cfg, &data, &universe, factory)
}

fn boot_f64<const D: usize>(cfg: &NetdConfig) -> Result<RunningNetd, String>
where
    HilbertCurve: SfcCurve<D>,
    MortonCurve: SfcCurve<D>,
{
    let idata = cfg
        .distribution
        .generate::<D>(cfg.n, cfg.max_coord, cfg.seed);
    let data: Vec<Point<f64, D>> = idata
        .iter()
        .map(|p| Point::new(p.coords.map(|c| c as f64)))
        .collect();
    let universe = Rect::from_corners(Point::new([0.0; D]), Point::new([cfg.max_coord as f64; D]));
    let opts = BuildOptions::with_universe(universe);
    let family = cfg.family;
    registry::create_f64::<D>(family, &data[..0], &opts).map_err(|e| e.to_string())?;
    let factory: IndexFactory<f64, D> = Arc::new(move |pts: &[Point<f64, D>]| {
        registry::create_f64::<D>(family, pts, &opts).expect("family validated above")
    });
    boot_typed(cfg, &data, &universe, factory)
}

fn boot_typed<T: ServeCoord + WireCoord, const D: usize>(
    cfg: &NetdConfig,
    data: &[Point<T, D>],
    universe: &Rect<T, D>,
    factory: IndexFactory<T, D>,
) -> Result<RunningNetd, String> {
    let server = Arc::new(PsiServer::new(
        data,
        universe,
        ServeConfig {
            shards: cfg.shards,
            coalesce_max_batch: cfg.coalesce,
            writer_queue: 8,
            durability: cfg.data_dir.as_ref().map(|dir| DurabilityConfig {
                dir: dir.clone(),
                fsync: cfg.fsync,
            }),
            ..Default::default()
        },
        factory,
    ));
    let net = NetServer::spawn(
        Arc::clone(&server),
        cfg.addr,
        NetConfig {
            transport: cfg.transport,
            coalesce: cfg.coalesced,
        },
    )
    .map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let stats = match cfg.stats_addr {
        Some(addr) => Some(
            StatsEndpoint::bind(addr).map_err(|e| format!("bind stats endpoint {addr}: {e}"))?,
        ),
        None => None,
    };
    let mut banner = format!(
        "listening on {} family={} coords={} dims={} n={} dist={} shards={} transport={} coalesce={} durable={}",
        net.addr(),
        cfg.family,
        cfg.coords.name(),
        D,
        cfg.n,
        cfg.distribution.name(),
        cfg.shards,
        cfg.transport.name(),
        if cfg.coalesced {
            cfg.coalesce.to_string()
        } else {
            "off".to_string()
        },
        if server.is_durable() {
            cfg.fsync.name()
        } else {
            "off".to_string()
        },
    );
    // The suffix is conditional so scripts that parse the banner (and tests
    // that pin its tail) only see it when the flag was given.
    if let Some(ep) = &stats {
        banner.push_str(&format!(" stats={}", ep.addr()));
    }
    Ok(RunningNetd {
        net: Some(net),
        stats,
        _server: Box::new(server),
        banner,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_net::client::WireClient;

    #[test]
    fn flags_parse_and_validate() {
        let cfg = parse_args::<&str>(&[]).unwrap();
        assert_eq!(cfg.family, "pkd");
        assert_eq!(cfg.transport, Transport::Evented);
        assert!(cfg.coalesced);

        let cfg = parse_args(&[
            "--addr",
            "127.0.0.1:7471",
            "--family",
            "spac-h",
            "--shards",
            "4",
            "--coalesce",
            "8",
            "--transport",
            "threaded",
            "--direct",
            "--coords",
            "f64",
            "--dims",
            "3",
            "--n",
            "5000",
            "--distribution",
            "varden",
            "--max-coord",
            "99",
            "--seed",
            "7",
        ])
        .unwrap();
        assert_eq!(cfg.addr.port(), 7471);
        assert_eq!(cfg.family, "spac-h");
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.coalesce, 8);
        assert_eq!(cfg.transport, Transport::Threaded);
        assert!(!cfg.coalesced);
        assert_eq!(cfg.coords, CoordKind::F64);
        assert_eq!(cfg.dims, 3);
        assert_eq!(cfg.n, 5000);
        assert_eq!(cfg.distribution, Distribution::Varden);
        assert_eq!(cfg.max_coord, 99);
        assert_eq!(cfg.seed, 7);

        let cfg = parse_args(&["--stats-addr", "127.0.0.1:9471", "--slow-ms", "25"]).unwrap();
        assert_eq!(cfg.stats_addr.map(|a| a.port()), Some(9471));
        assert_eq!(cfg.slow_ms, Some(25));

        let cfg = parse_args(&["--data-dir", "/tmp/psi-data", "--fsync", "every-8"]).unwrap();
        assert_eq!(
            cfg.data_dir.as_deref(),
            Some(std::path::Path::new("/tmp/psi-data"))
        );
        assert_eq!(cfg.fsync, FsyncPolicy::EveryN(8));

        for bad in [
            &["--family", "nope"][..],
            &["--transport", "carrier-pigeon"],
            &["--coords", "i32"],
            &["--dims", "4"],
            &["--shards", "0"],
            &["--n", "0"],
            &["--addr", "not-an-addr"],
            &["--stats-addr", "not-an-addr"],
            &["--slow-ms", "0"],
            &["--slow-ms", "soon"],
            &["--mystery"],
            &["--seed"],
            // --fsync is a durability knob: meaningless without --data-dir.
            &["--fsync", "os"],
            &["--data-dir", "/tmp/x", "--fsync", "sometimes"],
            &["--data-dir", "/tmp/x", "--fsync", "every-0"],
        ] {
            assert!(parse_args(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn boots_and_answers_queries() {
        let mut cfg = parse_args(&["--n", "2000", "--coalesce", "4"]).unwrap();
        for transport in [Transport::Threaded, Transport::Evented] {
            cfg.transport = transport;
            let running = boot(&cfg).unwrap();
            assert!(running.banner().starts_with("listening on 127.0.0.1:"));
            let mut client: WireClient<i64, 2> = WireClient::connect(running.addr()).unwrap();
            assert_eq!(client.shards(), 2);
            let hits = client.knn(&Point::new([500_000, 500_000]), 5).unwrap();
            assert_eq!(hits.len(), 5);
            let total = client
                .range_count(&Rect::from_corners(
                    Point::new([0, 0]),
                    Point::new([1_000_000, 1_000_000]),
                ))
                .unwrap();
            assert_eq!(total, 2000);
            drop(client);
            running.shutdown();
        }
    }

    #[test]
    fn data_dir_survives_a_reboot() {
        let dir = std::env::temp_dir().join(format!("psi-netd-reboot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let world = Rect::from_corners(Point::new([0, 0]), Point::new([1_000_000, 1_000_000]));
        let cfg = parse_args(&[
            "--n",
            "500",
            "--family",
            "cpam-h",
            "--data-dir",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        {
            let running = boot(&cfg).unwrap();
            assert!(running.banner().ends_with("durable=every-batch"));
            let mut client: WireClient<i64, 2> = WireClient::connect(running.addr()).unwrap();
            client
                .apply_batch(Vec::new(), vec![Point::new([1, 2]), Point::new([3, 4])])
                .unwrap();
            // BatchOk acks the submission, not the publish: poll the epoch
            // until the writer thread lands (and WAL-logs) the batch.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while client.epoch_bounds().unwrap().map(|(_, hi)| hi) != Some(1) {
                assert!(
                    std::time::Instant::now() < deadline,
                    "epoch 1 never published"
                );
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            drop(client);
            running.shutdown();
        }
        // Reboot over the same directory: recovery must land on the same
        // epoch with the same contents, ignoring the synthetic seed data.
        let running = boot(&cfg).unwrap();
        let mut client: WireClient<i64, 2> = WireClient::connect(running.addr()).unwrap();
        assert_eq!(client.epoch_bounds().unwrap().map(|(_, hi)| hi), Some(1));
        assert_eq!(client.range_count(&world).unwrap(), 502);
        drop(client);
        running.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_endpoint_scrapes_live_metrics() {
        use std::io::{Read, Write};
        let cfg = parse_args(&["--n", "1000", "--stats-addr", "127.0.0.1:0"]).unwrap();
        let running = boot(&cfg).unwrap();
        let stats_addr = running.stats_addr().expect("flag given");
        assert!(running.banner().contains(&format!(" stats={stats_addr}")));
        // Generate traffic so the scrape has nonzero net-layer series.
        let mut client: WireClient<i64, 2> = WireClient::connect(running.addr()).unwrap();
        for _ in 0..4 {
            client.knn(&Point::new([1, 1]), 3).unwrap();
        }
        drop(client);
        let mut s = std::net::TcpStream::connect(stats_addr).unwrap();
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(text.contains("psi_net_frames_in_total{op=\"knn\"}"));
        assert!(text.contains("psi_net_request_latency_ns"));
        running.shutdown();
    }

    #[test]
    fn direct_mode_serves_f64() {
        let cfg = parse_args(&["--n", "1000", "--coords", "f64", "--direct"]).unwrap();
        let running = boot(&cfg).unwrap();
        let mut client: WireClient<f64, 2> = WireClient::connect(running.addr()).unwrap();
        let hits = client.knn(&Point::new([1.0, 2.0]), 3).unwrap();
        assert_eq!(hits.len(), 3);
    }
}
