//! Point-file loaders backing `[data] source = file:PATH` scenarios.
//!
//! Two formats, chosen by extension:
//!
//! * `.csv` — one `x,y[,z]` row per point, integer coordinates, `#`
//!   comments and blank lines allowed. The format real exports end up in.
//! * anything else — raw little-endian i64 words, row-major (`D` words per
//!   point, 8 bytes each), the zero-parse bulk format.
//!
//! Float scenarios reuse the integer loader and convert, exactly like the
//! synthetic generators do, so i64 and f64 runs of one file see
//! geometrically identical data. Malformed files are hard errors with the
//! offending line or byte count — a loader that silently skipped rows
//! would quietly change every checksum downstream.

use psi_geometry::{Point, PointI};
use std::path::Path;

/// Load a point file (see the module docs for the two formats). Never
/// returns an empty set: a scenario over zero points is a configuration
/// error, not a valid run.
pub fn load<const D: usize>(path: &Path) -> Result<Vec<PointI<D>>, String> {
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let points = if ext.eq_ignore_ascii_case("csv") {
        load_csv(path)?
    } else {
        load_bin(path)?
    };
    if points.is_empty() {
        return Err(format!("{}: file holds no points", path.display()));
    }
    Ok(points)
}

/// The smallest axis-aligned `[0, max]` domain bound covering `data`: the
/// `max-coord` a file-sourced scenario derives when none is declared.
/// Negative coordinates still produce a positive bound (query generation
/// needs one); 1 is the floor so degenerate single-origin files stay valid.
pub fn derive_max_coord<const D: usize>(data: &[PointI<D>]) -> i64 {
    data.iter()
        .flat_map(|p| p.coords.iter().map(|c| c.unsigned_abs()))
        .max()
        .map_or(1, |m| i64::try_from(m).unwrap_or(i64::MAX).max(1))
}

/// The build universe for file-sourced data: `[0, max_coord]` on every
/// axis — the synthetic generators' domain, so query generation stays
/// uniform — stretched downward to cover any negative coordinates the
/// file holds.
pub fn derive_universe<const D: usize>(
    data: &[PointI<D>],
    max_coord: i64,
) -> psi_geometry::RectI<D> {
    let mut lo = [0i64; D];
    for p in data {
        for (l, c) in lo.iter_mut().zip(p.coords.iter()) {
            *l = (*l).min(*c);
        }
    }
    psi_geometry::Rect::from_corners(Point::new(lo), Point::new([max_coord; D]))
}

fn load_csv<const D: usize>(path: &Path) -> Result<Vec<PointI<D>>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let mut coords = [0i64; D];
        for (d, c) in coords.iter_mut().enumerate() {
            let field = fields
                .next()
                .map(str::trim)
                .filter(|f| !f.is_empty())
                .ok_or_else(|| {
                    format!(
                        "{}:{}: expected {D} comma-separated coordinates, got {d}",
                        path.display(),
                        idx + 1
                    )
                })?;
            *c = field.parse().map_err(|_| {
                format!(
                    "{}:{}: bad integer coordinate {field:?}",
                    path.display(),
                    idx + 1
                )
            })?;
        }
        if fields.next().is_some() {
            return Err(format!(
                "{}:{}: more than {D} coordinates on one row",
                path.display(),
                idx + 1
            ));
        }
        out.push(Point::new(coords));
    }
    Ok(out)
}

fn load_bin<const D: usize>(path: &Path) -> Result<Vec<PointI<D>>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let stride = D * 8;
    if bytes.len() % stride != 0 {
        return Err(format!(
            "{}: {} bytes is not a whole number of {D}-dimensional points \
             ({stride} bytes each)",
            path.display(),
            bytes.len()
        ));
    }
    let mut out = Vec::with_capacity(bytes.len() / stride);
    for row in bytes.chunks_exact(stride) {
        let mut coords = [0i64; D];
        for (c, word) in coords.iter_mut().zip(row.chunks_exact(8)) {
            *c = i64::from_le_bytes(word.try_into().expect("8-byte chunk"));
        }
        out.push(Point::new(coords));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("psi-datafile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn csv_round_trips_with_comments_and_spacing() {
        let path = tmp("ok.csv");
        std::fs::write(&path, "# header comment\n1, 2\n-3,4 # inline\n\n5,6\n").unwrap();
        let pts = load::<2>(&path).unwrap();
        assert_eq!(
            pts,
            vec![Point::new([1, 2]), Point::new([-3, 4]), Point::new([5, 6])]
        );
    }

    #[test]
    fn csv_shape_errors_name_the_line() {
        for (body, what) in [
            ("1,2\n3\n", "expected 2"),
            ("1,2,3\n", "more than 2"),
            ("1,x\n", "bad integer"),
            ("# only comments\n", "no points"),
        ] {
            let path = tmp("bad.csv");
            std::fs::write(&path, body).unwrap();
            let e = load::<2>(&path).unwrap_err();
            assert!(e.contains(what), "{body:?} -> {e}");
        }
    }

    #[test]
    fn binary_round_trips_and_rejects_ragged_files() {
        let path = tmp("pts.bin");
        let mut bytes = Vec::new();
        for w in [7i64, -9, 1 << 40, 0] {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(
            load::<2>(&path).unwrap(),
            vec![Point::new([7, -9]), Point::new([1 << 40, 0])]
        );
        // The same bytes are not a whole number of 3-d points.
        assert!(load::<3>(&path).unwrap_err().contains("whole number"));
        std::fs::write(&path, &bytes[..12]).unwrap();
        assert!(load::<2>(&path).unwrap_err().contains("whole number"));
        std::fs::write(&path, b"").unwrap();
        assert!(load::<2>(&path).unwrap_err().contains("no points"));
    }

    #[test]
    fn max_coord_derivation_covers_the_data() {
        assert_eq!(derive_max_coord::<2>(&[Point::new([3, -70])]), 70);
        assert_eq!(derive_max_coord::<2>(&[Point::new([0, 0])]), 1);
        assert_eq!(derive_max_coord::<2>(&[]), 1);
        let uni = derive_universe::<2>(&[Point::new([3, -70])], 70);
        assert_eq!(uni.lo, Point::new([0, -70]));
        assert_eq!(uni.hi, Point::new([70, 70]));
    }
}
