//! Hermetic stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate (see `crates/shims/README.md`).
//!
//! Implements the API surface the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! `sample_size` / `measurement_time`, `criterion_group!` / `criterion_main!`
//! — with a deliberately simple measurement model: each benchmark runs
//! `sample_size` timed iterations (after one warm-up) and prints the mean
//! wall-clock time per iteration. No statistics, plots or baselines; the
//! numbers are for quick relative comparisons, and swapping the real
//! criterion back in requires no source changes.

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    /// Wall-clock measurement marker (the only one the shim provides).
    pub struct WallTime;
}

/// Batch-size hint for [`Bencher::iter_batched`]; ignored by the shim.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation; accepted and ignored.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted where an id is expected (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Times closures and reports a mean per iteration.
pub struct Bencher {
    sample_size: usize,
    /// Filled by `iter*`: (total elapsed, iterations timed).
    result: Option<(Duration, u64)>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            result: None,
        }
    }

    /// Time `routine` over `sample_size` iterations (plus one warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), self.sample_size as u64));
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.result = Some((total, self.sample_size as u64));
    }

    /// Same as [`Bencher::iter_batched`] but hands the input by `&mut`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.result = Some((total, self.sample_size as u64));
    }
}

fn report(group: &str, id: &str, result: Option<(Duration, u64)>) {
    match result {
        Some((total, iters)) if iters > 0 => {
            let mean = total.as_secs_f64() / iters as f64;
            println!("{group}/{id}: {:.3} ms/iter ({iters} iters)", mean * 1e3);
        }
        _ => println!("{group}/{id}: no measurement"),
    }
}

/// Entry point handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            _measurement: PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut bencher = Bencher::new(self.default_sample_size);
        f(&mut bencher);
        report("bench", &id, bencher.result);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a, M> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    _measurement: PhantomData<M>,
}

impl<'a, M> BenchmarkGroup<'a, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API parity; the shim always runs exactly `sample_size`
    /// iterations regardless of the time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API parity; the shim warms up with a single iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&self.name, &id, bencher.result);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        report(&self.name, &id.id, bencher.result);
        self
    }

    pub fn finish(self) {}
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("f", |b| b.iter(|| runs += 1));
            group.bench_with_input(BenchmarkId::new("with", 7), &7u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            group.finish();
        }
        // one warm-up + three timed iterations
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_counts_samples() {
        let mut c = Criterion::default();
        let mut setups = 0usize;
        let mut group = c.benchmark_group("g2");
        group.sample_size(5);
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1, 2, 3]
                },
                |v| v.into_iter().sum::<i32>(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 5);
    }
}
