//! Hermetic stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate (see `crates/shims/README.md`).
//!
//! [`ChaCha8Rng`] here is *not* the ChaCha stream cipher: it is the same
//! xoshiro256++ engine as the `rand` shim's `StdRng`, seeded through a
//! domain-separated SplitMix64 expansion so the two types produce unrelated
//! streams for equal seeds. The workloads crate uses `ChaCha8Rng` purely as a
//! deterministic, seedable source for synthetic datasets; no test depends on
//! the upstream byte stream.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator under the upstream name.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    inner: rand::rngs::StdRng,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Domain separation from StdRng so equal seeds give distinct streams.
        ChaCha8Rng {
            inner: rand::rngs::StdRng::seed_from_u64(seed ^ 0xC4AC_4A8C_5EED_0C8A),
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn deterministic_and_distinct_from_stdrng() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut s = rand::rngs::StdRng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(5);
        assert_ne!(s.next_u64(), c.next_u64());
        let v = c.gen_range(0i64..100);
        assert!((0..100).contains(&v));
    }
}
