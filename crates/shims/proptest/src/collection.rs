//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng as _;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (min, max) = r.into_inner();
        assert!(min <= max, "empty size range");
        SizeRange { min, max }
    }
}

/// `Vec` strategy: a random length in `size`, then one draw per element.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
