//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::TestRng;
use rand::Rng as _;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};
use std::rc::Rc;

/// A recipe for random values. Unlike upstream (value trees + shrinking),
/// generation here is a single draw.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, map }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased strategy (upstream `BoxedStrategy`).
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.base.generate(rng))
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// `any::<T>()`: uniform over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Rng::gen::<$t>(rng)
            }
        }
    )*};
}

impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

// Ranges are strategies, exactly like upstream.
macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
