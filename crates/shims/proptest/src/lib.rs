//! Hermetic stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate (see `crates/shims/README.md`).
//!
//! Supports the subset the workspace's property tests use: the [`Strategy`]
//! trait over ranges / tuples / `collection::vec` / `any`, `prop_map`,
//! `prop_oneof!`, `prop_assume!`, the `prop_assert*` macros and the
//! [`proptest!`] test-harness macro. Semantics differ from upstream in two
//! deliberate ways:
//!
//! * cases are generated from a seed derived deterministically from the test's
//!   module path and name, so every run and every machine explores the same
//!   inputs (upstream records failing seeds instead);
//! * there is **no shrinking** — a failing case panics with the assertion
//!   message straight away. The deterministic seed makes failures
//!   reproducible without it.

use rand::rngs::StdRng;
use rand::SeedableRng as _;

pub mod collection;
pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the shim trims this to keep the tier-1
        // suite fast while still exploring a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies; a thin veneer over the `rand` shim.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator for a named test: the seed is a stable hash of
    /// the fully qualified test name.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a: stable across runs, platforms and Rust versions (unlike
        // `DefaultHasher`, whose output is explicitly unspecified).
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }
}

impl rand::RngCore for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Run the property cases. Drives [`proptest!`]-generated tests; public so
/// the macro expansion can reach it.
#[doc(hidden)]
pub fn run_cases(name: &str, cases: u32, mut case: impl FnMut(&mut TestRng)) {
    let mut rng = TestRng::for_test(name);
    for _ in 0..cases {
        case(&mut rng);
    }
}

/// Generates `#[test]` functions that run a body over random strategy samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                config.cases,
                |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    // A closure per case so `prop_assume!`'s early `return`
                    // skips only the current case.
                    let mut __proptest_case = || $body;
                    __proptest_case();
                },
            );
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

/// Assertion macros: no shrinking, so they lower straight onto `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies that share a `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}
