//! The `par_*` entry points, executing on the real worker pool.
//!
//! Since PR 2 these are **genuinely parallel**: every combinator chain
//! bottoms out in an indexed [`Producer`] (slices, chunk views, ranges,
//! owned vectors, and `zip`/`map`/`enumerate` compositions thereof), and the
//! terminal operations (`for_each`, `sum`, `collect`, `par_sort_*`) hand the
//! producer's index space to the pool in [`crate::pool`], which distributes
//! it across per-participant queues with grain-sized chunk claiming and
//! steal-on-idle. The same pool runs [`crate::join`]'s fork-join tasks on
//! per-worker deques, so `par_*` bodies that fork (and forks that `par_*`)
//! share one set of threads without deadlock or oversubscription.
//!
//! Guarantees relied on across the workspace:
//!
//! * **Order preservation** — `collect` writes each item at its input index,
//!   so results are bit-identical to a sequential run regardless of thread
//!   count or scheduling. (`sum` is used with integer accumulators only;
//!   summation order is the one thing the pool does not fix.)
//! * **Per-worker `map_init` state** — the init closure runs at most once
//!   per participating worker (lazily, on its first claimed item), matching
//!   upstream rayon's contract. State is *not* threaded through the whole
//!   iteration as the old sequential adapter did; closures must not rely on
//!   seeing earlier items' mutations. Both init and body therefore need
//!   `Fn + Sync` bounds, exactly as upstream requires.
//! * **Panic propagation** — a panic in any closure is re-raised on the
//!   calling thread after the job quiesces.
//!
//! The method surface mirrors the slice of rayon the workspace uses, so the
//! real crate remains a drop-in replacement.

use crate::pool::{self, grain_for};
use crate::sort::par_sort_impl;
use std::cmp::Ordering as CmpOrdering;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ops::Range;
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Producer layer: indexed, random-access item sources.
// ---------------------------------------------------------------------------

/// An indexed parallel item source: `fetch(i)` produces the item at index
/// `i` of `0..len()`, from any thread.
///
/// # Safety
///
/// Implementations may hand out owned values or `&mut` references by index,
/// so a caller must invoke [`Producer::fetch`] **at most once per index**
/// (the pool's exactly-once range distribution guarantees this), with
/// `i < len()`. Implementations must tolerate indices never being fetched
/// (items may leak on panic, but must not cause unsoundness).
pub unsafe trait Producer: Sync {
    /// The element type handed to consumers.
    type Item: Send;
    /// Number of items.
    fn len(&self) -> usize;
    /// `true` when there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Produce the item at `index`.
    ///
    /// # Safety
    ///
    /// `index < self.len()`, and each index is fetched at most once.
    unsafe fn fetch(&self, index: usize) -> Self::Item;
}

/// Shared items of a slice (`par_iter`).
pub struct SliceProducer<'a, T> {
    slice: &'a [T],
}

// SAFETY: hands out `&T`; aliasing is unrestricted for shared refs.
unsafe impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn fetch(&self, index: usize) -> &'a T {
        // SAFETY: index < len by contract.
        unsafe { self.slice.get_unchecked(index) }
    }
}

/// Exclusive items of a slice (`par_iter_mut`).
pub struct SliceMutProducer<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: disjoint `&mut T` may be sent across threads when `T: Send`; the
// at-most-once fetch contract makes the handed-out references disjoint.
unsafe impl<T: Send> Sync for SliceMutProducer<'_, T> {}

// SAFETY: each index is fetched at most once, so no two `&mut` alias.
unsafe impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn fetch(&self, index: usize) -> &'a mut T {
        // SAFETY: index < len; fetched at most once (exclusive reference).
        unsafe { &mut *self.ptr.add(index) }
    }
}

/// Shared chunk views of a slice (`par_chunks`).
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

// SAFETY: hands out shared subslices.
unsafe impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    unsafe fn fetch(&self, index: usize) -> &'a [T] {
        let start = index * self.chunk;
        let end = (start + self.chunk).min(self.slice.len());
        &self.slice[start..end]
    }
}

/// Exclusive chunk views of a slice (`par_chunks_mut`).
pub struct ChunksMutProducer<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: disjoint `&mut [T]` chunks; see `SliceMutProducer`.
unsafe impl<T: Send> Sync for ChunksMutProducer<'_, T> {}

// SAFETY: chunk windows are disjoint and each is fetched at most once.
unsafe impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }
    unsafe fn fetch(&self, index: usize) -> &'a mut [T] {
        let start = index * self.chunk;
        let end = (start + self.chunk).min(self.len);
        // SAFETY: [start, end) windows of distinct indices are disjoint.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }
    }
}

/// Indices of a `Range<usize>` (`(a..b).into_par_iter()`).
pub struct RangeProducer {
    start: usize,
    len: usize,
}

// SAFETY: items are plain values.
unsafe impl Producer for RangeProducer {
    type Item = usize;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn fetch(&self, index: usize) -> usize {
        self.start + index
    }
}

/// Owned items of a `Vec<T>` (`vec.into_par_iter()`), moved out by index.
pub struct VecProducer<T> {
    base: *mut T,
    len: usize,
    cap: usize,
}

// SAFETY: owned `T` values cross threads (`T: Send`); at-most-once fetch
// prevents double reads.
unsafe impl<T: Send> Sync for VecProducer<T> {}
// SAFETY: ownership of the buffer may move with the producer.
unsafe impl<T: Send> Send for VecProducer<T> {}

impl<T> VecProducer<T> {
    fn from_vec(v: Vec<T>) -> Self {
        let mut v = ManuallyDrop::new(v);
        VecProducer {
            base: v.as_mut_ptr(),
            len: v.len(),
            cap: v.capacity(),
        }
    }
}

// SAFETY: each element is moved out at most once by the fetch contract.
unsafe impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn fetch(&self, index: usize) -> T {
        // SAFETY: index < len, fetched at most once → unique read.
        unsafe { std::ptr::read(self.base.add(index)) }
    }
}

impl<T> Drop for VecProducer<T> {
    fn drop(&mut self) {
        // Free the allocation without dropping elements: in a completed run
        // every element was moved out; after a panic the unfetched ones leak
        // (safe, and preferable to double-drops).
        // SAFETY: base/cap came from a live Vec; length 0 drops no elements.
        unsafe { drop(Vec::from_raw_parts(self.base, 0, self.cap)) }
    }
}

/// `map` composition over a producer.
pub struct MapProducer<P, F> {
    base: P,
    f: F,
}

// SAFETY: forwards the at-most-once fetch to the base producer.
unsafe impl<P, F, R> Producer for MapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    unsafe fn fetch(&self, index: usize) -> R {
        // SAFETY: contract forwarded.
        (self.f)(unsafe { self.base.fetch(index) })
    }
}

/// Index-aligned pairing of two producers (`zip`); length is the minimum.
/// Items of the longer side beyond the common length are never fetched (for
/// owned producers they leak rather than drop — workspace call sites always
/// zip equal lengths).
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

// SAFETY: forwards at-most-once fetches to both sides at the same index.
unsafe impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    unsafe fn fetch(&self, index: usize) -> (A::Item, B::Item) {
        // SAFETY: contract forwarded to both sides.
        unsafe { (self.a.fetch(index), self.b.fetch(index)) }
    }
}

/// `enumerate` composition: pairs each item with its global input index.
pub struct EnumerateProducer<P> {
    base: P,
}

// SAFETY: forwards the at-most-once fetch.
unsafe impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    unsafe fn fetch(&self, index: usize) -> (usize, P::Item) {
        // SAFETY: contract forwarded.
        (index, unsafe { self.base.fetch(index) })
    }
}

// ---------------------------------------------------------------------------
// Pool drivers shared by the terminal operations.
// ---------------------------------------------------------------------------

/// Output pointer shared across participants; every write goes to a distinct
/// index by the producer/pool exactly-once guarantee.
struct SharedOut<T>(*mut T);
// SAFETY: disjoint-by-index writes of `Send` values.
unsafe impl<T: Send> Sync for SharedOut<T> {}

impl<T> SharedOut<T> {
    /// Accessor keeping closure captures on the `Sync` wrapper rather than
    /// the raw field (edition-2021 closures capture disjoint fields).
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Run `step` over every item, creating one `state` per participating worker
/// (lazily, on its first item) — the `map_init` execution core.
fn drive_each<P, S>(
    producer: &P,
    min_len: usize,
    init: impl Fn() -> S + Sync,
    step: impl Fn(&mut S, P::Item) + Sync,
) where
    P: Producer,
{
    let n = producer.len();
    let threads = crate::current_num_threads();
    pool::run(n, grain_for(n, threads, min_len), &|mut ranges| {
        let mut state: Option<S> = None;
        while let Some(r) = ranges.next() {
            let st = state.get_or_insert_with(&init);
            for i in r {
                // SAFETY: the pool delivers each index exactly once.
                step(st, unsafe { producer.fetch(i) });
            }
        }
    });
}

/// As [`drive_each`], but fold `step`'s results into one `Out` value.
fn drive_sum<P, S, R, Out>(
    producer: &P,
    min_len: usize,
    init: impl Fn() -> S + Sync,
    step: impl Fn(&mut S, P::Item) -> R + Sync,
) -> Out
where
    P: Producer,
    Out: Send + std::iter::Sum<R> + std::iter::Sum<Out>,
{
    let n = producer.len();
    let threads = crate::current_num_threads();
    let total: Mutex<Option<Out>> = Mutex::new(None);
    pool::run(n, grain_for(n, threads, min_len), &|mut ranges| {
        let mut state: Option<S> = None;
        let mut acc: Option<Out> = None;
        while let Some(r) = ranges.next() {
            let st = state.get_or_insert_with(&init);
            // SAFETY: the pool delivers each index exactly once.
            let part: Out = r.map(|i| step(st, unsafe { producer.fetch(i) })).sum();
            acc = Some(match acc.take() {
                None => part,
                Some(a) => [a, part].into_iter().sum(),
            });
        }
        if let Some(a) = acc {
            let mut t = total.lock().unwrap();
            *t = Some(match t.take() {
                None => a,
                Some(b) => [b, a].into_iter().sum(),
            });
        }
    });
    total
        .into_inner()
        .unwrap()
        .unwrap_or_else(|| std::iter::empty::<R>().sum())
}

// ---------------------------------------------------------------------------
// Public iterator types.
// ---------------------------------------------------------------------------

/// A parallel iterator over an indexed producer. Combinators compose
/// producers; terminal operations execute on the worker pool.
pub struct ParIter<P> {
    producer: P,
    min_len: usize,
}

impl<P: Producer> ParIter<P> {
    fn new(producer: P) -> Self {
        ParIter {
            producer,
            min_len: 1,
        }
    }

    /// Number of items this iterator will yield.
    pub fn len(&self) -> usize {
        self.producer.len()
    }

    /// `true` when no items will be yielded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lower bound on the per-chunk grain size (rayon's work-splitting
    /// hint); the pool's heuristic may choose a larger grain.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = self.min_len.max(min.max(1));
        self
    }

    /// Transform every item.
    pub fn map<F, R>(self, f: F) -> ParIter<MapProducer<P, F>>
    where
        F: Fn(P::Item) -> R + Sync,
        R: Send,
    {
        ParIter {
            producer: MapProducer {
                base: self.producer,
                f,
            },
            min_len: self.min_len,
        }
    }

    /// Pair items with another parallel iterator, index by index.
    pub fn zip<B: IntoParallelIterator>(self, other: B) -> ParIter<ZipProducer<P, B::Prod>> {
        ParIter {
            producer: ZipProducer {
                a: self.producer,
                b: other.into_par_iter().producer,
            },
            min_len: self.min_len,
        }
    }

    /// Pair items with their input index.
    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>> {
        ParIter {
            producer: EnumerateProducer {
                base: self.producer,
            },
            min_len: self.min_len,
        }
    }

    /// Like `map`, but with a reusable per-worker state value created by
    /// `init` — rayon's allocation-reuse hook. `init` runs at most once per
    /// participating worker (on its first item), **not** once per item and
    /// not once globally; the state must not be used to carry information
    /// between items.
    pub fn map_init<INIT, S, F, R>(self, init: INIT, f: F) -> MapInit<P, INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, P::Item) -> R + Sync,
        R: Send,
    {
        MapInit {
            base: self.producer,
            init,
            f,
            min_len: self.min_len,
        }
    }

    /// Rayon's `flat_map` variant taking a serial iterator per item; the
    /// per-item outputs are concatenated in input order.
    pub fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<P, F, U>
    where
        U: IntoIterator,
        F: Fn(P::Item) -> U + Sync,
        U::Item: Send,
    {
        FlatMapIter {
            base: self.producer,
            f,
            min_len: self.min_len,
            _marker: PhantomData,
        }
    }

    /// Invoke `f` on every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Sync,
    {
        drive_each(&self.producer, self.min_len, || (), |_, item| f(item));
    }

    /// Sum all items. Used in the workspace with integer sums only (the
    /// cross-worker combination order is unspecified).
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        drive_sum(&self.producer, self.min_len, || (), |_, item| item)
    }

    /// Collect all items, preserving input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<P::Item>,
    {
        C::from_par_vec(collect_vec(
            &self.producer,
            self.min_len,
            || (),
            |_, item| item,
        ))
    }
}

/// Collect `step` outputs into a `Vec` in input order (shared by `ParIter`,
/// `MapInit` and the flat-map scatter).
fn collect_vec<P, S, R>(
    producer: &P,
    min_len: usize,
    init: impl Fn() -> S + Sync,
    step: impl Fn(&mut S, P::Item) -> R + Sync,
) -> Vec<R>
where
    P: Producer,
    R: Send,
{
    let n = producer.len();
    let mut out: Vec<R> = Vec::with_capacity(n);
    let out_ptr = SharedOut(out.as_mut_ptr());
    let threads = crate::current_num_threads();
    pool::run(n, grain_for(n, threads, min_len), &|mut ranges| {
        let mut state: Option<S> = None;
        while let Some(r) = ranges.next() {
            let st = state.get_or_insert_with(&init);
            for i in r {
                // SAFETY: exactly-once index delivery; disjoint writes into
                // the capacity reserved above.
                let value = step(st, unsafe { producer.fetch(i) });
                unsafe { out_ptr.get().add(i).write(value) };
            }
        }
    });
    // SAFETY: every index in 0..n was written exactly once.
    unsafe { out.set_len(n) };
    out
}

/// Parallel iterator with per-worker state (see [`ParIter::map_init`]).
pub struct MapInit<P, INIT, F> {
    base: P,
    init: INIT,
    f: F,
    min_len: usize,
}

impl<P, INIT, S, F, R> MapInit<P, INIT, F>
where
    P: Producer,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, P::Item) -> R + Sync,
    R: Send,
{
    /// Invoke the body on every item, in parallel.
    pub fn for_each(self) {
        let MapInit {
            base,
            init,
            f,
            min_len,
        } = self;
        drive_each(&base, min_len, init, |st, item| {
            f(st, item);
        });
    }

    /// Sum the body's results (integer accumulators; see [`ParIter::sum`]).
    pub fn sum<Out>(self) -> Out
    where
        Out: Send + std::iter::Sum<R> + std::iter::Sum<Out>,
    {
        let MapInit {
            base,
            init,
            f,
            min_len,
        } = self;
        drive_sum(&base, min_len, init, f)
    }

    /// Collect the body's results, preserving input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<R>,
    {
        let MapInit {
            base,
            init,
            f,
            min_len,
        } = self;
        C::from_par_vec(collect_vec(&base, min_len, init, f))
    }
}

/// Parallel iterator over concatenated per-item serial iterators (see
/// [`ParIter::flat_map_iter`]).
pub struct FlatMapIter<P, F, U> {
    base: P,
    f: F,
    min_len: usize,
    _marker: PhantomData<fn() -> U>,
}

impl<P, F, U> FlatMapIter<P, F, U>
where
    P: Producer,
    F: Fn(P::Item) -> U + Sync,
    U: IntoIterator,
    U::Item: Send,
{
    /// Collect the concatenated outputs, preserving input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<U::Item>,
    {
        let FlatMapIter {
            base, f, min_len, ..
        } = self;
        // Phase 1: materialise each item's output run, in parallel.
        let runs: Vec<Vec<U::Item>> = collect_vec(
            &base,
            min_len,
            || (),
            |_, item| f(item).into_iter().collect(),
        );
        // Offsets of each run in the concatenation.
        let total: usize = runs.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(runs.len());
        let mut acc = 0usize;
        for r in &runs {
            offsets.push(acc);
            acc += r.len();
        }
        // Phase 2: move every run into place, in parallel.
        let mut out: Vec<U::Item> = Vec::with_capacity(total);
        let out_ptr = SharedOut(out.as_mut_ptr());
        let run_producer = VecProducer::from_vec(runs);
        drive_each(
            &EnumerateProducer { base: run_producer },
            1,
            || (),
            |_, (i, run): (usize, Vec<U::Item>)| {
                for (off, v) in (offsets[i]..).zip(run) {
                    // SAFETY: runs occupy disjoint offset ranges.
                    unsafe { out_ptr.get().add(off).write(v) };
                }
            },
        );
        // SAFETY: the runs partition 0..total exactly.
        unsafe { out.set_len(total) };
        C::from_par_vec(out)
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits.
// ---------------------------------------------------------------------------

/// Conversion into a [`ParIter`] (`into_par_iter()`): owned vectors, index
/// ranges, and parallel iterators themselves (making `zip` arguments
/// flexible, as upstream).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The backing producer.
    type Prod: Producer<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Prod>;
}

impl<P: Producer> IntoParallelIterator for ParIter<P> {
    type Item = P::Item;
    type Prod = P;
    fn into_par_iter(self) -> ParIter<P> {
        self
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Prod = VecProducer<T>;
    fn into_par_iter(self) -> ParIter<VecProducer<T>> {
        ParIter::new(VecProducer::from_vec(self))
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Prod = RangeProducer;
    fn into_par_iter(self) -> ParIter<RangeProducer> {
        let len = self.end.saturating_sub(self.start);
        ParIter::new(RangeProducer {
            start: self.start,
            len,
        })
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>>;
    /// Parallel iterator over non-overlapping `&[T]` chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>> {
        ParIter::new(SliceProducer { slice: self })
    }
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter::new(ChunksProducer {
            slice: self,
            chunk: chunk_size,
        })
    }
}

/// `par_iter_mut` / `par_chunks_mut` / `par_sort_*` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>>;
    /// Parallel iterator over non-overlapping `&mut [T]` chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
    /// Parallel stable sort.
    fn par_sort(&mut self)
    where
        T: Ord;
    /// Parallel unstable sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Parallel stable sort with a comparator.
    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> CmpOrdering + Sync;
    /// Parallel unstable sort with a comparator.
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> CmpOrdering + Sync;
    /// Parallel stable sort by key.
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
    /// Parallel unstable sort by key.
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>> {
        ParIter::new(SliceMutProducer {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        })
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter::new(ChunksMutProducer {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk: chunk_size,
            _marker: PhantomData,
        })
    }
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        par_sort_impl(self, &T::cmp, true);
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_sort_impl(self, &T::cmp, false);
    }
    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> CmpOrdering + Sync,
    {
        par_sort_impl(self, &compare, true);
    }
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> CmpOrdering + Sync,
    {
        par_sort_impl(self, &compare, false);
    }
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_sort_impl(self, &|a, b| key(a).cmp(&key(b)), true);
    }
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_sort_impl(self, &|a, b| key(a).cmp(&key(b)), false);
    }
}

/// Types constructible from a parallel iterator (`collect`). The shim
/// materialises an order-preserving `Vec` internally and converts.
pub trait FromParallelIterator<T: Send> {
    /// Build from the in-order item vector.
    fn from_par_vec(v: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(v: Vec<T>) -> Vec<T> {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn with_threads<R>(t: usize, f: impl FnOnce() -> R) -> R {
        let _g = crate::pool::override_lock();
        crate::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .unwrap()
            .install(f)
    }

    #[test]
    fn par_iter_chains_compose() {
        with_threads(4, || {
            let v: Vec<u64> = (0..10_000).collect();
            let s: u64 = v.par_iter().map(|x| x * 2).sum();
            assert_eq!(s, 9_999 * 10_000);
            let doubled: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
            let expect: Vec<u64> = v.iter().map(|x| x * 2).collect();
            assert_eq!(doubled, expect);
        });
    }

    #[test]
    fn chunk_zip_for_each() {
        with_threads(4, || {
            let n = 9_999;
            let data: Vec<u32> = (0..n as u32).collect();
            let mut out = vec![0u32; n];
            data.par_chunks(97)
                .zip(out.par_chunks_mut(97))
                .for_each(|(src, dst)| {
                    for (s, d) in src.iter().zip(dst.iter_mut()) {
                        *d = s * 10;
                    }
                });
            assert!(out.iter().enumerate().all(|(i, &x)| x == i as u32 * 10));
        });
    }

    #[test]
    fn map_init_state_is_per_worker() {
        with_threads(4, || {
            let inits = AtomicUsize::new(0);
            let out: Vec<usize> = (0..10_000usize)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                        Vec::<usize>::with_capacity(4)
                    },
                    |buf, i| {
                        buf.clear();
                        buf.push(i);
                        buf[0] * 3
                    },
                )
                .collect();
            assert!(out.iter().enumerate().all(|(i, &x)| x == i * 3));
            // At most one init per participant (4 + submitter margin), and at
            // least one overall.
            let done = inits.load(Ordering::Relaxed);
            assert!((1..=4).contains(&done), "init ran {done} times");
        });
    }

    #[test]
    fn map_init_runs_once_under_single_thread() {
        with_threads(1, || {
            let inits = AtomicUsize::new(0);
            let s: u64 = (0..50_000usize)
                .into_par_iter()
                .map_init(|| inits.fetch_add(1, Ordering::Relaxed), |_, i| i as u64)
                .sum();
            assert_eq!(s, 49_999 * 50_000 / 2);
            assert_eq!(inits.load(Ordering::Relaxed), 1);
        });
    }

    #[test]
    fn enumerate_matches_indices() {
        with_threads(4, || {
            let v: Vec<u32> = (100..10_100).collect();
            let pairs: Vec<(usize, u32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
            assert!(pairs.iter().all(|&(i, x)| x == 100 + i as u32));
        });
    }

    #[test]
    fn flat_map_iter_concatenates_in_order() {
        with_threads(4, || {
            let out: Vec<usize> = (0..1_000usize)
                .into_par_iter()
                .flat_map_iter(|i| vec![i; i % 3])
                .collect();
            let expect: Vec<usize> = (0..1_000).flat_map(|i| vec![i; i % 3]).collect();
            assert_eq!(out, expect);
        });
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        with_threads(4, || {
            // Non-Copy items must be moved out exactly once and dropped
            // exactly once.
            let v: Vec<String> = (0..5_000).map(|i| i.to_string()).collect();
            let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
            assert_eq!(lens.len(), 5_000);
            assert_eq!(lens[4_999], 4);
        });
    }

    #[test]
    fn par_sorts_match_std() {
        with_threads(4, || {
            let mut v: Vec<u64> = (0..100_000u64)
                .map(|i| i.wrapping_mul(0x9E3779B9) % 1_000)
                .collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            v.par_sort_unstable();
            assert_eq!(v, expect);

            let mut v: Vec<(u64, u64)> = (0..100_000u64).map(|i| (i % 13, i)).collect();
            let mut expect = v.clone();
            expect.sort_by_key(|e| e.0);
            v.par_sort_by_key(|e| e.0);
            // Stability: equal keys keep input (second-field) order.
            assert_eq!(v, expect);

            let mut v = vec![3, 1, 2];
            v.par_sort();
            assert_eq!(v, vec![1, 2, 3]);
        });
    }

    #[test]
    fn sort_with_panicking_comparator_propagates() {
        with_threads(2, || {
            let mut v: Vec<u64> = (0..50_000).rev().collect();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                v.par_sort_unstable_by(|a, b| {
                    if *a == 25_000 {
                        panic!("comparator boom");
                    }
                    a.cmp(b)
                });
            }));
            assert!(result.is_err());
            // The data is still a permutation (no loss, no duplication for
            // this Copy payload) and the substrate still works.
            v.sort_unstable();
            assert_eq!(v, (0..50_000).collect::<Vec<u64>>());
        });
    }

    #[test]
    fn work_is_parallel_and_results_identical() {
        let probe = |t: usize| {
            with_threads(t, || {
                let ids = std::sync::Mutex::new(HashSet::new());
                let out: Vec<u64> = (0..256usize)
                    .into_par_iter()
                    .map(|i| {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        ids.lock().unwrap().insert(std::thread::current().id());
                        (i as u64) * 7
                    })
                    .collect();
                (ids.into_inner().unwrap().len(), out)
            })
        };
        let (seq_threads, seq_out) = probe(1);
        assert_eq!(seq_threads, 1);
        let (_par_threads, par_out) = probe(4);
        assert_eq!(seq_out, par_out);
    }
}
