//! The `par_*` entry points as sequential adapters.
//!
//! Each method mirrors the signature shape of its rayon counterpart but
//! returns a plain [`Iterator`] (or sorts sequentially), so downstream
//! combinator chains (`.zip`, `.enumerate`, `.map`, `.for_each`, `.sum`,
//! `.collect`) come from [`std::iter::Iterator`] unchanged. `map_init` — a
//! rayon-only combinator used for per-thread scratch state — is provided as an
//! extension on every iterator and threads one state value through the whole
//! (sequential) run, which is exactly the per-thread reuse semantics
//! collapsed onto one thread.

/// `into_par_iter()` for anything iterable (ranges, `Vec`s, collections).
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    #[inline]
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
    #[inline]
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// `par_iter_mut` / `par_chunks_mut` / `par_sort_*` on mutable slices.
pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    fn par_sort(&mut self)
    where
        T: Ord;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering;
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering;
    fn par_sort_by_key<K: Ord, F>(&mut self, key: F)
    where
        F: FnMut(&T) -> K;
    fn par_sort_unstable_by_key<K: Ord, F>(&mut self, key: F)
    where
        F: FnMut(&T) -> K;
}

impl<T> ParallelSliceMut<T> for [T] {
    #[inline]
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
    #[inline]
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering,
    {
        self.sort_by(compare);
    }
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering,
    {
        self.sort_unstable_by(compare);
    }
    fn par_sort_by_key<K: Ord, F>(&mut self, key: F)
    where
        F: FnMut(&T) -> K,
    {
        self.sort_by_key(key);
    }
    fn par_sort_unstable_by_key<K: Ord, F>(&mut self, key: F)
    where
        F: FnMut(&T) -> K,
    {
        self.sort_unstable_by_key(key);
    }
}

/// Rayon-only combinators as extensions over every iterator.
pub trait ParallelIteratorExt: Iterator + Sized {
    /// Like `map`, but threads a reusable state value (upstream: one per
    /// worker thread) through the closure — the allocation-reuse hook the
    /// batch query paths rely on.
    fn map_init<INIT, S, F, R>(self, init: INIT, map_op: F) -> MapInit<Self, S, F>
    where
        INIT: FnOnce() -> S,
        F: FnMut(&mut S, Self::Item) -> R,
    {
        MapInit {
            iter: self,
            state: init(),
            map_op,
        }
    }

    /// Grain-size hint; meaningless sequentially, kept for call-site parity.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Rayon's `flat_map` variant taking a serial iterator per item; identical
    /// to `flat_map` here.
    fn flat_map_iter<U, F>(self, map_op: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(map_op)
    }
}

impl<I: Iterator> ParallelIteratorExt for I {}

/// Iterator returned by [`ParallelIteratorExt::map_init`].
pub struct MapInit<I, S, F> {
    iter: I,
    state: S,
    map_op: F,
}

impl<I, S, F, R> Iterator for MapInit<I, S, F>
where
    I: Iterator,
    F: FnMut(&mut S, I::Item) -> R,
{
    type Item = R;

    #[inline]
    fn next(&mut self) -> Option<R> {
        let item = self.iter.next()?;
        Some((self.map_op)(&mut self.state, item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_iter_chains_compose() {
        let v = vec![1u64, 2, 3, 4];
        let s: u64 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 20);
        let doubled: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn chunk_zip_for_each() {
        let data = [1u32, 2, 3, 4, 5, 6];
        let mut out = [0u32; 6];
        data.par_chunks(2)
            .zip(out.par_chunks_mut(2))
            .for_each(|(src, dst)| {
                for (s, d) in src.iter().zip(dst.iter_mut()) {
                    *d = s * 10;
                }
            });
        assert_eq!(out, [10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn map_init_reuses_state() {
        let mut allocations = 0usize;
        let out: Vec<usize> = (0..5usize)
            .into_par_iter()
            .map_init(
                || {
                    allocations += 1;
                    Vec::<usize>::new()
                },
                |buf, i| {
                    buf.push(i);
                    buf.len()
                },
            )
            .collect();
        // One shared state, never cleared by the combinator itself.
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn par_sorts_sort() {
        let mut v = vec![3, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3]);
        let mut v = vec![(1, 'b'), (0, 'a')];
        v.par_sort_unstable_by_key(|e| e.0);
        assert_eq!(v, vec![(0, 'a'), (1, 'b')]);
    }
}
