//! The global worker pool behind the whole parallel substrate: chunked
//! work-distribution for `par_*` jobs **and** per-worker task deques for
//! pool-native fork-join (`join` / `scope` / `Scope::spawn`).
//!
//! # Execution model
//!
//! The pool schedules two kinds of work:
//!
//! 1. **Jobs** — a parallel operation over `n` items (`par_iter`,
//!    `for_each`, `collect`, …). The index space `0..n` is partitioned into
//!    one contiguous range per participant slot, each slot backed by an
//!    atomic `(lo, hi)` pair — the slot's *range queue*. Every participating
//!    thread (the submitting caller plus pool workers) owns one slot and
//!    repeatedly claims a grain-sized chunk from the front of its own queue;
//!    when the queue runs dry it steals the back half of the fullest other
//!    queue and continues. The claim/steal loop lets *any single participant
//!    drain the entire job*, so a job completes even if every pool worker is
//!    busy elsewhere — which is exactly what happens with nested
//!    parallelism. No participant ever waits for work it could do itself,
//!    so nesting cannot deadlock.
//!
//! 2. **Tasks** — the forked halves of `join` calls and `scope`-spawned
//!    closures. Every pool worker owns a **lock-free Chase-Lev deque**: it
//!    pushes forked tasks onto the bottom, pops its own work LIFO from the
//!    bottom (preserving the sequential depth-first order and its cache
//!    footprint), and thieves steal FIFO from the top (taking the oldest,
//!    biggest subtrees) with a single CAS. Non-worker callers push into a
//!    shared FIFO **injector** instead (a mutex-guarded ring — injection is
//!    rare and never on the fork fast path). Crucially, `join` never blocks
//!    while its forked half is outstanding: if the task was not stolen the
//!    caller pops it straight back and runs it inline (the overwhelmingly
//!    common case — one release store to push, one fenced load to pop, no
//!    lock, no OS interaction); if it *was* stolen, the caller executes
//!    other tasks from the deques until the thief's completion latch fires.
//!    A blocked state exists only when there is provably nothing to steal,
//!    and every such wait is bounded by a running thread making progress, so
//!    deeply nested `join`-inside-`par_iter`-inside-`join` compositions stay
//!    deadlock-free. **No OS thread is ever spawned on the fork-join path**;
//!    an n-leaf fork tree costs n task pushes, not n thread spawns.
//!
//! # The Chase-Lev deques and their memory orderings
//!
//! Each worker deque is the classic Chase-Lev growable ring (Chase & Lev,
//! SPAA '05) with the C11 orderings of Lê et al. (PPoPP '13):
//!
//! * **`push` (owner only):** write the task words into the ring, then
//!   publish with `bottom.store(b + 1, Release)`. A thief's `Acquire` load
//!   of `bottom` therefore observes fully-written slots.
//! * **`pop` (owner only):** speculatively take the slot with
//!   `bottom.store(b - 1, Relaxed)` followed by a single **SeqCst fence**,
//!   then read `top`. The fence globally orders the bottom decrement against
//!   the fence in every thief's `steal`: either the thief sees the
//!   decremented bottom and aborts, or the owner sees the advanced top and
//!   backs off. With two or more tasks queued the pop completes with no RMW
//!   at all; with exactly one task left, owner and thieves race through a
//!   SeqCst CAS on `top`, which at most one of them wins.
//! * **`steal` (any thread):** `Acquire`-load `top`, SeqCst fence,
//!   `Acquire`-load `bottom`, read the slot words, then claim with a SeqCst
//!   `compare_exchange` on `top`. A failed CAS means the words just read may
//!   be stale; they are discarded without being interpreted as a task. The
//!   ABA argument: the ring slot for logical index `t` is only reused by
//!   index `t + cap`, and the owner only writes index `t + cap` after
//!   `top > t` (push grows the ring before overwriting a live window), so a
//!   reused slot always implies the CAS on `t` fails.
//! * **Ring growth and reclamation (owner only):** on a full ring the owner
//!   copies the live window `[top, bottom)` into a ring of twice the
//!   capacity at the same logical indices, publishes it with a SeqCst store
//!   of the buffer pointer, and *retires* the old ring to an owner-private
//!   limbo list. Thieves pin the buffer with a SeqCst counter increment for
//!   the duration of their pointer-load → slot-read window. The owner frees
//!   retired rings only when it observes the pin counter at zero *after*
//!   publication: in the SeqCst total order every later pin re-loads the
//!   buffer pointer after the new ring was published, so no thief can still
//!   hold a retired pointer — a single-epoch deferred-reclamation scheme
//!   (and if a pin is always in flight, the limbo list keeps the rings
//!   alive; their total size is bounded by the geometric series under the
//!   live ring's capacity). Slot words are relaxed atomics, so the racy
//!   reads that the failed-CAS path discards are well-defined loads, never
//!   torn plain memory.
//!
//! The deque fast paths — push, pop, steal — contain no mutex; the only
//! blocking state on the fork-join path is the versioned park below, taken
//! exclusively when a thread has provably nothing to run.
//!
//! # Pool sizing
//!
//! Workers are spawned on first use, up to `current_num_threads() - 1`
//! (so [`crate::ThreadPool::install`] and the `RAYON_NUM_THREADS`
//! environment variable genuinely control parallelism, including
//! oversubscription beyond the core count, as upstream rayon allows). Idle
//! workers park on a condition variable; they are never torn down. A worker
//! whose index is outside the currently-installed thread budget parks until
//! the budget grows back, so `install(k)` bounds active parallelism even
//! after a larger pool has warmed up, and `install(1)` (or
//! `RAYON_NUM_THREADS=1`) runs everything inline on the caller with no
//! tasks published at all.
//!
//! # Waking
//!
//! All sleeping — idle workers, `join`/`scope` waiters with nothing to
//! steal, job submitters waiting for stragglers — goes through one
//! versioned park: publishing work (task push, job push, latch set, scope
//! completion) bumps a version counter and wakes the parked set only when
//! someone is actually parked, so the fork fast path stays a couple of
//! atomic operations. A job submitter waiting on straggler workers does not
//! park outright: it lends itself to the fork-join layer and steals queued
//! tasks (typically the nested forks of the very workers it is waiting on)
//! until the last registration drains.
//!
//! # Panics
//!
//! A panic in worker-executed code is caught at the task or job boundary,
//! carried through the latch or job state, and re-raised on the thread that
//! forked the work — the same contract as upstream rayon.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{
    fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize, Ordering,
};
use std::sync::{Condvar, Mutex, OnceLock};

// Pool observability: steal traffic, contention, sleep pressure and ring
// growth, reported into the process-global ψ-obs registry. All four are
// `LazyCounter`s — the hot-path cost is one initialised-`OnceLock` load
// plus a striped relaxed `fetch_add`; no lock is ever taken on a
// push/pop/steal path.
static OBS_STEALS: psi_obs::LazyCounter = psi_obs::LazyCounter::new(
    "psi_pool_steals_total",
    "tasks claimed from another worker's deque (successful top CAS)",
);
static OBS_STEAL_CAS_FAILS: psi_obs::LazyCounter = psi_obs::LazyCounter::new(
    "psi_pool_steal_cas_fails_total",
    "steal attempts that lost the top CAS race and retried",
);
static OBS_PARKS: psi_obs::LazyCounter = psi_obs::LazyCounter::new(
    "psi_pool_parks_total",
    "threads that went to sleep with provably nothing to run",
);
static OBS_RING_GROWS: psi_obs::LazyCounter = psi_obs::LazyCounter::new(
    "psi_pool_ring_grows_total",
    "Chase-Lev ring buffers doubled on overflow",
);

/// Hard cap on pool threads, a guard against runaway
/// `ThreadPool::install(huge)` requests.
const MAX_WORKERS: usize = 192;

/// Worker stack size: deep fork-join recursions (tree builds over millions
/// of points) plus steal-driven nesting run on these stacks.
const WORKER_STACK: usize = 8 * 1024 * 1024;

/// Each participant splits its fair share into roughly this many grains, so
/// late-starting participants and uneven item costs still balance via steals.
pub(crate) const CHUNKS_PER_WORKER: usize = 8;

/// Default grain size for `n` items across `threads` participants, floored by
/// the caller's `with_min_len`-style hint.
pub(crate) fn grain_for(n: usize, threads: usize, min_len: usize) -> usize {
    (n / (threads.max(1) * CHUNKS_PER_WORKER))
        .max(min_len)
        .max(1)
}

// ---------------------------------------------------------------------------
// Per-slot range queues with steal-on-idle (the job work-distribution core).
// ---------------------------------------------------------------------------

#[inline]
fn pack(lo: usize, hi: usize) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

#[inline]
fn unpack(v: u64) -> (usize, usize) {
    ((v >> 32) as usize, (v & 0xFFFF_FFFF) as usize)
}

/// The shared work-distribution state of one job: one packed `(lo, hi)`
/// index range per participant slot.
pub(crate) struct RangeQueues {
    slots: Box<[AtomicU64]>,
    grain: usize,
}

impl RangeQueues {
    /// Partition `0..n` evenly across `nslots` queues. Requires
    /// `n < u32::MAX` (enforced by [`run`]'s sequential fallback).
    fn new(n: usize, nslots: usize, grain: usize) -> Self {
        let slots: Vec<AtomicU64> = (0..nslots)
            .map(|s| AtomicU64::new(pack(n * s / nslots, n * (s + 1) / nslots)))
            .collect();
        RangeQueues {
            slots: slots.into_boxed_slice(),
            grain: grain.max(1),
        }
    }

    /// Claim up to one grain from the front of `slot`'s own queue.
    fn claim_own(&self, slot: usize) -> Option<Range<usize>> {
        let cell = &self.slots[slot];
        let mut cur = cell.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let next = (lo + self.grain).min(hi);
            match cell.compare_exchange_weak(
                cur,
                pack(next, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo..next),
                Err(now) => cur = now,
            }
        }
    }

    /// Steal the back half of the fullest other queue into `slot`'s (empty)
    /// own queue. Returns `false` only when every queue was observed empty.
    fn steal_into(&self, slot: usize) -> bool {
        loop {
            let mut best: Option<(usize, usize, usize)> = None; // (victim, lo, hi)
            for (i, cell) in self.slots.iter().enumerate() {
                if i == slot {
                    continue;
                }
                let (lo, hi) = unpack(cell.load(Ordering::Acquire));
                if hi > lo && best.is_none_or(|(_, blo, bhi)| hi - lo > bhi - blo) {
                    best = Some((i, lo, hi));
                }
            }
            let Some((victim, lo, hi)) = best else {
                return false;
            };
            let rem = hi - lo;
            let take = (rem - rem / 2).min(rem); // ceil(rem / 2)
            let split = hi - take;
            if self.slots[victim]
                .compare_exchange(
                    pack(lo, hi),
                    pack(lo, split),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // Deposit the stolen tail into our own (currently empty)
                // queue, where other thieves may in turn steal from it.
                self.slots[slot].store(pack(split, hi), Ordering::Release);
                return true;
            }
            // Lost the race; rescan.
        }
    }

    fn next(&self, slot: usize) -> Option<Range<usize>> {
        loop {
            if let Some(r) = self.claim_own(slot) {
                return Some(r);
            }
            if !self.steal_into(slot) {
                return None;
            }
        }
    }
}

/// One participant's view of a job's work distribution: an iterator-like
/// source of disjoint index ranges. Handed to the per-worker body exactly
/// once per participant, which is what makes per-worker state (`map_init`)
/// genuinely per-worker.
pub(crate) struct WorkerRanges<'a> {
    inner: RangesInner<'a>,
}

enum RangesInner<'a> {
    /// Sequential fallback: the whole index space, delivered once.
    Seq(Option<Range<usize>>),
    /// A slot of a pooled job.
    Pool {
        queues: &'a RangeQueues,
        slot: usize,
    },
}

impl WorkerRanges<'_> {
    /// The next range of indices this participant should process, or `None`
    /// when the whole job's index space has been claimed.
    pub(crate) fn next(&mut self) -> Option<Range<usize>> {
        match &mut self.inner {
            RangesInner::Seq(r) => r.take(),
            RangesInner::Pool { queues, slot } => queues.next(*slot),
        }
    }
}

// ---------------------------------------------------------------------------
// Tasks: the unit of stealable fork-join work.
// ---------------------------------------------------------------------------

/// A type-erased unit of work sitting in a deque: an `execute` thunk plus a
/// pointer to its state — either a [`StackJob`] on a `join` caller's stack
/// or a boxed `scope`-spawned closure.
struct Task {
    execute: unsafe fn(*mut ()),
    data: *mut (),
}

// SAFETY: the pointed-to state is `Sync`-shared between exactly the forking
// thread and the (at most one) thief that removed the task from a deque;
// the deque removal protocol (a successful `top` CAS, an owner pop ordered
// by the SeqCst fence, or the injector mutex) is the ownership hand-off.
unsafe impl Send for Task {}

impl Task {
    /// Rebuild a task from its two ring-slot words.
    ///
    /// # Safety
    ///
    /// The words must be *certified*: read by the owner in `pop`, or read by
    /// a thief whose subsequent `top` CAS succeeded. Certified words are
    /// exactly what some `push` wrote for a live, not-yet-executed task.
    unsafe fn from_words(exec: usize, data: usize) -> Task {
        Task {
            // SAFETY: `exec` was produced by `push` from a real fn pointer.
            execute: unsafe { std::mem::transmute::<usize, unsafe fn(*mut ())>(exec) },
            data: data as *mut (),
        }
    }
}

/// Initial capacity of a worker deque's ring buffer (grows by doubling).
const DEQUE_INITIAL_CAP: usize = 64;

/// A ring-slot: the two words of a [`Task`], stored as relaxed atomics. A
/// thief racing with slot reuse can read a stale pair, but such a pair is
/// only interpreted as a task after the `top` CAS certifies it (the ABA
/// argument in the module docs) — relaxed atomics make the racy read itself
/// well-defined, where plain memory would be UB.
struct RingSlot {
    exec: AtomicUsize,
    data: AtomicUsize,
}

/// One power-of-two ring buffer of a Chase-Lev deque. Logical index `i`
/// lives in slot `i & mask`; the live window `[top, bottom)` never exceeds
/// the capacity, so live entries are never overwritten.
struct RingBuffer {
    mask: usize,
    slots: Box<[RingSlot]>,
}

impl RingBuffer {
    fn new(cap: usize) -> Box<RingBuffer> {
        debug_assert!(cap.is_power_of_two());
        Box::new(RingBuffer {
            mask: cap - 1,
            slots: (0..cap)
                .map(|_| RingSlot {
                    exec: AtomicUsize::new(0),
                    data: AtomicUsize::new(0),
                })
                .collect(),
        })
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }

    fn write(&self, idx: isize, exec: usize, data: usize) {
        let slot = &self.slots[idx as usize & self.mask];
        slot.exec.store(exec, Ordering::Relaxed);
        slot.data.store(data, Ordering::Relaxed);
    }

    fn read(&self, idx: isize) -> (usize, usize) {
        let slot = &self.slots[idx as usize & self.mask];
        (
            slot.exec.load(Ordering::Relaxed),
            slot.data.load(Ordering::Relaxed),
        )
    }
}

/// One worker's lock-free Chase-Lev work-stealing deque: owner LIFO
/// push/pop at `bottom`, thief FIFO steal at `top`, growable ring storage
/// with deferred reclamation. The memory-ordering argument lives in the
/// module docs; the orderings below follow Lê et al. (PPoPP '13).
struct ChaseLev {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buf: AtomicPtr<RingBuffer>,
    /// Thieves currently inside the pinned window of `steal` (buffer-pointer
    /// load through slot read). The owner frees retired rings only after
    /// observing this at zero post-publication.
    pinned: AtomicUsize,
    /// Retired ring buffers whose storage may still be pinned by a thief.
    /// The boxes are reconstituted from the raw pointers thieves may still
    /// hold — the heap allocation itself must survive unmoved until freed,
    /// so `Vec<RingBuffer>` (which would move the rings) is not an option.
    #[allow(clippy::vec_box)]
    /// Owner-only (a worker is the sole mutator of its own deque), hence no
    /// lock: ring-growth bookkeeping needs none.
    retired: UnsafeCell<Vec<Box<RingBuffer>>>,
}

// SAFETY: `top`/`bottom`/`buf`/`pinned` are atomics; `retired` is touched
// only by the deque's owner (single thread) as documented on the field.
unsafe impl Sync for ChaseLev {}
unsafe impl Send for ChaseLev {}

impl ChaseLev {
    fn new() -> ChaseLev {
        ChaseLev::with_capacity(DEQUE_INITIAL_CAP)
    }

    fn with_capacity(cap: usize) -> ChaseLev {
        ChaseLev {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf: AtomicPtr::new(Box::into_raw(RingBuffer::new(cap))),
            pinned: AtomicUsize::new(0),
            retired: UnsafeCell::new(Vec::new()),
        }
    }

    /// Owner push: write the slot, then publish with a release store of
    /// `bottom`. No RMW, no lock.
    fn push(&self, task: Task) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        // SAFETY: only the owner swaps `buf`, so the pointer is live here.
        let mut buf = unsafe { &*self.buf.load(Ordering::Relaxed) };
        if b - t >= buf.cap() as isize {
            buf = self.grow(b, t);
        }
        buf.write(b, task.execute as usize, task.data as usize);
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner pop: LIFO from the bottom (depth-first, cache-warm order). The
    /// single SeqCst fence orders the speculative bottom decrement against
    /// every thief's fence; the CAS on `top` settles the last-element race.
    fn pop(&self) -> Option<Task> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // SAFETY: only the owner swaps `buf`, so the pointer is live here.
        let buf = unsafe { &*self.buf.load(Ordering::Relaxed) };
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t < b {
            // Two or more tasks: thieves cannot reach index b.
            let (exec, data) = buf.read(b);
            // SAFETY: owner-read below bottom ⇒ certified.
            return Some(unsafe { Task::from_words(exec, data) });
        }
        if t == b {
            // Exactly one task left: race thieves for it on `top`.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            if won {
                let (exec, data) = buf.read(b);
                // SAFETY: the CAS certified the words.
                return Some(unsafe { Task::from_words(exec, data) });
            }
            return None;
        }
        // Already empty; undo the speculative decrement.
        self.bottom.store(b + 1, Ordering::Relaxed);
        None
    }

    /// Thief steal: FIFO from the top (oldest fork = biggest subtree). Reads
    /// the slot optimistically, then certifies with a CAS on `top`; a failed
    /// CAS discards the (possibly stale) words and retries.
    fn steal(&self) -> Option<Task> {
        loop {
            let t = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            // Pin the buffer for the pointer-load → slot-read window so the
            // owner cannot free it underneath us (see `grow`).
            self.pinned.fetch_add(1, Ordering::SeqCst);
            // SAFETY: pinned ⇒ the loaded ring is not freed until unpin.
            let (exec, data) = unsafe { &*self.buf.load(Ordering::SeqCst) }.read(t);
            self.pinned.fetch_sub(1, Ordering::SeqCst);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                OBS_STEALS.bump();
                // SAFETY: the CAS certified the words.
                return Some(unsafe { Task::from_words(exec, data) });
            }
            // Lost the race (owner pop or another thief); retry.
            OBS_STEAL_CAS_FAILS.bump();
            std::hint::spin_loop();
        }
    }

    /// Owner-only ring growth: copy the live window `[t, b)` into a ring of
    /// twice the capacity at the same logical indices, publish it, retire
    /// the old ring, and free retired rings once no thief is pinned — the
    /// epoch-deferred reclamation described in the module docs.
    #[cold]
    fn grow(&self, b: isize, t: isize) -> &RingBuffer {
        OBS_RING_GROWS.bump();
        let old_ptr = self.buf.load(Ordering::Relaxed);
        // SAFETY: owner-only; the old ring is live until retired below.
        let old = unsafe { &*old_ptr };
        let new = RingBuffer::new(old.cap() * 2);
        for i in t..b {
            let (exec, data) = old.read(i);
            new.write(i, exec, data);
        }
        let new_ptr = Box::into_raw(new);
        self.buf.store(new_ptr, Ordering::SeqCst);
        // SAFETY: `retired` is owner-only, and `old_ptr` came from
        // `Box::into_raw` and was just unpublished.
        let retired = unsafe { &mut *self.retired.get() };
        retired.push(unsafe { Box::from_raw(old_ptr) });
        if self.pinned.load(Ordering::SeqCst) == 0 {
            // Epoch boundary: every thief that could hold a retired pointer
            // has unpinned, and later pins re-load `buf` after the store
            // above (SeqCst total order), seeing only the new ring.
            retired.clear();
        }
        // SAFETY: just published; only the owner can retire it.
        unsafe { &*new_ptr }
    }
}

impl Drop for ChaseLev {
    fn drop(&mut self) {
        // `&mut self` ⇒ no concurrent thieves; `retired` frees itself.
        // SAFETY: `buf` always holds a live `Box::into_raw` pointer.
        unsafe { drop(Box::from_raw(self.buf.load(Ordering::Relaxed))) };
    }
}

/// The global injector: the task queue for non-worker forkers (and their
/// reclaim target). A plain mutex-guarded ring is fine here — injection is
/// rare (only threads outside the pool fork through it) and never on the
/// worker fast path.
struct Injector {
    tasks: Mutex<VecDeque<Task>>,
}

impl Injector {
    const fn new() -> Self {
        Injector {
            tasks: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, task: Task) {
        self.tasks.lock().unwrap().push_back(task);
    }

    /// Thief pop: FIFO from the front (oldest fork = biggest subtree).
    fn steal(&self) -> Option<Task> {
        self.tasks.lock().unwrap().pop_front()
    }

    /// Remove the exact task whose state pointer is `data`, if it is still
    /// queued. Used by non-worker `join` callers to reclaim their un-stolen
    /// fork; searching from the back finds it in O(1) in the LIFO case.
    fn pop_exact(&self, data: *mut ()) -> bool {
        let mut q = self.tasks.lock().unwrap();
        if let Some(pos) = q.iter().rposition(|t| std::ptr::eq(t.data, data)) {
            q.remove(pos);
            return true;
        }
        false
    }
}

/// Completion flag of a forked task, observed by the forking thread. All
/// waking goes through the pool's versioned park, so the latch itself is
/// just the flag.
pub(crate) struct Latch {
    done: AtomicBool,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            done: AtomicBool::new(false),
        }
    }

    fn probe(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }

    fn set(&self) {
        self.done.store(true, Ordering::SeqCst);
        pool().publish();
    }
}

/// The stack-allocated state of a `join` fork: the not-yet-run closure going
/// in, the result (or panic payload) coming out. Lives in `join_impl`'s
/// frame; the deque hand-off protocol guarantees the pointer never outlives
/// it (the caller does not return before reclaiming the task or observing
/// its latch).
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    latch: Latch,
}

// SAFETY: shared between the forking thread and at most one thief, with the
// deque mutex ordering the hand-off and the latch ordering the hand-back.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

/// Execute a [`StackJob`] on a thief: take the closure, run it under
/// `catch_unwind`, store the outcome, fire the latch.
///
/// # Safety
///
/// `data` must point to a live `StackJob<F, R>` whose task was removed from
/// a deque by the caller (sole execution right).
unsafe fn execute_stack_job<F, R>(data: *mut ())
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    let job = unsafe { &*data.cast::<StackJob<F, R>>() };
    // SAFETY: sole execution right ⇒ exclusive access to the cells.
    let func = unsafe { (*job.func.get()).take() }.expect("stack task executed twice");
    let outcome = catch_unwind(AssertUnwindSafe(func));
    unsafe { *job.result.get() = Some(outcome) };
    job.latch.set();
}

/// Execute a boxed `scope`-spawned closure (panic handling lives inside the
/// closure itself — see `Scope::spawn`).
///
/// # Safety
///
/// `data` must come from `Box::into_raw(Box::new(Box<dyn FnOnce() + Send>))`
/// and be executed exactly once.
unsafe fn execute_heap_task(data: *mut ()) {
    let func = unsafe { Box::from_raw(data.cast::<Box<dyn FnOnce() + Send>>()) };
    func();
}

// ---------------------------------------------------------------------------
// The pool proper.
// ---------------------------------------------------------------------------

/// A submitted job, allocated on the submitting thread's stack. Workers hold
/// the pointer only between registration (under the pool lock, while the job
/// is still queued) and their final `remaining` decrement; the submitter does
/// not return before `remaining` reaches zero, so the reference never
/// dangles.
struct Job<'a> {
    body: &'a (dyn Fn(usize) + Sync),
    /// Next participant slot to hand out; slot 0 is the submitter's.
    next_slot: AtomicUsize,
    max_slots: usize,
    /// Workers that have registered but not yet finished.
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

#[derive(Clone, Copy)]
struct JobRef(*const Job<'static>);
// SAFETY: the job outlives every queue entry and every registered worker (see
// the protocol on `Job` and `run_pooled`).
unsafe impl Send for JobRef {}

struct PoolShared {
    queue: Vec<JobRef>,
    spawned: usize,
}

struct Pool {
    /// Job queue + spawn bookkeeping.
    shared: Mutex<PoolShared>,
    /// One lock-free Chase-Lev task deque per (potential) worker; deque `i`
    /// is owned (pushed/popped) by worker `i`, stolen from by everyone.
    deques: Box<[ChaseLev]>,
    /// Task queue for non-worker forkers (and their reclaim target).
    injector: Injector,
    /// Mirror of `PoolShared::spawned` readable without the lock (bounds the
    /// thieves' scan).
    spawned: AtomicUsize,
    /// Bumped on every work publication; the parking protocol re-checks it
    /// under the park lock, so no publication can be slept through.
    version: AtomicUsize,
    /// Number of threads inside `park_cv.wait` (workers and waiters alike);
    /// publishers skip the lock + notify entirely while it is zero.
    sleepers: AtomicUsize,
    park: Mutex<()>,
    park_cv: Condvar,
    /// Where workers outside the installed thread budget sleep. Kept apart
    /// from `park_cv` so the (possibly thousands per second of) work
    /// publications never wake threads that are not allowed to take work;
    /// only a budget change ([`crate::ThreadPool::install`] entering or
    /// restoring) notifies here.
    budget_cv: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        shared: Mutex::new(PoolShared {
            queue: Vec::new(),
            spawned: 0,
        }),
        deques: (0..MAX_WORKERS).map(|_| ChaseLev::new()).collect(),
        injector: Injector::new(),
        spawned: AtomicUsize::new(0),
        version: AtomicUsize::new(0),
        sleepers: AtomicUsize::new(0),
        park: Mutex::new(()),
        park_cv: Condvar::new(),
        budget_cv: Condvar::new(),
    })
}

/// Wake budget-parked workers after a thread-count override change (called
/// by `ThreadPool::install` on entry and restore). A no-op until the pool
/// exists; takes the park lock so a worker's budget re-check under that
/// lock cannot miss the change.
pub(crate) fn budget_changed() {
    if let Some(pool) = POOL.get() {
        let _guard = pool.park.lock().unwrap();
        pool.budget_cv.notify_all();
    }
}

thread_local! {
    /// The pool worker index of the current thread, if it is one.
    static WORKER_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

fn worker_id() -> Option<usize> {
    WORKER_ID.with(Cell::get)
}

/// Helpers the installed thread count allows besides the caller.
fn allowed_helpers() -> usize {
    crate::current_num_threads().saturating_sub(1)
}

impl Pool {
    /// Announce new work (or a completion someone may be waiting on).
    fn publish(&self) {
        self.version.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.park.lock().unwrap();
            self.park_cv.notify_all();
        }
    }

    /// Park until the version moves past `seen`. Callers take `seen` BEFORE
    /// scanning for work: any publication after the snapshot aborts the park
    /// (under the lock), so scan-then-park cannot lose a wakeup.
    ///
    /// Ordering matters: the sleeper registers itself in `sleepers` *before*
    /// re-checking the version. In the SeqCst total order either the parker's
    /// version check sees the publisher's bump (no wait), or the check
    /// precedes the bump — and then the earlier `sleepers` increment precedes
    /// the publisher's `sleepers` load, which therefore observes a sleeper
    /// and takes the lock to notify. The lock is held from registration to
    /// `wait`, so that notify cannot fire in between.
    fn park(&self, seen: usize) {
        let guard = self.park.lock().unwrap();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        if self.version.load(Ordering::SeqCst) == seen {
            OBS_PARKS.bump();
            let _guard = self.park_cv.wait(guard).unwrap();
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Queue a forked task on the caller's deque (workers) or the injector
    /// (everyone else).
    fn push_task(&self, me: Option<usize>, task: Task) {
        match me {
            Some(id) => self.deques[id].push(task),
            None => self.injector.push(task),
        }
        self.publish();
    }

    /// Find one task to run: own deque first (LIFO), then steal a round over
    /// the other workers' deques (FIFO), then the injector.
    fn find_task(&self, me: Option<usize>) -> Option<Task> {
        if let Some(id) = me {
            if let Some(t) = self.deques[id].pop() {
                return Some(t);
            }
        }
        let n = self.spawned.load(Ordering::SeqCst);
        if n > 0 {
            let start = me.map_or(0, |id| id + 1);
            for k in 0..n {
                let i = (start + k) % n;
                if Some(i) == me {
                    continue;
                }
                if let Some(t) = self.deques[i].steal() {
                    return Some(t);
                }
            }
        }
        self.injector.steal()
    }

    /// Execute tasks (own, stolen, injected) until `done()` holds, parking
    /// only when there is nothing to run. This is the wait used by `join`
    /// (latch) and `scope` (pending counter): the waiter keeps the fork-join
    /// tree moving instead of blocking a thread on it.
    fn steal_until(&self, me: Option<usize>, done: impl Fn() -> bool) {
        loop {
            if done() {
                return;
            }
            let seen = self.version.load(Ordering::SeqCst);
            if let Some(task) = self.find_task(me) {
                // SAFETY: removed from a deque ⇒ sole execution right.
                unsafe { (task.execute)(task.data) };
                continue;
            }
            if done() {
                return;
            }
            self.park(seen);
        }
    }

    /// Claim and run one slot of the top queued job, if any.
    fn try_job_slot(&self) -> bool {
        let mut shared = self.shared.lock().unwrap();
        loop {
            let Some(&job_ref) = shared.queue.last() else {
                return false;
            };
            // SAFETY: the job is still queued, so the submitter is still
            // blocked in `run_pooled` and the allocation is live.
            let job = unsafe { &*job_ref.0 };
            let slot = job.next_slot.fetch_add(1, Ordering::Relaxed);
            if slot >= job.max_slots {
                // Fully subscribed: retire it from the queue.
                shared.queue.retain(|j| !std::ptr::eq(j.0, job_ref.0));
                continue;
            }
            // Register while holding the pool lock: the submitter removes the
            // job under the same lock before checking `remaining`, so it
            // cannot miss this participant.
            job.remaining.fetch_add(1, Ordering::SeqCst);
            drop(shared);

            let result = catch_unwind(AssertUnwindSafe(|| (job.body)(slot)));
            if let Err(payload) = result {
                let mut p = job.panic.lock().unwrap();
                if p.is_none() {
                    *p = Some(payload);
                }
            }
            // The job pointer must not be touched past the final decrement.
            if job.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.publish();
            }
            return true;
        }
    }

    /// Spawn workers until `wanted` exist (capped), with a lock-free fast
    /// path once the pool is warm. Failure to spawn degrades to fewer
    /// helpers, never to an error.
    fn ensure_spawned(&self, wanted: usize) {
        let target = wanted.min(MAX_WORKERS);
        if self.spawned.load(Ordering::SeqCst) >= target {
            return;
        }
        let mut shared = self.shared.lock().unwrap();
        ensure_workers(&mut shared, target);
    }
}

fn worker_main(id: usize) {
    WORKER_ID.with(|c| c.set(Some(id)));
    let pool = pool();
    loop {
        // A worker outside the installed thread budget parks on the budget
        // condvar — deaf to work publications — so `install(k)` keeps
        // governing parallelism after a larger warm-up without every fork
        // push wake/re-park-cycling the excluded workers.
        if id >= allowed_helpers() {
            let guard = pool.park.lock().unwrap();
            if id >= allowed_helpers() {
                let _guard = pool.budget_cv.wait(guard).unwrap();
            }
            continue;
        }
        let seen = pool.version.load(Ordering::SeqCst);
        if let Some(task) = pool.find_task(Some(id)) {
            // SAFETY: removed from a deque ⇒ sole execution right.
            unsafe { (task.execute)(task.data) };
            continue;
        }
        if pool.try_job_slot() {
            continue;
        }
        pool.park(seen);
    }
}

/// Spawn pool workers until at least `target` exist (already capped by the
/// caller).
fn ensure_workers(shared: &mut PoolShared, target: usize) {
    while shared.spawned < target {
        let id = shared.spawned;
        if std::thread::Builder::new()
            .name(format!("psi-par-{id}"))
            .stack_size(WORKER_STACK)
            .spawn(move || worker_main(id))
            .is_err()
        {
            break;
        }
        shared.spawned += 1;
        pool().spawned.store(shared.spawned, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// Fork-join entry points (called from `crate::join` / `crate::scope`).
// ---------------------------------------------------------------------------

/// Pool-native `join`: fork `oper_a` as a stealable task, run `oper_b`
/// inline, then reclaim-or-steal until `oper_a` is done. Only called with
/// `current_num_threads() > 1` (the sequential case short-circuits in
/// `crate::join`).
pub(crate) fn join_impl<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = pool();
    pool.ensure_spawned(allowed_helpers());

    let job: StackJob<A, RA> = StackJob {
        func: UnsafeCell::new(Some(oper_a)),
        result: UnsafeCell::new(None),
        latch: Latch::new(),
    };
    let data = std::ptr::from_ref(&job).cast_mut().cast::<()>();
    let me = worker_id();
    pool.push_task(
        me,
        Task {
            execute: execute_stack_job::<A, RA>,
            data,
        },
    );

    let rb = catch_unwind(AssertUnwindSafe(oper_b));

    // Reclaim the fork if nobody stole it. A Chase-Lev deque has no
    // remove-by-identity, so a worker pops LIFO until it meets its own fork:
    // anything above it was pushed more recently by this very thread (a
    // not-yet-reclaimed inner fork or a scope spawn) and is executed inline,
    // exactly as the thief that would otherwise take it would. An empty pop
    // means our fork was stolen. Non-workers reclaim from the injector by
    // identity, under its mutex.
    let reclaimed = match me {
        Some(id) => loop {
            if job.latch.probe() {
                break false; // stolen and already finished
            }
            match pool.deques[id].pop() {
                Some(task) if std::ptr::eq(task.data, data) => break true,
                // SAFETY: removed from the deque ⇒ sole execution right.
                // Panics cannot unwind out: every task body runs under its
                // own `catch_unwind`.
                Some(task) => unsafe { (task.execute)(task.data) },
                None => break false,
            }
        },
        None => pool.injector.pop_exact(data),
    };

    if reclaimed {
        // Nobody stole the fork: run it inline on this thread — the common
        // case, and the whole point of the deque (no thread spawn, no
        // blocking, just a push/pop pair). If `oper_b` already panicked the
        // reclaimed closure is dropped unrun, exactly as upstream rayon
        // drops a popped-back sibling during unwinding.
        // SAFETY: reclaimed from the deque ⇒ sole access to the cells.
        let func = unsafe { (*job.func.get()).take() }.expect("reclaimed task already executed");
        match rb {
            Ok(b) => match catch_unwind(AssertUnwindSafe(func)) {
                Ok(a) => (a, b),
                Err(payload) => resume_unwind(payload),
            },
            Err(payload) => {
                drop(func);
                resume_unwind(payload)
            }
        }
    } else {
        // A thief has it: keep the rest of the fork tree moving until its
        // latch fires. Never returns before the thief is done with the
        // stack frame this job lives in.
        pool.steal_until(me, || job.latch.probe());
        // SAFETY: latch fired ⇒ the thief stored the result and is done.
        let ra =
            unsafe { (*job.result.get()).take() }.expect("stolen task completed without result");
        match (ra, rb) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(payload), _) => resume_unwind(payload),
            (_, Err(payload)) => resume_unwind(payload),
        }
    }
}

/// Shared state of one `scope`: the number of not-yet-finished spawned
/// tasks plus the first panic payload any of them raised. Lives in
/// `crate::scope`'s frame; `scope_wait` keeps it alive past every task.
pub(crate) struct ScopeData {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeData {
    pub(crate) fn new() -> ScopeData {
        ScopeData {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
        }
    }

    pub(crate) fn add_pending(&self) {
        self.pending.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut p = self.panic.lock().unwrap();
        if p.is_none() {
            *p = Some(payload);
        }
    }

    pub(crate) fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap().take()
    }

    /// Mark one spawned task finished (runs after its panic, if any, was
    /// recorded).
    pub(crate) fn complete(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            pool().publish();
        }
    }
}

/// Queue a `scope`-spawned closure as a stealable task.
pub(crate) fn spawn_task(task: Box<dyn FnOnce() + Send>) {
    let pool = pool();
    pool.ensure_spawned(allowed_helpers());
    let data = Box::into_raw(Box::new(task)).cast::<()>();
    pool.push_task(
        worker_id(),
        Task {
            execute: execute_heap_task,
            data,
        },
    );
}

/// Block a `scope` on the completion of all its spawned tasks, executing
/// other tasks while waiting.
pub(crate) fn scope_wait(data: &ScopeData) {
    pool().steal_until(worker_id(), || data.pending.load(Ordering::SeqCst) == 0);
}

// ---------------------------------------------------------------------------
// Job execution (the `par_*` entry point).
// ---------------------------------------------------------------------------

/// Execute `body` once per participant over the shared index space `0..n`.
///
/// `body` receives a [`WorkerRanges`] yielding the index ranges that
/// participant claims; collectively the ranges partition `0..n` exactly.
/// Falls back to running `body` once on the caller (single range `0..n`)
/// when only one participant is warranted.
pub(crate) fn run(n: usize, grain: usize, body: &(dyn Fn(WorkerRanges<'_>) + Sync)) {
    if n == 0 {
        return;
    }
    let threads = crate::current_num_threads().max(1);
    let grain = grain.max(1);
    let nslots = threads.min(n.div_ceil(grain));
    if nslots <= 1 || n >= u32::MAX as usize {
        body(WorkerRanges {
            inner: RangesInner::Seq(Some(0..n)),
        });
        return;
    }
    run_pooled(n, grain, nslots, body);
}

fn run_pooled(n: usize, grain: usize, nslots: usize, body: &(dyn Fn(WorkerRanges<'_>) + Sync)) {
    let queues = RangeQueues::new(n, nslots, grain);
    let run_slot = |slot: usize| {
        body(WorkerRanges {
            inner: RangesInner::Pool {
                queues: &queues,
                slot,
            },
        })
    };
    let job = Job {
        body: &run_slot,
        next_slot: AtomicUsize::new(1),
        max_slots: nslots,
        remaining: AtomicUsize::new(0),
        panic: Mutex::new(None),
    };
    // Erase the job's stack lifetime for the queue; `run_pooled` does not
    // return before every registered worker is done with the pointer.
    let job_ref = JobRef(std::ptr::from_ref(&job).cast::<Job<'static>>());

    let pool = pool();
    {
        let mut shared = pool.shared.lock().unwrap();
        ensure_workers(&mut shared, (nslots - 1).min(MAX_WORKERS));
        shared.queue.push(job_ref);
    }
    pool.publish();

    // Participate as slot 0. The claim/steal loop drains every queue, so
    // this returns only once all of `0..n` has been claimed — even if no
    // worker ever joins.
    let own = catch_unwind(AssertUnwindSafe(|| (job.body)(0)));
    if let Err(payload) = own {
        let mut p = job.panic.lock().unwrap();
        if p.is_none() {
            *p = Some(payload);
        }
    }

    // Retire the job so no further workers can register, then wait for the
    // ones that did (they are finishing their last claimed grain). Instead
    // of parking outright, the blocked submitter lends itself to the
    // fork-join layer and steals queued tasks — typically the nested forks
    // of the very stragglers it is waiting on — parking only when there is
    // provably nothing to run.
    {
        let mut shared = pool.shared.lock().unwrap();
        shared.queue.retain(|j| !std::ptr::eq(j.0, job_ref.0));
    }
    pool.steal_until(worker_id(), || job.remaining.load(Ordering::SeqCst) == 0);

    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Serialises tests that install a thread-count override (the override is
/// process-global, as in upstream rayon).
#[cfg(test)]
pub(crate) fn override_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    fn with_threads<R>(t: usize, f: impl FnOnce() -> R) -> R {
        crate::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .unwrap()
            .install(f)
    }

    #[test]
    fn every_index_delivered_exactly_once() {
        let _g = super::override_lock();
        with_threads(4, || {
            let n = 100_000;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            run(n, 64, &|mut ranges| {
                while let Some(r) = ranges.next() {
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn work_lands_on_multiple_threads() {
        let _g = super::override_lock();
        with_threads(4, || {
            // Items are slow enough that parked workers comfortably wake and
            // claim ranges before the caller drains the job.
            for _attempt in 0..5 {
                let ids = Mutex::new(HashSet::new());
                run(64, 1, &|mut ranges| {
                    while let Some(r) = ranges.next() {
                        for _ in r {
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        }
                        ids.lock().unwrap().insert(std::thread::current().id());
                    }
                });
                if ids.lock().unwrap().len() > 1 {
                    return;
                }
            }
            panic!("no pool worker ever participated in 5 attempts");
        });
    }

    #[test]
    fn single_thread_override_runs_on_caller_only() {
        let _g = super::override_lock();
        with_threads(1, || {
            let caller = std::thread::current().id();
            let ids = Mutex::new(HashSet::new());
            run(10_000, 1, &|mut ranges| {
                while let Some(r) = ranges.next() {
                    for _ in r {}
                    ids.lock().unwrap().insert(std::thread::current().id());
                }
            });
            let ids = ids.into_inner().unwrap();
            assert_eq!(ids.len(), 1);
            assert!(ids.contains(&caller));
        });
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let _g = super::override_lock();
        with_threads(4, || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                run(1000, 8, &|mut ranges| {
                    while let Some(r) = ranges.next() {
                        if r.contains(&437) {
                            panic!("boom in worker");
                        }
                    }
                });
            }));
            assert!(result.is_err());
            // The pool must stay usable afterwards.
            let count = AtomicUsize::new(0);
            run(1000, 8, &|mut ranges| {
                while let Some(r) = ranges.next() {
                    count.fetch_add(r.len(), Ordering::Relaxed);
                }
            });
            assert_eq!(count.load(Ordering::Relaxed), 1000);
        });
    }

    #[test]
    fn nested_jobs_complete() {
        let _g = super::override_lock();
        with_threads(4, || {
            let total = AtomicUsize::new(0);
            run(8, 1, &|mut ranges| {
                while let Some(r) = ranges.next() {
                    for _ in r {
                        // Nested job from inside a participant.
                        run(100, 4, &|mut inner| {
                            while let Some(ir) = inner.next() {
                                total.fetch_add(ir.len(), Ordering::Relaxed);
                            }
                        });
                    }
                }
            });
            assert_eq!(total.load(Ordering::Relaxed), 800);
        });
    }

    #[test]
    fn steals_rebalance_uneven_work() {
        let _g = super::override_lock();
        with_threads(4, || {
            // One slot's initial share is far more expensive than the rest;
            // completion in bounded time with all indices covered exercises
            // the steal path (timing is not asserted, coverage is).
            let n = 4096;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            run(n, 8, &|mut ranges| {
                while let Some(r) = ranges.next() {
                    for i in r {
                        if i < 64 {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn join_task_is_reclaimed_when_not_stolen() {
        let _g = super::override_lock();
        with_threads(4, || {
            // Trivially fast joins: the fork is virtually always popped back
            // before any worker wakes. Either way, both closures run exactly
            // once and the results come back in position.
            for i in 0..1000u64 {
                let (a, b) = crate::join(|| i * 2, || i * 3);
                assert_eq!((a, b), (i * 2, i * 3));
            }
        });
    }

    // -----------------------------------------------------------------
    // Chase-Lev deque unit/stress tests: direct hammering of the
    // lock-free hand-off protocol, no pool involved.
    // -----------------------------------------------------------------

    /// A task body that must never run: these tests treat `data` as an
    /// opaque payload and only exercise the ownership hand-off.
    unsafe fn never_run(_: *mut ()) {
        unreachable!("hammer tasks are counted, not executed");
    }

    fn payload_task(v: usize) -> Task {
        Task {
            execute: never_run,
            data: v as *mut (),
        }
    }

    #[test]
    fn chase_lev_owner_lifo_thief_fifo() {
        let dq = ChaseLev::new();
        for v in 1..=3 {
            dq.push(payload_task(v));
        }
        assert_eq!(dq.pop().map(|t| t.data as usize), Some(3));
        assert_eq!(dq.steal().map(|t| t.data as usize), Some(1));
        assert_eq!(dq.steal().map(|t| t.data as usize), Some(2));
        assert!(dq.steal().is_none());
        assert!(dq.pop().is_none());
    }

    #[test]
    fn chase_lev_growth_preserves_live_window_across_wraparound() {
        // A 2-slot ring forces growth almost immediately; the interleaved
        // pops/steals keep advancing top and bottom so the live window
        // repeatedly wraps each ring it grows into.
        let dq = ChaseLev::with_capacity(2);
        let mut expect = VecDeque::new();
        let mut next = 0usize;
        for round in 0..64 {
            for _ in 0..(round % 7) + 1 {
                next += 1;
                dq.push(payload_task(next));
                expect.push_back(next);
            }
            if round % 2 == 0 {
                assert_eq!(dq.pop().map(|t| t.data as usize), expect.pop_back());
            } else {
                assert_eq!(dq.steal().map(|t| t.data as usize), expect.pop_front());
            }
        }
        while let Some(want) = expect.pop_back() {
            assert_eq!(dq.pop().map(|t| t.data as usize), Some(want));
        }
        assert!(dq.pop().is_none());
        assert!(dq.steal().is_none());
    }

    #[test]
    fn chase_lev_steal_pop_hammer_every_task_exactly_once() {
        // Seeded owner push/pop mix under concurrent thieves, on a tiny
        // initial ring: constant growth + wraparound + empty races under
        // fire. Loss would show as a short count, ABA as a duplicate.
        use std::sync::Arc;
        const N: usize = 100_000;
        const THIEVES: usize = 3;
        let dq = Arc::new(ChaseLev::with_capacity(2));
        let done = Arc::new(AtomicBool::new(false));
        let mut thieves = Vec::new();
        for _ in 0..THIEVES {
            let dq = Arc::clone(&dq);
            let done = Arc::clone(&done);
            thieves.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match dq.steal() {
                        Some(t) => got.push(t.data as usize),
                        None if done.load(Ordering::SeqCst) => break,
                        None => std::thread::yield_now(),
                    }
                }
                got
            }));
        }
        let mut consumed = Vec::with_capacity(N);
        let mut rng = 0x9E37_79B9_7F4A_7C15u64; // fixed seed
        for v in 1..=N {
            dq.push(payload_task(v));
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if rng.is_multiple_of(3) {
                if let Some(t) = dq.pop() {
                    consumed.push(t.data as usize);
                }
            }
        }
        while let Some(t) = dq.pop() {
            consumed.push(t.data as usize);
        }
        // The owner drained to empty and nothing pushes afterwards, so the
        // thieves' final None is definitive.
        done.store(true, Ordering::SeqCst);
        for h in thieves {
            consumed.extend(h.join().unwrap());
        }
        consumed.sort_unstable();
        assert_eq!(consumed.len(), N, "a task was lost or duplicated");
        assert!(
            consumed.iter().copied().eq(1..=N),
            "hand-off must deliver every task exactly once"
        );
    }

    #[test]
    fn chase_lev_single_element_race_has_exactly_one_winner() {
        // The ABA-prone case: exactly one task in the deque, owner pop and
        // thief steal released simultaneously — the SeqCst CAS on `top`
        // must let exactly one side claim it, every round.
        use std::sync::{Arc, Barrier};
        const ROUNDS: usize = 2_000;
        let dq = Arc::new(ChaseLev::with_capacity(2));
        let start = Arc::new(Barrier::new(2));
        let end = Arc::new(Barrier::new(2));
        let thief = {
            let dq = Arc::clone(&dq);
            let (start, end) = (Arc::clone(&start), Arc::clone(&end));
            std::thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..ROUNDS {
                    start.wait();
                    if let Some(t) = dq.steal() {
                        got.push(t.data as usize);
                    }
                    end.wait();
                }
                got
            })
        };
        let mut all = Vec::new();
        for round in 1..=ROUNDS {
            dq.push(payload_task(round));
            start.wait();
            if let Some(t) = dq.pop() {
                all.push(t.data as usize);
            }
            end.wait();
        }
        all.extend(thief.join().unwrap());
        all.sort_unstable();
        assert!(
            all.iter().copied().eq(1..=ROUNDS),
            "each round's lone task must be claimed by exactly one side"
        );
    }

    #[test]
    fn stolen_join_task_sets_latch_and_returns_result() {
        let _g = super::override_lock();
        with_threads(4, || {
            // A slow inline half gives workers ample time to steal the fork;
            // on any scheduling the result must be identical.
            for _ in 0..20 {
                let (a, b) = crate::join(
                    || (0..1000u64).sum::<u64>(),
                    || {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        1u64
                    },
                );
                assert_eq!(a, 499_500);
                assert_eq!(b, 1);
            }
        });
    }
}
