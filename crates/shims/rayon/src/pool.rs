//! The global worker pool and chunked work-distribution core behind the
//! `par_*` substrate.
//!
//! # Execution model
//!
//! A parallel operation over `n` items is a **job**: the index space `0..n`
//! is partitioned into one contiguous range per participant slot, each slot
//! backed by an atomic `(lo, hi)` pair — the slot's *work queue*. Every
//! participating thread (the submitting caller plus lazily-spawned pool
//! workers) owns one slot and repeatedly claims a grain-sized chunk from the
//! front of its own queue; when the queue runs dry it **steals** the back
//! half of the fullest other queue into its own and continues. All state
//! transitions are single CAS operations on the packed pair, so claiming is
//! lock-free and every index is delivered exactly once.
//!
//! The submitting thread always participates (slot 0) and, crucially, the
//! claim/steal loop lets *any single participant drain the entire job*. A
//! job therefore completes even if every pool worker is busy elsewhere —
//! which is exactly what happens with nested parallelism: a worker that hits
//! a nested `par_*` call submits a child job, drains whatever share of it
//! the rest of the pool doesn't take, and only then waits. No participant
//! ever waits for work it could do itself, so nesting cannot deadlock.
//!
//! # Pool sizing
//!
//! Workers are spawned on demand, up to `current_num_threads() - 1` for the
//! job being submitted (so [`crate::ThreadPool::install`] and the
//! `RAYON_NUM_THREADS` environment variable genuinely control parallelism,
//! including oversubscription beyond the core count, as upstream rayon
//! allows). Idle workers park on a condition variable; they are never torn
//! down.
//!
//! # Panics
//!
//! A panic in worker-executed code is caught at the job boundary, the first
//! payload is stored, and once every participant has finished the payload is
//! re-raised on the submitting thread — the same contract as upstream rayon.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Hard cap on pool threads, a guard against runaway
/// `ThreadPool::install(huge)` requests.
const MAX_WORKERS: usize = 192;

/// Each participant splits its fair share into roughly this many grains, so
/// late-starting participants and uneven item costs still balance via steals.
pub(crate) const CHUNKS_PER_WORKER: usize = 8;

/// Default grain size for `n` items across `threads` participants, floored by
/// the caller's `with_min_len`-style hint.
pub(crate) fn grain_for(n: usize, threads: usize, min_len: usize) -> usize {
    (n / (threads.max(1) * CHUNKS_PER_WORKER))
        .max(min_len)
        .max(1)
}

// ---------------------------------------------------------------------------
// Per-slot range queues with steal-on-idle.
// ---------------------------------------------------------------------------

#[inline]
fn pack(lo: usize, hi: usize) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

#[inline]
fn unpack(v: u64) -> (usize, usize) {
    ((v >> 32) as usize, (v & 0xFFFF_FFFF) as usize)
}

/// The shared work-distribution state of one job: one packed `(lo, hi)`
/// index range per participant slot.
pub(crate) struct RangeQueues {
    slots: Box<[AtomicU64]>,
    grain: usize,
}

impl RangeQueues {
    /// Partition `0..n` evenly across `nslots` queues. Requires
    /// `n < u32::MAX` (enforced by [`run`]'s sequential fallback).
    fn new(n: usize, nslots: usize, grain: usize) -> Self {
        let slots: Vec<AtomicU64> = (0..nslots)
            .map(|s| AtomicU64::new(pack(n * s / nslots, n * (s + 1) / nslots)))
            .collect();
        RangeQueues {
            slots: slots.into_boxed_slice(),
            grain: grain.max(1),
        }
    }

    /// Claim up to one grain from the front of `slot`'s own queue.
    fn claim_own(&self, slot: usize) -> Option<Range<usize>> {
        let cell = &self.slots[slot];
        let mut cur = cell.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let next = (lo + self.grain).min(hi);
            match cell.compare_exchange_weak(
                cur,
                pack(next, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo..next),
                Err(now) => cur = now,
            }
        }
    }

    /// Steal the back half of the fullest other queue into `slot`'s (empty)
    /// own queue. Returns `false` only when every queue was observed empty.
    fn steal_into(&self, slot: usize) -> bool {
        loop {
            let mut best: Option<(usize, usize, usize)> = None; // (victim, lo, hi)
            for (i, cell) in self.slots.iter().enumerate() {
                if i == slot {
                    continue;
                }
                let (lo, hi) = unpack(cell.load(Ordering::Acquire));
                if hi > lo && best.is_none_or(|(_, blo, bhi)| hi - lo > bhi - blo) {
                    best = Some((i, lo, hi));
                }
            }
            let Some((victim, lo, hi)) = best else {
                return false;
            };
            let rem = hi - lo;
            let take = (rem - rem / 2).min(rem); // ceil(rem / 2)
            let split = hi - take;
            if self.slots[victim]
                .compare_exchange(
                    pack(lo, hi),
                    pack(lo, split),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // Deposit the stolen tail into our own (currently empty)
                // queue, where other thieves may in turn steal from it.
                self.slots[slot].store(pack(split, hi), Ordering::Release);
                return true;
            }
            // Lost the race; rescan.
        }
    }

    fn next(&self, slot: usize) -> Option<Range<usize>> {
        loop {
            if let Some(r) = self.claim_own(slot) {
                return Some(r);
            }
            if !self.steal_into(slot) {
                return None;
            }
        }
    }
}

/// One participant's view of a job's work distribution: an iterator-like
/// source of disjoint index ranges. Handed to the per-worker body exactly
/// once per participant, which is what makes per-worker state (`map_init`)
/// genuinely per-worker.
pub(crate) struct WorkerRanges<'a> {
    inner: RangesInner<'a>,
}

enum RangesInner<'a> {
    /// Sequential fallback: the whole index space, delivered once.
    Seq(Option<Range<usize>>),
    /// A slot of a pooled job.
    Pool {
        queues: &'a RangeQueues,
        slot: usize,
    },
}

impl WorkerRanges<'_> {
    /// The next range of indices this participant should process, or `None`
    /// when the whole job's index space has been claimed.
    pub(crate) fn next(&mut self) -> Option<Range<usize>> {
        match &mut self.inner {
            RangesInner::Seq(r) => r.take(),
            RangesInner::Pool { queues, slot } => queues.next(*slot),
        }
    }
}

// ---------------------------------------------------------------------------
// The pool proper.
// ---------------------------------------------------------------------------

/// A submitted job, allocated on the submitting thread's stack. Workers hold
/// the pointer only between registration (under the pool lock, while the job
/// is still queued) and their final `remaining` decrement; the submitter does
/// not return before `remaining` reaches zero, so the reference never
/// dangles.
struct Job<'a> {
    body: &'a (dyn Fn(usize) + Sync),
    /// Next participant slot to hand out; slot 0 is the submitter's.
    next_slot: AtomicUsize,
    max_slots: usize,
    /// Workers that have registered but not yet finished.
    remaining: AtomicUsize,
    done: Mutex<()>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

#[derive(Clone, Copy)]
struct JobRef(*const Job<'static>);
// SAFETY: the job outlives every queue entry and every registered worker (see
// the protocol on `Job` and `run_pooled`).
unsafe impl Send for JobRef {}

struct PoolShared {
    queue: Vec<JobRef>,
    spawned: usize,
}

struct Pool {
    shared: Mutex<PoolShared>,
    work_cv: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: Mutex::new(PoolShared {
            queue: Vec::new(),
            spawned: 0,
        }),
        work_cv: Condvar::new(),
    })
}

fn worker_main() {
    let pool = pool();
    let mut guard = pool.shared.lock().unwrap();
    loop {
        if let Some(&job_ref) = guard.queue.last() {
            // SAFETY: the job is still queued, so the submitter is still
            // blocked in `run_pooled` and the allocation is live.
            let job = unsafe { &*job_ref.0 };
            let slot = job.next_slot.fetch_add(1, Ordering::Relaxed);
            if slot >= job.max_slots {
                // Fully subscribed: retire it from the queue.
                guard.queue.retain(|j| !std::ptr::eq(j.0, job_ref.0));
                continue;
            }
            // Register while holding the pool lock: the submitter removes the
            // job under the same lock before checking `remaining`, so it
            // cannot miss this participant.
            job.remaining.fetch_add(1, Ordering::SeqCst);
            drop(guard);

            let result = catch_unwind(AssertUnwindSafe(|| (job.body)(slot)));
            if let Err(payload) = result {
                let mut p = job.panic.lock().unwrap();
                if p.is_none() {
                    *p = Some(payload);
                }
            }
            {
                let _d = job.done.lock().unwrap();
                if job.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                    job.done_cv.notify_all();
                }
            }
            // The job pointer must not be touched past this point.
            guard = pool.shared.lock().unwrap();
        } else {
            guard = pool.work_cv.wait(guard).unwrap();
        }
    }
}

/// Spawn pool workers until at least `wanted` exist (capped). Failure to
/// spawn degrades to fewer helpers, never to an error.
fn ensure_workers(shared: &mut PoolShared, wanted: usize) {
    let target = wanted.min(MAX_WORKERS);
    while shared.spawned < target {
        let name = format!("psi-par-{}", shared.spawned);
        if std::thread::Builder::new()
            .name(name)
            .spawn(worker_main)
            .is_err()
        {
            break;
        }
        shared.spawned += 1;
    }
}

/// Execute `body` once per participant over the shared index space `0..n`.
///
/// `body` receives a [`WorkerRanges`] yielding the index ranges that
/// participant claims; collectively the ranges partition `0..n` exactly.
/// Falls back to running `body` once on the caller (single range `0..n`)
/// when only one participant is warranted.
pub(crate) fn run(n: usize, grain: usize, body: &(dyn Fn(WorkerRanges<'_>) + Sync)) {
    if n == 0 {
        return;
    }
    let threads = crate::current_num_threads().max(1);
    let grain = grain.max(1);
    let nslots = threads.min(n.div_ceil(grain));
    if nslots <= 1 || n >= u32::MAX as usize {
        body(WorkerRanges {
            inner: RangesInner::Seq(Some(0..n)),
        });
        return;
    }
    run_pooled(n, grain, nslots, body);
}

fn run_pooled(n: usize, grain: usize, nslots: usize, body: &(dyn Fn(WorkerRanges<'_>) + Sync)) {
    let queues = RangeQueues::new(n, nslots, grain);
    let run_slot = |slot: usize| {
        body(WorkerRanges {
            inner: RangesInner::Pool {
                queues: &queues,
                slot,
            },
        })
    };
    let job = Job {
        body: &run_slot,
        next_slot: AtomicUsize::new(1),
        max_slots: nslots,
        remaining: AtomicUsize::new(0),
        done: Mutex::new(()),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
    };
    // Erase the job's stack lifetime for the queue; `run_pooled` does not
    // return before every registered worker is done with the pointer.
    let job_ref = JobRef(std::ptr::from_ref(&job).cast::<Job<'static>>());

    let pool = pool();
    {
        let mut shared = pool.shared.lock().unwrap();
        ensure_workers(&mut shared, nslots - 1);
        shared.queue.push(job_ref);
    }
    pool.work_cv.notify_all();

    // Participate as slot 0. The claim/steal loop drains every queue, so
    // this returns only once all of `0..n` has been claimed — even if no
    // worker ever joins.
    let own = catch_unwind(AssertUnwindSafe(|| (job.body)(0)));
    if let Err(payload) = own {
        let mut p = job.panic.lock().unwrap();
        if p.is_none() {
            *p = Some(payload);
        }
    }

    // Retire the job so no further workers can register, then wait for the
    // ones that did.
    {
        let mut shared = pool.shared.lock().unwrap();
        shared.queue.retain(|j| !std::ptr::eq(j.0, job_ref.0));
    }
    {
        let mut d = job.done.lock().unwrap();
        while job.remaining.load(Ordering::SeqCst) > 0 {
            d = job.done_cv.wait(d).unwrap();
        }
    }

    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Serialises tests that install a thread-count override (the override is
/// process-global, as in upstream rayon).
#[cfg(test)]
pub(crate) fn override_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    fn with_threads<R>(t: usize, f: impl FnOnce() -> R) -> R {
        crate::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .unwrap()
            .install(f)
    }

    #[test]
    fn every_index_delivered_exactly_once() {
        let _g = super::override_lock();
        with_threads(4, || {
            let n = 100_000;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            run(n, 64, &|mut ranges| {
                while let Some(r) = ranges.next() {
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn work_lands_on_multiple_threads() {
        let _g = super::override_lock();
        with_threads(4, || {
            // Items are slow enough that parked workers comfortably wake and
            // claim ranges before the caller drains the job.
            for _attempt in 0..5 {
                let ids = Mutex::new(HashSet::new());
                run(64, 1, &|mut ranges| {
                    while let Some(r) = ranges.next() {
                        for _ in r {
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        }
                        ids.lock().unwrap().insert(std::thread::current().id());
                    }
                });
                if ids.lock().unwrap().len() > 1 {
                    return;
                }
            }
            panic!("no pool worker ever participated in 5 attempts");
        });
    }

    #[test]
    fn single_thread_override_runs_on_caller_only() {
        let _g = super::override_lock();
        with_threads(1, || {
            let caller = std::thread::current().id();
            let ids = Mutex::new(HashSet::new());
            run(10_000, 1, &|mut ranges| {
                while let Some(r) = ranges.next() {
                    for _ in r {}
                    ids.lock().unwrap().insert(std::thread::current().id());
                }
            });
            let ids = ids.into_inner().unwrap();
            assert_eq!(ids.len(), 1);
            assert!(ids.contains(&caller));
        });
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let _g = super::override_lock();
        with_threads(4, || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                run(1000, 8, &|mut ranges| {
                    while let Some(r) = ranges.next() {
                        if r.contains(&437) {
                            panic!("boom in worker");
                        }
                    }
                });
            }));
            assert!(result.is_err());
            // The pool must stay usable afterwards.
            let count = AtomicUsize::new(0);
            run(1000, 8, &|mut ranges| {
                while let Some(r) = ranges.next() {
                    count.fetch_add(r.len(), Ordering::Relaxed);
                }
            });
            assert_eq!(count.load(Ordering::Relaxed), 1000);
        });
    }

    #[test]
    fn nested_jobs_complete() {
        let _g = super::override_lock();
        with_threads(4, || {
            let total = AtomicUsize::new(0);
            run(8, 1, &|mut ranges| {
                while let Some(r) = ranges.next() {
                    for _ in r {
                        // Nested job from inside a participant.
                        run(100, 4, &|mut inner| {
                            while let Some(ir) = inner.next() {
                                total.fetch_add(ir.len(), Ordering::Relaxed);
                            }
                        });
                    }
                }
            });
            assert_eq!(total.load(Ordering::Relaxed), 800);
        });
    }

    #[test]
    fn steals_rebalance_uneven_work() {
        let _g = super::override_lock();
        with_threads(4, || {
            // One slot's initial share is far more expensive than the rest;
            // completion in bounded time with all indices covered exercises
            // the steal path (timing is not asserted, coverage is).
            let n = 4096;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            run(n, 8, &|mut ranges| {
                while let Some(r) = ranges.next() {
                    for i in r {
                        if i < 64 {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }
}
