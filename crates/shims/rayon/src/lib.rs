//! Hermetic stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! Ψ-Lib-rs is built and tested in environments without network access to a
//! crate registry, so the workspace vendors minimal local implementations of
//! its external dependencies under their upstream names (see
//! `crates/shims/README.md`). This one covers the slice of rayon the
//! workspace uses, with **real parallel execution** throughout:
//!
//! * [`prelude`] — the `par_*` iterator entry points (`par_iter`,
//!   `par_iter_mut`, `par_chunks(_mut)`, `into_par_iter`, `zip`,
//!   `enumerate`, `map`, `map_init`, `flat_map_iter`, `for_each`, `sum`,
//!   `collect`, `par_sort_*`) execute on a lazily-initialised global worker
//!   pool ([`mod@pool`]): the index space is split into per-participant
//!   queues, claimed in grain-sized chunks, with steal-on-idle rebalancing.
//!   `collect` preserves input order and `map_init` keeps genuinely
//!   per-worker state, so results are bit-identical to a sequential run.
//! * [`join`] — bounded fork-join parallelism on scoped OS threads: a global
//!   token budget of `current_num_threads() - 1` helpers decides whether the
//!   first closure gets its own thread or runs inline. `join` composes with
//!   the worker pool from any thread (including from inside pool workers —
//!   the token budget simply saturates and execution degrades to
//!   sequential), preserving the binary fork-join model the paper's
//!   algorithms are written against.
//! * [`scope`] / [`Scope::spawn`] — thin wrappers over [`std::thread::scope`].
//! * Thread-count control — `current_num_threads()` defaults to the
//!   `RAYON_NUM_THREADS` environment variable (as upstream) or the machine's
//!   available parallelism, and [`ThreadPool::install`] overrides it for a
//!   closure's duration, including `num_threads(1)` forcing fully sequential
//!   execution and oversubscription beyond the core count.
//!
//! Swapping the real rayon back in requires no source changes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

mod pool;
pub mod prelude;
mod sort;

/// Number of worker threads the substrate may use (upstream: size of the
/// global thread pool): a [`ThreadPool::install`] override if one is active,
/// else the `RAYON_NUM_THREADS` environment variable (upstream honours it
/// too), else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    match THREADS_OVERRIDE.load(Ordering::Acquire) {
        0 => default_num_threads(),
        n => n,
    }
}

fn default_num_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Tokens for helper threads spawned by [`join`]; at most
/// `current_num_threads() - 1` helpers exist at any moment.
static HELPERS_IN_USE: AtomicUsize = AtomicUsize::new(0);

/// Thread-count override installed by [`ThreadPool::install`]; `0` = none.
/// Process-global, like rayon's global pool — scalability sweeps install
/// their pools one at a time.
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn helper_limit() -> usize {
    current_num_threads().saturating_sub(1)
}

struct HelperToken;

impl HelperToken {
    fn try_acquire() -> Option<HelperToken> {
        let limit = helper_limit();
        let mut cur = HELPERS_IN_USE.load(Ordering::Relaxed);
        while cur < limit {
            match HELPERS_IN_USE.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(HelperToken),
                Err(now) => cur = now,
            }
        }
        None
    }
}

impl Drop for HelperToken {
    fn drop(&mut self) {
        HELPERS_IN_USE.fetch_sub(1, Ordering::Release);
    }
}

/// Execute the two closures, potentially in parallel, and return both results.
///
/// Matches `rayon::join`'s contract: `oper_a` may run on another thread while
/// `oper_b` runs on the caller's; panics propagate to the caller.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if let Some(token) = HelperToken::try_acquire() {
        let result = std::thread::scope(|s| {
            let handle = s.spawn(oper_a);
            let rb = oper_b();
            (handle.join(), rb)
        });
        drop(token);
        match result {
            (Ok(ra), rb) => (ra, rb),
            (Err(payload), _) => std::panic::resume_unwind(payload),
        }
    } else {
        (oper_a(), oper_b())
    }
}

/// A fork-join scope handed to [`scope`] closures; `spawn` runs tasks on
/// scoped OS threads (upstream: on the thread pool).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task that may borrow from the enclosing scope.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || body(&Scope { inner }));
    }
}

/// Create a fork-join scope; blocks until every spawned task finished.
pub fn scope<'env, F, R>(body: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| body(&Scope { inner: s }))
}

/// Stand-in for rayon's pool configuration. `build_global` is a no-op (the
/// shim sizes itself from `RAYON_NUM_THREADS` / `available_parallelism`);
/// `build` yields a [`ThreadPool`] whose `install` honours `num_threads`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        Ok(())
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Stand-in pool handle: `install` runs the closure on the caller, with the
/// pool's thread count installed as the process-global limit for the
/// duration — it bounds both the worker-pool participants of every `par_*`
/// operation and `join`'s helper-thread tokens, so `num_threads(1)` really
/// is sequential and `num_threads(k)` on a smaller machine oversubscribes,
/// as upstream. Overrides don't nest.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREADS_OVERRIDE.store(self.0, Ordering::Release);
            }
        }
        let previous = THREADS_OVERRIDE.swap(self.num_threads, Ordering::AcqRel);
        let _restore = Restore(previous);
        op()
    }
}

/// Error type kept for signature compatibility; the shim never produces it.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already initialised")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn nested_joins_fan_out_and_come_back() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 1000 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 100_000), 100_000 * 99_999 / 2);
    }

    #[test]
    fn join_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            join(|| panic!("boom"), || 0);
        });
        assert!(result.is_err());
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let _g = crate::pool::override_lock();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        // Default (0) means automatic sizing, i.e. no override.
        let auto = ThreadPoolBuilder::new().build().unwrap();
        assert!(auto.install(current_num_threads) >= 1);
    }

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..16 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }
}
