//! Hermetic stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! Ψ-Lib-rs is built and tested in environments without network access to a
//! crate registry, so the workspace vendors minimal local implementations of
//! its external dependencies under their upstream names (see
//! `crates/shims/README.md`). This one covers the slice of rayon the
//! workspace uses, with **real parallel execution** throughout, all on one
//! global worker pool ([`mod@pool`]):
//!
//! * [`prelude`] — the `par_*` iterator entry points (`par_iter`,
//!   `par_iter_mut`, `par_chunks(_mut)`, `into_par_iter`, `zip`,
//!   `enumerate`, `map`, `map_init`, `flat_map_iter`, `for_each`, `sum`,
//!   `collect`, `par_sort_*`) execute as pool **jobs**: the index space is
//!   split into per-participant queues, claimed in grain-sized chunks, with
//!   steal-on-idle rebalancing. `collect` preserves input order and
//!   `map_init` keeps genuinely per-worker state, so results are
//!   bit-identical to a sequential run.
//! * [`join`] — pool-native fork-join on per-worker **task deques** (LIFO
//!   local pop, FIFO steal, plus a global injector for non-worker callers):
//!   the first closure is pushed as a stealable task, the second runs
//!   inline, and the caller then pops the fork back (the common case — no
//!   OS interaction at all) or, if a thief took it, executes *other* tasks
//!   until the thief's latch fires. Forks never spawn threads and waits
//!   never block a thread that could be working, so deep `join` recursions
//!   nested inside `par_*` jobs (and vice versa) compose deadlock-free at
//!   full parallelism — the binary fork-join model the paper's algorithms
//!   are written against, at amortised task-push cost.
//! * [`scope`] / [`Scope::spawn`] — spawned closures ride the same task
//!   deques as `join` forks; the scope's closing brace executes pending
//!   tasks while it waits, and panics from any task re-raise on the caller.
//! * Thread-count control — `current_num_threads()` defaults to the
//!   `RAYON_NUM_THREADS` environment variable (as upstream) or the machine's
//!   available parallelism, and [`ThreadPool::install`] overrides it for a
//!   closure's duration: `num_threads(1)` forces fully sequential inline
//!   execution (no tasks are even published), larger counts bound how many
//!   pool workers may participate, including oversubscription beyond the
//!   core count.
//!
//! Swapping the real rayon back in requires no source changes.

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

mod pool;
pub mod prelude;
mod sort;

/// Number of worker threads the substrate may use (upstream: size of the
/// global thread pool): a [`ThreadPool::install`] override if one is active,
/// else the `RAYON_NUM_THREADS` environment variable (upstream honours it
/// too), else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    match THREADS_OVERRIDE.load(Ordering::Acquire) {
        0 => default_num_threads(),
        n => n,
    }
}

fn default_num_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Thread-count override installed by [`ThreadPool::install`]; `0` = none.
/// Process-global, like rayon's global pool — scalability sweeps install
/// their pools one at a time.
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Execute the two closures, potentially in parallel, and return both results.
///
/// Matches `rayon::join`'s contract: `oper_a` may run on another thread while
/// `oper_b` runs on the caller's; panics propagate to the caller.
///
/// Since the task-deque executor landed, a `join` is a pool-native fork:
/// `oper_a` goes onto the calling worker's deque (or the global injector)
/// as a stealable task, `oper_b` runs inline, and the caller reclaims the
/// un-stolen fork or work-steals until the thief finishes. **No OS thread
/// is spawned per call**, so an n-leaf fork-join recursion costs n task
/// pushes — not n thread spawn/teardown round-trips — and arbitrarily deep
/// nesting (join inside `par_iter` inside join) keeps every allowed thread
/// busy instead of degrading to sequential under a helper budget.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        // Sequential mode: run in fork order without touching the pool.
        (oper_a(), oper_b())
    } else {
        pool::join_impl(oper_a, oper_b)
    }
}

/// A fork-join scope handed to [`scope`] closures; `spawn` queues tasks on
/// the worker pool's task deques (upstream shape: `Scope<'scope>`).
pub struct Scope<'scope> {
    data: *const pool::ScopeData,
    /// Invariant over `'scope`, as upstream (spawned closures may borrow
    /// and mutate state that must outlive the scope).
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

// SAFETY: the scope only exposes `&self` operations on `Sync` shared state
// (`ScopeData`), and `scope` keeps that state alive until every spawned
// task finished.
unsafe impl Send for Scope<'_> {}
unsafe impl Sync for Scope<'_> {}

/// `*const ScopeData` that may travel inside a `Send` task closure.
struct ScopePtr(*const pool::ScopeData);
// SAFETY: `ScopeData` is `Sync` and outlives every task (see `scope`).
unsafe impl Send for ScopePtr {}

impl ScopePtr {
    /// Accessor keeping closure captures on the `Send` wrapper rather than
    /// the raw field (edition-2021 closures capture disjoint fields).
    #[inline]
    fn get(&self) -> *const pool::ScopeData {
        self.0
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn a task that may borrow from the enclosing scope. The task is
    /// pushed on the current worker's deque (or the injector) and runs on
    /// whichever pool thread gets to it first; under a single-thread
    /// budget it runs inline immediately.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        // SAFETY: `scope` does not return before `pending` drains to zero,
        // so the data outlives this call and the spawned task.
        let data = unsafe { &*self.data };
        data.add_pending();
        let ptr = ScopePtr(self.data);
        let run = move || {
            let scope = Scope {
                data: ptr.get(),
                _marker: PhantomData,
            };
            let result = catch_unwind(AssertUnwindSafe(|| body(&scope)));
            // SAFETY: as above — the scope's wait keeps the data alive.
            let data = unsafe { &*ptr.get() };
            if let Err(payload) = result {
                data.record_panic(payload);
            }
            data.complete();
        };
        if current_num_threads() <= 1 {
            // Sequential mode: run inline, but keep the panic contract (the
            // payload surfaces at the scope's closing brace, as upstream).
            run();
            return;
        }
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(run);
        // SAFETY: lifetime erasure only — `scope` blocks until the task has
        // executed, so every `'scope` borrow inside stays valid.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        pool::spawn_task(task);
    }
}

/// Create a fork-join scope; blocks until every spawned task finished,
/// executing queued tasks itself while it waits. The first panic out of the
/// scope body or any spawned task is re-raised here once the scope is quiet.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let data = pool::ScopeData::new();
    let scope = Scope {
        data: &data,
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    // Even (especially) on a panicking body: never unwind past tasks that
    // borrow this frame.
    pool::scope_wait(&data);
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(r) => {
            if let Some(payload) = data.take_panic() {
                resume_unwind(payload);
            }
            r
        }
    }
}

/// Stand-in for rayon's pool configuration. `build_global` is a no-op (the
/// shim sizes itself from `RAYON_NUM_THREADS` / `available_parallelism`);
/// `build` yields a [`ThreadPool`] whose `install` honours `num_threads`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        Ok(())
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Stand-in pool handle: `install` runs the closure on the caller, with the
/// pool's thread count installed as the process-global limit for the
/// duration — it bounds the worker-pool participants of every `par_*`
/// operation and the workers eligible to steal fork-join tasks, so
/// `num_threads(1)` really is sequential and `num_threads(k)` on a smaller
/// machine oversubscribes, as upstream. Overrides don't nest.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREADS_OVERRIDE.store(self.0, Ordering::Release);
                // The budget may have grown back: budget-parked workers
                // re-evaluate (they are deaf to work publications).
                pool::budget_changed();
            }
        }
        let previous = THREADS_OVERRIDE.swap(self.num_threads, Ordering::AcqRel);
        pool::budget_changed();
        let _restore = Restore(previous);
        op()
    }
}

/// Error type kept for signature compatibility; the shim never produces it.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already initialised")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn nested_joins_fan_out_and_come_back() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 1000 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 100_000), 100_000 * 99_999 / 2);
    }

    #[test]
    fn join_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            join(|| panic!("boom"), || 0);
        });
        assert!(result.is_err());
    }

    #[test]
    fn join_propagates_inline_half_panics() {
        let _g = crate::pool::override_lock();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                join(|| 1, || panic!("inline boom"));
            }));
            assert!(result.is_err());
            // The executor stays usable.
            let (a, b) = join(|| 2, || 3);
            assert_eq!(a + b, 5);
        });
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let _g = crate::pool::override_lock();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        // Default (0) means automatic sizing, i.e. no override.
        let auto = ThreadPoolBuilder::new().build().unwrap();
        assert!(auto.install(current_num_threads) >= 1);
    }

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..16 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn scope_tasks_can_spawn_more_tasks() {
        let _g = crate::pool::override_lock();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let counter = AtomicUsize::new(0);
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|s| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        for _ in 0..3 {
                            s.spawn(|_| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 16);
        });
    }

    #[test]
    fn scope_propagates_task_panics_after_quiescing() {
        let _g = crate::pool::override_lock();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let ran = AtomicUsize::new(0);
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                scope(|s| {
                    for i in 0..8 {
                        s.spawn(move |_| {
                            if i == 3 {
                                panic!("task boom");
                            }
                        });
                    }
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }));
            assert!(result.is_err());
            assert_eq!(
                ran.load(Ordering::Relaxed),
                1,
                "scope body ran to completion"
            );
        });
    }
}
