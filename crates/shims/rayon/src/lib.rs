//! Hermetic stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! Ψ-Lib-rs is built and tested in environments without network access to a
//! crate registry, so the workspace vendors minimal local implementations of
//! its external dependencies under their upstream names (see
//! `crates/shims/README.md`). This one covers the slice of rayon the
//! workspace uses:
//!
//! * [`join`] — real bounded fork-join parallelism: a global token pool sized
//!   to `available_parallelism() - 1` decides whether the first closure runs
//!   on a freshly scoped OS thread or inline. Recursive `join` trees therefore
//!   fan out to roughly one thread per core and degrade gracefully to
//!   sequential execution under load, which preserves the binary fork-join
//!   model the paper's algorithms are written against.
//! * [`scope`] / [`Scope::spawn`] — thin wrappers over [`std::thread::scope`].
//! * [`prelude`] — the `par_*` iterator entry points as *sequential* adapters
//!   returning ordinary [`Iterator`]s, so call sites keep rayon's shape
//!   (`.par_iter().zip(..).for_each(..)`, `.map_init(..)`, `par_sort_*`)
//!   while the per-item work runs on the calling thread. Coarse-grained
//!   parallelism in the indexes comes from `join`, which dominates their
//!   speedup; swapping the real rayon back in requires no source changes.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude;

/// Number of worker threads the substrate may use (upstream: size of the
/// global thread pool): the machine's available parallelism, unless a
/// [`ThreadPool::install`] override is active.
pub fn current_num_threads() -> usize {
    match THREADS_OVERRIDE.load(Ordering::Acquire) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Tokens for helper threads spawned by [`join`]; at most
/// `current_num_threads() - 1` helpers exist at any moment.
static HELPERS_IN_USE: AtomicUsize = AtomicUsize::new(0);

/// Thread-count override installed by [`ThreadPool::install`]; `0` = none.
/// Process-global, like rayon's global pool — scalability sweeps install
/// their pools one at a time.
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn helper_limit() -> usize {
    current_num_threads().saturating_sub(1)
}

struct HelperToken;

impl HelperToken {
    fn try_acquire() -> Option<HelperToken> {
        let limit = helper_limit();
        let mut cur = HELPERS_IN_USE.load(Ordering::Relaxed);
        while cur < limit {
            match HELPERS_IN_USE.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(HelperToken),
                Err(now) => cur = now,
            }
        }
        None
    }
}

impl Drop for HelperToken {
    fn drop(&mut self) {
        HELPERS_IN_USE.fetch_sub(1, Ordering::Release);
    }
}

/// Execute the two closures, potentially in parallel, and return both results.
///
/// Matches `rayon::join`'s contract: `oper_a` may run on another thread while
/// `oper_b` runs on the caller's; panics propagate to the caller.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if let Some(token) = HelperToken::try_acquire() {
        let result = std::thread::scope(|s| {
            let handle = s.spawn(oper_a);
            let rb = oper_b();
            (handle.join(), rb)
        });
        drop(token);
        match result {
            (Ok(ra), rb) => (ra, rb),
            (Err(payload), _) => std::panic::resume_unwind(payload),
        }
    } else {
        (oper_a(), oper_b())
    }
}

/// A fork-join scope handed to [`scope`] closures; `spawn` runs tasks on
/// scoped OS threads (upstream: on the thread pool).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task that may borrow from the enclosing scope.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || body(&Scope { inner }));
    }
}

/// Create a fork-join scope; blocks until every spawned task finished.
pub fn scope<'env, F, R>(body: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| body(&Scope { inner: s }))
}

/// Stand-in for rayon's pool configuration. `build_global` is a no-op (the
/// shim sizes its helper tokens from `available_parallelism`); `build` yields
/// a [`ThreadPool`] whose `install` honours `num_threads`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        Ok(())
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Stand-in pool handle: `install` runs the closure on the caller, with the
/// pool's thread count installed as the global helper limit for the duration
/// (so `num_threads(1)` really is sequential). Overrides don't nest.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREADS_OVERRIDE.store(self.0, Ordering::Release);
            }
        }
        let previous = THREADS_OVERRIDE.swap(self.num_threads, Ordering::AcqRel);
        let _restore = Restore(previous);
        op()
    }
}

/// Error type kept for signature compatibility; the shim never produces it.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already initialised")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn nested_joins_fan_out_and_come_back() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 1000 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 100_000), 100_000 * 99_999 / 2);
    }

    #[test]
    fn join_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            join(|| panic!("boom"), || 0);
        });
        assert!(result.is_err());
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        // Default (0) means automatic sizing, i.e. no override.
        let auto = ThreadPoolBuilder::new().build().unwrap();
        assert!(auto.install(current_num_threads) >= 1);
    }

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..16 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }
}
