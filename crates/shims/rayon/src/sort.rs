//! Parallel merge sort backing the `par_sort_*` slice methods.
//!
//! Strategy: partition the slice into a power-of-two number of runs (≈ the
//! participant count), sort each run on the pool, then merge runs pairwise in
//! `log₂(runs)` rounds. Each round merges every pair in parallel on the pool,
//! and a pair merge itself fans out via [`crate::join`], splitting at the
//! larger run's median (the classic parallel merge), so the final round is
//! not a sequential bottleneck. Since the task-deque executor landed, each
//! of those `join` forks is an amortised task push onto the calling worker's
//! deque — the merge recursion produces `O(n / MERGE_GRAIN)` forks per
//! round, which previously meant that many scoped OS thread spawns and now
//! means none.
//!
//! # Panic safety
//!
//! The comparator is arbitrary user code and may panic. Merges therefore
//! *read* from the caller's slice and *write* only into a `MaybeUninit`
//! scratch buffer that is never dropped; the slice stays fully initialised
//! whenever user code runs. Each round ends with a plain `memcpy` of the
//! scratch back into the slice, which executes no user code. On unwind the
//! slice thus drops every element exactly once and the scratch leaks nothing
//! but raw capacity.

use crate::pool;
use std::cmp::Ordering as CmpOrdering;
use std::mem::MaybeUninit;

/// Below this length a sequential `slice::sort*` call wins outright.
const SEQ_SORT: usize = 4096;
/// Pair merges recurse in parallel down to segments of this combined length.
/// A fork now costs one deque push/pop, so the grain only has to amortise
/// the binary search at the split point, not a thread spawn.
const MERGE_GRAIN: usize = 8192;

/// Raw pointer that may be shared/sent across the pool: every user is handed
/// a disjoint region by construction.
struct SharedPtr<T>(*mut T);
impl<T> Clone for SharedPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SharedPtr<T> {}
// SAFETY: accesses go to caller-partitioned disjoint regions.
unsafe impl<T: Send> Send for SharedPtr<T> {}
unsafe impl<T: Send> Sync for SharedPtr<T> {}

impl<T> SharedPtr<T> {
    /// Accessor keeping closure captures on the `Sync` wrapper rather than
    /// the raw field (edition-2021 closures capture disjoint fields).
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Sort `data` by `cmp` in parallel; `stable` selects the run-sort flavour
/// (the merge itself is always stable).
pub(crate) fn par_sort_impl<T, F>(data: &mut [T], cmp: &F, stable: bool)
where
    T: Send,
    F: Fn(&T, &T) -> CmpOrdering + Sync,
{
    let n = data.len();
    let threads = crate::current_num_threads().max(1);
    if threads <= 1 || n <= SEQ_SORT {
        if stable {
            data.sort_by(cmp);
        } else {
            data.sort_unstable_by(cmp);
        }
        return;
    }

    // Power-of-two run count near the participant count, but with runs no
    // smaller than a quarter of the sequential threshold.
    let mut nruns = threads.next_power_of_two().max(2);
    while nruns > 2 && n / nruns < SEQ_SORT / 4 {
        nruns /= 2;
    }
    let bound = |i: usize| n * i / nruns;

    // Phase 1: sort each run on the pool.
    let base = SharedPtr(data.as_mut_ptr());
    pool::run(nruns, 1, &|mut ranges| {
        while let Some(r) = ranges.next() {
            for i in r {
                // SAFETY: run boundaries partition the slice; each run index
                // is delivered to exactly one participant.
                let run = unsafe {
                    std::slice::from_raw_parts_mut(
                        base.get().add(bound(i)),
                        bound(i + 1) - bound(i),
                    )
                };
                if stable {
                    run.sort_by(cmp);
                } else {
                    run.sort_unstable_by(cmp);
                }
            }
        }
    });

    // Phase 2: pairwise merge rounds through the scratch buffer.
    let mut scratch: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit contents are allowed to be uninitialised.
    unsafe { scratch.set_len(n) };
    let scratch_base = SharedPtr(scratch.as_mut_ptr() as *mut T);

    let mut width = 1;
    while width < nruns {
        let npairs = nruns / (2 * width);
        pool::run(npairs, 1, &|mut ranges| {
            while let Some(r) = ranges.next() {
                for p in r {
                    let lo = bound(2 * width * p);
                    let mid = bound(2 * width * p + width);
                    let hi = bound(2 * width * (p + 1));
                    // SAFETY: pairs partition the slice; reads are confined
                    // to [lo, hi) of `data`, writes to [lo, hi) of scratch.
                    unsafe {
                        par_merge(
                            (SharedPtr(base.get().add(lo)), mid - lo),
                            (SharedPtr(base.get().add(mid)), hi - mid),
                            SharedPtr(scratch_base.get().add(lo)),
                            cmp,
                        );
                    }
                }
            }
        });
        // Copy the merged round back (no user code; cannot unwind mid-copy).
        let copy_grain = pool::grain_for(n, threads, SEQ_SORT);
        pool::run(n, copy_grain, &|mut ranges| {
            while let Some(r) = ranges.next() {
                // SAFETY: ranges are disjoint; scratch[lo..hi) was fully
                // initialised by this round's merges.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        scratch_base.get().add(r.start),
                        base.get().add(r.start),
                        r.len(),
                    );
                }
            }
        });
        width *= 2;
    }
}

/// Merge the sorted runs `a` and `b` (given as base-pointer + length pairs)
/// into `dst`, recursing in parallel via `join`. Stable: ties take from `a`.
///
/// # Safety
///
/// `a` and `b` must be valid, disjoint, sorted regions; `dst` must be valid
/// for `a.1 + b.1` writes and disjoint from both sources.
unsafe fn par_merge<T, F>(
    a: (SharedPtr<T>, usize),
    b: (SharedPtr<T>, usize),
    dst: SharedPtr<T>,
    cmp: &F,
) where
    T: Send,
    F: Fn(&T, &T) -> CmpOrdering + Sync,
{
    let (pa, la) = a;
    let (pb, lb) = b;
    if la + lb <= MERGE_GRAIN {
        unsafe { seq_merge(pa.0, la, pb.0, lb, dst.0, cmp) };
        return;
    }
    let sa = unsafe { std::slice::from_raw_parts(pa.0, la) };
    let sb = unsafe { std::slice::from_raw_parts(pb.0, lb) };
    // Split the larger run at its midpoint; binary-search the partner for the
    // stability-preserving partition point.
    let (ma, mb) = if la >= lb {
        let ma = la / 2;
        let pivot = &sa[ma];
        // b-elements strictly smaller than the pivot sort before it; equal
        // ones stay to the right so a-side equals keep precedence.
        (
            ma,
            sb.partition_point(|x| cmp(x, pivot) == CmpOrdering::Less),
        )
    } else {
        let mb = lb / 2;
        let pivot = &sb[mb];
        // a-elements less than *or equal to* the pivot precede it (a wins
        // ties), so the partition keeps the merge stable.
        (
            sa.partition_point(|x| cmp(x, pivot) != CmpOrdering::Greater),
            mb,
        )
    };
    let left_a = (pa, ma);
    let left_b = (pb, mb);
    let right_a = (SharedPtr(unsafe { pa.0.add(ma) }), la - ma);
    let right_b = (SharedPtr(unsafe { pb.0.add(mb) }), lb - mb);
    let dst_right = SharedPtr(unsafe { dst.0.add(ma + mb) });
    crate::join(
        || unsafe { par_merge(left_a, left_b, dst, cmp) },
        || unsafe { par_merge(right_a, right_b, dst_right, cmp) },
    );
}

/// Sequential two-finger merge via bitwise copies (sources stay initialised;
/// `dst` is scratch that is never dropped).
///
/// # Safety
///
/// Same contract as [`par_merge`].
unsafe fn seq_merge<T, F>(pa: *const T, la: usize, pb: *const T, lb: usize, dst: *mut T, cmp: &F)
where
    F: Fn(&T, &T) -> CmpOrdering,
{
    let mut i = 0;
    let mut j = 0;
    let mut out = dst;
    unsafe {
        while i < la && j < lb {
            if cmp(&*pb.add(j), &*pa.add(i)) == CmpOrdering::Less {
                std::ptr::copy_nonoverlapping(pb.add(j), out, 1);
                j += 1;
            } else {
                std::ptr::copy_nonoverlapping(pa.add(i), out, 1);
                i += 1;
            }
            out = out.add(1);
        }
        std::ptr::copy_nonoverlapping(pa.add(i), out, la - i);
        std::ptr::copy_nonoverlapping(pb.add(j), out.add(la - i), lb - j);
    }
}
