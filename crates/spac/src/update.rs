//! Batch insertion and deletion on SPaC-trees (Alg. 4 and its deletion
//! counterpart).
//!
//! The batch is first encoded and sorted by SFC code (via the same HybridSort
//! machinery as construction), then recursively split at each interior pivot
//! and pushed down both subtrees in parallel; the two halves are recombined
//! with `Join`, which performs all rebalancing. The SPaC-specific behaviour is
//! at the leaves: an insertion that fits simply appends and marks the leaf
//! unsorted (no comparison work at all), and only when the leaf overflows is
//! it rebuilt — locally if small (the `4φ` heuristic of §C), or by exposing it
//! and re-entering the batch insertion otherwise.

use crate::pac::{
    bbox_of_entries, build_sorted_entries, expose, join, join2, node_ctor, sort_leaf, unshare,
    PNode, SpacConfig,
};
use crate::Entry;
use psi_geometry::PointI;
use psi_parutils::hybrid_sort_keys;
use psi_sfc::SfcCurve;
use rayon::join as par_join;

/// Minimum number of batch entries below which the recursion stops forking.
const PAR_GRAIN: usize = 512;

/// Insert `points` into `tree`, returning the new root.
pub fn batch_insert<C: SfcCurve<D>, const D: usize>(
    tree: PNode<D>,
    points: &[PointI<D>],
    cfg: &SpacConfig,
) -> PNode<D> {
    // Encode + sort the batch: ⟨code, id⟩ pairs first (HybridSort), then gather
    // the points — identical to the construction path.
    let pairs = hybrid_sort_keys(points, |p| C::encode(p));
    let batch: Vec<Entry<D>> = pairs
        .into_iter()
        .map(|(code, id)| (code, points[id as usize]))
        .collect();
    insert_sorted(tree, &batch, cfg)
}

/// Delete `points` from `tree`, returning the new root. Multiset semantics:
/// each batch element removes at most one stored entry.
pub fn batch_delete<C: SfcCurve<D>, const D: usize>(
    tree: PNode<D>,
    points: &[PointI<D>],
    cfg: &SpacConfig,
) -> PNode<D> {
    let pairs = hybrid_sort_keys(points, |p| C::encode(p));
    let batch: Vec<Entry<D>> = pairs
        .into_iter()
        .map(|(code, id)| (code, points[id as usize]))
        .collect();
    delete_sorted(tree, &batch, cfg)
}

/// `InsertSorted` (Alg. 4): `batch` must be sorted by code.
pub fn insert_sorted<const D: usize>(
    tree: PNode<D>,
    batch: &[Entry<D>],
    cfg: &SpacConfig,
) -> PNode<D> {
    if batch.is_empty() {
        return tree;
    }
    match tree {
        PNode::Leaf {
            mut entries,
            sorted,
            mut bbox,
        } => {
            let total = entries.len() + batch.len();
            if total <= cfg.leaf_cap {
                // The fast path the whole design is built around: append and
                // mark unsorted (Alg. 4 lines 8–11). The CPAM baseline merges
                // instead, paying the ordering cost on every update.
                for e in batch {
                    bbox.expand(&e.1);
                }
                if cfg.sorted_leaves {
                    entries.extend_from_slice(batch);
                    sort_leaf(&mut entries);
                    PNode::Leaf {
                        entries,
                        sorted: true,
                        bbox,
                    }
                } else {
                    entries.extend_from_slice(batch);
                    PNode::Leaf {
                        entries,
                        sorted: false,
                        bbox,
                    }
                }
            } else if total <= cfg.rebuild_mul * cfg.leaf_cap {
                // Localised rebuild (§C): merge and rebuild this small subtree.
                entries.extend_from_slice(batch);
                sort_leaf(&mut entries);
                build_sorted_entries(&entries, cfg)
            } else {
                // Large batch landing on one leaf: expose the leaf into a tree
                // and re-enter the batch insertion on it (§C).
                let leaf = PNode::Leaf {
                    entries,
                    sorted,
                    bbox,
                };
                let (l, k, r) = expose(leaf, cfg);
                let node = node_ctor(l, k, r, cfg);
                match node {
                    PNode::Interior { .. } => insert_sorted(node, batch, cfg),
                    // The leaf was so small it re-wrapped into a leaf again;
                    // fall back to the rebuild path to guarantee progress.
                    PNode::Leaf { mut entries, .. } => {
                        entries.extend_from_slice(batch);
                        sort_leaf(&mut entries);
                        build_sorted_entries(&entries, cfg)
                    }
                }
            }
        }
        PNode::Interior {
            left, right, pivot, ..
        } => {
            // Split the batch at the pivot code (Alg. 4 line 14) and recurse in
            // parallel (line 15).
            let t = batch.partition_point(|e| e.0 < pivot.0);
            let (lbatch, rbatch) = batch.split_at(t);
            let (new_left, new_right) = if batch.len() >= PAR_GRAIN {
                par_join(
                    || insert_sorted(unshare(left), lbatch, cfg),
                    || insert_sorted(unshare(right), rbatch, cfg),
                )
            } else {
                (
                    insert_sorted(unshare(left), lbatch, cfg),
                    insert_sorted(unshare(right), rbatch, cfg),
                )
            };
            join(new_left, pivot, new_right, cfg)
        }
    }
}

/// Deletion counterpart of [`insert_sorted`]; `batch` must be sorted by code.
pub fn delete_sorted<const D: usize>(
    tree: PNode<D>,
    batch: &[Entry<D>],
    cfg: &SpacConfig,
) -> PNode<D> {
    if batch.is_empty() {
        return tree;
    }
    match tree {
        PNode::Leaf {
            mut entries,
            sorted,
            ..
        } => {
            remove_multiset(&mut entries, batch);
            let bbox = bbox_of_entries(&entries);
            // Removal preserves relative order, so the sorted flag carries over.
            PNode::Leaf {
                entries,
                sorted,
                bbox,
            }
        }
        PNode::Interior {
            left, right, pivot, ..
        } => {
            // Three-way split of the batch around the pivot code. Entries with
            // a strictly smaller / larger code can only match in the left /
            // right subtree; entries whose code *equals* the pivot code may
            // match the pivot or stored duplicates on either side, so they are
            // handled separately after the parallel recursion.
            let t1 = batch.partition_point(|e| e.0 < pivot.0);
            let t2 = batch.partition_point(|e| e.0 <= pivot.0);
            let lbatch = &batch[..t1];
            let eqbatch = &batch[t1..t2];
            let rbatch = &batch[t2..];

            let (new_left, new_right) = if batch.len() >= PAR_GRAIN {
                par_join(
                    || delete_sorted(unshare(left), lbatch, cfg),
                    || delete_sorted(unshare(right), rbatch, cfg),
                )
            } else {
                (
                    delete_sorted(unshare(left), lbatch, cfg),
                    delete_sorted(unshare(right), rbatch, cfg),
                )
            };
            let mut tree = join(new_left, pivot, new_right, cfg);
            if !eqbatch.is_empty() {
                // Group the equal-code entries by point and delete each group
                // with a targeted search (a single root-to-leaf path unless the
                // data contains duplicate points).
                let mut i = 0;
                while i < eqbatch.len() {
                    let mut j = i + 1;
                    while j < eqbatch.len() && eqbatch[j].1 == eqbatch[i].1 {
                        j += 1;
                    }
                    let (t, _) = delete_matching(tree, &eqbatch[i], j - i, cfg);
                    tree = t;
                    i = j;
                }
            }
            tree
        }
    }
}

/// Remove up to `count` stored entries equal to `target` (code and point) from
/// the subtree, returning the new subtree and how many were removed. Only the
/// parts of the tree whose code range can contain `target.0` are visited.
fn delete_matching<const D: usize>(
    node: PNode<D>,
    target: &Entry<D>,
    count: usize,
    cfg: &SpacConfig,
) -> (PNode<D>, usize) {
    if count == 0 || node.size() == 0 {
        return (node, 0);
    }
    match node {
        PNode::Leaf {
            mut entries,
            sorted,
            ..
        } => {
            let mut removed = 0;
            entries.retain(|e| {
                if removed < count && e.0 == target.0 && e.1 == target.1 {
                    removed += 1;
                    false
                } else {
                    true
                }
            });
            let bbox = bbox_of_entries(&entries);
            (
                PNode::Leaf {
                    entries,
                    sorted,
                    bbox,
                },
                removed,
            )
        }
        PNode::Interior {
            left, right, pivot, ..
        } => {
            let mut removed = 0;
            let new_left = if target.0 <= pivot.0 {
                let (l, r) = delete_matching(unshare(left), target, count, cfg);
                removed += r;
                l
            } else {
                unshare(left)
            };
            let pivot_matches = removed < count && pivot.0 == target.0 && pivot.1 == target.1;
            if pivot_matches {
                removed += 1;
            }
            let new_right = if removed < count && target.0 >= pivot.0 {
                let (r, c) = delete_matching(unshare(right), target, count - removed, cfg);
                removed += c;
                r
            } else {
                unshare(right)
            };
            let tree = if pivot_matches {
                join2(new_left, new_right, cfg)
            } else {
                join(new_left, pivot, new_right, cfg)
            };
            (tree, removed)
        }
    }
}

/// Remove from `entries` one occurrence of every entry in the sorted `batch`
/// (matching both code and point). `entries` may be unsorted.
fn remove_multiset<const D: usize>(entries: &mut Vec<Entry<D>>, batch: &[Entry<D>]) {
    if entries.is_empty() || batch.is_empty() {
        return;
    }
    // Track how many copies of each batch entry remain to be removed. Group the
    // batch by (code, point); a binary search per stored entry keeps this
    // O((|leaf| + |batch|) log |batch|).
    let mut sorted_batch: Vec<Entry<D>> = batch.to_vec();
    sorted_batch.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.lex_cmp(&b.1)));
    let mut remaining: Vec<(Entry<D>, usize)> = Vec::new();
    for e in &sorted_batch {
        match remaining.last_mut() {
            Some((prev, count)) if prev.0 == e.0 && prev.1 == e.1 => *count += 1,
            _ => remaining.push((*e, 1)),
        }
    }
    entries.retain(|e| {
        match remaining.binary_search_by(|(b, _)| b.0.cmp(&e.0).then_with(|| b.1.lex_cmp(&e.1))) {
            Ok(idx) => {
                if remaining[idx].1 > 0 {
                    remaining[idx].1 -= 1;
                    false // remove this stored entry
                } else {
                    true
                }
            }
            Err(_) => true,
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::sort_entries;
    use psi_geometry::Point;
    use psi_sfc::MortonCurve;

    fn entry(x: i64, y: i64) -> Entry<2> {
        let p = Point::new([x, y]);
        (<MortonCurve as SfcCurve<2>>::encode(&p), p)
    }

    #[test]
    fn remove_multiset_counts() {
        let mut stored = vec![entry(1, 1), entry(1, 1), entry(2, 2), entry(9, 9)];
        let mut batch = vec![entry(1, 1), entry(2, 2), entry(3, 3)];
        batch.sort();
        remove_multiset(&mut stored, &batch);
        assert_eq!(stored.len(), 2);
        assert!(stored.contains(&entry(1, 1)));
        assert!(stored.contains(&entry(9, 9)));
    }

    #[test]
    fn remove_multiset_same_code_different_point() {
        // Two different points can share a Morton code only if equal, so craft
        // entries with equal codes artificially to check point-level matching.
        let p1 = Point::new([5, 6]);
        let p2 = Point::new([6, 5]);
        let mut stored = vec![(42u64, p1), (42u64, p2)];
        let batch = vec![(42u64, p1)];
        remove_multiset(&mut stored, &batch);
        assert_eq!(stored, vec![(42u64, p2)]);
    }

    #[test]
    fn insert_sorted_into_empty() {
        let cfg = SpacConfig::spac();
        let mut batch: Vec<Entry<2>> = (0..100).map(|i| entry(i, i * 2)).collect();
        sort_entries(&mut batch);
        let tree = insert_sorted(PNode::empty(), &batch, &cfg);
        assert_eq!(tree.size(), 100);
        crate::pac::check_invariants::<MortonCurve, 2>(&tree, &cfg);
    }

    #[test]
    fn insert_marks_leaf_unsorted_in_spac_mode() {
        let cfg = SpacConfig::spac();
        let base: Vec<Entry<2>> = (0..10).map(|i| entry(i * 100, i * 100)).collect();
        let tree = build_sorted_entries(
            &{
                let mut b = base.clone();
                sort_entries(&mut b);
                b
            },
            &cfg,
        );
        let mut batch = vec![entry(5, 5)];
        sort_entries(&mut batch);
        let tree = insert_sorted(tree, &batch, &cfg);
        match &tree {
            PNode::Leaf { sorted, .. } => assert!(!sorted),
            _ => panic!("11 entries must still be one leaf"),
        }
    }

    #[test]
    fn insert_keeps_leaf_sorted_in_cpam_mode() {
        let cfg = SpacConfig::cpam();
        let mut base: Vec<Entry<2>> = (0..10).map(|i| entry(i * 100, i * 100)).collect();
        sort_entries(&mut base);
        let tree = build_sorted_entries(&base, &cfg);
        let mut batch = vec![entry(5, 5)];
        sort_entries(&mut batch);
        let tree = insert_sorted(tree, &batch, &cfg);
        match &tree {
            PNode::Leaf {
                sorted, entries, ..
            } => {
                assert!(*sorted);
                assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
            }
            _ => panic!("11 entries must still be one leaf"),
        }
    }

    #[test]
    fn delete_pivot_entry() {
        let cfg = SpacConfig::spac();
        let mut base: Vec<Entry<2>> = (0..500).map(|i| entry(i * 7 % 997, i * 13 % 997)).collect();
        sort_entries(&mut base);
        let tree = build_sorted_entries(&base, &cfg);
        // Find the root pivot and delete exactly that entry.
        let pivot = match &tree {
            PNode::Interior { pivot, .. } => *pivot,
            _ => panic!("500 entries should build an interior root"),
        };
        let tree = delete_sorted(tree, &[pivot], &cfg);
        assert_eq!(tree.size(), 499);
        crate::pac::check_invariants::<MortonCurve, 2>(&tree, &cfg);
    }
}
