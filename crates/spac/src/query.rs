//! Queries on SPaC-trees: kNN, range-count and range-list.
//!
//! SPaC-trees are object-partitioning trees, so sibling bounding boxes may
//! overlap (the reason the paper finds R-tree-family queries slower than
//! space-partitioning trees); the traversal logic is nevertheless the same
//! bbox-pruning pattern. Note that nothing here ever looks at the SFC order of
//! a leaf — the observation that justifies leaving leaves unsorted.

use crate::pac::PNode;
use psi_geometry::{Coord, KnnHeap, PointI, RectI};
use psi_parutils::stats::counters;

/// The `k` nearest neighbours of `q`, closest first.
pub fn knn<const D: usize>(root: &PNode<D>, q: &PointI<D>, k: usize) -> Vec<PointI<D>> {
    if k == 0 || root.size() == 0 {
        return Vec::new();
    }
    let mut heap = KnnHeap::new(k);
    knn_into(root, q, k, &mut heap);
    heap.into_sorted()
}

/// kNN primitive: reset `heap` to capacity `k` (keeping its allocation) and
/// fill it with the `k` nearest neighbours of `q`. Requires `k >= 1`.
pub fn knn_into<const D: usize>(
    root: &PNode<D>,
    q: &PointI<D>,
    k: usize,
    heap: &mut KnnHeap<i64, D>,
) {
    heap.reset(k);
    if root.size() > 0 {
        knn_rec(root, q, heap);
    }
}

fn knn_rec<const D: usize>(node: &PNode<D>, q: &PointI<D>, heap: &mut KnnHeap<i64, D>) {
    counters::NODES_VISITED.bump();
    match node {
        PNode::Leaf { entries, .. } => {
            for (_, p) in entries {
                heap.offer_point(q, *p);
            }
        }
        PNode::Interior {
            left, right, pivot, ..
        } => {
            heap.offer_point(q, pivot.1);
            let dl = left.bbox().dist_sq_to_point(q);
            let dr = right.bbox().dist_sq_to_point(q);
            // Visit the closer child first; prune whichever cannot improve.
            let (first, first_d, second, second_d) =
                if <i64 as Coord>::dist_cmp(dl, dr) != std::cmp::Ordering::Greater {
                    (left, dl, right, dr)
                } else {
                    (right, dr, left, dl)
                };
            if first.size() > 0 && heap.could_improve(first_d) {
                knn_rec(first, q, heap);
            }
            if second.size() > 0 && heap.could_improve(second_d) {
                knn_rec(second, q, heap);
            }
        }
    }
}

/// Number of stored points inside the closed box `rect`.
pub fn range_count<const D: usize>(node: &PNode<D>, rect: &RectI<D>) -> usize {
    counters::NODES_VISITED.bump();
    if node.size() == 0 || !rect.intersects(node.bbox()) {
        return 0;
    }
    if rect.contains_rect(node.bbox()) {
        return node.size();
    }
    match node {
        PNode::Leaf { entries, .. } => entries.iter().filter(|(_, p)| rect.contains(p)).count(),
        PNode::Interior {
            left, right, pivot, ..
        } => {
            let own = usize::from(rect.contains(&pivot.1));
            own + range_count(left, rect) + range_count(right, rect)
        }
    }
}

/// Append every stored point inside the closed box `rect` to `out`.
pub fn range_list<const D: usize>(node: &PNode<D>, rect: &RectI<D>, out: &mut Vec<PointI<D>>) {
    range_visit(node, rect, &mut |p| out.push(*p));
}

/// Range primitive: invoke `visitor` on every stored point inside the closed
/// box `rect`, allocating nothing. Subtrees fully covered by `rect` are walked
/// without further box tests.
pub fn range_visit<const D: usize>(
    node: &PNode<D>,
    rect: &RectI<D>,
    visitor: &mut dyn FnMut(&PointI<D>),
) {
    counters::NODES_VISITED.bump();
    if node.size() == 0 || !rect.intersects(node.bbox()) {
        return;
    }
    if rect.contains_rect(node.bbox()) {
        visit_all(node, visitor);
        return;
    }
    match node {
        PNode::Leaf { entries, .. } => {
            for (_, p) in entries.iter().filter(|(_, p)| rect.contains(p)) {
                visitor(p);
            }
        }
        PNode::Interior {
            left, right, pivot, ..
        } => {
            range_visit(left, rect, visitor);
            if rect.contains(&pivot.1) {
                visitor(&pivot.1);
            }
            range_visit(right, rect, visitor);
        }
    }
}

/// Visit every point of a subtree (the fully-covered fast path).
fn visit_all<const D: usize>(node: &PNode<D>, visitor: &mut dyn FnMut(&PointI<D>)) {
    match node {
        PNode::Leaf { entries, .. } => {
            for (_, p) in entries {
                visitor(p);
            }
        }
        PNode::Interior {
            left, right, pivot, ..
        } => {
            visit_all(left, visitor);
            visitor(&pivot.1);
            visit_all(right, visitor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpacHTree, SpacZTree};
    use psi_geometry::{brute_force_knn, Point, Rect};

    fn grid(n: i64) -> Vec<PointI<2>> {
        let mut v = Vec::new();
        for x in 0..n {
            for y in 0..n {
                v.push(Point::new([x * 10, y * 10]));
            }
        }
        v
    }

    #[test]
    fn knn_on_grid_both_curves() {
        let pts = grid(40);
        let q = Point::new([203, 207]);
        let expect = brute_force_knn(&pts, &q, 4);
        for dists in [
            SpacHTree::<2>::build(&pts)
                .knn(&q, 4)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>(),
            SpacZTree::<2>::build(&pts)
                .knn(&q, 4)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>(),
        ] {
            assert_eq!(
                dists,
                expect.iter().map(|p| q.dist_sq(p)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn knn_edge_cases() {
        let pts = grid(5);
        let tree = SpacHTree::<2>::build(&pts);
        assert!(tree.knn(&Point::new([0, 0]), 0).is_empty());
        assert_eq!(tree.knn(&Point::new([0, 0]), 500).len(), 25);
    }

    #[test]
    fn range_count_covers() {
        let pts = grid(20);
        let tree = SpacHTree::<2>::build(&pts);
        let everything = Rect::from_corners(Point::new([-5, -5]), Point::new([500, 500]));
        assert_eq!(tree.range_count(&everything), 400);
        let nothing = Rect::from_corners(Point::new([-50, -50]), Point::new([-1, -1]));
        assert_eq!(tree.range_count(&nothing), 0);
        let quarter = Rect::from_corners(Point::new([0, 0]), Point::new([95, 95]));
        assert_eq!(tree.range_count(&quarter), 100);
        assert_eq!(tree.range_list(&quarter).len(), 100);
    }
}
