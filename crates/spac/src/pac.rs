//! The PaC-tree backbone: a weight-balanced, join-based binary search tree
//! with blocked ("wrapped") leaves, augmented with bounding boxes.
//!
//! This module contains everything the paper treats as "the underlying
//! PaC-tree": the node representation, the `Expose` / `Node` / `Join`
//! primitives of Alg. 4, the perfect builder used for sorted inputs, and the
//! structural invariant checker. The SPaC-specific relaxation — leaves that
//! may be left unsorted by updates — lives in the `sorted` flag of leaf nodes
//! and in [`SpacConfig::sorted_leaves`], which the CPAM baseline sets to force
//! the original total-order behaviour.

use crate::Entry;
use psi_geometry::{PointI, Rect, RectI};
use psi_parutils::stats::counters;
use psi_sfc::SfcCurve;
use std::sync::Arc;

/// Tuning knobs for [`crate::SpacTree`]; the two presets correspond to the
/// paper's SPaC-trees and CPAM baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpacConfig {
    /// Leaf wrap threshold `φ` (paper: 40 for SPaC and CPAM).
    pub leaf_cap: usize,
    /// Weight-balance parameter `α` expressed as the fraction `num/den`
    /// (paper: 0.2, i.e. each side carries at least 20% of the weight).
    pub alpha_num: usize,
    /// Denominator of `α`.
    pub alpha_den: usize,
    /// Keep leaves totally ordered at all times (the CPAM baselines). When
    /// `false` (SPaC), batch updates append to leaves and defer sorting until
    /// a join needs to expose the leaf.
    pub sorted_leaves: bool,
    /// Pre-compute all SFC codes into a keyed pair array before sorting
    /// (CPAM-style construction) instead of fusing code computation into the
    /// first pass of the sample sort (the paper's HybridSort).
    pub presort: bool,
    /// Leaf-overflow heuristic threshold from §C, as a multiple of `φ`: an
    /// overflowing leaf plus its incoming batch is rebuilt locally when the
    /// combined size is below `rebuild_mul * φ`, and exposed + batch-inserted
    /// otherwise.
    pub rebuild_mul: usize,
}

/// `Default` is the paper's SPaC-tree preset ([`SpacConfig::spac`]).
impl Default for SpacConfig {
    fn default() -> Self {
        Self::spac()
    }
}

impl SpacConfig {
    /// The paper's SPaC-tree configuration.
    pub fn spac() -> Self {
        SpacConfig {
            leaf_cap: 40,
            alpha_num: 1,
            alpha_den: 5,
            sorted_leaves: false,
            presort: false,
            rebuild_mul: 4,
        }
    }

    /// The paper's CPAM-H / CPAM-Z baseline configuration: identical tree, but
    /// the total SFC order is maintained everywhere and codes are precomputed.
    pub fn cpam() -> Self {
        SpacConfig {
            sorted_leaves: true,
            presort: true,
            ..Self::spac()
        }
    }
}

/// A PaC-tree node: either a wrapped leaf block or an interior node holding a
/// single pivot entry.
///
/// Children are held through [`Arc`], which makes the tree **persistent** in
/// the CPAM/PaC-tree sense: a snapshot is one refcount bump of the root, and
/// subsequent updates copy-on-write only the nodes on the touched spine
/// ([`unshare`]). Uniquely-owned nodes — the common case when no snapshot is
/// live — are reclaimed via `Arc::try_unwrap`, so batch updates on an
/// unshared tree allocate exactly as the old `Box` representation did.
pub enum PNode<const D: usize> {
    /// A block of at most `2φ` entries (normally at most `φ`; up to `2φ`
    /// transiently before redistribution).
    Leaf {
        /// The stored entries. Order is ascending by code iff `sorted`.
        entries: Vec<Entry<D>>,
        /// Whether `entries` is currently sorted by code.
        sorted: bool,
        /// Tight bounding box of the entries' points.
        bbox: RectI<D>,
    },
    /// An interior node; the pivot entry itself belongs to the set.
    Interior {
        /// Left subtree: every code is `<=` the pivot code.
        left: Arc<PNode<D>>,
        /// Right subtree: every code is `>=` the pivot code.
        right: Arc<PNode<D>>,
        /// The pivot entry.
        pivot: Entry<D>,
        /// Total number of entries in this subtree (including the pivot).
        size: usize,
        /// Tight bounding box of every point in the subtree.
        bbox: RectI<D>,
    },
}

/// Shallow clone: a leaf copies its `O(φ)` entry block; an interior node
/// copies its header and bumps the two child refcounts — `O(1)`, sharing both
/// subtrees. This is what makes snapshots and copy-on-write cheap.
impl<const D: usize> Clone for PNode<D> {
    fn clone(&self) -> Self {
        match self {
            PNode::Leaf {
                entries,
                sorted,
                bbox,
            } => PNode::Leaf {
                entries: entries.clone(),
                sorted: *sorted,
                bbox: *bbox,
            },
            PNode::Interior {
                left,
                right,
                pivot,
                size,
                bbox,
            } => PNode::Interior {
                left: Arc::clone(left),
                right: Arc::clone(right),
                pivot: *pivot,
                size: *size,
                bbox: *bbox,
            },
        }
    }
}

/// Take ownership of a child for mutation. Uniquely-owned nodes move out for
/// free (`Arc::try_unwrap` — the no-snapshot fast path); shared nodes are
/// shallow-cloned (copy-on-write), leaving every snapshot that still
/// references the original untouched. The clone is counted so the benches and
/// the structural-sharing tests can assert spine-only copying.
#[inline]
pub fn unshare<const D: usize>(node: Arc<PNode<D>>) -> PNode<D> {
    Arc::try_unwrap(node).unwrap_or_else(|shared| {
        counters::NODES_COPIED.bump();
        (*shared).clone()
    })
}

impl<const D: usize> PNode<D> {
    /// An empty leaf.
    pub fn empty() -> Self {
        PNode::Leaf {
            entries: Vec::new(),
            sorted: true,
            bbox: Rect::empty(),
        }
    }

    /// A leaf from entries; `sorted` must honestly describe their order.
    pub fn leaf_from(entries: Vec<Entry<D>>, sorted: bool) -> Self {
        let bbox = bbox_of_entries(&entries);
        let sorted = sorted || entries_sorted_trivially(&entries);
        PNode::Leaf {
            entries,
            sorted,
            bbox,
        }
    }

    /// Number of entries in the subtree.
    pub fn size(&self) -> usize {
        match self {
            PNode::Leaf { entries, .. } => entries.len(),
            PNode::Interior { size, .. } => *size,
        }
    }

    /// Weight (`size + 1`), the quantity the balance criterion is defined on.
    pub fn weight(&self) -> usize {
        self.size() + 1
    }

    /// Tight bounding box of the subtree.
    pub fn bbox(&self) -> &RectI<D> {
        match self {
            PNode::Leaf { bbox, .. } => bbox,
            PNode::Interior { bbox, .. } => bbox,
        }
    }

    /// `true` for leaf blocks.
    pub fn is_leaf(&self) -> bool {
        matches!(self, PNode::Leaf { .. })
    }

    /// Height of the subtree (a leaf counts 1).
    pub fn height(&self) -> usize {
        match self {
            PNode::Leaf { .. } => 1,
            PNode::Interior { left, right, .. } => 1 + left.height().max(right.height()),
        }
    }

    /// Append all points (in tree order) to `out`.
    pub fn collect_points(&self, out: &mut Vec<PointI<D>>) {
        match self {
            PNode::Leaf { entries, .. } => out.extend(entries.iter().map(|e| e.1)),
            PNode::Interior {
                left, right, pivot, ..
            } => {
                left.collect_points(out);
                out.push(pivot.1);
                right.collect_points(out);
            }
        }
    }

    /// Append all entries (in tree order) to `out`.
    pub fn collect_entries(&self, out: &mut Vec<Entry<D>>) {
        match self {
            PNode::Leaf { entries, .. } => out.extend_from_slice(entries),
            PNode::Interior {
                left, right, pivot, ..
            } => {
                left.collect_entries(out);
                out.push(*pivot);
                right.collect_entries(out);
            }
        }
    }
}

/// Bounding box of a slice of entries.
pub fn bbox_of_entries<const D: usize>(entries: &[Entry<D>]) -> RectI<D> {
    let mut b = Rect::empty();
    for (_, p) in entries {
        b.expand(p);
    }
    b
}

fn entries_sorted_trivially<const D: usize>(entries: &[Entry<D>]) -> bool {
    entries.len() <= 1
}

/// The weight-balance predicate of a BB[α] tree: a node whose children have
/// weights `wl` and `wr` is balanced iff each side carries at least an `α`
/// fraction of the total weight.
#[inline]
pub fn balanced(wl: usize, wr: usize, cfg: &SpacConfig) -> bool {
    let total = wl + wr;
    wl * cfg.alpha_den >= cfg.alpha_num * total && wr * cfg.alpha_den >= cfg.alpha_num * total
}

/// Build a perfectly balanced subtree from entries already sorted by code.
pub fn build_sorted_entries<const D: usize>(entries: &[Entry<D>], cfg: &SpacConfig) -> PNode<D> {
    let n = entries.len();
    if n <= cfg.leaf_cap {
        return PNode::leaf_from(entries.to_vec(), true);
    }
    let m = n / 2;
    let (left, right) = if n > 8 * cfg.leaf_cap {
        rayon::join(
            || build_sorted_entries(&entries[..m], cfg),
            || build_sorted_entries(&entries[m + 1..], cfg),
        )
    } else {
        (
            build_sorted_entries(&entries[..m], cfg),
            build_sorted_entries(&entries[m + 1..], cfg),
        )
    };
    let pivot = entries[m];
    interior(left, pivot, right)
}

/// Plain interior-node constructor: computes size and bounding box, performs
/// no leaf wrapping. Callers that may produce small subtrees use [`node_ctor`].
pub fn interior<const D: usize>(left: PNode<D>, pivot: Entry<D>, right: PNode<D>) -> PNode<D> {
    let size = left.size() + right.size() + 1;
    let mut bbox = left.bbox().merged(right.bbox());
    bbox.expand(&pivot.1);
    PNode::Interior {
        left: Arc::new(left),
        right: Arc::new(right),
        pivot,
        size,
        bbox,
    }
}

/// Sort a leaf's entries in place by code (ties broken by point order so the
/// result is deterministic), and mark it sorted.
pub fn sort_leaf<const D: usize>(entries: &mut [Entry<D>]) {
    counters::LEAVES_SORTED.bump();
    entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.lex_cmp(&b.1)));
}

/// `Expose` (Alg. 4): view a subtree as `(left, pivot, right)`. For a leaf this
/// sorts the block if it was left unsorted and splits it around its median
/// entry; for an interior node it simply destructures it.
///
/// Must not be called on an empty subtree.
pub fn expose<const D: usize>(node: PNode<D>, cfg: &SpacConfig) -> (PNode<D>, Entry<D>, PNode<D>) {
    match node {
        PNode::Interior {
            left, right, pivot, ..
        } => (unshare(left), pivot, unshare(right)),
        PNode::Leaf {
            mut entries,
            sorted,
            ..
        } => {
            assert!(!entries.is_empty(), "cannot expose an empty leaf");
            if !sorted {
                sort_leaf(&mut entries);
            }
            let m = entries.len() / 2;
            let pivot = entries[m];
            let right: Vec<Entry<D>> = entries[m + 1..].to_vec();
            entries.truncate(m);
            let _ = cfg;
            (
                PNode::leaf_from(entries, true),
                pivot,
                PNode::leaf_from(right, true),
            )
        }
    }
}

/// `Node` (Alg. 4): create a node over `(left, pivot, right)` while maintaining
/// the leaf-wrapping invariant: small results are flattened into a single leaf;
/// results between `φ` and `2φ` are redistributed into two sorted leaves.
pub fn node_ctor<const D: usize>(
    left: PNode<D>,
    pivot: Entry<D>,
    right: PNode<D>,
    cfg: &SpacConfig,
) -> PNode<D> {
    let n = left.size() + right.size() + 1;
    if n > 2 * cfg.leaf_cap {
        return interior(left, pivot, right);
    }
    // Gather all entries of the (small) subtree.
    let mut entries = Vec::with_capacity(n);
    left.collect_entries(&mut entries);
    entries.push(pivot);
    right.collect_entries(&mut entries);

    if n > cfg.leaf_cap {
        // Redistribute into two leaves around the median entry; this requires
        // the total order, so sort (Alg. 4 line 43).
        sort_leaf(&mut entries);
        let m = entries.len() / 2;
        let new_pivot = entries[m];
        let right_half: Vec<Entry<D>> = entries[m + 1..].to_vec();
        entries.truncate(m);
        interior(
            PNode::leaf_from(entries, true),
            new_pivot,
            PNode::leaf_from(right_half, true),
        )
    } else {
        // Flatten into one leaf (Alg. 4 line 47). The CPAM baseline keeps the
        // block sorted; SPaC leaves it as gathered and marks it unsorted.
        if cfg.sorted_leaves {
            sort_leaf(&mut entries);
            PNode::leaf_from(entries, true)
        } else {
            PNode::leaf_from(entries, false)
        }
    }
}

/// `Join` (Alg. 4): combine `left`, `pivot`, `right` (where every code in
/// `left` is `<=` the pivot code `<=` every code in `right`) into a single
/// weight-balanced tree.
pub fn join<const D: usize>(
    left: PNode<D>,
    pivot: Entry<D>,
    right: PNode<D>,
    cfg: &SpacConfig,
) -> PNode<D> {
    let (wl, wr) = (left.weight(), right.weight());
    if balanced(wl, wr, cfg) {
        node_ctor(left, pivot, right, cfg)
    } else if wl > wr {
        counters::REBALANCES.bump();
        join_right(left, pivot, right, cfg)
    } else {
        counters::REBALANCES.bump();
        join_left(left, pivot, right, cfg)
    }
}

/// `RightJoin` (Alg. 4): `left` is the heavier side; descend its right spine
/// until a subtree balances with `right`, attach, and fix balance on the way
/// back up with single/double rotations.
fn join_right<const D: usize>(
    left: PNode<D>,
    pivot: Entry<D>,
    right: PNode<D>,
    cfg: &SpacConfig,
) -> PNode<D> {
    if balanced(left.weight(), right.weight(), cfg) {
        return node_ctor(left, pivot, right, cfg);
    }
    let (l, k, c) = expose(left, cfg);
    let t = join_right(c, pivot, right, cfg);
    rebalance_right_heavy(l, k, t, cfg)
}

/// Symmetric counterpart of [`join_right`].
fn join_left<const D: usize>(
    left: PNode<D>,
    pivot: Entry<D>,
    right: PNode<D>,
    cfg: &SpacConfig,
) -> PNode<D> {
    if balanced(left.weight(), right.weight(), cfg) {
        return node_ctor(left, pivot, right, cfg);
    }
    let (c, k, r) = expose(right, cfg);
    let t = join_left(left, pivot, c, cfg);
    rebalance_left_heavy(t, k, r, cfg)
}

/// After a recursive right join, the combination `(l, k, t)` may be right-heavy;
/// restore the weight balance with a single or double left rotation.
fn rebalance_right_heavy<const D: usize>(
    l: PNode<D>,
    k: Entry<D>,
    t: PNode<D>,
    cfg: &SpacConfig,
) -> PNode<D> {
    if balanced(l.weight(), t.weight(), cfg) {
        return node_ctor(l, k, t, cfg);
    }
    // t is too heavy relative to l.
    let (t_l, t_k, t_r) = expose(t, cfg);
    let wl = l.weight();
    if balanced(wl, t_l.weight(), cfg) && balanced(wl + t_l.weight(), t_r.weight(), cfg) {
        // Single left rotation.
        node_ctor(node_ctor(l, k, t_l, cfg), t_k, t_r, cfg)
    } else {
        // Double rotation: rotate t's left child up first.
        let (a, t_lk, b) = expose(t_l, cfg);
        node_ctor(
            node_ctor(l, k, a, cfg),
            t_lk,
            node_ctor(b, t_k, t_r, cfg),
            cfg,
        )
    }
}

/// Mirror image of [`rebalance_right_heavy`].
fn rebalance_left_heavy<const D: usize>(
    t: PNode<D>,
    k: Entry<D>,
    r: PNode<D>,
    cfg: &SpacConfig,
) -> PNode<D> {
    if balanced(t.weight(), r.weight(), cfg) {
        return node_ctor(t, k, r, cfg);
    }
    let (t_l, t_k, t_r) = expose(t, cfg);
    let wr = r.weight();
    if balanced(t_r.weight(), wr, cfg) && balanced(t_l.weight(), t_r.weight() + wr, cfg) {
        // Single right rotation.
        node_ctor(t_l, t_k, node_ctor(t_r, k, r, cfg), cfg)
    } else {
        // Double rotation through t's right child.
        let (a, t_rk, b) = expose(t_r, cfg);
        node_ctor(
            node_ctor(t_l, t_k, a, cfg),
            t_rk,
            node_ctor(b, k, r, cfg),
            cfg,
        )
    }
}

/// Join without a middle entry: concatenate two trees whose code ranges are
/// already ordered (`left` entirely `<=` `right`). Used by deletions when the
/// pivot entry itself is removed.
pub fn join2<const D: usize>(left: PNode<D>, right: PNode<D>, cfg: &SpacConfig) -> PNode<D> {
    if left.size() == 0 {
        return right;
    }
    if right.size() == 0 {
        return left;
    }
    let (rest, last) = split_last(left, cfg);
    join(rest, last, right, cfg)
}

/// Remove and return the entry with the largest code from the subtree
/// (ties: any of the maximal entries). The subtree must be non-empty.
pub fn split_last<const D: usize>(node: PNode<D>, cfg: &SpacConfig) -> (PNode<D>, Entry<D>) {
    match node {
        PNode::Leaf {
            mut entries,
            sorted,
            ..
        } => {
            assert!(!entries.is_empty(), "split_last on empty leaf");
            let idx = entries
                .iter()
                .enumerate()
                .max_by_key(|(_, e)| e.0)
                .map(|(i, _)| i)
                .expect("non-empty");
            let last = entries.swap_remove(idx);
            // swap_remove perturbs order; the leaf may no longer be sorted.
            let still_sorted = sorted && (idx >= entries.len());
            (PNode::leaf_from(entries, still_sorted), last)
        }
        PNode::Interior {
            left, right, pivot, ..
        } => {
            if right.size() == 0 {
                (unshare(left), pivot)
            } else {
                let (rest, last) = split_last(unshare(right), cfg);
                (join(unshare(left), pivot, rest, cfg), last)
            }
        }
    }
}

/// Validate the structural invariants of a SPaC/CPAM tree:
///
/// * sizes and bounding boxes are consistent,
/// * leaf blocks respect the wrap limit (`<= 2φ`),
/// * the `sorted` flag is honest, and CPAM-mode leaves are always sorted,
/// * the BST order over SFC codes holds across the tree,
/// * every stored code equals the curve encoding of its point,
/// * large interior nodes are (approximately) weight balanced.
pub fn check_invariants<C: SfcCurve<D>, const D: usize>(root: &PNode<D>, cfg: &SpacConfig) {
    fn rec<C: SfcCurve<D>, const D: usize>(
        node: &PNode<D>,
        cfg: &SpacConfig,
    ) -> (u64, u64, usize, RectI<D>) {
        match node {
            PNode::Leaf {
                entries,
                sorted,
                bbox,
            } => {
                assert!(
                    entries.len() <= 2 * cfg.leaf_cap,
                    "leaf exceeds 2φ: {} > {}",
                    entries.len(),
                    2 * cfg.leaf_cap
                );
                if *sorted {
                    assert!(
                        entries.windows(2).all(|w| w[0].0 <= w[1].0),
                        "leaf marked sorted but out of order"
                    );
                }
                if cfg.sorted_leaves {
                    assert!(*sorted, "CPAM-mode leaf must stay sorted");
                }
                for (code, p) in entries {
                    assert_eq!(*code, C::encode(p), "stored code must match the curve");
                }
                assert_eq!(*bbox, bbox_of_entries(entries), "leaf bbox mismatch");
                let min = entries.iter().map(|e| e.0).min().unwrap_or(u64::MAX);
                let max = entries.iter().map(|e| e.0).max().unwrap_or(0);
                (min, max, entries.len(), *bbox)
            }
            PNode::Interior {
                left,
                right,
                pivot,
                size,
                bbox,
            } => {
                assert_eq!(pivot.0, C::encode(&pivot.1), "pivot code must match");
                let (lmin, lmax, lsize, lbox) = rec::<C, D>(left, cfg);
                let (rmin, rmax, rsize, rbox) = rec::<C, D>(right, cfg);
                assert_eq!(lsize + rsize + 1, *size, "interior size mismatch");
                if lsize > 0 {
                    assert!(lmax <= pivot.0, "left subtree violates code order");
                }
                if rsize > 0 {
                    assert!(rmin >= pivot.0, "right subtree violates code order");
                }
                let mut expect = lbox.merged(&rbox);
                expect.expand(&pivot.1);
                assert_eq!(&expect, bbox, "interior bbox mismatch");

                // Weight balance, with slack for leaf-wrap boundary effects:
                // only enforced when both children are well above the wrap size.
                let (wl, wr) = (lsize + 1, rsize + 1);
                if wl > 4 * cfg.leaf_cap && wr > 4 * cfg.leaf_cap {
                    let total = wl + wr;
                    assert!(
                        wl * (cfg.alpha_den + 1) >= cfg.alpha_num * total
                            && wr * (cfg.alpha_den + 1) >= cfg.alpha_num * total,
                        "interior node badly unbalanced: wl={wl} wr={wr}"
                    );
                }
                let min = if lsize > 0 {
                    lmin.min(pivot.0)
                } else {
                    pivot.0
                };
                let max = if rsize > 0 {
                    rmax.max(pivot.0)
                } else {
                    pivot.0
                };
                (min, max, *size, *bbox)
            }
        }
    }
    let n = root.size();
    rec::<C, D>(root, cfg);
    if n > 0 {
        let max_height = 4 * (usize::BITS - (n + 1).leading_zeros()) as usize + 8;
        assert!(
            root.height() <= max_height,
            "tree height {} exceeds O(log n) bound for n = {}",
            root.height(),
            n
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_geometry::Point;
    use psi_sfc::MortonCurve;

    type E = Entry<2>;

    fn entry(x: i64, y: i64) -> E {
        let p = Point::new([x, y]);
        (<MortonCurve as SfcCurve<2>>::encode(&p), p)
    }

    fn sorted_entries(n: i64) -> Vec<E> {
        let mut v: Vec<E> = (0..n).map(|i| entry(i * 3 % 1000, i * 7 % 1000)).collect();
        v.sort_by_key(|e| e.0);
        v
    }

    #[test]
    fn balance_predicate() {
        let cfg = SpacConfig::spac();
        assert!(balanced(50, 50, &cfg));
        assert!(balanced(20, 80, &cfg));
        assert!(!balanced(10, 90, &cfg));
        assert!(balanced(1, 1, &cfg));
    }

    #[test]
    fn build_sorted_is_balanced_and_ordered() {
        let cfg = SpacConfig::spac();
        let entries = sorted_entries(5_000);
        let tree = build_sorted_entries(&entries, &cfg);
        assert_eq!(tree.size(), 5_000);
        check_invariants::<MortonCurve, 2>(&tree, &cfg);
        let mut out = Vec::new();
        tree.collect_entries(&mut out);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(out.len(), 5_000);
    }

    #[test]
    fn expose_of_unsorted_leaf_sorts_it() {
        let cfg = SpacConfig::spac();
        let mut entries = sorted_entries(30);
        entries.reverse();
        let leaf = PNode::leaf_from(entries.clone(), false);
        let (l, k, r) = expose(leaf, &cfg);
        let mut all = Vec::new();
        l.collect_entries(&mut all);
        all.push(k);
        r.collect_entries(&mut all);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(all.len(), 30);
    }

    #[test]
    fn node_ctor_flattens_small_and_redistributes_medium() {
        let cfg = SpacConfig::spac();
        // small: total 11 entries -> one leaf
        let left = PNode::leaf_from(sorted_entries(5), true);
        let right = PNode::leaf_from(sorted_entries(5), true);
        let n = node_ctor(left, entry(1, 1), right, &cfg);
        assert!(n.is_leaf());
        assert_eq!(n.size(), 11);

        // medium: total between φ and 2φ -> interior with two sorted leaves
        let left = PNode::leaf_from(sorted_entries(30), true);
        let right = PNode::leaf_from(sorted_entries(30), true);
        let n = node_ctor(left, entry(2, 2), right, &cfg);
        assert!(!n.is_leaf());
        assert_eq!(n.size(), 61);
        match &n {
            PNode::Interior { left, right, .. } => {
                assert!(left.is_leaf() && right.is_leaf());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn join_of_lopsided_trees_rebalances() {
        let cfg = SpacConfig::spac();
        let mut big = sorted_entries(4_000);
        big.retain(|e| e.0 < u64::MAX / 2);
        let small: Vec<E> = sorted_entries(4_000)
            .into_iter()
            .filter(|e| e.0 >= u64::MAX / 2)
            .collect();
        // Construct left = all small-code entries, right = all large-code ones.
        let left = build_sorted_entries(&big, &cfg);
        let right = build_sorted_entries(&small, &cfg);
        // A pivot with a code between the two halves.
        let pivot_point = Point::new([u32::MAX as i64, 0]);
        let pivot = (
            <MortonCurve as SfcCurve<2>>::encode(&pivot_point),
            pivot_point,
        );
        // Ensure ordering pre-condition actually holds for this synthetic pivot.
        let lmax = big.iter().map(|e| e.0).max().unwrap_or(0);
        let rmin = small.iter().map(|e| e.0).min().unwrap_or(u64::MAX);
        if lmax <= pivot.0 && pivot.0 <= rmin {
            let joined = join(left, pivot, right, &cfg);
            assert_eq!(joined.size(), big.len() + small.len() + 1);
            check_invariants::<MortonCurve, 2>(&joined, &cfg);
        }
    }

    #[test]
    fn join2_concatenates() {
        let cfg = SpacConfig::spac();
        let all = sorted_entries(2_000);
        let (a, b) = all.split_at(700);
        let left = build_sorted_entries(a, &cfg);
        let right = build_sorted_entries(b, &cfg);
        let joined = join2(left, right, &cfg);
        assert_eq!(joined.size(), 2_000);
        check_invariants::<MortonCurve, 2>(&joined, &cfg);
        let mut out = Vec::new();
        joined.collect_entries(&mut out);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn split_last_removes_the_max_code() {
        let cfg = SpacConfig::spac();
        let entries = sorted_entries(500);
        let max_code = entries.iter().map(|e| e.0).max().unwrap();
        let tree = build_sorted_entries(&entries, &cfg);
        let (rest, last) = split_last(tree, &cfg);
        assert_eq!(last.0, max_code);
        assert_eq!(rest.size(), 499);
        check_invariants::<MortonCurve, 2>(&rest, &cfg);
    }

    #[test]
    fn empty_helpers() {
        let e = PNode::<2>::empty();
        assert_eq!(e.size(), 0);
        assert_eq!(e.weight(), 1);
        assert!(e.is_leaf());
        assert!(e.bbox().is_empty());
    }
}
