//! SPaC-tree construction (Alg. 3).
//!
//! Two paths are provided, selected by [`SpacConfig::presort`]:
//!
//! * **HybridSort path** (SPaC, the paper's contribution): the SFC code of a
//!   point is computed the first time the sort touches it, and only the
//!   lightweight `⟨code, id⟩` pairs travel through the recursive sort; the
//!   points themselves are fetched once at the end, when leaves are formed.
//! * **Presort path** (CPAM baseline): codes are computed for all points in a
//!   separate preprocessing pass, full `⟨code, point⟩` records are sorted, and
//!   the tree is built from the sorted records — the straightforward adaptation
//!   the paper measures as ~3× slower.

use crate::pac::{build_sorted_entries, PNode, SpacConfig};
use crate::Entry;
use psi_geometry::PointI;
use psi_parutils::stats::counters;
use psi_parutils::{hybrid_sort_keys, par_sort_by_key};
use psi_sfc::SfcCurve;
use rayon::prelude::*;

/// Build a tree over `points` according to `cfg`.
pub fn build_tree<C: SfcCurve<D>, const D: usize>(
    points: &[PointI<D>],
    cfg: &SpacConfig,
) -> PNode<D> {
    if points.is_empty() {
        return PNode::empty();
    }
    let entries = if cfg.presort {
        presort_entries::<C, D>(points)
    } else {
        hybrid_entries::<C, D>(points)
    };
    build_sorted_entries(&entries, cfg)
}

/// Produce the sorted entry sequence with the paper's HybridSort: codes are
/// computed inside the first pass of the sort and only `⟨code, id⟩` pairs are
/// moved until the final gather.
pub fn hybrid_entries<C: SfcCurve<D>, const D: usize>(points: &[PointI<D>]) -> Vec<Entry<D>> {
    let pairs = hybrid_sort_keys(points, |p| {
        counters::CODES_COMPUTED.bump();
        C::encode(p)
    });
    // Final gather: fetch each point by id (the extra cache misses the paper
    // accepts in exchange for a smaller sorting footprint).
    pairs
        .into_par_iter()
        .map(|(code, id)| (code, points[id as usize]))
        .collect()
}

/// Produce the sorted entry sequence the CPAM way: materialise full
/// `⟨code, point⟩` records first, then sort them.
pub fn presort_entries<C: SfcCurve<D>, const D: usize>(points: &[PointI<D>]) -> Vec<Entry<D>> {
    let mut entries: Vec<Entry<D>> = points
        .par_iter()
        .map(|p| {
            counters::CODES_COMPUTED.bump();
            (C::encode(p), *p)
        })
        .collect();
    par_sort_by_key(&mut entries, |e| (e.0, e.1));
    entries
}

/// Sort an entry batch by code (used by tests and the ablation benchmarks).
#[cfg_attr(not(test), allow(dead_code))]
pub fn sort_entries<const D: usize>(entries: &mut [Entry<D>]) {
    par_sort_by_key(entries, |e| (e.0, e.1));
}

/// Encode a batch of points into (still unsorted) entries.
#[cfg_attr(not(test), allow(dead_code))]
pub fn encode_batch<C: SfcCurve<D>, const D: usize>(points: &[PointI<D>]) -> Vec<Entry<D>> {
    points
        .par_iter()
        .map(|p| {
            counters::CODES_COMPUTED.bump();
            (C::encode(p), *p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_geometry::Point;
    use psi_sfc::{HilbertCurve, MortonCurve};
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn random_points(n: usize, seed: u64) -> Vec<PointI<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.gen_range(0..1_000_000), rng.gen_range(0..1_000_000)]))
            .collect()
    }

    #[test]
    fn hybrid_and_presort_produce_identical_entry_sequences() {
        let pts = random_points(10_000, 1);
        let a = hybrid_entries::<HilbertCurve, 2>(&pts);
        let b = presort_entries::<HilbertCurve, 2>(&pts);
        assert_eq!(a.len(), b.len());
        // Same multiset in the same code order (point ties may permute, so
        // compare the sorted sequences).
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        a2.sort();
        b2.sort();
        assert_eq!(a2, b2);
        // And both are sorted by code.
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(b.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn build_both_modes_same_size_and_valid() {
        let pts = random_points(8_000, 2);
        let spac = build_tree::<MortonCurve, 2>(&pts, &SpacConfig::spac());
        let cpam = build_tree::<MortonCurve, 2>(&pts, &SpacConfig::cpam());
        assert_eq!(spac.size(), pts.len());
        assert_eq!(cpam.size(), pts.len());
        crate::pac::check_invariants::<MortonCurve, 2>(&spac, &SpacConfig::spac());
        crate::pac::check_invariants::<MortonCurve, 2>(&cpam, &SpacConfig::cpam());
    }

    #[test]
    fn build_empty_and_tiny() {
        let t = build_tree::<MortonCurve, 2>(&[], &SpacConfig::spac());
        assert_eq!(t.size(), 0);
        let pts = vec![Point::new([1, 2]), Point::new([3, 4])];
        let t = build_tree::<MortonCurve, 2>(&pts, &SpacConfig::spac());
        assert_eq!(t.size(), 2);
        assert!(t.is_leaf());
    }

    #[test]
    fn encode_batch_matches_curve() {
        let pts = random_points(100, 3);
        let entries = encode_batch::<HilbertCurve, 2>(&pts);
        for (code, p) in &entries {
            assert_eq!(*code, <HilbertCurve as SfcCurve<2>>::encode(p));
        }
    }
}
