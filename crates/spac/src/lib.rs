//! **SPaC-tree** — the Spatial PaC-tree family of §4, plus the CPAM-style
//! baseline the paper compares against.
//!
//! A SPaC-tree is an R-tree built as a parallel balanced binary search tree
//! over the space-filling-curve codes of the points, with every node augmented
//! by the bounding box of its subtree. The backbone is a re-implementation of
//! the **PaC-tree** (a weight-balanced, join-based BST with compressed/blocked
//! leaves); the paper's key modification is to relax the SFC total order
//! *inside leaves*: batch updates may leave leaf blocks unsorted (marking
//! them), and the order is lazily restored only when a join actually needs to
//! expose a leaf. Spatial queries never look at the order, so query
//! performance is unaffected while update cost drops sharply (the central
//! ablation of Fig. 3: SPaC-H/Z vs CPAM-H/Z).
//!
//! Two curve instantiations are provided, mirroring Ψ-Lib:
//! [`SpacZTree`] (Morton) and [`SpacHTree`] (Hilbert); and the baseline
//! [`CpamZTree`] / [`CpamHTree`] which keep leaves totally ordered and
//! pre-compute codes before sorting — exactly the configuration the paper
//! labels CPAM-Z / CPAM-H.
//!
//! # Example
//!
//! ```
//! use psi_geometry::{Point, PointI};
//! use psi_spac::SpacHTree;
//!
//! let pts: Vec<PointI<2>> = (0..500).map(|i| Point::new([i * 7 % 997, i * 13 % 997])).collect();
//! let mut tree = SpacHTree::<2>::build(&pts);
//! assert_eq!(tree.len(), 500);
//! tree.batch_insert(&[Point::new([123, 456])]);
//! let nn = tree.knn(&Point::new([100, 450]), 2);
//! assert_eq!(nn.len(), 2);
//! ```

mod build;
mod pac;
mod query;
mod update;

pub use pac::{unshare, PNode, SpacConfig};

use psi_geometry::{KnnHeap, Point, PointI, RectI};
use psi_sfc::{HilbertCurve, MortonCurve, SfcCurve};
use std::marker::PhantomData;

/// An entry stored in the tree: the point's SFC code and the point itself.
pub type Entry<const D: usize> = (u64, PointI<D>);

/// The Spatial PaC-tree, generic over the space-filling curve `C`.
///
/// With [`SpacConfig::spac`] (the default) this is the paper's SPaC-tree; with
/// [`SpacConfig::cpam`] it becomes the CPAM baseline (sorted leaves, presorted
/// construction).
pub struct SpacTree<C: SfcCurve<D>, const D: usize> {
    root: PNode<D>,
    cfg: SpacConfig,
    _curve: PhantomData<C>,
}

/// SPaC-tree using the Morton (Z) curve — fastest updates, slower queries.
pub type SpacZTree<const D: usize> = SpacTree<MortonCurve, D>;
/// SPaC-tree using the Hilbert curve — the paper's recommended default.
pub type SpacHTree<const D: usize> = SpacTree<HilbertCurve, D>;

/// The CPAM-Z baseline: same tree, but leaves keep the Morton total order.
pub struct CpamTree<C: SfcCurve<D>, const D: usize>(SpacTree<C, D>);
/// CPAM baseline over the Morton curve.
pub type CpamZTree<const D: usize> = CpamTree<MortonCurve, D>;
/// CPAM baseline over the Hilbert curve.
pub type CpamHTree<const D: usize> = CpamTree<HilbertCurve, D>;

impl<C: SfcCurve<D>, const D: usize> SpacTree<C, D> {
    /// Build a SPaC-tree with the paper's default configuration.
    pub fn build(points: &[PointI<D>]) -> Self {
        Self::build_with_config(points, SpacConfig::spac())
    }

    /// Build with an explicit configuration (used by the CPAM baseline and the
    /// ablation benchmarks).
    pub fn build_with_config(points: &[PointI<D>], cfg: SpacConfig) -> Self {
        let root = build::build_tree::<C, D>(points, &cfg);
        SpacTree {
            root,
            cfg,
            _curve: PhantomData,
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.root.size()
    }

    /// `true` if no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tight bounding box of the stored points.
    pub fn bounding_box(&self) -> RectI<D> {
        *self.root.bbox()
    }

    /// Height of the tree (leaf = 1).
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SpacConfig {
        &self.cfg
    }

    /// Collect all stored points (in SFC order across leaves; within an
    /// unsorted leaf, in insertion order).
    pub fn collect_points(&self) -> Vec<PointI<D>> {
        let mut out = Vec::with_capacity(self.len());
        self.root.collect_points(&mut out);
        out
    }

    /// Batch insertion (Alg. 4).
    pub fn batch_insert(&mut self, points: &[PointI<D>]) {
        if points.is_empty() {
            return;
        }
        let root = std::mem::replace(&mut self.root, PNode::empty());
        self.root = update::batch_insert::<C, D>(root, points, &self.cfg);
    }

    /// Batch deletion; each batch element removes at most one matching stored
    /// point. Returns the number of points removed.
    pub fn batch_delete(&mut self, points: &[PointI<D>]) -> usize {
        if points.is_empty() {
            return 0;
        }
        let before = self.len();
        let root = std::mem::replace(&mut self.root, PNode::empty());
        self.root = update::batch_delete::<C, D>(root, points, &self.cfg);
        before - self.len()
    }

    /// The `k` nearest neighbours of `q`, closest first.
    pub fn knn(&self, q: &PointI<D>, k: usize) -> Vec<PointI<D>> {
        query::knn(&self.root, q, k)
    }

    /// kNN primitive: reset `heap` to capacity `k` (reusing its allocation)
    /// and fill it with the `k` nearest neighbours of `q`. Requires `k >= 1`.
    pub fn knn_into(&self, q: &PointI<D>, k: usize, heap: &mut KnnHeap<i64, D>) {
        query::knn_into(&self.root, q, k, heap)
    }

    /// Range primitive: call `visitor` on every stored point inside the closed
    /// box, allocating nothing.
    pub fn range_visit(&self, rect: &RectI<D>, visitor: &mut dyn FnMut(&PointI<D>)) {
        query::range_visit(&self.root, rect, visitor)
    }

    /// Number of stored points inside the closed box.
    pub fn range_count(&self, rect: &RectI<D>) -> usize {
        query::range_count(&self.root, rect)
    }

    /// All stored points inside the closed box.
    pub fn range_list(&self, rect: &RectI<D>) -> Vec<PointI<D>> {
        let mut out = Vec::new();
        query::range_list(&self.root, rect, &mut out);
        out
    }

    /// Validate structural invariants (sizes, bounding boxes, SFC order across
    /// leaves, sorted-flag honesty, weight balance). Panics on violation.
    pub fn check_invariants(&self) {
        pac::check_invariants::<C, D>(&self.root, &self.cfg);
    }

    /// Read-only access to the root, for white-box tests.
    pub fn root(&self) -> &PNode<D> {
        &self.root
    }

    /// An O(1)-for-interior / O(φ)-for-leaf **persistent snapshot**: the
    /// returned tree shares every node below the root with `self`. Later
    /// batch updates through either tree copy-on-write only the spine they
    /// touch ([`unshare`]), so a snapshot costs one shallow root clone and
    /// never blocks or observes subsequent writes.
    pub fn snapshot(&self) -> Self {
        SpacTree {
            root: self.root.clone(),
            cfg: self.cfg,
            _curve: PhantomData,
        }
    }
}

/// Configuration newtype for the CPAM baselines: identical knobs to
/// [`SpacConfig`], but `Default` resolves to [`SpacConfig::cpam`] so the
/// unified trait's `Config: Default` bound picks the right preset per index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpamConfig(pub SpacConfig);

impl Default for CpamConfig {
    fn default() -> Self {
        CpamConfig(SpacConfig::cpam())
    }
}

impl<C: SfcCurve<D>, const D: usize> CpamTree<C, D> {
    /// Build the CPAM baseline (total order, presorted construction).
    pub fn build(points: &[PointI<D>]) -> Self {
        Self::build_with_config(points, CpamConfig::default())
    }

    /// Build with an explicit configuration.
    pub fn build_with_config(points: &[PointI<D>], cfg: CpamConfig) -> Self {
        CpamTree(SpacTree::build_with_config(points, cfg.0))
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if no points are stored.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Batch insertion, keeping every leaf totally ordered.
    pub fn batch_insert(&mut self, points: &[PointI<D>]) {
        self.0.batch_insert(points)
    }

    /// Batch deletion.
    pub fn batch_delete(&mut self, points: &[PointI<D>]) -> usize {
        self.0.batch_delete(points)
    }

    /// The `k` nearest neighbours of `q`.
    pub fn knn(&self, q: &PointI<D>, k: usize) -> Vec<PointI<D>> {
        self.0.knn(q, k)
    }

    /// kNN primitive; see [`SpacTree::knn_into`].
    pub fn knn_into(&self, q: &PointI<D>, k: usize, heap: &mut KnnHeap<i64, D>) {
        self.0.knn_into(q, k, heap)
    }

    /// Range primitive; see [`SpacTree::range_visit`].
    pub fn range_visit(&self, rect: &RectI<D>, visitor: &mut dyn FnMut(&PointI<D>)) {
        self.0.range_visit(rect, visitor)
    }

    /// Tight bounding box of the stored points.
    pub fn bounding_box(&self) -> RectI<D> {
        self.0.bounding_box()
    }

    /// Height of the underlying PaC-tree (leaf = 1).
    pub fn height(&self) -> usize {
        self.0.height()
    }

    /// Number of stored points inside the closed box.
    pub fn range_count(&self, rect: &RectI<D>) -> usize {
        self.0.range_count(rect)
    }

    /// All stored points inside the closed box.
    pub fn range_list(&self, rect: &RectI<D>) -> Vec<PointI<D>> {
        self.0.range_list(rect)
    }

    /// Validate structural invariants.
    pub fn check_invariants(&self) {
        self.0.check_invariants()
    }

    /// Collect all stored points.
    pub fn collect_points(&self) -> Vec<PointI<D>> {
        self.0.collect_points()
    }

    /// Persistent snapshot; see [`SpacTree::snapshot`].
    pub fn snapshot(&self) -> Self {
        CpamTree(self.0.snapshot())
    }

    /// Read-only access to the root, for white-box tests.
    pub fn root(&self) -> &PNode<D> {
        self.0.root()
    }
}

/// Re-export of the geometric point type for convenience in examples.
pub type Point2 = Point<i64, 2>;

#[cfg(test)]
mod tests {
    use super::*;
    use psi_geometry::{brute_force_knn, Rect};
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn random_points(n: usize, seed: u64, max: i64) -> Vec<PointI<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.gen_range(0..max), rng.gen_range(0..max)]))
            .collect()
    }

    fn check_knn_against_oracle<C: SfcCurve<2>>(
        tree: &SpacTree<C, 2>,
        pts: &[PointI<2>],
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..30 {
            let q = Point::new([rng.gen_range(0..1_000_000), rng.gen_range(0..1_000_000)]);
            let got = tree.knn(&q, 10);
            let expect = brute_force_knn(pts, &q, 10);
            assert_eq!(
                got.iter().map(|p| q.dist_sq(p)).collect::<Vec<_>>(),
                expect.iter().map(|p| q.dist_sq(p)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn build_empty_and_single() {
        let tree = SpacHTree::<2>::build(&[]);
        assert!(tree.is_empty());
        assert!(tree.knn(&Point::new([0, 0]), 5).is_empty());
        tree.check_invariants();

        let p = PointI::<2>::new([42, 43]);
        let tree = SpacHTree::<2>::build(&[p]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.knn(&Point::new([0, 0]), 1), vec![p]);
        tree.check_invariants();
    }

    #[test]
    fn build_and_knn_hilbert() {
        let pts = random_points(5_000, 1, 1_000_000);
        let tree = SpacHTree::<2>::build(&pts);
        assert_eq!(tree.len(), pts.len());
        tree.check_invariants();
        check_knn_against_oracle(&tree, &pts, 100);
    }

    #[test]
    fn build_and_knn_morton() {
        let pts = random_points(5_000, 2, 1_000_000);
        let tree = SpacZTree::<2>::build(&pts);
        tree.check_invariants();
        check_knn_against_oracle(&tree, &pts, 101);
    }

    #[test]
    fn range_queries_match_scan() {
        let pts = random_points(4_000, 3, 100_000);
        let tree = SpacHTree::<2>::build(&pts);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..40 {
            let a = Point::new([rng.gen_range(0..100_000), rng.gen_range(0..100_000)]);
            let b = Point::new([rng.gen_range(0..100_000), rng.gen_range(0..100_000)]);
            let rect = Rect::new(a, b);
            let expect: Vec<_> = pts.iter().copied().filter(|p| rect.contains(p)).collect();
            assert_eq!(tree.range_count(&rect), expect.len());
            let mut got = tree.range_list(&rect);
            let mut want = expect;
            got.sort();
            want.sort();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn insert_preserves_content_and_queries() {
        let all = random_points(6_000, 4, 1_000_000);
        let (a, b) = all.split_at(3_000);
        let mut tree = SpacHTree::<2>::build(a);
        // Insert the second half in several smaller batches to exercise the
        // unsorted-leaf path repeatedly.
        for chunk in b.chunks(700) {
            tree.batch_insert(chunk);
            tree.check_invariants();
        }
        assert_eq!(tree.len(), all.len());
        let mut got = tree.collect_points();
        let mut want = all.clone();
        got.sort();
        want.sort();
        assert_eq!(got, want);
        check_knn_against_oracle(&tree, &all, 102);
    }

    #[test]
    fn delete_in_batches_until_empty() {
        let pts = random_points(3_000, 5, 500_000);
        let mut tree = SpacZTree::<2>::build(&pts);
        let mut remaining = pts.clone();
        for chunk in pts.chunks(800) {
            let removed = tree.batch_delete(chunk);
            assert_eq!(removed, chunk.len());
            tree.check_invariants();
            remaining.drain(..chunk.len().min(remaining.len()));
        }
        assert!(tree.is_empty());
    }

    #[test]
    fn delete_subset_queries_still_correct() {
        let pts = random_points(4_000, 6, 1_000_000);
        let mut tree = SpacHTree::<2>::build(&pts);
        tree.batch_delete(&pts[..2_000]);
        tree.check_invariants();
        let survivors: Vec<_> = pts[2_000..].to_vec();
        assert_eq!(tree.len(), survivors.len());
        check_knn_against_oracle(&tree, &survivors, 103);
    }

    #[test]
    fn duplicates_multiset_semantics() {
        let p = PointI::<2>::new([9, 9]);
        let pts = vec![p; 150];
        let mut tree = SpacHTree::<2>::build(&pts);
        assert_eq!(tree.len(), 150);
        tree.check_invariants();
        assert_eq!(tree.batch_delete(&vec![p; 60]), 60);
        assert_eq!(tree.len(), 90);
        tree.check_invariants();
        assert_eq!(tree.batch_delete(&vec![p; 200]), 90);
        assert!(tree.is_empty());
    }

    #[test]
    fn delete_absent_points_is_noop() {
        let pts = random_points(1_000, 7, 1_000);
        let mut tree = SpacHTree::<2>::build(&pts);
        let absent = vec![PointI::<2>::new([5_000_000, 5_000_000])];
        assert_eq!(tree.batch_delete(&absent), 0);
        assert_eq!(tree.len(), 1_000);
        tree.check_invariants();
    }

    #[test]
    fn cpam_baseline_same_results_as_spac() {
        let pts = random_points(3_000, 8, 1_000_000);
        let (a, b) = pts.split_at(1_500);
        let mut spac = SpacHTree::<2>::build(a);
        let mut cpam = CpamHTree::<2>::build(a);
        spac.batch_insert(b);
        cpam.batch_insert(b);
        spac.check_invariants();
        cpam.check_invariants();
        assert_eq!(spac.len(), cpam.len());

        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..20 {
            let q = Point::new([rng.gen_range(0..1_000_000), rng.gen_range(0..1_000_000)]);
            assert_eq!(
                spac.knn(&q, 10)
                    .iter()
                    .map(|p| q.dist_sq(p))
                    .collect::<Vec<_>>(),
                cpam.knn(&q, 10)
                    .iter()
                    .map(|p| q.dist_sq(p))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn three_dimensional_spac() {
        let mut rng = StdRng::seed_from_u64(9);
        let pts: Vec<PointI<3>> = (0..3_000)
            .map(|_| {
                Point::new([
                    rng.gen_range(0..1_000_000),
                    rng.gen_range(0..1_000_000),
                    rng.gen_range(0..1_000_000),
                ])
            })
            .collect();
        let mut tree = SpacHTree::<3>::build(&pts);
        tree.check_invariants();
        let q = Point::new([500_000, 500_000, 500_000]);
        let got = tree.knn(&q, 10);
        let expect = brute_force_knn(&pts, &q, 10);
        assert_eq!(
            got.iter().map(|p| q.dist_sq(p)).collect::<Vec<_>>(),
            expect.iter().map(|p| q.dist_sq(p)).collect::<Vec<_>>()
        );
        tree.batch_delete(&pts[..1_000]);
        assert_eq!(tree.len(), 2_000);
        tree.check_invariants();
    }

    #[test]
    fn skewed_input_stays_balanced() {
        // Sweepline-like: sorted along x. The comparison-based SFC sort keeps
        // the tree balanced regardless of input order.
        let mut pts = random_points(5_000, 10, 1_000_000);
        pts.sort_by_key(|p| p.coords[0]);
        let mut tree = SpacHTree::<2>::build(&pts[..2_500]);
        for chunk in pts[2_500..].chunks(250) {
            tree.batch_insert(chunk);
        }
        tree.check_invariants();
        let n = tree.len() as f64;
        assert!(
            (tree.height() as f64) < 4.0 * n.log2(),
            "height {} too large for n = {}",
            tree.height(),
            n
        );
    }
}
