//! Workload generators for Ψ-Lib-rs — the synthetic and "real-world stand-in"
//! datasets, query mixes and update patterns used by the paper's evaluation
//! (§5.1, §5.2) and by this repository's benchmark harness.
//!
//! Synthetic distributions (all deterministic given a seed):
//!
//! * [`uniform`] — points drawn uniformly from the coordinate domain
//!   (`[0, 10^9]` in the paper's 2-D runs),
//! * [`sweepline`] — the same uniform points, *sorted along the first
//!   dimension*; used to simulate a spatially local (skewed) update pattern,
//! * [`varden`] — the Varden clustered distribution: a random walk with small
//!   steps that occasionally restarts at a fresh random location, producing
//!   dense, well separated clusters (the skewed input the Orth-tree family
//!   struggles with),
//! * [`cosmo_like`] — a 3-D stand-in for the COSMO N-body snapshot: heavily
//!   clustered "halos" with power-law-ish sizes,
//! * [`osm_like`] — a 2-D stand-in for OpenStreetMap North America: points
//!   strung densely along polyline "roads" connecting random waypoints.
//!
//! Query generators: in-distribution (`InD`) and out-of-distribution (`OOD`)
//! kNN query points, and range-query boxes targeting a given result size.
//!
//! The [`Distribution`] enum gives the benchmark harness a uniform way to name
//! and produce each workload.

use psi_geometry::{Point, PointI, Rect, RectI};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// The default coordinate upper bound used by the paper for 2-D synthetic data.
pub const DEFAULT_MAX_COORD_2D: i64 = 1_000_000_000;
/// The coordinate upper bound the paper uses for 3-D data (so Hilbert codes fit).
pub const DEFAULT_MAX_COORD_3D: i64 = 1_000_000;

/// A named synthetic point distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Uniformly random points.
    Uniform,
    /// Uniform points sorted along dimension 0 (skewed *update order*).
    Sweepline,
    /// Clustered random-walk points (skewed *spatial distribution*).
    Varden,
    /// Halo-clustered N-body stand-in (see [`cosmo_like`]).
    CosmoLike,
    /// Road-network stand-in: points strung along polylines (see [`osm_like`]).
    OsmLike,
}

impl Distribution {
    /// All distributions, in the order the paper's tables list them.
    pub const ALL: [Distribution; 5] = [
        Distribution::Uniform,
        Distribution::Sweepline,
        Distribution::Varden,
        Distribution::CosmoLike,
        Distribution::OsmLike,
    ];

    /// The paper's synthetic sweep (Uniform, Sweepline, Varden) — what the
    /// figure binaries iterate. [`Distribution::ALL`] additionally includes
    /// the real-dataset stand-ins, which the paper reports separately.
    pub const SYNTHETIC: [Distribution; 3] = [
        Distribution::Uniform,
        Distribution::Sweepline,
        Distribution::Varden,
    ];

    /// Human-readable name used in benchmark output and scenario files.
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Uniform => "Uniform",
            Distribution::Sweepline => "Sweepline",
            Distribution::Varden => "Varden",
            Distribution::CosmoLike => "Cosmo-like",
            Distribution::OsmLike => "OSM-like",
        }
    }

    /// Resolve a user-provided name (scenario files, CLI flags) to a
    /// distribution. Case-insensitive; `-`, `_` and spaces are ignored, and
    /// the `-like` suffix of the dataset stand-ins is optional, so
    /// "Cosmo-like", "cosmo_like" and "cosmo" all resolve.
    pub fn from_name(name: &str) -> Option<Distribution> {
        let canon: String = name
            .trim()
            .chars()
            .filter(|c| !matches!(c, '-' | '_' | ' '))
            .collect::<String>()
            .to_ascii_lowercase();
        Some(match canon.as_str() {
            "uniform" => Distribution::Uniform,
            "sweepline" => Distribution::Sweepline,
            "varden" => Distribution::Varden,
            "cosmo" | "cosmolike" => Distribution::CosmoLike,
            "osm" | "osmlike" => Distribution::OsmLike,
            _ => return None,
        })
    }

    /// Generate `n` points of this distribution in `[0, max_coord]^D`.
    pub fn generate<const D: usize>(&self, n: usize, max_coord: i64, seed: u64) -> Vec<PointI<D>> {
        match self {
            Distribution::Uniform => uniform(n, max_coord, seed),
            Distribution::Sweepline => sweepline(n, max_coord, seed),
            Distribution::Varden => varden(n, max_coord, seed),
            Distribution::CosmoLike => cosmo_like_d(n, max_coord, seed),
            Distribution::OsmLike => osm_like_d(n, max_coord, seed),
        }
    }
}

fn rng_for(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// `n` points uniformly random in `[0, max_coord]^D`.
pub fn uniform<const D: usize>(n: usize, max_coord: i64, seed: u64) -> Vec<PointI<D>> {
    // Chunked parallel generation with per-chunk derived seeds keeps the output
    // deterministic regardless of thread count.
    let chunk = 64 * 1024;
    let nchunks = n.div_ceil(chunk).max(1);
    (0..nchunks)
        .into_par_iter()
        .flat_map_iter(|c| {
            let mut rng = rng_for(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(c as u64 + 1)));
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(n);
            (lo..hi)
                .map(move |_| {
                    let mut coords = [0i64; D];
                    for c in coords.iter_mut() {
                        *c = rng.gen_range(0..=max_coord);
                    }
                    Point::new(coords)
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Uniform points sorted by their first coordinate — the paper's Sweepline
/// workload, which makes successive update batches spatially clustered.
pub fn sweepline<const D: usize>(n: usize, max_coord: i64, seed: u64) -> Vec<PointI<D>> {
    let mut pts = uniform::<D>(n, max_coord, seed);
    pts.sort_by_key(|p| p.coords[0]);
    pts
}

/// The Varden clustered distribution: a bounded random walk with restart.
///
/// Each step moves a small distance from the previous point; with a small
/// probability the walk restarts at a fresh uniform location. The result is a
/// set of dense clusters far apart from each other (large aspect ratio Δ),
/// which is what stresses spatial-median splitting.
pub fn varden<const D: usize>(n: usize, max_coord: i64, seed: u64) -> Vec<PointI<D>> {
    let mut rng = rng_for(seed);
    let mut pts = Vec::with_capacity(n);
    let restart_prob = 1e-4;
    // Step size: keep clusters tight relative to the domain.
    let step = (max_coord / 100_000).max(2);
    let mut cur = [0i64; D];
    for c in cur.iter_mut() {
        *c = rng.gen_range(0..=max_coord);
    }
    for _ in 0..n {
        if rng.gen_bool(restart_prob) {
            for c in cur.iter_mut() {
                *c = rng.gen_range(0..=max_coord);
            }
        } else {
            for c in cur.iter_mut() {
                let delta = rng.gen_range(-step..=step);
                *c = (*c + delta).clamp(0, max_coord);
            }
        }
        pts.push(Point::new(cur));
    }
    pts
}

/// Dimension-generic COSMO stand-in ([`cosmo_like`] for any `D`): points
/// concentrated in "halos" whose populations follow a heavy-tailed
/// distribution, plus a thin uniform background.
pub fn cosmo_like_d<const D: usize>(n: usize, max_coord: i64, seed: u64) -> Vec<PointI<D>> {
    let mut rng = rng_for(seed);
    let mut pts = Vec::with_capacity(n);
    let n_background = n / 20;
    let n_clustered = n - n_background;

    // Halo centres and scale radii.
    let n_halos = (n / 2_000).clamp(8, 4_000);
    let halos: Vec<([i64; D], i64)> = (0..n_halos)
        .map(|_| {
            let mut centre = [0i64; D];
            for c in centre.iter_mut() {
                *c = rng.gen_range(0..=max_coord);
            }
            // Heavy-tailed halo radius.
            let u: f64 = rng.gen_range(0.0..1.0f64);
            let radius = ((max_coord as f64) * 0.002 * (1.0 / (1.0 - u)).powf(0.5))
                .min(max_coord as f64 * 0.05) as i64;
            (centre, radius.max(2))
        })
        .collect();

    for _ in 0..n_clustered {
        // Zipf-ish halo choice: earlier halos get more points.
        let h = (rng.gen_range(0.0f64..1.0).powi(2) * n_halos as f64) as usize % n_halos;
        let (centre, radius) = halos[h];
        let mut coords = [0i64; D];
        for (d, c) in coords.iter_mut().enumerate() {
            // A crude radially concentrated profile: sum of two uniforms.
            let offset = rng.gen_range(-radius..=radius) / 2 + rng.gen_range(-radius..=radius) / 2;
            *c = (centre[d] + offset).clamp(0, max_coord);
        }
        pts.push(Point::new(coords));
    }
    for _ in 0..n_background {
        let mut coords = [0i64; D];
        for c in coords.iter_mut() {
            *c = rng.gen_range(0..=max_coord);
        }
        pts.push(Point::new(coords));
    }
    pts
}

/// 3-D stand-in for the COSMO N-body dataset — the dimension the paper uses
/// it in. Substitutes the real 317M-particle snapshot while preserving the
/// property the paper exploits it for: extreme clustering.
pub fn cosmo_like(n: usize, max_coord: i64, seed: u64) -> Vec<PointI<3>> {
    cosmo_like_d::<3>(n, max_coord, seed)
}

/// Dimension-generic OSM stand-in ([`osm_like`] for any `D`): points sampled
/// densely along polylines ("roads") between random waypoints, so the data is
/// locally one-dimensional and globally patchy.
pub fn osm_like_d<const D: usize>(n: usize, max_coord: i64, seed: u64) -> Vec<PointI<D>> {
    let mut rng = rng_for(seed);
    let mut pts = Vec::with_capacity(n);
    let n_roads = (n / 5_000).clamp(4, 2_000);
    let jitter = (max_coord / 200_000).max(1);
    let mut remaining = n;
    for _ in 0..n_roads {
        if remaining == 0 {
            break;
        }
        let take = (n / n_roads).min(remaining);
        remaining -= take;
        let mut a = [0i64; D];
        let mut b = [0i64; D];
        for c in a.iter_mut().chain(b.iter_mut()) {
            *c = rng.gen_range(0..=max_coord);
        }
        for i in 0..take {
            let t = i as f64 / take.max(1) as f64;
            let mut coords = [0i64; D];
            for (d, c) in coords.iter_mut().enumerate() {
                let x =
                    a[d] as f64 + t * (b[d] - a[d]) as f64 + rng.gen_range(-jitter..=jitter) as f64;
                *c = (x as i64).clamp(0, max_coord);
            }
            pts.push(Point::new(coords));
        }
    }
    while pts.len() < n {
        let mut coords = [0i64; D];
        for c in coords.iter_mut() {
            *c = rng.gen_range(0..=max_coord);
        }
        pts.push(Point::new(coords));
    }
    pts
}

/// 2-D stand-in for the OSM North-America dataset — the dimension the paper
/// uses it in; the structure that makes real road networks hard for
/// spatial-median splits.
pub fn osm_like(n: usize, max_coord: i64, seed: u64) -> Vec<PointI<2>> {
    osm_like_d::<2>(n, max_coord, seed)
}

/// In-distribution query points: sampled (with replacement) from the dataset
/// itself, optionally perturbed by one unit so queries don't trivially hit
/// stored points.
pub fn ind_queries<const D: usize>(data: &[PointI<D>], n: usize, seed: u64) -> Vec<PointI<D>> {
    assert!(!data.is_empty(), "InD queries need a non-empty dataset");
    let mut rng = rng_for(seed);
    (0..n)
        .map(|_| {
            let mut p = data[rng.gen_range(0..data.len())];
            for c in p.coords.iter_mut() {
                *c += rng.gen_range(-1i64..=1);
            }
            p
        })
        .collect()
}

/// Out-of-distribution query points: uniform over the bounding domain, i.e.
/// mostly falling into regions the (possibly skewed) data does not occupy.
pub fn ood_queries<const D: usize>(max_coord: i64, n: usize, seed: u64) -> Vec<PointI<D>> {
    uniform::<D>(n, max_coord, seed ^ 0xDEAD_BEEF)
}

/// Range-query boxes: squares centred on data points, sized so each box is
/// expected to contain roughly `target_output` points given a dataset of
/// `data_len` points spread over `[0, max_coord]^D`.
pub fn range_queries<const D: usize>(
    data: &[PointI<D>],
    max_coord: i64,
    target_output: usize,
    n: usize,
    seed: u64,
) -> Vec<RectI<D>> {
    assert!(!data.is_empty());
    let mut rng = rng_for(seed.wrapping_add(17));
    let frac = (target_output as f64 / data.len() as f64).min(1.0);
    let side = ((frac.powf(1.0 / D as f64)) * max_coord as f64).max(1.0) as i64;
    (0..n)
        .map(|_| {
            let centre = data[rng.gen_range(0..data.len())];
            let mut lo = centre;
            let mut hi = centre;
            for d in 0..D {
                lo.coords[d] = (centre.coords[d] - side / 2).clamp(0, max_coord);
                hi.coords[d] = (centre.coords[d] + side / 2).clamp(0, max_coord);
            }
            Rect::from_corners(lo, hi)
        })
        .collect()
}

/// The root region that contains every point any generator in this crate can
/// produce for the given coordinate bound — handed to
/// `POrthTree::build_with_universe` so incremental and from-scratch builds
/// share the same space decomposition.
pub fn universe<const D: usize>(max_coord: i64) -> RectI<D> {
    Rect::from_corners(Point::new([0; D]), Point::new([max_coord; D]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_sized() {
        for dist in Distribution::ALL {
            let a = dist.generate::<2>(10_000, DEFAULT_MAX_COORD_2D, 42);
            let b = dist.generate::<2>(10_000, DEFAULT_MAX_COORD_2D, 42);
            assert_eq!(a.len(), 10_000);
            assert_eq!(a, b, "{} must be deterministic", dist.name());
            let c = dist.generate::<2>(10_000, DEFAULT_MAX_COORD_2D, 43);
            assert_ne!(a, c, "{} must vary with the seed", dist.name());
        }
    }

    #[test]
    fn points_respect_domain() {
        for dist in Distribution::ALL {
            let pts = dist.generate::<3>(5_000, DEFAULT_MAX_COORD_3D, 7);
            for p in &pts {
                for d in 0..3 {
                    assert!(p.coords[d] >= 0 && p.coords[d] <= DEFAULT_MAX_COORD_3D);
                }
            }
        }
    }

    #[test]
    fn distribution_names_round_trip() {
        for dist in Distribution::ALL {
            assert_eq!(
                Distribution::from_name(dist.name()),
                Some(dist),
                "{} must round-trip through from_name",
                dist.name()
            );
        }
        // Accepted spellings.
        assert_eq!(
            Distribution::from_name("cosmo_like"),
            Some(Distribution::CosmoLike)
        );
        assert_eq!(Distribution::from_name("osm"), Some(Distribution::OsmLike));
        assert_eq!(
            Distribution::from_name(" UNIFORM "),
            Some(Distribution::Uniform)
        );
        assert_eq!(Distribution::from_name("no-such"), None);
        // The synthetic sweep is a strict subset of ALL.
        assert!(Distribution::SYNTHETIC
            .iter()
            .all(|d| Distribution::ALL.contains(d)));
    }

    #[test]
    fn enum_matches_free_functions() {
        // The folded-in variants must produce exactly the free functions'
        // output in their native dimensions.
        assert_eq!(
            Distribution::CosmoLike.generate::<3>(3_000, DEFAULT_MAX_COORD_3D, 9),
            cosmo_like(3_000, DEFAULT_MAX_COORD_3D, 9)
        );
        assert_eq!(
            Distribution::OsmLike.generate::<2>(3_000, DEFAULT_MAX_COORD_2D, 9),
            osm_like(3_000, DEFAULT_MAX_COORD_2D, 9)
        );
    }

    #[test]
    fn sweepline_is_sorted_on_dim0() {
        let pts = sweepline::<2>(5_000, DEFAULT_MAX_COORD_2D, 1);
        assert!(pts.windows(2).all(|w| w[0].coords[0] <= w[1].coords[0]));
    }

    #[test]
    fn varden_is_clustered() {
        // Clustered data has far smaller average nearest-step distance than
        // uniform data at the same density.
        let n = 20_000;
        let max = DEFAULT_MAX_COORD_2D;
        let v = varden::<2>(n, max, 3);
        let u = uniform::<2>(n, max, 3);
        let step_avg = |pts: &[PointI<2>]| -> f64 {
            pts.windows(2)
                .map(|w| (w[0].dist_sq(&w[1]) as f64).sqrt())
                .sum::<f64>()
                / (pts.len() - 1) as f64
        };
        assert!(
            step_avg(&v) * 100.0 < step_avg(&u),
            "varden consecutive points must be much closer than uniform"
        );
    }

    #[test]
    fn cosmo_like_is_clustered_3d() {
        let n = 20_000;
        let pts = cosmo_like(n, DEFAULT_MAX_COORD_3D, 5);
        assert_eq!(pts.len(), n);
        // A substantial fraction of the domain must be empty: count distinct
        // coarse grid cells touched; clustered data touches far fewer than n.
        use std::collections::HashSet;
        let cells: HashSet<(i64, i64, i64)> = pts
            .iter()
            .map(|p| {
                (
                    p.coords[0] / 50_000,
                    p.coords[1] / 50_000,
                    p.coords[2] / 50_000,
                )
            })
            .collect();
        assert!(
            cells.len() * 3 < n,
            "cosmo_like should be clustered ({} cells for {} points)",
            cells.len(),
            n
        );
    }

    #[test]
    fn osm_like_is_locally_linear() {
        let pts = osm_like(20_000, DEFAULT_MAX_COORD_2D, 6);
        assert_eq!(pts.len(), 20_000);
        // Consecutive points along a road are close together.
        let close = pts
            .windows(2)
            .filter(|w| w[0].dist_sq(&w[1]) < (DEFAULT_MAX_COORD_2D as i128 / 100).pow(2))
            .count();
        assert!(
            close * 10 > pts.len() * 8,
            "most consecutive points lie on the same road"
        );
    }

    #[test]
    fn query_generators() {
        let data = uniform::<2>(10_000, 1_000_000, 9);
        let ind = ind_queries(&data, 100, 1);
        assert_eq!(ind.len(), 100);
        let ood = ood_queries::<2>(1_000_000, 100, 1);
        assert_eq!(ood.len(), 100);
        let ranges = range_queries(&data, 1_000_000, 100, 50, 1);
        assert_eq!(ranges.len(), 50);
        // Expected output size should be in the right ballpark (within 10x).
        let avg: f64 = ranges
            .iter()
            .map(|r| data.iter().filter(|p| r.contains(p)).count() as f64)
            .sum::<f64>()
            / ranges.len() as f64;
        assert!(
            avg > 10.0 && avg < 1_000.0,
            "average range output {avg} out of ballpark"
        );
    }

    #[test]
    fn universe_contains_everything() {
        let u = universe::<2>(DEFAULT_MAX_COORD_2D);
        for dist in Distribution::ALL {
            for p in dist.generate::<2>(2_000, DEFAULT_MAX_COORD_2D, 11) {
                assert!(u.contains(&p));
            }
        }
    }
}
