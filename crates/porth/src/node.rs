//! Node representation of the P-Orth tree and its structural invariants.

use crate::POrthConfig;
use psi_geometry::{Coord, LeafSoA, Point, Rect};

/// A P-Orth tree node.
///
/// Internal nodes have exactly `2^D` children, one per orthant of the spatial-
/// median split of the node's region; empty orthants are represented by empty
/// leaves so child indexing stays positional (child `i` covers orthant `i`,
/// where bit `d` of `i` selects the upper half of dimension `d`).
pub enum Node<T: Coord, const D: usize> {
    /// A wrapped leaf: at most `φ` points stored in structure-of-arrays layout
    /// (more only for point multisets that cannot be subdivided, e.g. many
    /// duplicates). The SoA planes carry their own tight bounding box.
    Leaf {
        /// The stored points (coordinate planes + bbox), insertion order kept.
        points: LeafSoA<T, D>,
    },
    /// An internal node covering `2^D` orthants.
    Internal {
        /// Positional children (`children.len() == 1 << D`).
        children: Vec<Node<T, D>>,
        /// Tight bounding box of all points below.
        bbox: Rect<T, D>,
        /// Number of points below.
        size: usize,
    },
}

impl<T: Coord, const D: usize> Node<T, D> {
    /// Fan-out of internal nodes.
    pub const FANOUT: usize = 1 << D;

    /// An empty leaf.
    pub fn empty_leaf() -> Self {
        Node::Leaf {
            points: LeafSoA::empty(),
        }
    }

    /// A leaf from a point slice (transposed into SoA planes, order kept).
    pub fn leaf_from(points: Vec<Point<T, D>>) -> Self {
        Node::Leaf {
            points: LeafSoA::from_points(&points),
        }
    }

    /// Number of points in the subtree.
    #[inline]
    pub fn size(&self) -> usize {
        match self {
            Node::Leaf { points, .. } => points.len(),
            Node::Internal { size, .. } => *size,
        }
    }

    /// Tight bounding box of the subtree.
    #[inline]
    pub fn bbox(&self) -> &Rect<T, D> {
        match self {
            Node::Leaf { points } => points.bbox(),
            Node::Internal { bbox, .. } => bbox,
        }
    }

    /// `true` for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Height of the subtree (a leaf has height 1).
    pub fn height(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { children, .. } => {
                1 + children.iter().map(|c| c.height()).max().unwrap_or(0)
            }
        }
    }

    /// Append every point of the subtree to `out` (tree order).
    pub fn collect_into(&self, out: &mut Vec<Point<T, D>>) {
        match self {
            Node::Leaf { points } => points.collect_into(out),
            Node::Internal { children, .. } => {
                for c in children {
                    c.collect_into(out);
                }
            }
        }
    }

    /// Count of nodes in the subtree (leaves + internals), for stats/tests.
    pub fn node_count(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { children, .. } => {
                1 + children.iter().map(|c| c.node_count()).sum::<usize>()
            }
        }
    }
}

/// Orthant index of `p` within `region`: bit `d` is set iff `p` lies strictly
/// above the spatial median of dimension `d`.
#[inline(always)]
pub fn child_index<T: Coord, const D: usize>(p: &Point<T, D>, region: &Rect<T, D>) -> usize {
    let mut idx = 0usize;
    for d in 0..D {
        let mid = region.midpoint(d);
        if p.coords[d].total_cmp(&mid) == std::cmp::Ordering::Greater {
            idx |= 1 << d;
        }
    }
    idx
}

/// The sub-region of orthant `i` of `region`.
///
/// The lower half of each dimension keeps `[lo, mid]`; the upper half starts at
/// the coordinate immediately above `mid` for integer coordinates (so the
/// recursion always makes progress) and at `mid` itself for floating point.
#[inline]
pub fn child_region<T: Coord, const D: usize>(region: &Rect<T, D>, i: usize) -> Rect<T, D> {
    let mut lo = region.lo;
    let mut hi = region.hi;
    for d in 0..D {
        let mid = region.midpoint(d);
        if (i >> d) & 1 == 0 {
            hi.coords[d] = mid;
        } else {
            // "just above mid": mid + 1 for integers, mid for floats. Using
            // mid_floor(mid, hi) would skew the region, so nudge via the
            // smallest representable step when one exists.
            lo.coords[d] = next_above(mid, region.hi.coords[d]);
        }
    }
    Rect::from_corners(lo, hi)
}

/// The smallest coordinate strictly greater than `mid` but not exceeding `hi`
/// (integers), or `mid` itself for continuous coordinate types / when `mid`
/// already equals `hi`.
#[inline(always)]
fn next_above<T: Coord>(mid: T, hi: T) -> T {
    let stepped = mid.next_up_discrete();
    if stepped.total_cmp(&hi) == std::cmp::Ordering::Greater {
        mid
    } else {
        stepped
    }
}

/// Verify subtree invariants; `is_root` relaxes the "internal nodes are larger
/// than the leaf cap" rule for the root (an empty tree is a single leaf).
pub fn check_invariants<T: Coord, const D: usize>(
    node: &Node<T, D>,
    region: &Rect<T, D>,
    cfg: &POrthConfig,
    is_root: bool,
) {
    match node {
        Node::Leaf { points } => {
            let expect = Rect::bounding(&points.to_vec());
            assert_eq!(
                &expect,
                points.bbox(),
                "leaf bounding box must tightly cover its points"
            );
            for p in points.iter() {
                assert!(
                    region.contains(&p),
                    "leaf point {:?} escapes its region {:?}",
                    p,
                    region
                );
            }
        }
        Node::Internal {
            children,
            bbox,
            size,
        } => {
            assert_eq!(children.len(), Node::<T, D>::FANOUT, "fan-out must be 2^D");
            let child_size: usize = children.iter().map(|c| c.size()).sum();
            assert_eq!(child_size, *size, "internal size must equal children sum");
            assert!(
                is_root || *size > cfg.leaf_cap,
                "non-root internal nodes must exceed the leaf cap (size {} <= {})",
                size,
                cfg.leaf_cap
            );
            let mut expect = Rect::empty();
            for (i, c) in children.iter().enumerate() {
                expect = expect.merged(c.bbox());
                check_invariants(c, &child_region(region, i), cfg, false);
            }
            assert_eq!(
                &expect, bbox,
                "internal bounding box must be the union of child boxes"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_geometry::PointI;

    fn region(lo: [i64; 2], hi: [i64; 2]) -> Rect<i64, 2> {
        Rect::from_corners(Point::new(lo), Point::new(hi))
    }

    #[test]
    fn child_index_covers_all_orthants() {
        let r = region([0, 0], [10, 10]);
        assert_eq!(child_index(&PointI::<2>::new([0, 0]), &r), 0);
        assert_eq!(child_index(&PointI::<2>::new([5, 5]), &r), 0); // on the median -> low
        assert_eq!(child_index(&PointI::<2>::new([6, 0]), &r), 1);
        assert_eq!(child_index(&PointI::<2>::new([0, 6]), &r), 2);
        assert_eq!(child_index(&PointI::<2>::new([10, 10]), &r), 3);
    }

    #[test]
    fn child_regions_partition_parent() {
        let r = region([0, 0], [10, 10]);
        let c0 = child_region(&r, 0);
        let c1 = child_region(&r, 1);
        let c2 = child_region(&r, 2);
        let c3 = child_region(&r, 3);
        assert_eq!(c0, region([0, 0], [5, 5]));
        assert_eq!(c1, region([6, 0], [10, 5]));
        assert_eq!(c2, region([0, 6], [5, 10]));
        assert_eq!(c3, region([6, 6], [10, 10]));
        // Every integer point of the parent belongs to exactly one child region,
        // and that child is the one child_index names.
        for x in 0..=10 {
            for y in 0..=10 {
                let p = PointI::<2>::new([x, y]);
                let owners = [c0, c1, c2, c3].iter().filter(|c| c.contains(&p)).count();
                assert_eq!(owners, 1, "point {:?} owned by {} regions", p, owners);
                let idx = child_index(&p, &r);
                assert!(child_region(&r, idx).contains(&p));
            }
        }
    }

    #[test]
    fn child_region_makes_progress_on_unit_ranges() {
        let r = region([0, 0], [1, 1]);
        // orthant 3 is the single cell (1,1)
        assert_eq!(child_region(&r, 3), region([1, 1], [1, 1]));
        // orthant 0 is the single cell (0,0)
        assert_eq!(child_region(&r, 0), region([0, 0], [0, 0]));
    }

    #[test]
    fn child_region_float() {
        let r: Rect<f64, 2> = Rect::from_corners(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]));
        let c3 = child_region(&r, 3);
        assert_eq!(c3.lo, Point::new([0.5, 0.5]));
        assert_eq!(c3.hi, Point::new([1.0, 1.0]));
    }

    #[test]
    fn leaf_helpers() {
        let pts = vec![PointI::<2>::new([1, 2]), PointI::<2>::new([3, 0])];
        let leaf = Node::leaf_from(pts.clone());
        assert_eq!(leaf.size(), 2);
        assert!(leaf.is_leaf());
        assert_eq!(leaf.height(), 1);
        assert_eq!(*leaf.bbox(), Rect::bounding(&pts));
        let mut out = vec![];
        leaf.collect_into(&mut out);
        assert_eq!(out, pts);
        assert_eq!(Node::<i64, 2>::empty_leaf().size(), 0);
    }
}
