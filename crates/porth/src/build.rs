//! P-Orth tree construction (Alg. 1).
//!
//! One recursion step builds `λ` levels of the tree at once:
//!
//! 1. compute the implicit `λ`-level skeleton of the node's region (it is fully
//!    determined by the region — no data pass needed),
//! 2. **sieve** the points so every skeleton bucket becomes a contiguous slice
//!    (one read + one write of the data, the step that replaces "sort by
//!    Morton code"),
//! 3. recurse on every non-trivial bucket in parallel,
//! 4. assemble the skeleton's internal nodes bottom-up, computing sizes and
//!    bounding boxes, and flatten any subtree that ended up no larger than the
//!    leaf wrap `φ`.

use crate::node::{child_index, child_region, Node};
use crate::POrthConfig;
use psi_geometry::{Coord, Point, Rect};
use psi_parutils::sieve_by;
use psi_parutils::stats::counters;
use rayon::prelude::*;

/// Build a subtree over `points` (which is reordered in place) covering `region`.
pub fn build_orth<T: Coord, const D: usize>(
    points: &mut [Point<T, D>],
    region: &Rect<T, D>,
    cfg: &POrthConfig,
    depth: usize,
) -> Node<T, D> {
    let n = points.len();
    if n <= cfg.leaf_cap {
        return Node::leaf_from(points.to_vec());
    }
    // Safety valves for inputs an Orth-tree cannot subdivide: all points equal,
    // or the recursion depth cap reached (degenerate float inputs).
    if depth >= cfg.max_depth || all_equal(points) {
        return Node::leaf_from(points.to_vec());
    }

    let levels = effective_levels::<D>(cfg.skeleton_levels, n, cfg.leaf_cap);
    let num_buckets = 1usize << (D * levels);

    // Pre-compute the region of every skeleton cell (row-major by bucket id).
    let regions = skeleton_regions(region, levels);

    // Sieve: one pass that gathers each bucket's points contiguously.
    let offsets = sieve_by(points, num_buckets, |p| bucket_of(p, region, levels));
    counters::POINTS_MOVED.add(n as u64);

    // Recurse on each bucket in parallel.
    let mut slices: Vec<&mut [Point<T, D>]> = Vec::with_capacity(num_buckets);
    let mut rest = points;
    for w in offsets.windows(2) {
        let (head, tail) = rest.split_at_mut(w[1] - w[0]);
        slices.push(head);
        rest = tail;
    }
    let subtrees: Vec<Node<T, D>> = slices
        .into_par_iter()
        .zip(regions.par_iter())
        .map(|(slice, reg)| build_orth(slice, reg, cfg, depth + levels))
        .collect();

    // Assemble the skeleton bottom-up, flattening small subtrees.
    assemble(subtrees, levels, cfg)
}

/// Number of levels to build in this round: the configured `λ`, reduced when
/// the input is small enough that a full fan-out would only create empty
/// buckets.
fn effective_levels<const D: usize>(lambda: usize, n: usize, leaf_cap: usize) -> usize {
    let mut levels = lambda.max(1);
    while levels > 1 && (1usize << (D * levels)) * leaf_cap / 4 > n {
        levels -= 1;
    }
    levels
}

/// Bucket (skeleton external node) of point `p` after descending `levels`
/// spatial-median splits from `region`.
#[inline]
pub fn bucket_of<T: Coord, const D: usize>(
    p: &Point<T, D>,
    region: &Rect<T, D>,
    levels: usize,
) -> usize {
    let mut r = *region;
    let mut bucket = 0usize;
    for _ in 0..levels {
        let c = child_index(p, &r);
        bucket = (bucket << D) | c;
        r = child_region(&r, c);
    }
    bucket
}

/// The regions of all `2^{λD}` skeleton cells, indexed by bucket id.
pub fn skeleton_regions<T: Coord, const D: usize>(
    region: &Rect<T, D>,
    levels: usize,
) -> Vec<Rect<T, D>> {
    let mut regions = vec![*region];
    for _ in 0..levels {
        let mut next = Vec::with_capacity(regions.len() << D);
        for r in &regions {
            for c in 0..(1usize << D) {
                next.push(child_region(r, c));
            }
        }
        regions = next;
    }
    regions
}

/// Group `2^{λD}` subtrees into the skeleton's internal nodes, level by level,
/// flattening any group whose total size is within the leaf wrap.
fn assemble<T: Coord, const D: usize>(
    mut nodes: Vec<Node<T, D>>,
    levels: usize,
    cfg: &POrthConfig,
) -> Node<T, D> {
    let fanout = 1usize << D;
    for _ in 0..levels {
        let mut parents = Vec::with_capacity(nodes.len() / fanout);
        let mut it = nodes.into_iter();
        loop {
            let group: Vec<Node<T, D>> = it.by_ref().take(fanout).collect();
            if group.is_empty() {
                break;
            }
            parents.push(make_internal(group, cfg));
        }
        nodes = parents;
    }
    debug_assert_eq!(nodes.len(), 1);
    nodes.pop().unwrap()
}

/// Create an internal node over `children`, or a flat leaf if the combined
/// size is within the leaf wrap `φ` (Alg. 1 line 10).
pub fn make_internal<T: Coord, const D: usize>(
    children: Vec<Node<T, D>>,
    cfg: &POrthConfig,
) -> Node<T, D> {
    let size: usize = children.iter().map(|c| c.size()).sum();
    if size <= cfg.leaf_cap {
        let mut pts = Vec::with_capacity(size);
        for c in &children {
            c.collect_into(&mut pts);
        }
        return Node::leaf_from(pts);
    }
    let mut bbox = Rect::empty();
    for c in &children {
        bbox = bbox.merged(c.bbox());
    }
    Node::Internal {
        children,
        bbox,
        size,
    }
}

fn all_equal<T: Coord, const D: usize>(points: &[Point<T, D>]) -> bool {
    points
        .windows(2)
        .all(|w| w[0].lex_cmp(&w[1]) == std::cmp::Ordering::Equal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_geometry::PointI;

    fn region(lo: [i64; 2], hi: [i64; 2]) -> Rect<i64, 2> {
        Rect::from_corners(Point::new(lo), Point::new(hi))
    }

    #[test]
    fn bucket_of_matches_repeated_child_index() {
        let r = region([0, 0], [100, 100]);
        let p = PointI::<2>::new([77, 13]);
        // level 1: child 1 (x high, y low); descend and compute level 2 manually
        let c1 = child_index(&p, &r);
        let r1 = child_region(&r, c1);
        let c2 = child_index(&p, &r1);
        assert_eq!(bucket_of(&p, &r, 2), (c1 << 2) | c2);
    }

    #[test]
    fn skeleton_regions_tile_the_space() {
        let r = region([0, 0], [63, 63]);
        let regs = skeleton_regions(&r, 2);
        assert_eq!(regs.len(), 16);
        // every integer point belongs to exactly one cell, and bucket_of agrees
        for x in (0..64).step_by(7) {
            for y in (0..64).step_by(7) {
                let p = PointI::<2>::new([x, y]);
                let owners: Vec<usize> = regs
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.contains(&p))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(owners.len(), 1);
                assert_eq!(owners[0], bucket_of(&p, &r, 2));
            }
        }
    }

    #[test]
    fn effective_levels_shrinks_for_small_inputs() {
        assert_eq!(effective_levels::<2>(3, 1_000_000, 32), 3);
        assert!(effective_levels::<2>(3, 100, 32) < 3);
        assert_eq!(effective_levels::<2>(3, 0, 32), 1);
        assert_eq!(effective_levels::<3>(2, 10_000_000, 32), 2);
    }

    #[test]
    fn build_groups_points_in_their_orthants() {
        // 4 clusters, one per quadrant of [0, 100]^2.
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push(PointI::<2>::new([i % 5, i % 7])); // quadrant 0
            pts.push(PointI::<2>::new([95 + i % 5, i % 7])); // quadrant 1
            pts.push(PointI::<2>::new([i % 5, 95 + i % 7])); // quadrant 2
            pts.push(PointI::<2>::new([95 + i % 5, 95 + i % 7])); // quadrant 3
        }
        let r = region([0, 100], [0, 100]);
        let _ = r;
        let universe = region([0, 0], [100, 100]);
        let cfg = POrthConfig::for_dim(2);
        let mut buf = pts.clone();
        let node = build_orth(&mut buf, &universe, &cfg, 0);
        assert_eq!(node.size(), 200);
        match &node {
            Node::Internal { children, .. } => {
                assert_eq!(children.len(), 4);
                for c in children {
                    assert_eq!(c.size(), 50);
                }
            }
            Node::Leaf { .. } => panic!("200 points must not fit in one leaf"),
        }
    }

    #[test]
    fn all_duplicates_become_one_leaf() {
        let cfg = POrthConfig::for_dim(2);
        let mut pts = vec![PointI::<2>::new([3, 3]); 500];
        let node = build_orth(&mut pts, &region([0, 0], [10, 10]), &cfg, 0);
        assert!(node.is_leaf());
        assert_eq!(node.size(), 500);
    }
}
