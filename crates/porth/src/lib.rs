//! **P-Orth tree** — the parallel Orth-tree (quadtree / octree) of §3.
//!
//! An Orth-tree node splits its region into `2^D` congruent sub-regions at the
//! spatial median of every dimension. The paper's contribution is an
//! SFC-free construction and batch-update algorithm: instead of computing and
//! sorting Morton codes (the approach of Zd-tree and most prior Orth-trees),
//! the P-Orth tree *sieves* the points directly into the buckets induced by a
//! `λ`-level tree skeleton (Alg. 1), one cache-friendly pass per `λ` levels —
//! "conceptually an integer sort on Morton codes, without generating, storing,
//! or using them".
//!
//! Because no SFC is involved, the P-Orth tree works for any coordinate type
//! (including `f64`) and any coordinate range, and updates need no rebalancing
//! at all: the tree shape is a pure function of the point multiset and the
//! root region (history-independence, §5.1.3), which is why its query quality
//! never degrades under heavy updates.
//!
//! # Example
//!
//! ```
//! use psi_geometry::{PointI, RectI, Point};
//! use psi_porth::POrthTree;
//!
//! let pts: Vec<PointI<2>> = (0..1000).map(|i| Point::new([i % 37, i / 37])).collect();
//! let mut tree = POrthTree::build(&pts);
//! assert_eq!(tree.len(), 1000);
//!
//! let nn = tree.knn(&Point::new([5, 5]), 3);
//! assert_eq!(nn.len(), 3);
//!
//! tree.batch_delete(&pts[..500]);
//! assert_eq!(tree.len(), 500);
//! ```

mod build;
mod node;
mod query;
mod update;

pub use node::Node;

use psi_geometry::{Coord, KnnHeap, Point, Rect};

/// Tuning parameters of a [`POrthTree`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct POrthConfig {
    /// Leaf wrap threshold `φ`: a subtree with at most this many points is
    /// stored as a flat leaf (paper default 32).
    pub leaf_cap: usize,
    /// Skeleton height `λ`: how many tree levels a single sieve pass builds.
    /// The paper uses 3 for 2-D and 2 for 3-D (§C), keeping the number of
    /// buckets per pass (`2^{λD}`) cache-resident. `0` means "auto": resolve
    /// to the paper's per-dimension default at build time.
    pub skeleton_levels: usize,
    /// Hard recursion-depth cap. Purely a safety net for adversarial
    /// floating-point inputs whose midpoints stop making progress; the paper's
    /// integer workloads never get near it.
    pub max_depth: usize,
}

impl POrthConfig {
    /// The paper's defaults for dimension `D` (φ = 32; λ = 3 in 2-D, 2 in 3-D+).
    pub fn for_dim(d: usize) -> Self {
        POrthConfig {
            leaf_cap: 32,
            skeleton_levels: if d <= 2 { 3 } else { 2 },
            max_depth: 128,
        }
    }

    /// Replace the `0 = auto` skeleton height with the concrete per-dimension
    /// default; every other field is kept.
    pub fn resolved(mut self, d: usize) -> Self {
        if self.skeleton_levels == 0 {
            self.skeleton_levels = Self::for_dim(d).skeleton_levels;
        }
        self
    }
}

/// Dimension-independent defaults (`skeleton_levels` stays on auto), so the
/// config satisfies the unified trait's `Config: Default` bound.
impl Default for POrthConfig {
    fn default() -> Self {
        POrthConfig {
            leaf_cap: 32,
            skeleton_levels: 0,
            max_depth: 128,
        }
    }
}

/// The parallel Orth-tree.
///
/// `T` is the coordinate type (`i64` or `f64`), `D` the dimension (2 or 3 in
/// the paper; any `D >= 1` works). See the crate docs for the algorithmic
/// background.
pub struct POrthTree<T: Coord, const D: usize> {
    root: Node<T, D>,
    /// The fixed root region `H`. All points must lie inside it; inserting a
    /// point outside triggers a full rebuild with an enlarged region (the only
    /// non-incremental path, and one the paper's bounded-domain workloads
    /// never exercise).
    universe: Rect<T, D>,
    cfg: POrthConfig,
}

impl<T: Coord, const D: usize> POrthTree<T, D> {
    /// Build a tree over `points`, using their bounding box as the root region.
    pub fn build(points: &[Point<T, D>]) -> Self {
        Self::build_with_config(points, Rect::bounding(points), POrthConfig::for_dim(D))
    }

    /// Build a tree with an explicit root region (`H` in Alg. 1). Use this when
    /// the data domain is known up front — it makes the tree shape independent
    /// of which subset of points has been inserted so far.
    pub fn build_with_universe(points: &[Point<T, D>], universe: Rect<T, D>) -> Self {
        Self::build_with_config(points, universe, POrthConfig::for_dim(D))
    }

    /// Fully parameterised build.
    pub fn build_with_config(
        points: &[Point<T, D>],
        universe: Rect<T, D>,
        cfg: POrthConfig,
    ) -> Self {
        let cfg = cfg.resolved(D);
        let mut universe = universe;
        for p in points {
            universe.expand(p);
        }
        let mut buf = points.to_vec();
        let root = build::build_orth(&mut buf, &universe, &cfg, 0);
        POrthTree {
            root,
            universe,
            cfg,
        }
    }

    /// Number of points currently stored.
    pub fn len(&self) -> usize {
        self.root.size()
    }

    /// `true` if the tree stores no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The root region `H`.
    pub fn universe(&self) -> &Rect<T, D> {
        &self.universe
    }

    /// The tight bounding box of the stored points ([`Rect::empty`] if empty).
    pub fn bounding_box(&self) -> Rect<T, D> {
        *self.root.bbox()
    }

    /// Height of the tree (a single leaf has height 1).
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// Configuration in effect.
    pub fn config(&self) -> &POrthConfig {
        &self.cfg
    }

    /// Collect every stored point (in tree order).
    pub fn collect_points(&self) -> Vec<Point<T, D>> {
        let mut out = Vec::with_capacity(self.len());
        self.root.collect_into(&mut out);
        out
    }

    /// Batch insertion (Alg. 2). Points outside the current root region force a
    /// rebuild with an enlarged region; in-region points are sieved down the
    /// existing structure in parallel.
    pub fn batch_insert(&mut self, points: &[Point<T, D>]) {
        if points.is_empty() {
            return;
        }
        let out_of_universe = points.iter().any(|p| !self.universe.contains(p));
        if out_of_universe {
            // Enlarge the universe and rebuild — the documented fallback.
            let mut all = self.collect_points();
            all.extend_from_slice(points);
            let mut uni = self.universe;
            for p in points {
                uni.expand(p);
            }
            *self = Self::build_with_config(&all, uni, self.cfg);
            return;
        }
        let mut buf = points.to_vec();
        update::batch_insert(&mut self.root, &mut buf, &self.universe, &self.cfg, 0);
    }

    /// Batch deletion (the symmetric counterpart of Alg. 2). Each point in
    /// `points` removes at most one matching stored point; points that are not
    /// present are ignored. Returns the number of points actually removed.
    pub fn batch_delete(&mut self, points: &[Point<T, D>]) -> usize {
        if points.is_empty() {
            return 0;
        }
        let mut buf = points.to_vec();
        update::batch_delete(&mut self.root, &mut buf, &self.universe, &self.cfg)
    }

    /// The `k` nearest neighbours of `q`, ordered by increasing distance.
    pub fn knn(&self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>> {
        query::knn(&self.root, q, k)
    }

    /// kNN primitive: reset `heap` to capacity `k` (reusing its allocation)
    /// and fill it with the `k` nearest neighbours of `q`. Requires `k >= 1`.
    pub fn knn_into(&self, q: &Point<T, D>, k: usize, heap: &mut KnnHeap<T, D>) {
        query::knn_into(&self.root, q, k, heap)
    }

    /// Range primitive: call `visitor` on every stored point inside the closed
    /// box, allocating nothing.
    pub fn range_visit(&self, rect: &Rect<T, D>, visitor: &mut dyn FnMut(&Point<T, D>)) {
        query::range_visit(&self.root, rect, visitor)
    }

    /// Number of stored points inside the (closed) axis-aligned box.
    pub fn range_count(&self, rect: &Rect<T, D>) -> usize {
        query::range_count(&self.root, rect)
    }

    /// All stored points inside the (closed) axis-aligned box.
    pub fn range_list(&self, rect: &Rect<T, D>) -> Vec<Point<T, D>> {
        let mut out = Vec::new();
        query::range_list(&self.root, rect, &mut out);
        out
    }

    /// Validate the structural invariants of the tree (used by tests and the
    /// property suite): sizes, bounding boxes, leaf-wrap, and region
    /// containment. Panics with a description on the first violation.
    pub fn check_invariants(&self) {
        node::check_invariants(&self.root, &self.universe, &self.cfg, true);
    }

    /// Access to the root node (read-only), for white-box tests and the
    /// structure-comparison used by the history-independence property test.
    pub fn root(&self) -> &Node<T, D> {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_geometry::{brute_force_knn, PointI, RectI};
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn random_points(n: usize, seed: u64, max: i64) -> Vec<PointI<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.gen_range(0..max), rng.gen_range(0..max)]))
            .collect()
    }

    #[test]
    fn build_empty() {
        let tree = POrthTree::<i64, 2>::build(&[]);
        assert_eq!(tree.len(), 0);
        assert!(tree.is_empty());
        assert_eq!(tree.knn(&Point::new([0, 0]), 3), vec![]);
        assert_eq!(tree.range_count(&RectI::<2>::empty()), 0);
        tree.check_invariants();
    }

    #[test]
    fn build_single_point() {
        let p = PointI::<2>::new([5, 5]);
        let tree = POrthTree::build(&[p]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.knn(&Point::new([0, 0]), 1), vec![p]);
        tree.check_invariants();
    }

    #[test]
    fn build_and_query_moderate() {
        let pts = random_points(5_000, 1, 1_000_000);
        let tree = POrthTree::build(&pts);
        assert_eq!(tree.len(), pts.len());
        tree.check_invariants();

        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let q = Point::new([rng.gen_range(0..1_000_000), rng.gen_range(0..1_000_000)]);
            let got = tree.knn(&q, 10);
            let expect = brute_force_knn(&pts, &q, 10);
            let gd: Vec<i128> = got.iter().map(|p| q.dist_sq(p)).collect();
            let ed: Vec<i128> = expect.iter().map(|p| q.dist_sq(p)).collect();
            assert_eq!(gd, ed);
        }
    }

    #[test]
    fn range_queries_match_scan() {
        let pts = random_points(3_000, 2, 10_000);
        let tree = POrthTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let a = Point::new([rng.gen_range(0..10_000), rng.gen_range(0..10_000)]);
            let b = Point::new([rng.gen_range(0..10_000), rng.gen_range(0..10_000)]);
            let rect = Rect::new(a, b);
            let expect: Vec<_> = pts.iter().copied().filter(|p| rect.contains(p)).collect();
            assert_eq!(tree.range_count(&rect), expect.len());
            let mut got = tree.range_list(&rect);
            let mut want = expect.clone();
            got.sort();
            want.sort();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn insert_then_matches_full_build() {
        let all = random_points(4_000, 3, 100_000);
        let universe = RectI::<2>::from_corners(Point::new([0, 0]), Point::new([100_000, 100_000]));
        let (a, b) = all.split_at(2_000);
        let mut tree = POrthTree::build_with_universe(a, universe);
        tree.batch_insert(b);
        tree.check_invariants();
        assert_eq!(tree.len(), all.len());

        let mut got = tree.collect_points();
        let mut want = all.clone();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn delete_everything_in_batches() {
        let pts = random_points(2_500, 4, 50_000);
        let mut tree = POrthTree::build(&pts);
        let removed = tree.batch_delete(&pts[..1_000]);
        assert_eq!(removed, 1_000);
        tree.check_invariants();
        assert_eq!(tree.len(), 1_500);
        let removed = tree.batch_delete(&pts[1_000..]);
        assert_eq!(removed, 1_500);
        assert!(tree.is_empty());
        tree.check_invariants();
    }

    #[test]
    fn delete_absent_points_is_noop() {
        let pts = random_points(500, 6, 1_000);
        let mut tree = POrthTree::build(&pts);
        let absent = vec![Point::new([999, 998]), Point::new([998, 999])];
        let before = tree.len();
        let removed = tree.batch_delete(
            &absent
                .into_iter()
                .filter(|p| !pts.contains(p))
                .collect::<Vec<_>>(),
        );
        assert_eq!(removed, 0);
        assert_eq!(tree.len(), before);
        tree.check_invariants();
    }

    #[test]
    fn duplicate_points_are_kept_as_multiset() {
        let p = PointI::<2>::new([7, 7]);
        let pts = vec![p; 200];
        let mut tree = POrthTree::build(&pts);
        assert_eq!(tree.len(), 200);
        tree.check_invariants();
        assert_eq!(tree.batch_delete(&vec![p; 50]), 50);
        assert_eq!(tree.len(), 150);
        tree.check_invariants();
    }

    #[test]
    fn insert_outside_universe_rebuilds() {
        let pts = random_points(1_000, 8, 1_000);
        let mut tree = POrthTree::build(&pts);
        let far = vec![PointI::<2>::new([10_000_000, 10_000_000])];
        tree.batch_insert(&far);
        assert_eq!(tree.len(), 1_001);
        assert!(tree.universe().contains(&far[0]));
        tree.check_invariants();
    }

    #[test]
    fn history_independence_modulo_leaves() {
        // The paper: Orth-trees are history-independent (modulo leaf wrapping).
        // With a fixed universe, building from scratch and building + inserting
        // must contain identical point sets and produce identical query results.
        let all = random_points(3_000, 9, 65_536);
        let universe = RectI::<2>::from_corners(Point::new([0, 0]), Point::new([65_536, 65_536]));
        let direct = POrthTree::build_with_universe(&all, universe);
        let (a, b) = all.split_at(1_500);
        let mut incremental = POrthTree::build_with_universe(a, universe);
        incremental.batch_insert(b);

        assert_eq!(direct.len(), incremental.len());
        let q = Point::new([30_000, 30_000]);
        assert_eq!(
            direct
                .knn(&q, 20)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>(),
            incremental
                .knn(&q, 20)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>()
        );
        // Stronger: the internal structure has the same height.
        assert_eq!(direct.height(), incremental.height());
    }

    #[test]
    fn float_coordinates_supported() {
        let mut rng = StdRng::seed_from_u64(11);
        let pts: Vec<Point<f64, 2>> = (0..2_000)
            .map(|_| Point::new([rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
            .collect();
        let tree = POrthTree::build(&pts);
        assert_eq!(tree.len(), 2_000);
        tree.check_invariants();
        let q = Point::new([0.5, 0.5]);
        let got = tree.knn(&q, 5);
        let expect = brute_force_knn(&pts, &q, 5);
        let gd: Vec<f64> = got.iter().map(|p| q.dist_sq(p)).collect();
        let ed: Vec<f64> = expect.iter().map(|p| q.dist_sq(p)).collect();
        assert_eq!(gd, ed);
    }

    #[test]
    fn three_dimensional_tree() {
        let mut rng = StdRng::seed_from_u64(12);
        let pts: Vec<PointI<3>> = (0..3_000)
            .map(|_| {
                Point::new([
                    rng.gen_range(0..10_000),
                    rng.gen_range(0..10_000),
                    rng.gen_range(0..10_000),
                ])
            })
            .collect();
        let mut tree = POrthTree::build(&pts);
        tree.check_invariants();
        let q = Point::new([5_000, 5_000, 5_000]);
        let got = tree.knn(&q, 8);
        let expect = brute_force_knn(&pts, &q, 8);
        assert_eq!(
            got.iter().map(|p| q.dist_sq(p)).collect::<Vec<_>>(),
            expect.iter().map(|p| q.dist_sq(p)).collect::<Vec<_>>()
        );
        tree.batch_delete(&pts[..1_500]);
        assert_eq!(tree.len(), 1_500);
        tree.check_invariants();
    }

    #[test]
    fn large_batch_into_small_tree() {
        let universe = RectI::<2>::from_corners(Point::new([0, 0]), Point::new([1 << 20, 1 << 20]));
        let small = random_points(100, 21, 1 << 20);
        let big = random_points(20_000, 22, 1 << 20);
        let mut tree = POrthTree::build_with_universe(&small, universe);
        tree.batch_insert(&big);
        assert_eq!(tree.len(), 20_100);
        tree.check_invariants();
    }

    #[test]
    fn skewed_clustered_data() {
        // All points crammed in a tiny corner of a huge universe: exercises the
        // deep-path case the paper's Varden workload stresses.
        let mut rng = StdRng::seed_from_u64(33);
        let universe = RectI::<2>::from_corners(
            Point::new([0, 0]),
            Point::new([1_000_000_000, 1_000_000_000]),
        );
        let pts: Vec<PointI<2>> = (0..2_000)
            .map(|_| Point::new([rng.gen_range(0..64), rng.gen_range(0..64)]))
            .collect();
        let tree = POrthTree::build_with_universe(&pts, universe);
        assert_eq!(tree.len(), 2_000);
        tree.check_invariants();
        let q = Point::new([32, 32]);
        let got = tree.knn(&q, 10);
        let expect = brute_force_knn(&pts, &q, 10);
        assert_eq!(
            got.iter().map(|p| q.dist_sq(p)).collect::<Vec<_>>(),
            expect.iter().map(|p| q.dist_sq(p)).collect::<Vec<_>>()
        );
    }
}
