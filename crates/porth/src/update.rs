//! Batch insertion and deletion for the P-Orth tree (Alg. 2 and its symmetric
//! deletion variant).
//!
//! Updates reuse the construction machinery: the batch is sieved into the
//! orthants of the current node and the orthants are processed recursively in
//! parallel. No rebalancing ever happens — the shape of an Orth-tree depends
//! only on which points it stores — so the only structural maintenance is
//! re-wrapping leaves (rebuilding a leaf that overflows `φ` on insertion, and
//! flattening a subtree that shrinks to at most `φ` points on deletion).

use crate::build::{build_orth, make_internal};
use crate::node::{child_index, child_region, Node};
use crate::POrthConfig;
use psi_geometry::{Coord, Point, Rect};
use psi_parutils::sieve_by;
use psi_parutils::stats::counters;
use rayon::prelude::*;

/// Insert `points` (reordered in place) into the subtree `node` covering `region`.
pub fn batch_insert<T: Coord, const D: usize>(
    node: &mut Node<T, D>,
    points: &mut [Point<T, D>],
    region: &Rect<T, D>,
    cfg: &POrthConfig,
    depth: usize,
) {
    if points.is_empty() {
        return;
    }
    match node {
        Node::Leaf {
            points: leaf_points,
        } => {
            // Rebuild the leaf together with the incoming batch (Alg. 2 line 4).
            let mut all = Vec::with_capacity(leaf_points.len() + points.len());
            leaf_points.collect_into(&mut all);
            all.extend_from_slice(points);
            *node = build_orth(&mut all, region, cfg, depth);
        }
        Node::Internal {
            children,
            bbox,
            size,
        } => {
            // Sieve the batch into the 2^D orthants of this node and recurse in
            // parallel (one level per round; the λ-level fused variant is used
            // for construction, where it matters most).
            let fanout = 1usize << D;
            let offsets = sieve_by(points, fanout, |p| child_index(p, region));
            counters::POINTS_MOVED.add(points.len() as u64);

            let mut slices: Vec<&mut [Point<T, D>]> = Vec::with_capacity(fanout);
            let mut rest = points;
            for w in offsets.windows(2) {
                let (head, tail) = rest.split_at_mut(w[1] - w[0]);
                slices.push(head);
                rest = tail;
            }

            children
                .par_iter_mut()
                .zip(slices.into_par_iter())
                .enumerate()
                .for_each(|(i, (child, slice))| {
                    batch_insert(child, slice, &child_region(region, i), cfg, depth + 1);
                });

            *size = children.iter().map(|c| c.size()).sum();
            let mut new_bbox = Rect::empty();
            for c in children.iter() {
                new_bbox = new_bbox.merged(c.bbox());
            }
            *bbox = new_bbox;
        }
    }
}

/// Delete `points` (reordered in place) from the subtree; returns how many
/// stored points were removed (each batch element removes at most one match).
pub fn batch_delete<T: Coord, const D: usize>(
    node: &mut Node<T, D>,
    points: &mut [Point<T, D>],
    region: &Rect<T, D>,
    cfg: &POrthConfig,
) -> usize {
    if points.is_empty() {
        return 0;
    }
    match node {
        Node::Leaf {
            points: leaf_points,
        } => {
            // Unpack the SoA planes, run the sort-merge removal on the flat
            // form, and re-transpose; bbox is recomputed by the constructor.
            let mut stored = leaf_points.to_vec();
            let removed = remove_multiset(&mut stored, points);
            *leaf_points = psi_geometry::LeafSoA::from_points(&stored);
            removed
        }
        Node::Internal {
            children,
            bbox,
            size,
        } => {
            let fanout = 1usize << D;
            let offsets = sieve_by(points, fanout, |p| child_index(p, region));
            counters::POINTS_MOVED.add(points.len() as u64);

            let mut slices: Vec<&mut [Point<T, D>]> = Vec::with_capacity(fanout);
            let mut rest = points;
            for w in offsets.windows(2) {
                let (head, tail) = rest.split_at_mut(w[1] - w[0]);
                slices.push(head);
                rest = tail;
            }

            let removed: usize = children
                .par_iter_mut()
                .zip(slices.into_par_iter())
                .enumerate()
                .map(|(i, (child, slice))| {
                    batch_delete(child, slice, &child_region(region, i), cfg)
                })
                .sum();

            *size -= removed;
            let mut new_bbox = Rect::empty();
            for c in children.iter() {
                new_bbox = new_bbox.merged(c.bbox());
            }
            *bbox = new_bbox;

            // Flatten ancestors whose subtree shrank within the leaf wrap
            // (the extra deletion step described in §3.2).
            if *size <= cfg.leaf_cap {
                let children = std::mem::take(children);
                *node = make_internal(children, cfg);
            }
            removed
        }
    }
}

/// Remove from `stored` one occurrence of every point in `to_remove` (multiset
/// semantics); returns the number of removals. Both slices are small compared
/// to the tree (a leaf and its share of the batch), so an O((a+b) log(a+b))
/// sort-merge is plenty.
fn remove_multiset<T: Coord, const D: usize>(
    stored: &mut Vec<Point<T, D>>,
    to_remove: &mut [Point<T, D>],
) -> usize {
    if stored.is_empty() || to_remove.is_empty() {
        return 0;
    }
    to_remove.sort_by(|a, b| a.lex_cmp(b));
    let mut kept = Vec::with_capacity(stored.len());
    let mut removed = 0usize;

    // Sort the stored points as well so a single merge pass suffices.
    stored.sort_by(|a, b| a.lex_cmp(b));
    let mut j = 0usize;
    for p in stored.iter() {
        // advance j past removal candidates smaller than p
        while j < to_remove.len() && to_remove[j].lex_cmp(p) == std::cmp::Ordering::Less {
            j += 1;
        }
        if j < to_remove.len() && to_remove[j].lex_cmp(p) == std::cmp::Ordering::Equal {
            j += 1;
            removed += 1;
        } else {
            kept.push(*p);
        }
    }
    *stored = kept;
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_geometry::PointI;

    fn p(x: i64, y: i64) -> PointI<2> {
        Point::new([x, y])
    }

    #[test]
    fn remove_multiset_respects_multiplicity() {
        let mut stored = vec![p(1, 1), p(1, 1), p(2, 2), p(3, 3)];
        let mut batch = vec![p(1, 1), p(4, 4), p(3, 3)];
        let removed = remove_multiset(&mut stored, &mut batch);
        assert_eq!(removed, 2);
        stored.sort();
        assert_eq!(stored, vec![p(1, 1), p(2, 2)]);
    }

    #[test]
    fn remove_multiset_empty_cases() {
        let mut stored: Vec<PointI<2>> = vec![];
        assert_eq!(remove_multiset(&mut stored, &mut [p(1, 1)]), 0);
        let mut stored = vec![p(1, 1)];
        assert_eq!(remove_multiset::<i64, 2>(&mut stored, &mut []), 0);
        assert_eq!(stored.len(), 1);
    }

    #[test]
    fn remove_more_copies_than_present() {
        let mut stored = vec![p(5, 5), p(5, 5)];
        let mut batch = vec![p(5, 5), p(5, 5), p(5, 5)];
        assert_eq!(remove_multiset(&mut stored, &mut batch), 2);
        assert!(stored.is_empty());
    }
}
