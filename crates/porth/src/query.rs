//! Queries on the P-Orth tree: k-nearest-neighbour, range-count and range-list.
//!
//! All three follow the standard bounding-box pruning pattern (§2.2, §C): a
//! kNN search visits children in increasing order of the distance between the
//! query point and the child's bounding box, abandoning any child that cannot
//! improve the current k-th distance; range queries skip disjoint subtrees and
//! take whole subtrees whose box is fully covered.

use crate::node::Node;
use psi_geometry::{Coord, KnnHeap, Point, Rect};
use psi_parutils::stats::counters;

/// The `k` nearest neighbours of `q`, closest first.
pub fn knn<T: Coord, const D: usize>(
    root: &Node<T, D>,
    q: &Point<T, D>,
    k: usize,
) -> Vec<Point<T, D>> {
    if k == 0 || root.size() == 0 {
        return Vec::new();
    }
    let mut heap = KnnHeap::new(k);
    knn_into(root, q, k, &mut heap);
    heap.into_sorted()
}

/// kNN primitive: reset `heap` to capacity `k` (keeping its allocation) and
/// fill it with the `k` nearest neighbours of `q`. Requires `k >= 1`.
pub fn knn_into<T: Coord, const D: usize>(
    root: &Node<T, D>,
    q: &Point<T, D>,
    k: usize,
    heap: &mut KnnHeap<T, D>,
) {
    heap.reset(k);
    if root.size() > 0 {
        knn_rec(root, q, heap);
    }
}

fn knn_rec<T: Coord, const D: usize>(node: &Node<T, D>, q: &Point<T, D>, heap: &mut KnnHeap<T, D>) {
    counters::NODES_VISITED.bump();
    match node {
        Node::Leaf { points } => points.knn_offer(q, heap),
        Node::Internal { children, .. } => {
            // Order children by distance from the query to their bounding box;
            // with at most 8 children an insertion sort over a fixed array is
            // cheaper than a heap.
            let mut order: Vec<(T::Dist, usize)> = children
                .iter()
                .enumerate()
                .filter(|(_, c)| c.size() > 0)
                .map(|(i, c)| (c.bbox().dist_sq_to_point(q), i))
                .collect();
            order.sort_by(|a, b| T::dist_cmp(a.0, b.0));
            for (dist, i) in order {
                if !heap.could_improve(dist) {
                    break;
                }
                knn_rec(&children[i], q, heap);
            }
        }
    }
}

/// Number of stored points inside the closed box `rect`.
pub fn range_count<T: Coord, const D: usize>(node: &Node<T, D>, rect: &Rect<T, D>) -> usize {
    counters::NODES_VISITED.bump();
    if node.size() == 0 || !rect.intersects(node.bbox()) {
        return 0;
    }
    if rect.contains_rect(node.bbox()) {
        return node.size();
    }
    match node {
        Node::Leaf { points } => points.range_count(rect),
        Node::Internal { children, .. } => children.iter().map(|c| range_count(c, rect)).sum(),
    }
}

/// Append every stored point inside the closed box `rect` to `out`.
pub fn range_list<T: Coord, const D: usize>(
    node: &Node<T, D>,
    rect: &Rect<T, D>,
    out: &mut Vec<Point<T, D>>,
) {
    range_visit(node, rect, &mut |p| out.push(*p));
}

/// Range primitive: invoke `visitor` on every stored point inside the closed
/// box `rect`, allocating nothing. Subtrees fully covered by `rect` are walked
/// without further box tests.
pub fn range_visit<T: Coord, const D: usize>(
    node: &Node<T, D>,
    rect: &Rect<T, D>,
    visitor: &mut dyn FnMut(&Point<T, D>),
) {
    counters::NODES_VISITED.bump();
    if node.size() == 0 || !rect.intersects(node.bbox()) {
        return;
    }
    if rect.contains_rect(node.bbox()) {
        visit_all(node, visitor);
        return;
    }
    match node {
        Node::Leaf { points } => points.range_visit(rect, visitor),
        Node::Internal { children, .. } => {
            for c in children {
                range_visit(c, rect, visitor);
            }
        }
    }
}

/// Visit every point of a subtree (the fully-covered fast path).
fn visit_all<T: Coord, const D: usize>(node: &Node<T, D>, visitor: &mut dyn FnMut(&Point<T, D>)) {
    match node {
        Node::Leaf { points } => {
            for p in points.iter() {
                visitor(&p);
            }
        }
        Node::Internal { children, .. } => {
            for c in children {
                visit_all(c, visitor);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::POrthTree;
    use psi_geometry::{brute_force_knn, PointI};

    fn grid(n: i64) -> Vec<PointI<2>> {
        let mut v = Vec::new();
        for x in 0..n {
            for y in 0..n {
                v.push(Point::new([x * 10, y * 10]));
            }
        }
        v
    }

    #[test]
    fn knn_on_grid() {
        let pts = grid(40);
        let tree = POrthTree::build(&pts);
        let q = Point::new([203, 207]);
        let got = tree.knn(&q, 4);
        let expect = brute_force_knn(&pts, &q, 4);
        assert_eq!(
            got.iter().map(|p| q.dist_sq(p)).collect::<Vec<_>>(),
            expect.iter().map(|p| q.dist_sq(p)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn knn_k_zero_and_k_larger_than_n() {
        let pts = grid(5);
        let tree = POrthTree::build(&pts);
        assert!(tree.knn(&Point::new([0, 0]), 0).is_empty());
        assert_eq!(tree.knn(&Point::new([0, 0]), 1_000).len(), 25);
    }

    #[test]
    fn range_count_full_and_empty_cover() {
        let pts = grid(20);
        let tree = POrthTree::build(&pts);
        let everything = Rect::from_corners(Point::new([-1, -1]), Point::new([1_000, 1_000]));
        assert_eq!(tree.range_count(&everything), 400);
        let nothing = Rect::from_corners(Point::new([-100, -100]), Point::new([-1, -1]));
        assert_eq!(tree.range_count(&nothing), 0);
        let quarter = Rect::from_corners(Point::new([0, 0]), Point::new([95, 95]));
        assert_eq!(tree.range_count(&quarter), 100);
    }

    #[test]
    fn range_list_matches_count() {
        let pts = grid(15);
        let tree = POrthTree::build(&pts);
        let r = Rect::from_corners(Point::new([13, 27]), Point::new([88, 120]));
        assert_eq!(tree.range_list(&r).len(), tree.range_count(&r));
    }
}
