//! **Sequential R-tree** baseline — the stand-in for the Boost R-tree the
//! paper uses to sanity-check SPaC-tree query quality.
//!
//! This is a classical Guttman R-tree with the *quadratic* node-split
//! heuristic, the variant the paper selects from Boost because it "gives the
//! best tree quality in the dynamic setting". It is deliberately sequential
//! and supports only single-point insertion and deletion (the paper's Fig. 3
//! marks its build/update columns N/A and obtains its trees by inserting and
//! deleting points one at a time); `batch_insert` / `batch_delete` helpers
//! simply loop, so the index can ride the same driver as the parallel indexes.
//!
//! # Example
//!
//! ```
//! use psi_geometry::{Point, PointI};
//! use psi_rtree::RTree;
//!
//! let mut t = RTree::<2>::new();
//! for i in 0..200i64 {
//!     t.insert(Point::new([i, (i * 17) % 101]));
//! }
//! assert_eq!(t.len(), 200);
//! let nn = t.knn(&Point::new([10, 70]), 3);
//! assert_eq!(nn.len(), 3);
//! ```

use psi_geometry::{Coord, KnnHeap, Point, PointI, Rect, RectI};
use psi_parutils::stats::counters;

/// Maximum number of entries per node (`M`). Boost's default is 16.
pub const MAX_ENTRIES: usize = 16;
/// Minimum number of entries per node after a split (`m`), 40% of `M` as in
/// the quadratic-split literature.
pub const MIN_ENTRIES: usize = 6;

enum Node<const D: usize> {
    Leaf {
        points: Vec<PointI<D>>,
    },
    Internal {
        children: Vec<(RectI<D>, Box<Node<D>>)>,
    },
}

impl<const D: usize> Node<D> {
    fn size(&self) -> usize {
        match self {
            Node::Leaf { points } => points.len(),
            Node::Internal { children } => children.iter().map(|(_, c)| c.size()).sum(),
        }
    }

    fn bbox(&self) -> RectI<D> {
        match self {
            Node::Leaf { points } => Rect::bounding(points),
            Node::Internal { children } => {
                let mut b = Rect::empty();
                for (r, _) in children {
                    b = b.merged(r);
                }
                b
            }
        }
    }

    fn collect_into(&self, out: &mut Vec<PointI<D>>) {
        match self {
            Node::Leaf { points } => out.extend_from_slice(points),
            Node::Internal { children } => {
                for (_, c) in children {
                    c.collect_into(out);
                }
            }
        }
    }

    fn height(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { children } => {
                1 + children.iter().map(|(_, c)| c.height()).max().unwrap_or(0)
            }
        }
    }
}

/// Area (volume) of a rectangle as `f64`, used by the enlargement heuristics.
fn area<const D: usize>(r: &RectI<D>) -> f64 {
    if r.is_empty() {
        return 0.0;
    }
    (0..D).map(|d| r.extent(d).max(0.0)).product()
}

/// Area increase needed for `r` to also cover point `p`.
fn enlargement<const D: usize>(r: &RectI<D>, p: &PointI<D>) -> f64 {
    let mut grown = *r;
    grown.expand(p);
    area(&grown) - area(r)
}

/// Area increase needed for `r` to also cover rectangle `other`.
fn enlargement_rect<const D: usize>(r: &RectI<D>, other: &RectI<D>) -> f64 {
    let grown = r.merged(other);
    area(&grown) - area(r)
}

/// The sequential Guttman R-tree with quadratic split.
pub struct RTree<const D: usize> {
    root: Node<D>,
    size: usize,
}

impl<const D: usize> Default for RTree<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> RTree<D> {
    /// An empty tree.
    pub fn new() -> Self {
        RTree {
            root: Node::Leaf { points: Vec::new() },
            size: 0,
        }
    }

    /// Bulk constructor: repeated single insertion, exactly how the paper
    /// obtains its Boost R-tree instances.
    pub fn build(points: &[PointI<D>]) -> Self {
        let mut t = Self::new();
        for p in points {
            t.insert(*p);
        }
        t
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.size
    }

    /// `true` if no points are stored.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Height of the tree (a single leaf has height 1).
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// Collect all stored points.
    pub fn collect_points(&self) -> Vec<PointI<D>> {
        let mut out = Vec::with_capacity(self.size);
        self.root.collect_into(&mut out);
        out
    }

    /// Insert one point (Guttman's ChooseLeaf + quadratic SplitNode).
    pub fn insert(&mut self, p: PointI<D>) {
        self.size += 1;
        if let Some((sibling_rect, sibling)) = insert_rec(&mut self.root, p) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(&mut self.root, Node::Leaf { points: Vec::new() });
            let old_rect = old_root.bbox();
            self.root = Node::Internal {
                children: vec![(old_rect, Box::new(old_root)), (sibling_rect, sibling)],
            };
        }
    }

    /// Delete one occurrence of `p`; returns whether a point was removed.
    /// Underfull nodes are condensed by re-inserting their points.
    pub fn delete(&mut self, p: &PointI<D>) -> bool {
        let mut orphans = Vec::new();
        let removed = delete_rec(&mut self.root, p, &mut orphans);
        if removed {
            self.size -= 1;
        }
        // Shrink the root while it has a single internal child.
        loop {
            let replace = match &mut self.root {
                Node::Internal { children } if children.len() == 1 => {
                    let (_, only) = children.pop().expect("len checked");
                    Some(*only)
                }
                Node::Internal { children } if children.is_empty() => {
                    Some(Node::Leaf { points: Vec::new() })
                }
                _ => None,
            };
            match replace {
                Some(n) => self.root = n,
                None => break,
            }
        }
        // Re-insert points orphaned by condensed nodes.
        let orphans: Vec<_> = std::mem::take(&mut orphans);
        for q in orphans {
            self.size -= 1; // insert() adds it back
            self.insert(q);
        }
        removed
    }

    /// Sequential "batch" insertion: one point at a time.
    pub fn batch_insert(&mut self, points: &[PointI<D>]) {
        for p in points {
            self.insert(*p);
        }
    }

    /// Sequential "batch" deletion: one point at a time. Returns the number removed.
    pub fn batch_delete(&mut self, points: &[PointI<D>]) -> usize {
        let mut removed = 0;
        for p in points {
            if self.delete(p) {
                removed += 1;
            }
        }
        removed
    }

    /// The `k` nearest neighbours of `q`, closest first.
    pub fn knn(&self, q: &PointI<D>, k: usize) -> Vec<PointI<D>> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut heap = KnnHeap::new(k);
        self.knn_into(q, k, &mut heap);
        heap.into_sorted()
    }

    /// kNN primitive: reset `heap` to capacity `k` (reusing its allocation)
    /// and fill it with the `k` nearest neighbours of `q`. Requires `k >= 1`.
    pub fn knn_into(&self, q: &PointI<D>, k: usize, heap: &mut KnnHeap<i64, D>) {
        heap.reset(k);
        if !self.is_empty() {
            knn_rec(&self.root, q, heap);
        }
    }

    /// Range primitive: call `visitor` on every stored point inside the closed
    /// box, allocating nothing.
    pub fn range_visit(&self, rect: &RectI<D>, visitor: &mut dyn FnMut(&PointI<D>)) {
        range_visit(&self.root, rect, visitor)
    }

    /// Tight bounding box of the stored points ([`Rect::empty`] when empty).
    ///
    /// The R-tree keeps child rectangles rather than a root rectangle, so this
    /// merges the top-level entries on each call (O(fan-out)).
    pub fn bounding_box(&self) -> RectI<D> {
        self.root.bbox()
    }

    /// Number of stored points in the closed box.
    pub fn range_count(&self, rect: &RectI<D>) -> usize {
        range_count(&self.root, rect)
    }

    /// All stored points in the closed box.
    pub fn range_list(&self, rect: &RectI<D>) -> Vec<PointI<D>> {
        let mut out = Vec::new();
        range_list(&self.root, rect, &mut out);
        out
    }

    /// Validate structural invariants: stored size, fan-out limits, and that
    /// every child rectangle tightly covers its subtree.
    pub fn check_invariants(&self) {
        fn rec<const D: usize>(node: &Node<D>, is_root: bool) -> usize {
            match node {
                Node::Leaf { points } => {
                    assert!(points.len() <= MAX_ENTRIES, "leaf overflow");
                    points.len()
                }
                Node::Internal { children } => {
                    assert!(children.len() <= MAX_ENTRIES, "internal overflow");
                    assert!(
                        is_root || children.len() >= 2,
                        "non-root internal nodes need at least 2 children"
                    );
                    let mut total = 0;
                    for (r, c) in children {
                        assert_eq!(*r, c.bbox(), "child rectangle must be tight");
                        total += rec(c, false);
                    }
                    total
                }
            }
        }
        assert_eq!(rec(&self.root, true), self.size, "stored size mismatch");
    }
}

/// Recursive insertion. On overflow the node is split in place (it keeps the
/// first group) and the second group is returned so the parent can adopt it.
fn insert_rec<const D: usize>(
    node: &mut Node<D>,
    p: PointI<D>,
) -> Option<(RectI<D>, Box<Node<D>>)> {
    match node {
        Node::Leaf { points } => {
            points.push(p);
            if points.len() <= MAX_ENTRIES {
                return None;
            }
            let (a, b) = quadratic_split_points(std::mem::take(points));
            let rb = Rect::bounding(&b);
            *points = a;
            Some((rb, Box::new(Node::Leaf { points: b })))
        }
        Node::Internal { children } => {
            // ChooseLeaf: the child needing the least enlargement (ties by area).
            let mut best = 0usize;
            let mut best_enl = f64::INFINITY;
            let mut best_area = f64::INFINITY;
            for (i, (r, _)) in children.iter().enumerate() {
                let e = enlargement(r, &p);
                let a = area(r);
                if e < best_enl || (e == best_enl && a < best_area) {
                    best = i;
                    best_enl = e;
                    best_area = a;
                }
            }
            let split = insert_rec(&mut children[best].1, p);
            children[best].0 = children[best].1.bbox();
            if let Some((rect, sibling)) = split {
                children.push((rect, sibling));
                if children.len() > MAX_ENTRIES {
                    let (a, b) = quadratic_split_children(std::mem::take(children));
                    let rb = group_bbox(&b);
                    *children = a;
                    return Some((rb, Box::new(Node::Internal { children: b })));
                }
            }
            None
        }
    }
}

fn group_bbox<const D: usize>(children: &[(RectI<D>, Box<Node<D>>)]) -> RectI<D> {
    let mut b = Rect::empty();
    for (r, _) in children {
        b = b.merged(r);
    }
    b
}

/// Guttman's quadratic split for points: pick the pair wasting the most area
/// as seeds, then assign each remaining point to the group whose rectangle
/// grows the least.
fn quadratic_split_points<const D: usize>(
    points: Vec<PointI<D>>,
) -> (Vec<PointI<D>>, Vec<PointI<D>>) {
    debug_assert!(points.len() > MAX_ENTRIES);
    let (mut s1, mut s2) = (0usize, 1usize);
    let mut worst = f64::MIN;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let pair = Rect::new(points[i], points[j]);
            let waste = area(&pair);
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut group_a = vec![points[s1]];
    let mut group_b = vec![points[s2]];
    let mut rect_a = Rect::singleton(points[s1]);
    let mut rect_b = Rect::singleton(points[s2]);
    let remaining: Vec<PointI<D>> = points
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != s1 && *i != s2)
        .map(|(_, p)| p)
        .collect();
    let total = remaining.len() + 2;
    let mut left_to_assign = remaining.len();
    for p in remaining {
        // Force assignment if one group needs all the rest to reach `m`.
        if group_a.len() + left_to_assign <= MIN_ENTRIES {
            group_a.push(p);
            rect_a.expand(&p);
            left_to_assign -= 1;
            continue;
        }
        if group_b.len() + left_to_assign <= MIN_ENTRIES {
            group_b.push(p);
            rect_b.expand(&p);
            left_to_assign -= 1;
            continue;
        }
        let ea = enlargement(&rect_a, &p);
        let eb = enlargement(&rect_b, &p);
        if ea < eb || (ea == eb && group_a.len() <= group_b.len()) {
            group_a.push(p);
            rect_a.expand(&p);
        } else {
            group_b.push(p);
            rect_b.expand(&p);
        }
        left_to_assign -= 1;
    }
    debug_assert_eq!(group_a.len() + group_b.len(), total);
    (group_a, group_b)
}

/// Quadratic split for internal-node children.
#[allow(clippy::type_complexity)]
fn quadratic_split_children<const D: usize>(
    children: Vec<(RectI<D>, Box<Node<D>>)>,
) -> (Vec<(RectI<D>, Box<Node<D>>)>, Vec<(RectI<D>, Box<Node<D>>)>) {
    debug_assert!(children.len() > MAX_ENTRIES);
    let (mut s1, mut s2) = (0usize, 1usize);
    let mut worst = f64::MIN;
    for i in 0..children.len() {
        for j in (i + 1)..children.len() {
            let merged = children[i].0.merged(&children[j].0);
            let waste = area(&merged) - area(&children[i].0) - area(&children[j].0);
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut group_a = Vec::new();
    let mut group_b = Vec::new();
    let mut rect_a = children[s1].0;
    let mut rect_b = children[s2].0;
    let total = children.len();
    let mut left_to_assign = total - 2;
    for (i, entry) in children.into_iter().enumerate() {
        if i == s1 {
            group_a.push(entry);
            continue;
        }
        if i == s2 {
            group_b.push(entry);
            continue;
        }
        if group_a.len() + left_to_assign <= MIN_ENTRIES {
            rect_a = rect_a.merged(&entry.0);
            group_a.push(entry);
            left_to_assign -= 1;
            continue;
        }
        if group_b.len() + left_to_assign <= MIN_ENTRIES {
            rect_b = rect_b.merged(&entry.0);
            group_b.push(entry);
            left_to_assign -= 1;
            continue;
        }
        let ea = enlargement_rect(&rect_a, &entry.0);
        let eb = enlargement_rect(&rect_b, &entry.0);
        if ea < eb || (ea == eb && group_a.len() <= group_b.len()) {
            rect_a = rect_a.merged(&entry.0);
            group_a.push(entry);
        } else {
            rect_b = rect_b.merged(&entry.0);
            group_b.push(entry);
        }
        left_to_assign -= 1;
    }
    (group_a, group_b)
}

/// Recursive deletion; underfull internal children are dissolved and their
/// points pushed into `orphans` for re-insertion.
fn delete_rec<const D: usize>(
    node: &mut Node<D>,
    p: &PointI<D>,
    orphans: &mut Vec<PointI<D>>,
) -> bool {
    match node {
        Node::Leaf { points } => {
            if let Some(pos) = points.iter().position(|x| x == p) {
                points.swap_remove(pos);
                true
            } else {
                false
            }
        }
        Node::Internal { children } => {
            let mut removed = false;
            let mut condensed: Option<usize> = None;
            for (i, (r, c)) in children.iter_mut().enumerate() {
                if r.contains(p) && delete_rec(c, p, orphans) {
                    removed = true;
                    *r = c.bbox();
                    let underfull = match c.as_ref() {
                        Node::Leaf { points } => points.is_empty(),
                        Node::Internal { children } => children.len() < 2,
                    };
                    if underfull {
                        condensed = Some(i);
                    }
                    break;
                }
            }
            if let Some(i) = condensed {
                let (_, dead) = children.swap_remove(i);
                dead.collect_into(orphans);
            }
            removed
        }
    }
}

fn knn_rec<const D: usize>(node: &Node<D>, q: &PointI<D>, heap: &mut KnnHeap<i64, D>) {
    counters::NODES_VISITED.bump();
    match node {
        Node::Leaf { points } => {
            for p in points {
                heap.offer_point(q, *p);
            }
        }
        Node::Internal { children } => {
            let mut order: Vec<(i128, usize)> = children
                .iter()
                .enumerate()
                .map(|(i, (r, _))| (r.dist_sq_to_point(q), i))
                .collect();
            order.sort_by(|a, b| <i64 as Coord>::dist_cmp(a.0, b.0));
            for (dist, i) in order {
                if !heap.could_improve(dist) {
                    break;
                }
                knn_rec(&children[i].1, q, heap);
            }
        }
    }
}

fn range_count<const D: usize>(node: &Node<D>, rect: &RectI<D>) -> usize {
    counters::NODES_VISITED.bump();
    match node {
        Node::Leaf { points } => points.iter().filter(|p| rect.contains(p)).count(),
        Node::Internal { children } => children
            .iter()
            .filter(|(r, _)| rect.intersects(r))
            .map(|(r, c)| {
                if rect.contains_rect(r) {
                    c.size()
                } else {
                    range_count(c, rect)
                }
            })
            .sum(),
    }
}

fn range_list<const D: usize>(node: &Node<D>, rect: &RectI<D>, out: &mut Vec<PointI<D>>) {
    range_visit(node, rect, &mut |p| out.push(*p));
}

fn range_visit<const D: usize>(
    node: &Node<D>,
    rect: &RectI<D>,
    visitor: &mut dyn FnMut(&PointI<D>),
) {
    counters::NODES_VISITED.bump();
    match node {
        Node::Leaf { points } => {
            for p in points.iter().filter(|p| rect.contains(p)) {
                visitor(p);
            }
        }
        Node::Internal { children } => {
            for (r, c) in children {
                if !rect.intersects(r) {
                    continue;
                }
                if rect.contains_rect(r) {
                    visit_all(c, visitor);
                } else {
                    range_visit(c, rect, visitor);
                }
            }
        }
    }
}

fn visit_all<const D: usize>(node: &Node<D>, visitor: &mut dyn FnMut(&PointI<D>)) {
    match node {
        Node::Leaf { points } => {
            for p in points {
                visitor(p);
            }
        }
        Node::Internal { children } => {
            for (_, c) in children {
                visit_all(c, visitor);
            }
        }
    }
}

/// Re-export used by the workspace-level examples.
pub type Point2 = Point<i64, 2>;

#[cfg(test)]
mod tests {
    use super::*;
    use psi_geometry::brute_force_knn;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn random_points(n: usize, seed: u64, max: i64) -> Vec<PointI<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.gen_range(0..max), rng.gen_range(0..max)]))
            .collect()
    }

    #[test]
    fn empty_and_single() {
        let mut t = RTree::<2>::new();
        assert!(t.is_empty());
        t.check_invariants();
        t.insert(Point::new([1, 2]));
        assert_eq!(t.len(), 1);
        t.check_invariants();
        assert!(t.delete(&Point::new([1, 2])));
        assert!(t.is_empty());
        assert!(!t.delete(&Point::new([1, 2])));
        t.check_invariants();
    }

    #[test]
    fn insert_many_then_query() {
        let pts = random_points(3_000, 1, 100_000);
        let t = RTree::build(&pts);
        assert_eq!(t.len(), pts.len());
        t.check_invariants();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let q = Point::new([rng.gen_range(0..100_000), rng.gen_range(0..100_000)]);
            assert_eq!(
                t.knn(&q, 10)
                    .iter()
                    .map(|p| q.dist_sq(p))
                    .collect::<Vec<_>>(),
                brute_force_knn(&pts, &q, 10)
                    .iter()
                    .map(|p| q.dist_sq(p))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn range_matches_scan() {
        let pts = random_points(2_000, 3, 10_000);
        let t = RTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..30 {
            let a = Point::new([rng.gen_range(0..10_000), rng.gen_range(0..10_000)]);
            let b = Point::new([rng.gen_range(0..10_000), rng.gen_range(0..10_000)]);
            let rect = Rect::new(a, b);
            let expect = pts.iter().filter(|p| rect.contains(p)).count();
            assert_eq!(t.range_count(&rect), expect);
            assert_eq!(t.range_list(&rect).len(), expect);
        }
    }

    #[test]
    fn delete_half_then_query() {
        let pts = random_points(2_000, 5, 50_000);
        let mut t = RTree::build(&pts);
        assert_eq!(t.batch_delete(&pts[..1_000]), 1_000);
        t.check_invariants();
        assert_eq!(t.len(), 1_000);
        let survivors = &pts[1_000..];
        let q = Point::new([25_000, 25_000]);
        assert_eq!(
            t.knn(&q, 10)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>(),
            brute_force_knn(survivors, &q, 10)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn duplicates_and_full_drain() {
        let p = PointI::<2>::new([5, 5]);
        let mut t = RTree::<2>::new();
        for _ in 0..100 {
            t.insert(p);
        }
        assert_eq!(t.len(), 100);
        t.check_invariants();
        assert_eq!(t.batch_delete(&vec![p; 100]), 100);
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn three_d_tree() {
        let mut rng = StdRng::seed_from_u64(6);
        let pts: Vec<PointI<3>> = (0..1_500)
            .map(|_| {
                Point::new([
                    rng.gen_range(0..10_000),
                    rng.gen_range(0..10_000),
                    rng.gen_range(0..10_000),
                ])
            })
            .collect();
        let t = RTree::build(&pts);
        t.check_invariants();
        let q = Point::new([5_000, 5_000, 5_000]);
        assert_eq!(
            t.knn(&q, 5)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>(),
            brute_force_knn(&pts, &q, 5)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn incremental_mixed_workload_stays_valid() {
        let pts = random_points(1_500, 9, 20_000);
        let mut t = RTree::<2>::new();
        for (i, p) in pts.iter().enumerate() {
            t.insert(*p);
            if i % 3 == 2 {
                // periodically delete an older point
                t.delete(&pts[i / 2]);
            }
        }
        t.check_invariants();
        assert!(t.len() <= 1_500);
    }
}
