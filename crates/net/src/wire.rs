//! The ψ-net wire protocol: compact length-prefixed binary frames.
//!
//! Every message — request or reply, either direction — is one **frame**:
//!
//! ```text
//! ┌────────────┬───────────┬────────────┬─────────────────────────┐
//! │ len: u32   │ op: u8    │ req_id: u64│ body (op-specific)      │
//! │ LE, counts │ opcode    │ LE, echoed │                         │
//! │ op..body   │           │ in replies │                         │
//! └────────────┴───────────┴────────────┴─────────────────────────┘
//! ```
//!
//! All integers are little-endian. Coordinates travel as 8 bytes each:
//! `i64::to_le_bytes` or `f64::to_bits().to_le_bytes()`, per the coordinate
//! tag negotiated in the hello exchange ([`WireCoord::TAG`]). A connection
//! starts with exactly one `Hello` request carrying the protocol magic,
//! version, coordinate tag and dimensionality; the server answers `HelloOk`
//! (echoing its shape) or an `Error` frame and closes. After that, requests
//! may be pipelined freely — `req_id` is echoed in the matching reply, and
//! replies to *query* ops may arrive in a different order than the requests
//! were sent (the coalescer groups by op kind).
//!
//! Reply opcodes are the request opcode with the high bit set
//! ([`REPLY_BIT`]); [`OP_ERROR`] is the one reply that answers anything.
//! A frame whose declared length exceeds [`MAX_FRAME`] is rejected before
//! any allocation — the length prefix is attacker-controlled input, and a
//! 4 GiB "frame" must cost nothing.
//!
//! Encoding appends to a caller-owned `Vec<u8>` (reuse it across frames —
//! steady-state encoding allocates only when a reply outgrows the buffer)
//! and decoding borrows from the connection's read buffer; only the decoded
//! point vectors themselves are materialised.

use psi_geometry::{Point, Rect};

/// First bytes of every connection: `b"PSIN"` read as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"PSIN");
/// Protocol version this build speaks. Version 2 added the optional
/// "as of epoch" tag on query frames (a presence byte + u64 after the
/// operation's body) and the [`ERR_EPOCH`] error code.
pub const VERSION: u16 = 2;
/// Hard cap on the length prefix (16 MiB). Larger frames are a protocol
/// error; the limit bounds per-connection memory against hostile prefixes.
pub const MAX_FRAME: usize = 1 << 24;
/// Bytes of the length prefix.
pub const LEN_PREFIX: usize = 4;
/// Bytes of opcode + req_id that every payload starts with.
pub const PAYLOAD_HEADER: usize = 9;

/// Request opcodes.
pub const OP_HELLO: u8 = 0x01;
pub const OP_KNN: u8 = 0x10;
pub const OP_RANGE_COUNT: u8 = 0x11;
pub const OP_RANGE_LIST: u8 = 0x12;
pub const OP_EPOCH_BOUNDS: u8 = 0x13;
pub const OP_STATS: u8 = 0x14;
pub const OP_APPLY_BATCH: u8 = 0x20;
/// Set on a request opcode to form its success-reply opcode.
pub const REPLY_BIT: u8 = 0x80;
/// The error reply opcode (answers any request; closes the connection).
pub const OP_ERROR: u8 = 0xFF;

/// Error codes carried by [`Reply::Error`] frames.
pub const ERR_MAGIC: u16 = 1;
pub const ERR_VERSION: u16 = 2;
pub const ERR_SHAPE: u16 = 3;
pub const ERR_OPCODE: u16 = 4;
pub const ERR_MALFORMED: u16 = 5;
pub const ERR_TOO_LARGE: u16 = 6;
pub const ERR_HELLO_FIRST: u16 = 7;
pub const ERR_BUSY: u16 = 8;
/// The requested epoch is outside the server's retained history window.
/// Per-request failure — the connection stays open.
pub const ERR_EPOCH: u16 = 9;

/// Coordinate types that travel on the wire: 8 bytes little-endian each,
/// tagged so both ends agree on the interpretation during hello. The codec
/// itself lives in `psi-geometry` (re-exported here) so the server's WAL and
/// checkpoint formats serialize points with the same bit-exact contract.
pub use psi_geometry::WireCoord;

/// A decoded request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request<T: WireCoord, const D: usize> {
    /// Connection opener: magic + version + coordinate tag + dims.
    Hello { version: u16, coord: u8, dims: u8 },
    /// `k` nearest neighbours of a query point; `at` pins the answer to a
    /// retained global epoch (time travel), `None` means "current".
    Knn {
        q: Point<T, D>,
        k: u32,
        at: Option<u64>,
    },
    /// Number of stored points in the closed box (as of `at`, if given).
    RangeCount { rect: Rect<T, D>, at: Option<u64> },
    /// The stored points in the closed box (as of `at`, if given).
    RangeList { rect: Rect<T, D>, at: Option<u64> },
    /// The retained time-travel window: which epochs `at` may name. No body.
    EpochBounds,
    /// A live metrics snapshot of the serving process. No body.
    Stats,
    /// One update batch: deletions applied before insertions.
    ApplyBatch {
        delete: Vec<Point<T, D>>,
        insert: Vec<Point<T, D>>,
    },
}

impl<T: WireCoord, const D: usize> Request<T, D> {
    /// The request's wire opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Hello { .. } => OP_HELLO,
            Request::Knn { .. } => OP_KNN,
            Request::RangeCount { .. } => OP_RANGE_COUNT,
            Request::RangeList { .. } => OP_RANGE_LIST,
            Request::EpochBounds => OP_EPOCH_BOUNDS,
            Request::Stats => OP_STATS,
            Request::ApplyBatch { .. } => OP_APPLY_BATCH,
        }
    }

    /// The canonical hello for this coordinate type and dimensionality.
    pub fn hello() -> Self {
        Request::Hello {
            version: VERSION,
            coord: T::TAG,
            dims: D as u8,
        }
    }
}

/// A decoded reply frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply<T: WireCoord, const D: usize> {
    /// Successful hello: the server's version, shape and shard count.
    HelloOk {
        version: u16,
        coord: u8,
        dims: u8,
        shards: u32,
    },
    /// kNN / range-list answer.
    Points(Vec<Point<T, D>>),
    /// Range-count answer.
    Count(u64),
    /// Epoch-bounds answer: `Some((oldest, newest))` retained epochs, or
    /// `None` when the server keeps no history (non-persistent family, or
    /// history disabled).
    EpochBounds(Option<(u64, u64)>),
    /// Batch accepted (enqueued to the writer; publication is asynchronous).
    BatchOk,
    /// Metrics snapshot: a schema version tag plus the Prometheus-style
    /// text rendering of every registered metric (see `psi_obs::expose`).
    Stats { version: u32, text: String },
    /// Typed failure. The server closes the connection after protocol
    /// errors; [`ERR_BUSY`] is the one retryable code.
    Error { code: u16, message: String },
}

/// Why a frame failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Declared length exceeds [`MAX_FRAME`] (or undershoots the header).
    BadLength(usize),
    /// Opcode not part of the protocol (in this direction).
    UnknownOpcode(u8),
    /// Payload shape disagrees with the opcode.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadLength(n) => write!(f, "frame length {n} out of bounds"),
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// The error-frame code a server reports this failure as.
    pub fn code(&self) -> u16 {
        match self {
            WireError::BadLength(_) => ERR_TOO_LARGE,
            WireError::UnknownOpcode(_) => ERR_OPCODE,
            WireError::Malformed(_) => ERR_MALFORMED,
        }
    }
}

// ---------------------------------------------------------------- encoding

fn begin_frame(out: &mut Vec<u8>, opcode: u8, req_id: u64) -> usize {
    let at = out.len();
    out.extend_from_slice(&[0u8; LEN_PREFIX]);
    out.push(opcode);
    out.extend_from_slice(&req_id.to_le_bytes());
    at
}

/// Backpatch the length prefix, enforcing [`MAX_FRAME`] on the *encode*
/// side: a frame the peer would reject as `BadLength` must never leave this
/// process (and a > 4 GiB body must not silently wrap the u32 prefix). On
/// failure the partial frame is rolled back, leaving `out` exactly as it was
/// before `begin_frame` — safe to reuse for the next message.
fn end_frame(out: &mut Vec<u8>, at: usize) -> Result<(), WireError> {
    let len = out.len() - at - LEN_PREFIX;
    if len > MAX_FRAME {
        out.truncate(at);
        return Err(WireError::BadLength(len));
    }
    out[at..at + LEN_PREFIX].copy_from_slice(&(len as u32).to_le_bytes());
    Ok(())
}

fn put_at(out: &mut Vec<u8>, at: &Option<u64>) {
    match at {
        Some(e) => {
            out.push(1);
            out.extend_from_slice(&e.to_le_bytes());
        }
        None => out.push(0),
    }
}

fn put_point<T: WireCoord, const D: usize>(out: &mut Vec<u8>, p: &Point<T, D>) {
    for c in p.coords {
        out.extend_from_slice(&c.to_wire());
    }
}

fn put_points<T: WireCoord, const D: usize>(out: &mut Vec<u8>, pts: &[Point<T, D>]) {
    out.reserve(pts.len() * D * 8);
    for p in pts {
        put_point(out, p);
    }
}

/// Append one encoded request frame to `out` (reusable across calls).
/// Fails — rolling `out` back to its previous length — when the body would
/// exceed [`MAX_FRAME`] (e.g. an `ApplyBatch` over ~16 MiB of points must
/// be chunked by the caller, not sent as a frame the peer will reject).
pub fn encode_request<T: WireCoord, const D: usize>(
    req: &Request<T, D>,
    req_id: u64,
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    let at = begin_frame(out, req.opcode(), req_id);
    match req {
        Request::Hello {
            version,
            coord,
            dims,
        } => {
            out.extend_from_slice(&MAGIC.to_le_bytes());
            out.extend_from_slice(&version.to_le_bytes());
            out.push(*coord);
            out.push(*dims);
        }
        Request::Knn { q, k, at: epoch } => {
            out.extend_from_slice(&k.to_le_bytes());
            put_point(out, q);
            put_at(out, epoch);
        }
        Request::RangeCount { rect, at: epoch } | Request::RangeList { rect, at: epoch } => {
            put_point(out, &rect.lo);
            put_point(out, &rect.hi);
            put_at(out, epoch);
        }
        Request::EpochBounds | Request::Stats => {}
        Request::ApplyBatch { delete, insert } => {
            out.extend_from_slice(&(delete.len() as u32).to_le_bytes());
            out.extend_from_slice(&(insert.len() as u32).to_le_bytes());
            put_points(out, delete);
            put_points(out, insert);
        }
    }
    end_frame(out, at)
}

/// Append one encoded reply frame to `out`. `reply_to` is the opcode of the
/// request being answered (success replies mirror it with [`REPLY_BIT`]
/// set; error replies always carry [`OP_ERROR`]). Fails — rolling `out`
/// back — when the reply body would exceed [`MAX_FRAME`] (a range-list
/// answer can outgrow the frame cap even when every request fit).
pub fn encode_reply<T: WireCoord, const D: usize>(
    reply: &Reply<T, D>,
    reply_to: u8,
    req_id: u64,
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    let opcode = match reply {
        Reply::Error { .. } => OP_ERROR,
        _ => reply_to | REPLY_BIT,
    };
    let at = begin_frame(out, opcode, req_id);
    match reply {
        Reply::HelloOk {
            version,
            coord,
            dims,
            shards,
        } => {
            out.extend_from_slice(&version.to_le_bytes());
            out.push(*coord);
            out.push(*dims);
            out.extend_from_slice(&shards.to_le_bytes());
        }
        Reply::Points(pts) => {
            out.extend_from_slice(&(pts.len() as u32).to_le_bytes());
            put_points(out, pts);
        }
        Reply::Count(c) => out.extend_from_slice(&c.to_le_bytes()),
        Reply::EpochBounds(bounds) => match bounds {
            Some((lo, hi)) => {
                out.push(1);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
            None => out.push(0),
        },
        Reply::BatchOk => {}
        Reply::Stats { version, text } => {
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(text.as_bytes());
        }
        Reply::Error { code, message } => {
            out.extend_from_slice(&code.to_le_bytes());
            out.extend_from_slice(message.as_bytes());
        }
    }
    end_frame(out, at)
}

// ---------------------------------------------------------------- decoding

/// Inspect the start of `buf` for one complete frame. Returns the total
/// frame size (prefix included) once enough bytes have arrived, `None` while
/// the frame is still incomplete, or an error for an out-of-bounds length
/// prefix — detected from the prefix alone, before buffering the body.
pub fn frame_size(buf: &[u8]) -> Result<Option<usize>, WireError> {
    if buf.len() < LEN_PREFIX {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..LEN_PREFIX].try_into().expect("4 bytes")) as usize;
    if !(PAYLOAD_HEADER..=MAX_FRAME).contains(&len) {
        return Err(WireError::BadLength(len));
    }
    if buf.len() < LEN_PREFIX + len {
        return Ok(None);
    }
    Ok(Some(LEN_PREFIX + len))
}

/// Little-endian reader over one frame payload.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Rd { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireError::Malformed("payload shorter than declared"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn point<T: WireCoord, const D: usize>(&mut self) -> Result<Point<T, D>, WireError> {
        let mut coords = [T::ZERO; D];
        for c in coords.iter_mut() {
            *c = T::from_wire(self.take(8)?.try_into().unwrap());
        }
        Ok(Point::new(coords))
    }

    fn points<T: WireCoord, const D: usize>(
        &mut self,
        n: usize,
    ) -> Result<Vec<Point<T, D>>, WireError> {
        // The count field must be consistent with the bytes that actually
        // arrived — reserve only what the frame can hold, so a hostile
        // count cannot force a huge allocation before `take` fails.
        if n.checked_mul(D * 8)
            .is_none_or(|bytes| self.pos + bytes > self.buf.len())
        {
            return Err(WireError::Malformed("point count exceeds payload"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.point()?);
        }
        Ok(out)
    }

    fn rect<T: WireCoord, const D: usize>(&mut self) -> Result<Rect<T, D>, WireError> {
        let lo = self.point()?;
        let hi = self.point()?;
        Ok(Rect::from_corners(lo, hi))
    }

    /// The optional "as of epoch" tag: presence byte, then u64 if present.
    fn at(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(WireError::Malformed("bad epoch presence byte")),
        }
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }
}

/// Decode one request payload (a complete frame minus its length prefix, as
/// delimited by [`frame_size`]). Returns the echoed request id alongside.
pub fn decode_request<T: WireCoord, const D: usize>(
    payload: &[u8],
) -> Result<(u64, Request<T, D>), WireError> {
    let mut rd = Rd::new(payload);
    let opcode = rd.u8()?;
    let req_id = rd.u64()?;
    let req = match opcode {
        OP_HELLO => {
            let magic = rd.u32()?;
            if magic != MAGIC {
                return Err(WireError::Malformed("bad magic"));
            }
            Request::Hello {
                version: rd.u16()?,
                coord: rd.u8()?,
                dims: rd.u8()?,
            }
        }
        OP_KNN => Request::Knn {
            k: rd.u32()?,
            q: rd.point()?,
            at: rd.at()?,
        },
        OP_RANGE_COUNT => Request::RangeCount {
            rect: rd.rect()?,
            at: rd.at()?,
        },
        OP_RANGE_LIST => Request::RangeList {
            rect: rd.rect()?,
            at: rd.at()?,
        },
        OP_EPOCH_BOUNDS => Request::EpochBounds,
        OP_STATS => Request::Stats,
        OP_APPLY_BATCH => {
            let n_del = rd.u32()? as usize;
            let n_ins = rd.u32()? as usize;
            Request::ApplyBatch {
                delete: rd.points(n_del)?,
                insert: rd.points(n_ins)?,
            }
        }
        other => return Err(WireError::UnknownOpcode(other)),
    };
    rd.finish()?;
    Ok((req_id, req))
}

/// Decode one reply payload. `Points` answers both kNN and range-list; the
/// request id tells the client which question this answers.
pub fn decode_reply<T: WireCoord, const D: usize>(
    payload: &[u8],
) -> Result<(u64, Reply<T, D>), WireError> {
    let mut rd = Rd::new(payload);
    let opcode = rd.u8()?;
    let req_id = rd.u64()?;
    let reply = match opcode {
        op if op == OP_HELLO | REPLY_BIT => Reply::HelloOk {
            version: rd.u16()?,
            coord: rd.u8()?,
            dims: rd.u8()?,
            shards: rd.u32()?,
        },
        op if op == OP_KNN | REPLY_BIT || op == OP_RANGE_LIST | REPLY_BIT => {
            let n = rd.u32()? as usize;
            Reply::Points(rd.points(n)?)
        }
        op if op == OP_RANGE_COUNT | REPLY_BIT => Reply::Count(rd.u64()?),
        op if op == OP_EPOCH_BOUNDS | REPLY_BIT => match rd.u8()? {
            0 => Reply::EpochBounds(None),
            1 => Reply::EpochBounds(Some((rd.u64()?, rd.u64()?))),
            _ => return Err(WireError::Malformed("bad epoch-bounds presence byte")),
        },
        op if op == OP_APPLY_BATCH | REPLY_BIT => Reply::BatchOk,
        op if op == OP_STATS | REPLY_BIT => {
            let version = rd.u32()?;
            let text = String::from_utf8_lossy(rd.take(payload.len() - rd.pos)?).into_owned();
            Reply::Stats { version, text }
        }
        OP_ERROR => {
            let code = rd.u16()?;
            let message = String::from_utf8_lossy(rd.take(payload.len() - rd.pos)?).into_owned();
            Reply::Error { code, message }
        }
        other => return Err(WireError::UnknownOpcode(other)),
    };
    rd.finish()?;
    Ok((req_id, reply))
}

/// Blocking frame reader for thread-per-connection transports: read exactly
/// one frame payload (opcode + req_id + body, prefix stripped) into `buf`.
/// Returns `Ok(false)` on a clean EOF at a frame boundary; mid-frame EOF
/// surfaces as `UnexpectedEof` and an out-of-bounds length prefix as
/// `InvalidData` wrapping the [`WireError`].
pub fn read_frame<R: std::io::Read>(r: &mut R, buf: &mut Vec<u8>) -> std::io::Result<bool> {
    let mut prefix = [0u8; LEN_PREFIX];
    // Read the first byte separately so EOF between frames is a clean close,
    // not an error.
    loop {
        match r.read(&mut prefix[..1]) {
            Ok(0) => return Ok(false),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    r.read_exact(&mut prefix[1..])?;
    let len = u32::from_le_bytes(prefix) as usize;
    if !(PAYLOAD_HEADER..=MAX_FRAME).contains(&len) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::BadLength(len),
        ));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

/// Validate a client hello against this server's shape. `Ok` carries the
/// `HelloOk` to send back; `Err` carries the error reply (send, then close).
pub fn check_hello<T: WireCoord, const D: usize>(
    req: &Request<T, D>,
    shards: u32,
) -> Result<Reply<T, D>, Reply<T, D>> {
    let Request::Hello {
        version,
        coord,
        dims,
    } = req
    else {
        return Err(Reply::Error {
            code: ERR_HELLO_FIRST,
            message: "first frame must be hello".to_string(),
        });
    };
    if *version != VERSION {
        return Err(Reply::Error {
            code: ERR_VERSION,
            message: format!("server speaks version {VERSION}, client sent {version}"),
        });
    }
    if *coord != T::TAG || *dims != D as u8 {
        return Err(Reply::Error {
            code: ERR_SHAPE,
            message: format!(
                "server serves coord tag {} in {}-d, client asked for tag {coord} in {dims}-d",
                T::TAG,
                D
            ),
        });
    }
    Ok(Reply::HelloOk {
        version: VERSION,
        coord: T::TAG,
        dims: D as u8,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request<T: WireCoord, const D: usize>(req: Request<T, D>, id: u64) {
        let mut buf = Vec::new();
        encode_request(&req, id, &mut buf).unwrap();
        let total = frame_size(&buf).unwrap().expect("complete frame");
        assert_eq!(total, buf.len());
        let (got_id, got) = decode_request::<T, D>(&buf[LEN_PREFIX..total]).unwrap();
        assert_eq!(got_id, id);
        assert_eq!(got, req);
    }

    fn round_trip_reply<T: WireCoord, const D: usize>(reply: Reply<T, D>, to: u8, id: u64) {
        let mut buf = Vec::new();
        encode_reply(&reply, to, id, &mut buf).unwrap();
        let total = frame_size(&buf).unwrap().expect("complete frame");
        assert_eq!(total, buf.len());
        let (got_id, got) = decode_reply::<T, D>(&buf[LEN_PREFIX..total]).unwrap();
        assert_eq!(got_id, id);
        assert_eq!(got, reply);
    }

    #[test]
    fn basic_round_trips() {
        round_trip_request(Request::<i64, 2>::hello(), 0);
        round_trip_request(
            Request::Knn {
                q: Point::new([-5i64, i64::MAX]),
                k: 17,
                at: None,
            },
            9,
        );
        round_trip_request(
            Request::Knn {
                q: Point::new([1i64, 2]),
                k: 3,
                at: Some(u64::MAX),
            },
            10,
        );
        round_trip_request(
            Request::RangeCount {
                rect: Rect::from_corners(Point::new([0.5f64, -1.0]), Point::new([2.0, 3.5])),
                at: None,
            },
            1,
        );
        round_trip_request(
            Request::RangeList {
                rect: Rect::from_corners(Point::new([0i64, 0]), Point::new([9, 9])),
                at: Some(42),
            },
            2,
        );
        round_trip_request(
            Request::ApplyBatch {
                delete: vec![Point::new([1i64, 2, 3])],
                insert: vec![Point::new([4, 5, 6]), Point::new([7, 8, 9])],
            },
            u64::MAX,
        );
        round_trip_reply(Reply::<i64, 2>::Count(12345), OP_RANGE_COUNT, 3);
        round_trip_reply(
            Reply::<f64, 3>::Points(vec![Point::new([0.0, -0.0, f64::MIN_POSITIVE])]),
            OP_KNN,
            4,
        );
        round_trip_request(Request::<i64, 2>::EpochBounds, 11);
        round_trip_request(Request::<i64, 2>::Stats, 14);
        round_trip_reply(
            Reply::<i64, 2>::Stats {
                version: 1,
                text: "psi_net_frames_in_total{op=\"knn\"} 7\n".to_string(),
            },
            OP_STATS,
            14,
        );
        round_trip_reply(
            Reply::<i64, 2>::EpochBounds(Some((3, 17))),
            OP_EPOCH_BOUNDS,
            12,
        );
        round_trip_reply(Reply::<i64, 2>::EpochBounds(None), OP_EPOCH_BOUNDS, 13);
        round_trip_reply(Reply::<i64, 2>::BatchOk, OP_APPLY_BATCH, 5);
        round_trip_reply(
            Reply::<i64, 2>::Error {
                code: ERR_BUSY,
                message: "writer queue full".to_string(),
            },
            OP_APPLY_BATCH,
            6,
        );
    }

    #[test]
    fn partial_frames_wait_and_oversized_prefixes_reject() {
        let mut buf = Vec::new();
        encode_request(&Request::<i64, 2>::hello(), 7, &mut buf).unwrap();
        for cut in 0..buf.len() {
            assert_eq!(frame_size(&buf[..cut]).unwrap(), None, "cut at {cut}");
        }
        // A length prefix beyond MAX_FRAME fails from the prefix alone.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        assert_eq!(frame_size(&huge), Err(WireError::BadLength(MAX_FRAME + 1)));
        // ...and one shorter than the payload header is equally invalid.
        assert!(matches!(
            frame_size(&4u32.to_le_bytes()),
            Err(WireError::BadLength(4))
        ));
    }

    #[test]
    fn oversized_bodies_fail_to_encode_and_roll_back() {
        // A batch bigger than MAX_FRAME must be refused on the encode side
        // (the peer would reject it as BadLength), leaving the buffer
        // untouched — including any frames already queued in it.
        let too_many = MAX_FRAME / 16 + 1; // 2-d i64 points: 16 bytes each
        let big = vec![Point::new([7i64, 7]); too_many];
        let mut buf = Vec::new();
        encode_request(&Request::<i64, 2>::hello(), 1, &mut buf).unwrap();
        let queued = buf.len();
        let err = encode_request(
            &Request::ApplyBatch {
                delete: Vec::new(),
                insert: big.clone(),
            },
            2,
            &mut buf,
        )
        .unwrap_err();
        assert!(matches!(err, WireError::BadLength(n) if n > MAX_FRAME));
        assert_eq!(buf.len(), queued, "failed encode must roll back");
        // The surviving prefix is still exactly the queued hello frame.
        assert_eq!(frame_size(&buf).unwrap(), Some(queued));

        // Same guard on the reply side (a range-list answer can outgrow the
        // cap even when the request fit).
        let err =
            encode_reply(&Reply::<i64, 2>::Points(big), OP_RANGE_LIST, 3, &mut buf).unwrap_err();
        assert!(matches!(err, WireError::BadLength(n) if n > MAX_FRAME));
        assert_eq!(buf.len(), queued);

        // A body just under the cap still encodes and round-trips.
        let fits = vec![Point::new([1i64, 2]); 1_000];
        round_trip_request(
            Request::ApplyBatch {
                delete: fits.clone(),
                insert: fits,
            },
            4,
        );
    }

    #[test]
    fn malformed_payloads_reject() {
        // Unknown opcode.
        let mut buf = vec![0x42u8];
        buf.extend_from_slice(&1u64.to_le_bytes());
        assert_eq!(
            decode_request::<i64, 2>(&buf),
            Err(WireError::UnknownOpcode(0x42))
        );
        // Truncated kNN body.
        let mut buf = vec![OP_KNN];
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&5u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 7]); // 7 of 16 coord bytes
        assert!(matches!(
            decode_request::<i64, 2>(&buf),
            Err(WireError::Malformed(_))
        ));
        // Batch count pointing past the payload: must fail without a huge
        // up-front allocation.
        let mut buf = vec![OP_APPLY_BATCH];
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_request::<i64, 2>(&buf),
            Err(WireError::Malformed(_))
        ));
        // Trailing garbage after a valid body.
        let mut buf = Vec::new();
        encode_request(
            &Request::<i64, 2>::Knn {
                q: Point::new([1, 2]),
                k: 3,
                at: None,
            },
            1,
            &mut buf,
        )
        .unwrap();
        buf.push(0xAB);
        let padded = (buf.len() - LEN_PREFIX) as u32;
        buf[..LEN_PREFIX].copy_from_slice(&padded.to_le_bytes());
        assert!(matches!(
            decode_request::<i64, 2>(&buf[LEN_PREFIX..]),
            Err(WireError::Malformed(_))
        ));
        // Epoch presence byte that is neither 0 nor 1.
        let mut buf = vec![OP_KNN];
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]); // the 2-d point
        buf.push(7); // bad presence byte
        assert_eq!(
            decode_request::<i64, 2>(&buf),
            Err(WireError::Malformed("bad epoch presence byte"))
        );
        // Wrong magic in hello.
        let mut buf = vec![OP_HELLO];
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&[0, 2]);
        assert!(matches!(
            decode_request::<i64, 2>(&buf),
            Err(WireError::Malformed("bad magic"))
        ));
    }

    #[test]
    fn hello_negotiation() {
        let ok = check_hello::<i64, 2>(&Request::hello(), 4).unwrap();
        assert_eq!(
            ok,
            Reply::HelloOk {
                version: VERSION,
                coord: 0,
                dims: 2,
                shards: 4
            }
        );
        let bad_version = Request::<i64, 2>::Hello {
            version: VERSION + 1,
            coord: 0,
            dims: 2,
        };
        let Err(Reply::Error { code, .. }) = check_hello(&bad_version, 1) else {
            panic!("version mismatch must be rejected");
        };
        assert_eq!(code, ERR_VERSION);
        let bad_shape = Request::<i64, 2>::Hello {
            version: VERSION,
            coord: 1,
            dims: 3,
        };
        let Err(Reply::Error { code, .. }) = check_hello(&bad_shape, 1) else {
            panic!("shape mismatch must be rejected");
        };
        assert_eq!(code, ERR_SHAPE);
        let not_hello = Request::<i64, 2>::Knn {
            q: Point::new([0, 0]),
            k: 1,
            at: None,
        };
        let Err(Reply::Error { code, .. }) = check_hello(&not_hello, 1) else {
            panic!("non-hello first frame must be rejected");
        };
        assert_eq!(code, ERR_HELLO_FIRST);
    }
}
