//! A blocking wire-protocol client.
//!
//! [`WireClient`] owns one TCP connection: `connect` performs the hello
//! exchange, after which the convenience calls (`knn`, `range_count`, …)
//! run one request/reply round trip each. For pipelined use — the fan-out
//! load generator keeps one request in flight on each of thousands of
//! connections — `send`/`recv` split the round trip.
//!
//! The client also implements [`psi_server::QueryClient`], so
//! `psi_server::loadgen::closed_loop_with` can drive real sockets through
//! the exact closed-loop driver (and conservation checks) used in-process.

use crate::wire::{
    decode_reply, encode_request, read_frame, Reply, Request, WireCoord, ERR_BUSY, ERR_EPOCH,
    MAX_FRAME, PAYLOAD_HEADER,
};
use psi_geometry::{Point, Rect};
use psi_server::{QueryClient, ServeCoord};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};

/// One hello-completed protocol connection.
pub struct WireClient<T: WireCoord, const D: usize> {
    stream: TcpStream,
    next_id: u64,
    wbuf: Vec<u8>,
    payload: Vec<u8>,
    /// Shard count the server reported in hello.
    shards: u32,
    _shape: std::marker::PhantomData<fn() -> Point<T, D>>,
}

fn bad_reply(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

impl<T: WireCoord, const D: usize> WireClient<T, D> {
    /// Connect and complete the hello exchange. Fails if the server's
    /// coordinate type, dimensionality or protocol version differ.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = WireClient {
            stream,
            next_id: 0,
            wbuf: Vec::new(),
            payload: Vec::new(),
            shards: 0,
            _shape: std::marker::PhantomData,
        };
        match client.call(&Request::hello())? {
            Reply::HelloOk { shards, .. } => {
                client.shards = shards;
                Ok(client)
            }
            Reply::Error { code, message } => Err(io::Error::other(format!(
                "server rejected hello (code {code}): {message}"
            ))),
            _ => Err(bad_reply("hello answered with a non-hello reply")),
        }
    }

    /// Shard count the server reported during hello.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Send one request without waiting for its reply; returns the request
    /// id the matching reply will echo. Fails with `InvalidInput` — before
    /// any bytes hit the socket — when the request body would exceed the
    /// frame cap ([`MAX_FRAME`]); split such batches instead (see
    /// [`WireClient::apply_batch`], which chunks automatically).
    pub fn send(&mut self, req: &Request<T, D>) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.wbuf.clear();
        encode_request(req, id, &mut self.wbuf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        self.stream.write_all(&self.wbuf)?;
        Ok(id)
    }

    /// Receive the next reply frame.
    pub fn recv(&mut self) -> io::Result<(u64, Reply<T, D>)> {
        if !read_frame(&mut self.stream, &mut self.payload)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        decode_reply(&self.payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// One blocking round trip.
    pub fn call(&mut self, req: &Request<T, D>) -> io::Result<Reply<T, D>> {
        let id = self.send(req)?;
        let (got, reply) = self.recv()?;
        if got != id {
            return Err(bad_reply("reply id does not match the request in flight"));
        }
        Ok(reply)
    }

    fn query(&mut self, req: Request<T, D>) -> io::Result<Reply<T, D>> {
        match self.call(&req)? {
            Reply::Error { code, message } => {
                Err(io::Error::other(format!("server error {code}: {message}")))
            }
            ok => Ok(ok),
        }
    }

    /// Like [`WireClient::query`], but an [`ERR_EPOCH`] reply — the pinned
    /// epoch fell off the server's history window — becomes `Ok(None)`
    /// instead of an error; the connection stays usable either way.
    fn query_at(&mut self, req: Request<T, D>) -> io::Result<Option<Reply<T, D>>> {
        match self.call(&req)? {
            Reply::Error { code, .. } if code == ERR_EPOCH => Ok(None),
            Reply::Error { code, message } => {
                Err(io::Error::other(format!("server error {code}: {message}")))
            }
            ok => Ok(Some(ok)),
        }
    }

    /// The `k` nearest stored neighbours of `q`, closest first.
    pub fn knn(&mut self, q: &Point<T, D>, k: usize) -> io::Result<Vec<Point<T, D>>> {
        match self.query(Request::Knn {
            q: *q,
            k: k as u32,
            at: None,
        })? {
            Reply::Points(p) => Ok(p),
            _ => Err(bad_reply("knn answered with a non-points reply")),
        }
    }

    /// `knn` against the snapshot published at `epoch`. `Ok(None)` means the
    /// epoch is outside the server's retained history window.
    pub fn knn_at(
        &mut self,
        q: &Point<T, D>,
        k: usize,
        epoch: u64,
    ) -> io::Result<Option<Vec<Point<T, D>>>> {
        match self.query_at(Request::Knn {
            q: *q,
            k: k as u32,
            at: Some(epoch),
        })? {
            None => Ok(None),
            Some(Reply::Points(p)) => Ok(Some(p)),
            Some(_) => Err(bad_reply("knn answered with a non-points reply")),
        }
    }

    /// Number of stored points in the closed box.
    pub fn range_count(&mut self, rect: &Rect<T, D>) -> io::Result<usize> {
        match self.query(Request::RangeCount {
            rect: *rect,
            at: None,
        })? {
            Reply::Count(c) => Ok(c as usize),
            _ => Err(bad_reply("range_count answered with a non-count reply")),
        }
    }

    /// `range_count` against the snapshot published at `epoch`; `Ok(None)`
    /// when that epoch has been evicted from the history window.
    pub fn range_count_at(&mut self, rect: &Rect<T, D>, epoch: u64) -> io::Result<Option<usize>> {
        match self.query_at(Request::RangeCount {
            rect: *rect,
            at: Some(epoch),
        })? {
            None => Ok(None),
            Some(Reply::Count(c)) => Ok(Some(c as usize)),
            Some(_) => Err(bad_reply("range_count answered with a non-count reply")),
        }
    }

    /// The stored points in the closed box (shard order).
    pub fn range_list(&mut self, rect: &Rect<T, D>) -> io::Result<Vec<Point<T, D>>> {
        match self.query(Request::RangeList {
            rect: *rect,
            at: None,
        })? {
            Reply::Points(p) => Ok(p),
            _ => Err(bad_reply("range_list answered with a non-points reply")),
        }
    }

    /// `range_list` against the snapshot published at `epoch`; `Ok(None)`
    /// when that epoch has been evicted from the history window.
    pub fn range_list_at(
        &mut self,
        rect: &Rect<T, D>,
        epoch: u64,
    ) -> io::Result<Option<Vec<Point<T, D>>>> {
        match self.query_at(Request::RangeList {
            rect: *rect,
            at: Some(epoch),
        })? {
            None => Ok(None),
            Some(Reply::Points(p)) => Ok(Some(p)),
            Some(_) => Err(bad_reply("range_list answered with a non-points reply")),
        }
    }

    /// The `(oldest, newest)` epochs the server can still answer pinned
    /// queries for, or `None` while the server retains no history (single
    /// snapshot mode). `newest` is the currently published epoch, so this
    /// doubles as a cheap "what epoch are you at" probe.
    pub fn epoch_bounds(&mut self) -> io::Result<Option<(u64, u64)>> {
        match self.query(Request::EpochBounds)? {
            Reply::EpochBounds(b) => Ok(b),
            _ => Err(bad_reply("epoch_bounds answered with an unexpected reply")),
        }
    }

    /// A live metrics snapshot of the serving process: the snapshot schema
    /// version plus the Prometheus-style text rendering of every metric the
    /// server has registered.
    pub fn stats(&mut self) -> io::Result<(u32, String)> {
        match self.query(Request::Stats)? {
            Reply::Stats { version, text } => Ok((version, text)),
            _ => Err(bad_reply("stats answered with a non-stats reply")),
        }
    }

    /// Publish one update batch (deletions before insertions). Retries
    /// [`ERR_BUSY`] by spinning on the server's back-pressure signal; any
    /// other error is fatal for the connection.
    ///
    /// Batches too large for one wire frame are split into several
    /// `ApplyBatch` frames — all deletion chunks first, then all insertion
    /// chunks, preserving delete-before-insert semantics. The server
    /// publishes each frame as its own epoch, so an oversized batch lands
    /// over a handful of epochs instead of failing to encode.
    pub fn apply_batch(
        &mut self,
        delete: Vec<Point<T, D>>,
        insert: Vec<Point<T, D>>,
    ) -> io::Result<()> {
        // Points one frame can carry: coordinates are 8 wire bytes each, and
        // the payload header plus the two point counts ride along under
        // MAX_FRAME.
        let cap = (MAX_FRAME - PAYLOAD_HEADER - 16) / (D * 8);
        if delete.len() + insert.len() <= cap {
            return self.apply_one(delete, insert);
        }
        for chunk in delete.chunks(cap) {
            self.apply_one(chunk.to_vec(), Vec::new())?;
        }
        for chunk in insert.chunks(cap) {
            self.apply_one(Vec::new(), chunk.to_vec())?;
        }
        Ok(())
    }

    fn apply_one(&mut self, delete: Vec<Point<T, D>>, insert: Vec<Point<T, D>>) -> io::Result<()> {
        let req = Request::ApplyBatch { delete, insert };
        loop {
            match self.call(&req)? {
                Reply::BatchOk => return Ok(()),
                Reply::Error { code, .. } if code == ERR_BUSY => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Reply::Error { code, message } => {
                    return Err(io::Error::other(format!("server error {code}: {message}")))
                }
                _ => return Err(bad_reply("apply_batch answered with an unexpected reply")),
            }
        }
    }

    /// Surrender the underlying stream (tests use this to push malformed
    /// bytes at a server over an already-helloed connection).
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }
}

impl<T: WireCoord + ServeCoord, const D: usize> QueryClient<T, D> for WireClient<T, D> {
    fn knn(&mut self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>> {
        WireClient::knn(self, q, k).expect("wire client knn I/O")
    }
    fn range_count(&mut self, rect: &Rect<T, D>) -> usize {
        WireClient::range_count(self, rect).expect("wire client range_count I/O")
    }
    fn range_list(&mut self, rect: &Rect<T, D>) -> Vec<Point<T, D>> {
        WireClient::range_list(self, rect).expect("wire client range_list I/O")
    }
}
