//! The thread-per-connection transport: a blocking accept loop that hands
//! each connection to its own small-stack OS thread running the blocking
//! frame loop. Per-connection state is a thread plus two reusable buffers,
//! which is comfortable into the hundreds of connections; past that the
//! evented transport takes over (see `event_loop`).

use crate::obs::net_obs;
use crate::wire::{
    check_hello, decode_request, encode_reply, read_frame, Reply, Request, WireCoord, WireError,
    ERR_BUSY, ERR_EPOCH, ERR_TOO_LARGE,
};
use crate::{Backend, Ctx, NetStats};
use psi_server::ServeCoord;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Stack size for connection threads. The blocking frame loop's deep point
/// is a batched query through the coalescer (the flusher does the real work
/// on its own stack), so connection threads stay shallow and 128 KiB keeps
/// a thousand of them affordable.
const CONN_STACK: usize = 128 * 1024;

/// How often the accept loop polls the stop flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Accept loop: runs until `stop`, then disconnects every live client and
/// joins their threads.
pub(crate) fn run_threaded<T: ServeCoord + WireCoord, const D: usize>(
    listener: TcpListener,
    ctx: Ctx<T, D>,
    stop: Arc<AtomicBool>,
    stats: Arc<NetStats>,
) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    // Registry of accepted streams (cloned handles) so shutdown can unblock
    // reads in flight, plus the worker joins.
    let registry: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
    let next_id = AtomicU64::new(0);
    let mut workers = Vec::new();

    while !stop.load(Ordering::Relaxed) {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            // EMFILE, ECONNABORTED and friends: back off and keep serving
            // the connections we already have.
            Err(_) => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let id = next_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            registry.lock().unwrap().insert(id, clone);
        }
        stats.accepted.fetch_add(1, Ordering::Relaxed);
        stats.open.fetch_add(1, Ordering::Relaxed);
        net_obs().open.inc();
        let ctx = ctx.clone();
        let worker_stats = Arc::clone(&stats);
        let worker_registry = Arc::clone(&registry);
        let spawned = std::thread::Builder::new()
            .name("psi-net-conn".to_string())
            .stack_size(CONN_STACK)
            .spawn(move || {
                let _ = serve_conn(stream, &ctx, &worker_stats);
                worker_registry.lock().unwrap().remove(&id);
                worker_stats.open.fetch_sub(1, Ordering::Relaxed);
                net_obs().open.dec();
            });
        match spawned {
            Ok(h) => workers.push(h),
            Err(_) => {
                // Thread spawn failed (resource exhaustion): drop the
                // connection instead of the server.
                registry.lock().unwrap().remove(&id);
                stats.open.fetch_sub(1, Ordering::Relaxed);
                net_obs().open.dec();
            }
        }
    }

    // Unblock every worker parked in a read, then join them all.
    for (_, s) in registry.lock().unwrap().drain() {
        let _ = s.shutdown(Shutdown::Both);
    }
    for w in workers {
        let _ = w.join();
    }
}

/// The blocking per-connection frame loop, shared protocol semantics with
/// the evented transport: hello first, then pipelined requests; protocol
/// errors answer with one error frame and close; I/O errors and mid-frame
/// EOFs close silently.
fn serve_conn<T: ServeCoord + WireCoord, const D: usize>(
    mut stream: TcpStream,
    ctx: &Ctx<T, D>,
    stats: &NetStats,
) -> io::Result<()> {
    let mut payload = Vec::new();
    let mut out = Vec::new();
    let mut hello_done = false;
    loop {
        match read_frame(&mut stream, &mut payload) {
            Ok(true) => {}
            Ok(false) => return Ok(()), // clean EOF between frames
            Err(e) => {
                if e.kind() == io::ErrorKind::InvalidData {
                    // Out-of-bounds length prefix: the one framing error we
                    // can still answer before closing.
                    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    send_error::<T, D>(&mut stream, &mut out, WireError::BadLength(0).code(), &e);
                }
                return Err(e);
            }
        }
        let t0 = std::time::Instant::now();
        let (req_id, req) = match decode_request::<T, D>(&payload) {
            Ok(ok) => ok,
            Err(e) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let reply: Reply<T, D> = Reply::Error {
                    code: e.code(),
                    message: e.to_string(),
                };
                net_obs().count_reply(0, &reply);
                out.clear();
                encode_reply(&reply, 0, 0, &mut out).expect("error frames fit one frame");
                let _ = stream.write_all(&out);
                return Ok(());
            }
        };
        let opcode = req.opcode();
        net_obs().frame_in(opcode);
        if !hello_done {
            let reply = check_hello(&req, ctx.shards);
            let failed = reply.is_err();
            let reply = reply.unwrap_or_else(|e| e);
            net_obs().count_reply(opcode, &reply);
            out.clear();
            encode_reply(&reply, opcode, req_id, &mut out).expect("hello frames fit one frame");
            stream.write_all(&out)?;
            if failed {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            hello_done = true;
            continue;
        }
        // Slow-query log: the shape string is only built while the log is
        // enabled (one relaxed load), and only recorded past the threshold.
        let slow_shape = (psi_obs::slowlog::threshold_ns() > 0).then(|| describe_request(&req));
        let reply = answer_blocking(ctx, req);
        out.clear();
        if encode_reply(&reply, opcode, req_id, &mut out).is_err() {
            // The reply outgrew the frame cap (e.g. a huge range-list):
            // answer with a typed error instead; the connection stays open.
            let substitute = reply_too_large();
            encode_reply::<T, D>(&substitute, opcode, req_id, &mut out)
                .expect("error frames fit one frame");
            net_obs().count_reply(opcode, &substitute);
        } else {
            net_obs().count_reply(opcode, &reply);
        }
        stream.write_all(&out)?;
        let dt = t0.elapsed();
        net_obs().request_latency(opcode).record_duration(dt);
        if let Some(shape) = slow_shape {
            psi_obs::slowlog::observe(crate::obs::op_name(opcode), dt.as_nanos() as u64, || shape);
        }
    }
}

fn send_error<T: WireCoord, const D: usize>(
    stream: &mut TcpStream,
    out: &mut Vec<u8>,
    code: u16,
    err: &dyn std::fmt::Display,
) {
    let reply: Reply<T, D> = Reply::Error {
        code,
        message: err.to_string(),
    };
    net_obs().count_reply(0, &reply);
    out.clear();
    encode_reply(&reply, 0, 0, out).expect("error frames fit one frame");
    let _ = stream.write_all(out);
}

/// The slow-query-log shape of a request: enough detail to reproduce the
/// query's cost class (k, epoch pin, batch sizes) without logging payloads.
pub(crate) fn describe_request<T: WireCoord, const D: usize>(req: &Request<T, D>) -> String {
    match req {
        Request::Hello { .. } => "hello".to_string(),
        Request::Knn { k, at, .. } => match at {
            Some(e) => format!("k={k} at={e}"),
            None => format!("k={k}"),
        },
        Request::RangeCount { at, .. } | Request::RangeList { at, .. } => match at {
            Some(e) => format!("rect at={e}"),
            None => "rect".to_string(),
        },
        Request::EpochBounds => "epoch_bounds".to_string(),
        Request::Stats => "stats".to_string(),
        Request::ApplyBatch { delete, insert } => {
            format!("del={} ins={}", delete.len(), insert.len())
        }
    }
}

/// The error reply sent when an answer outgrows the frame cap.
pub(crate) fn reply_too_large<T: WireCoord, const D: usize>() -> Reply<T, D> {
    Reply::Error {
        code: ERR_TOO_LARGE,
        message: "reply exceeds the frame cap; narrow the query".to_string(),
    }
}

/// The error reply sent when a pinned epoch fell off the history window.
pub(crate) fn reply_epoch_gone<T: WireCoord, const D: usize>() -> Reply<T, D> {
    Reply::Error {
        code: ERR_EPOCH,
        message: "epoch outside the retained history window".to_string(),
    }
}

/// Answer one post-hello request on the calling thread. Blocking on the
/// coalescer is exactly right here: the thread *is* the connection, and a
/// parked thread is how the flusher accumulates its batch.
pub(crate) fn answer_blocking<T: ServeCoord + WireCoord, const D: usize>(
    ctx: &Ctx<T, D>,
    req: Request<T, D>,
) -> Reply<T, D> {
    match req {
        // A repeated hello is answered idempotently (harmless, and it lets
        // clients re-verify the shape on a pooled connection).
        Request::Hello { .. } => match check_hello(&req, ctx.shards) {
            Ok(ok) | Err(ok) => ok,
        },
        Request::Knn { q, k, at } => {
            let ans = match (&ctx.backend, at) {
                (Backend::Coalesced(h), None) => Some(h.knn(&q, k as usize)),
                (Backend::Coalesced(h), Some(e)) => h.knn_at(&q, k as usize, e),
                (Backend::Direct(h), None) => Some(h.knn(&q, k as usize)),
                (Backend::Direct(h), Some(e)) => h.knn_at(&q, k as usize, e),
            };
            match ans {
                Some(p) => Reply::Points(p),
                None => reply_epoch_gone(),
            }
        }
        Request::RangeCount { rect, at } => {
            let ans = match (&ctx.backend, at) {
                (Backend::Coalesced(h), None) => Some(h.range_count(&rect)),
                (Backend::Coalesced(h), Some(e)) => h.range_count_at(&rect, e),
                (Backend::Direct(h), None) => Some(h.range_count(&rect)),
                (Backend::Direct(h), Some(e)) => h.range_count_at(&rect, e),
            };
            match ans {
                Some(c) => Reply::Count(c as u64),
                None => reply_epoch_gone(),
            }
        }
        Request::RangeList { rect, at } => {
            let ans = match (&ctx.backend, at) {
                (Backend::Coalesced(h), None) => Some(h.range_list(&rect)),
                (Backend::Coalesced(h), Some(e)) => h.range_list_at(&rect, e),
                (Backend::Direct(h), None) => Some(h.range_list(&rect)),
                (Backend::Direct(h), Some(e)) => h.range_list_at(&rect, e),
            };
            match ans {
                Some(p) => Reply::Points(p),
                None => reply_epoch_gone(),
            }
        }
        Request::EpochBounds => Reply::EpochBounds(ctx.server.router().epoch_bounds()),
        Request::Stats => Reply::Stats {
            version: psi_obs::SNAPSHOT_VERSION,
            text: psi_obs::render_prometheus(),
        },
        Request::ApplyBatch { delete, insert } => match ctx.server.try_submit(delete, insert) {
            Ok(()) => Reply::BatchOk,
            Err(_) => Reply::Error {
                code: ERR_BUSY,
                message: "update queue full, retry".to_string(),
            },
        },
    }
}
