//! The evented transport: one reactor thread multiplexing every connection
//! over epoll, with a per-connection read/write buffer state machine.
//!
//! The reactor never blocks on anything but `epoll_wait`:
//!
//! * **reads** drain the socket into the connection's read buffer, then peel
//!   complete frames off it (`wire::frame_size`); partial frames simply stay
//!   buffered until more bytes arrive,
//! * **query frames** are enqueued to the coalescer with a *callback*
//!   completion ([`psi_server::Completion::Callback`]) — the flusher thread
//!   encodes the reply, drops it into the shared outbox, and kicks the
//!   reactor through a wakeup socketpair; the reactor routes the bytes to
//!   the connection's write buffer on its next iteration,
//! * **writes** flush the write buffer until the socket would block, arming
//!   `EPOLLOUT` only while bytes remain (level-triggered, so interest must
//!   be explicit or the loop would spin).
//!
//! Connections live in a slab indexed by the epoll token. Each slot carries
//! a **generation** that bumps on close: a coalescer callback for a
//! connection that died mid-flight delivers into the outbox tagged with the
//! old generation and is discarded on arrival, never mis-delivered to a
//! reused slot. This is what makes abrupt client disconnects (including the
//! malformed-input tests' mid-frame drops) leak-free: the flusher still
//! answers every queued request; the answers for dead connections just fall
//! on the floor.

use crate::epoll::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::listener::{answer_blocking, describe_request, reply_epoch_gone, reply_too_large};
use crate::obs::{net_obs, op_name};
use crate::wire::{
    check_hello, decode_request, encode_reply, frame_size, Reply, Request, WireCoord, WireError,
    ERR_BUSY, LEN_PREFIX,
};
use crate::{Backend, Ctx, NetStats};
use psi_server::{Completion, QueryOp, QueryReply, ServeCoord};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKE_TOKEN: u64 = u64::MAX - 1;
/// Events decoded per `epoll_wait`.
const EVENT_BATCH: usize = 1024;
/// Socket read chunk.
const READ_CHUNK: usize = 64 * 1024;
/// A connection whose client stops reading gets this much buffered reply
/// before the reactor gives up on it.
const MAX_WBUF: usize = 1 << 26;

/// Replies encoded off-thread (by coalescer callbacks), awaiting routing
/// into their connection's write buffer: `(slot, generation, frame bytes)`.
type Outbox = Arc<Mutex<Vec<(usize, u64, Vec<u8>)>>>;

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Flushed-up-to offset into `wbuf`.
    wpos: usize,
    hello_done: bool,
    /// An error frame is queued; close once `wbuf` drains.
    closing: bool,
    /// Current epoll interest mask.
    interest: u32,
}

struct Reactor<T: ServeCoord + WireCoord, const D: usize> {
    epoll: Epoll,
    ctx: Ctx<T, D>,
    stats: Arc<NetStats>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Per-slot generation, bumped on close; outlives the slot's occupants.
    gens: Vec<u64>,
    outbox: Outbox,
    wake_tx: Arc<UnixStream>,
}

/// Reactor entry point: runs until `stop`, then drops every connection.
pub(crate) fn run_evented<T: ServeCoord + WireCoord, const D: usize>(
    listener: TcpListener,
    ctx: Ctx<T, D>,
    stop: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    wake_rx: UnixStream,
    wake_tx: UnixStream,
) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    wake_rx
        .set_nonblocking(true)
        .expect("wake socket nonblocking");
    let epoll = Epoll::new().expect("epoll_create1");
    epoll
        .add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)
        .expect("register listener");
    epoll
        .add(wake_rx.as_raw_fd(), EPOLLIN, WAKE_TOKEN)
        .expect("register wakeup");

    let mut r = Reactor {
        epoll,
        ctx,
        stats,
        conns: Vec::new(),
        free: Vec::new(),
        gens: Vec::new(),
        outbox: Arc::new(Mutex::new(Vec::new())),
        wake_tx: Arc::new(wake_tx),
    };
    let mut events = vec![EpollEvent { events: 0, data: 0 }; EVENT_BATCH];

    while !stop.load(Ordering::Relaxed) {
        let n = match r.epoll.wait(&mut events, 100) {
            Ok(n) => n,
            Err(_) => break,
        };
        for ev in &events[..n] {
            let (mask, token) = (ev.events, ev.data);
            match token {
                LISTENER_TOKEN => r.accept_ready(&listener),
                WAKE_TOKEN => {
                    drain_wake(&wake_rx);
                    r.drain_outbox();
                }
                slot => {
                    let idx = slot as usize;
                    if r.conns.get(idx).is_none_or(|c| c.is_none()) {
                        continue; // closed earlier in this same event batch
                    }
                    if mask & (EPOLLERR | EPOLLHUP) != 0 {
                        r.close(idx);
                        continue;
                    }
                    if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
                        r.read_ready(idx);
                    }
                    if mask & EPOLLOUT != 0 && r.conns[idx].is_some() {
                        r.write_ready(idx);
                    }
                }
            }
        }
    }

    for idx in 0..r.conns.len() {
        if r.conns[idx].is_some() {
            r.close(idx);
        }
    }
}

fn drain_wake(wake_rx: &UnixStream) {
    let mut sink = [0u8; 256];
    loop {
        match (&*wake_rx).read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return, // WouldBlock: fully drained
        }
    }
}

impl<T: ServeCoord + WireCoord, const D: usize> Reactor<T, D> {
    fn accept_ready(&mut self, listener: &TcpListener) {
        loop {
            let stream = match listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // transient (ECONNABORTED, EMFILE): retry on next readiness
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let idx = match self.free.pop() {
                Some(i) => i,
                None => {
                    self.conns.push(None);
                    self.gens.push(0);
                    self.conns.len() - 1
                }
            };
            let interest = EPOLLIN | EPOLLRDHUP;
            if self
                .epoll
                .add(stream.as_raw_fd(), interest, idx as u64)
                .is_err()
            {
                self.free.push(idx);
                continue;
            }
            self.conns[idx] = Some(Conn {
                stream,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                wpos: 0,
                hello_done: false,
                closing: false,
                interest,
            });
            self.stats.accepted.fetch_add(1, Ordering::Relaxed);
            self.stats.open.fetch_add(1, Ordering::Relaxed);
            net_obs().open.inc();
        }
    }

    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            self.epoll.delete(conn.stream.as_raw_fd());
            self.gens[idx] += 1; // invalidate in-flight callbacks
            self.free.push(idx);
            self.stats.open.fetch_sub(1, Ordering::Relaxed);
            net_obs().open.dec();
        }
    }

    /// Route off-thread-encoded replies into their connections' write
    /// buffers, discarding any whose connection died (generation mismatch).
    fn drain_outbox(&mut self) {
        let ready = std::mem::take(&mut *self.outbox.lock().unwrap());
        let mut touched: Vec<usize> = Vec::new();
        for (idx, gen, bytes) in ready {
            if self.gens.get(idx) == Some(&gen) {
                if let Some(conn) = self.conns[idx].as_mut() {
                    conn.wbuf.extend_from_slice(&bytes);
                    if !touched.contains(&idx) {
                        touched.push(idx);
                    }
                }
            }
        }
        for idx in touched {
            self.write_ready(idx);
        }
    }

    fn read_ready(&mut self, idx: usize) {
        let mut chunk = [0u8; READ_CHUNK];
        let mut eof = false;
        {
            let conn = self.conns[idx].as_mut().expect("read on live conn");
            if conn.closing {
                // Already poisoned: swallow input until the error frame
                // flushes and the close lands.
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => return self.close(idx),
                        Ok(_) => {}
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                        Err(_) => return self.close(idx),
                    }
                }
            }
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => return self.close(idx),
                }
            }
        }

        // Peel complete frames into owned requests, then handle them with
        // the connection borrow released (handlers write into `wbuf` and
        // enqueue to the coalescer). Each frame's decode instant rides along
        // so request latency covers decode to reply hand-off.
        let mut parsed: Vec<(u64, Request<T, D>, Instant)> = Vec::new();
        let mut poison: Option<WireError> = None;
        {
            let conn = self.conns[idx].as_mut().expect("parse on live conn");
            let mut pos = 0;
            loop {
                match frame_size(&conn.rbuf[pos..]) {
                    Ok(Some(total)) => {
                        match decode_request::<T, D>(&conn.rbuf[pos + LEN_PREFIX..pos + total]) {
                            Ok((req_id, req)) => {
                                net_obs().frame_in(req.opcode());
                                parsed.push((req_id, req, Instant::now()));
                            }
                            Err(e) => {
                                poison = Some(e);
                                break;
                            }
                        }
                        pos += total;
                    }
                    Ok(None) => break,
                    Err(e) => {
                        poison = Some(e);
                        break;
                    }
                }
            }
            conn.rbuf.drain(..pos);
        }

        for (req_id, req, t0) in parsed {
            self.handle_request(idx, req_id, req, t0);
            if self.conns[idx].as_ref().is_none_or(|c| c.closing) {
                break;
            }
        }
        if self.conns[idx].is_none() {
            return;
        }
        if let Some(e) = poison {
            self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            self.queue_reply(
                idx,
                &Reply::Error {
                    code: e.code(),
                    message: e.to_string(),
                },
                0,
                0,
            );
            self.poison(idx);
        }
        if eof {
            // Clean or mid-frame EOF: either way nothing more will arrive.
            // Flush what's queued, then drop. (A client that half-closed
            // after pipelining still gets queued replies lost — closed-loop
            // clients never half-close with requests in flight.)
            self.close(idx);
            return;
        }
        self.flush(idx);
    }

    /// Mark the connection as dying: stop reading, close once flushed.
    fn poison(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].as_mut() {
            conn.closing = true;
            let _ = conn.stream.shutdown(Shutdown::Read);
        }
    }

    fn handle_request(&mut self, idx: usize, req_id: u64, req: Request<T, D>, t0: Instant) {
        let hello_done = self.conns[idx].as_ref().expect("live conn").hello_done;
        if !hello_done {
            let opcode = req.opcode();
            match check_hello(&req, self.ctx.shards) {
                Ok(ok) => {
                    self.answer_now(idx, &ok, opcode, req_id, t0);
                    self.conns[idx].as_mut().expect("live conn").hello_done = true;
                }
                Err(err) => {
                    self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    self.answer_now(idx, &err, opcode, req_id, t0);
                    self.poison(idx);
                }
            }
            return;
        }
        let opcode = req.opcode();
        // The direct (non-coalesced) backend answers inline on the reactor
        // thread — each query pins a fresh view; there is nothing to wait
        // on, so blocking semantics are trivially nonblocking here.
        let coalesced = match &self.ctx.backend {
            Backend::Coalesced(h) => Some(h.clone()),
            Backend::Direct(_) => None,
        };
        let Some(handle) = coalesced else {
            let reply = answer_blocking(&self.ctx, req);
            self.answer_now(idx, &reply, opcode, req_id, t0);
            return;
        };
        // Slow-query log: build the shape before `req` is consumed, and only
        // while the log is enabled (one relaxed load).
        let slow_shape = (psi_obs::slowlog::threshold_ns() > 0).then(|| describe_request(&req));
        let op = match req {
            Request::Hello { .. } => {
                let reply = match check_hello(&req, self.ctx.shards) {
                    Ok(ok) | Err(ok) => ok,
                };
                self.answer_now(idx, &reply, opcode, req_id, t0);
                return;
            }
            Request::EpochBounds => {
                // Answered inline: one mutex-guarded peek at the history
                // log, nothing worth a coalescer round-trip.
                let reply: Reply<T, D> =
                    Reply::EpochBounds(self.ctx.server.router().epoch_bounds());
                self.answer_now(idx, &reply, opcode, req_id, t0);
                return;
            }
            Request::Stats => {
                // Inline too: collection walks the registry under its mutex,
                // but never touches the serving path.
                let reply: Reply<T, D> = Reply::Stats {
                    version: psi_obs::SNAPSHOT_VERSION,
                    text: psi_obs::render_prometheus(),
                };
                self.answer_now(idx, &reply, opcode, req_id, t0);
                return;
            }
            Request::ApplyBatch { delete, insert } => {
                let reply = match self.ctx.server.try_submit(delete, insert) {
                    Ok(()) => Reply::BatchOk,
                    Err(_) => Reply::Error {
                        code: ERR_BUSY,
                        message: "update queue full, retry".to_string(),
                    },
                };
                self.answer_now(idx, &reply, opcode, req_id, t0);
                return;
            }
            Request::Knn { q, k, at } => {
                if k == 0 {
                    self.answer_now(idx, &Reply::Points(Vec::new()), opcode, req_id, t0);
                    return;
                }
                (QueryOp::Knn(q, k as usize), at)
            }
            Request::RangeCount { rect, at } => (QueryOp::RangeCount(rect), at),
            Request::RangeList { rect, at } => (QueryOp::RangeList(rect), at),
        };
        let (op, at) = op;
        let outbox = Arc::clone(&self.outbox);
        let wake = Arc::clone(&self.wake_tx);
        let gen = self.gens[idx];
        handle.submit_at(
            op,
            at,
            Completion::Callback(Box::new(move |answer| {
                let reply: Reply<T, D> = match answer {
                    QueryReply::Points(p) => Reply::Points(p),
                    QueryReply::Count(c) => Reply::Count(c as u64),
                    QueryReply::EpochGone => reply_epoch_gone(),
                };
                let mut bytes = Vec::new();
                if encode_reply(&reply, opcode, req_id, &mut bytes).is_err() {
                    let substitute = reply_too_large::<T, D>();
                    encode_reply(&substitute, opcode, req_id, &mut bytes)
                        .expect("error frames fit one frame");
                    net_obs().count_reply(opcode, &substitute);
                } else {
                    net_obs().count_reply(opcode, &reply);
                }
                // Latency ends at reply hand-off: the flusher finished the
                // query and the encoded frame is on its way to the reactor.
                let dt = t0.elapsed();
                net_obs().request_latency(opcode).record_duration(dt);
                if let Some(shape) = slow_shape {
                    psi_obs::slowlog::observe(op_name(opcode), dt.as_nanos() as u64, || shape);
                }
                outbox.lock().unwrap().push((idx, gen, bytes));
                // A full wakeup pipe means a kick is already pending.
                let _ = (&*wake).write(&[1]);
            })),
        );
    }

    /// Queue an inline reply and record its decode-to-hand-off latency.
    fn answer_now(
        &mut self,
        idx: usize,
        reply: &Reply<T, D>,
        opcode: u8,
        req_id: u64,
        t0: Instant,
    ) {
        self.queue_reply(idx, reply, opcode, req_id);
        net_obs()
            .request_latency(opcode)
            .record_duration(t0.elapsed());
    }

    fn queue_reply(&mut self, idx: usize, reply: &Reply<T, D>, opcode: u8, req_id: u64) {
        let conn = self.conns[idx].as_mut().expect("live conn");
        let at = conn.wbuf.len();
        if encode_reply(reply, opcode, req_id, &mut conn.wbuf).is_err() {
            // Rolled back to `at`: substitute a typed too-large error so the
            // client still gets an answer for this req_id.
            debug_assert_eq!(conn.wbuf.len(), at);
            let substitute = reply_too_large::<T, D>();
            encode_reply(&substitute, opcode, req_id, &mut conn.wbuf)
                .expect("error frames fit one frame");
            net_obs().count_reply(opcode, &substitute);
        } else {
            net_obs().count_reply(opcode, reply);
        }
    }

    fn write_ready(&mut self, idx: usize) {
        self.flush(idx);
    }

    /// Push buffered bytes out; adjust `EPOLLOUT` interest to match what
    /// remains; complete a pending close once drained.
    fn flush(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        while conn.wpos < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => return self.close(idx),
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => return self.close(idx),
            }
        }
        if conn.wpos == conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
            if conn.closing {
                return self.close(idx);
            }
            self.set_interest(idx, EPOLLIN | EPOLLRDHUP);
        } else {
            if conn.wbuf.len() - conn.wpos > MAX_WBUF {
                return self.close(idx); // client stopped reading
            }
            // Reclaim flushed prefix occasionally so the buffer can't creep.
            if conn.wpos > (1 << 20) {
                conn.wbuf.drain(..conn.wpos);
                conn.wpos = 0;
            }
            let base = if conn.closing {
                0
            } else {
                EPOLLIN | EPOLLRDHUP
            };
            self.set_interest(idx, base | EPOLLOUT);
        }
    }

    fn set_interest(&mut self, idx: usize, mask: u32) {
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        if conn.interest != mask {
            conn.interest = mask;
            if self
                .epoll
                .modify(conn.stream.as_raw_fd(), mask, idx as u64)
                .is_err()
            {
                self.close(idx);
            }
        }
    }
}
