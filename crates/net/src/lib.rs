//! ψ-net: the socket front-end for the ψ-serve subsystem.
//!
//! [`psi_server`](psi_server) serves queries to in-process clients through
//! coalescing handles; this crate puts that behind a TCP socket so the
//! serving path can be driven at realistic connection counts. It provides:
//!
//! * [`wire`] — the length-prefixed little-endian binary protocol (one
//!   module, shared verbatim by both sides of the connection),
//! * two server **transports** behind one [`NetServer`] front:
//!   [`Transport::Threaded`] (blocking thread-per-connection, simple and
//!   fine up to a few hundred connections) and [`Transport::Evented`]
//!   (a nonblocking epoll reactor — see [`epoll`] — that multiplexes
//!   thousands of connections onto one thread),
//! * [`client::WireClient`] — a blocking protocol client that also
//!   implements [`psi_server::QueryClient`], so `psi_server`'s closed-loop
//!   load generator can drive real sockets with the same conservation and
//!   shape checks it applies in-process,
//! * [`loadgen`] — a multiplexed fan-out driver for connection counts far
//!   beyond thread-per-client (thousands of connections per worker thread),
//!   with order-independent FNV answer checksums and an in-process replay
//!   to verify socket answers bit-for-bit.
//!
//! Query frames feed the server's [coalescer](psi_server::CoalesceHandle):
//! the evented transport enqueues with a callback completion so reactor
//! threads never block on the flusher, which is what lets one reactor
//! thread keep thousands of connections in flight while the flusher turns
//! them into large epoch-consistent batches. A `coalesce = false` hook
//! routes queries through [`psi_server::DirectHandle`] instead (a fresh
//! router-view pin per query) to measure what coalescing buys.

pub mod client;
pub mod epoll;
mod event_loop;
mod listener;
pub mod loadgen;
mod obs;
pub mod wire;

use psi_server::{PsiServer, ServeCoord};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use wire::WireCoord;

/// How the server multiplexes connections.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Transport {
    /// One blocking OS thread per connection (small stacks). Simple, and
    /// competitive while connection counts stay in the hundreds.
    Threaded,
    /// One reactor thread multiplexing every connection over epoll with
    /// per-connection read/write buffer state machines. The connection-scale
    /// transport: thousands of mostly-idle connections cost buffers, not
    /// stacks.
    Evented,
}

impl Transport {
    /// Parse the scenario/CLI spelling.
    pub fn parse(s: &str) -> Option<Transport> {
        match s {
            "threaded" => Some(Transport::Threaded),
            "evented" => Some(Transport::Evented),
            _ => None,
        }
    }

    /// The scenario/CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Transport::Threaded => "threaded",
            Transport::Evented => "evented",
        }
    }
}

/// Configuration for [`NetServer::spawn`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Connection multiplexing strategy.
    pub transport: Transport,
    /// Route queries through the coalescer (default) or the direct
    /// per-query fast path (`false`).
    pub coalesce: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            transport: Transport::Evented,
            coalesce: true,
        }
    }
}

/// How a transport answers query frames: through the coalescer (batched,
/// epoch-consistent per flush) or the direct per-query pin.
pub(crate) enum Backend<T: ServeCoord, const D: usize> {
    Coalesced(psi_server::CoalesceHandle<T, D>),
    Direct(psi_server::DirectHandle<T, D>),
}

impl<T: ServeCoord, const D: usize> Clone for Backend<T, D> {
    fn clone(&self) -> Self {
        match self {
            Backend::Coalesced(h) => Backend::Coalesced(h.clone()),
            Backend::Direct(h) => Backend::Direct(h.clone()),
        }
    }
}

/// Everything a connection handler needs, cheap to clone into threads.
pub(crate) struct Ctx<T: ServeCoord + WireCoord, const D: usize> {
    pub server: Arc<PsiServer<T, D>>,
    pub backend: Backend<T, D>,
    pub shards: u32,
}

impl<T: ServeCoord + WireCoord, const D: usize> Clone for Ctx<T, D> {
    fn clone(&self) -> Self {
        Ctx {
            server: Arc::clone(&self.server),
            backend: self.backend.clone(),
            shards: self.shards,
        }
    }
}

/// Counters shared between the transport threads and the [`NetServer`]
/// handle that outlives them.
#[derive(Default)]
pub(crate) struct NetStats {
    pub open: AtomicUsize,
    pub accepted: AtomicU64,
    /// Frames that failed to decode (protocol errors answered with an
    /// error frame and a close).
    pub protocol_errors: AtomicU64,
}

/// A running socket front-end. Dropping the handle (or calling
/// [`NetServer::shutdown`]) stops accepting, disconnects every client and
/// joins the transport threads.
///
/// Shut the `NetServer` down **before** the [`PsiServer`] it fronts — the
/// transports hold coalescing handles, and a query arriving after the
/// server's flusher stopped would panic the connection's handler.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Evented transport's wakeup writer (kicks the reactor out of
    /// `epoll_wait` so it notices `stop`).
    wake: Option<UnixStream>,
    join: Option<JoinHandle<()>>,
    stats: Arc<NetStats>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port — the bound address is
    /// [`NetServer::addr`]) and serve `server` over it. The type parameters
    /// fix the connection shape: clients must hello with the matching
    /// coordinate tag and dimensionality.
    pub fn spawn<T: ServeCoord + WireCoord, const D: usize>(
        server: Arc<PsiServer<T, D>>,
        addr: SocketAddr,
        cfg: NetConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let backend = if cfg.coalesce {
            Backend::Coalesced(server.client())
        } else {
            Backend::Direct(server.direct_client())
        };
        let shards = server.router().shard_count() as u32;
        let ctx = Ctx {
            server,
            backend,
            shards,
        };
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(NetStats::default());
        let (wake, join) = match cfg.transport {
            Transport::Threaded => {
                let stop = Arc::clone(&stop);
                let stats = Arc::clone(&stats);
                let join = std::thread::Builder::new()
                    .name("psi-net-accept".to_string())
                    .spawn(move || listener::run_threaded(listener, ctx, stop, stats))?;
                (None, join)
            }
            Transport::Evented => {
                let (wake_tx, wake_rx) = UnixStream::pair()?;
                wake_tx.set_nonblocking(true)?;
                let stop = Arc::clone(&stop);
                let stats = Arc::clone(&stats);
                let wake_for_loop = wake_tx.try_clone()?;
                let join = std::thread::Builder::new()
                    .name("psi-net-reactor".to_string())
                    .spawn(move || {
                        event_loop::run_evented(listener, ctx, stop, stats, wake_rx, wake_for_loop)
                    })?;
                (Some(wake_tx), join)
            }
        };
        Ok(NetServer {
            addr: local,
            stop,
            wake,
            join: Some(join),
            stats,
        })
    }

    /// The bound listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently open.
    pub fn open_connections(&self) -> usize {
        self.stats.open.load(Ordering::Relaxed)
    }

    /// Connections accepted over the server's lifetime.
    pub fn accepted(&self) -> u64 {
        self.stats.accepted.load(Ordering::Relaxed)
    }

    /// Frames rejected as protocol errors over the server's lifetime.
    pub fn protocol_errors(&self) -> u64 {
        self.stats.protocol_errors.load(Ordering::Relaxed)
    }

    /// Stop accepting, disconnect all clients, join the transport threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(wake) = &self.wake {
            use std::io::Write;
            // The reactor drains the wakeup socket every iteration; if the
            // pipe is full a wakeup is already pending, so WouldBlock is
            // success here.
            let _ = (&*wake).write(&[1]);
        }
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.stop_and_join();
        }
    }
}

/// The loopback address with an OS-assigned ephemeral port — the usual
/// `spawn` target for tests and benchmarks.
pub fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().expect("loopback literal parses")
}

/// Best-effort probe of the process fd headroom, used by benchmarks to clamp
/// connection sweeps: counts how many more sockets this process could open
/// right now by reading `RLIMIT_NOFILE` via the only portable std signal we
/// have — trying is authoritative, so this opens (and immediately closes) no
/// sockets and just reports the soft limit minus a safety margin.
pub fn fd_budget() -> usize {
    // /proc is the dependency-free way to read the soft limit on Linux.
    let soft = std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Max open files"))?
                .split_whitespace()
                .nth(3)?
                .parse::<usize>()
                .ok()
        })
        .unwrap_or(1024);
    soft.saturating_sub(64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_names_round_trip() {
        for t in [Transport::Threaded, Transport::Evented] {
            assert_eq!(Transport::parse(t.name()), Some(t));
        }
        assert_eq!(Transport::parse("osmotic"), None);
    }

    #[test]
    fn fd_budget_is_sane() {
        let b = fd_budget();
        assert!(b >= 64, "fd budget {b} implausibly small");
    }
}
